//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal implementation of the (small) `rand 0.8` API
//! surface it actually uses: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over primitive integer ranges, and `Rng::gen_bool`.
//!
//! The generator is a SplitMix64-seeded xoshiro256++, which has the same
//! statistical quality class as the upstream `StdRng` for test-workload
//! generation. Streams are deterministic per seed but do **not** reproduce
//! upstream `rand`'s byte streams — workloads here are self-checking
//! (soundness properties, not golden values), so only determinism matters.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything above is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let r = wide(rng) % span;
                ((self.start as i128).wrapping_add(r as i128)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let r = wide(rng) % span;
                ((lo as i128).wrapping_add(r as i128)) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// 128 bits of entropy for modulo reduction without measurable bias.
fn wide<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 uniform mantissa bits, exactly representable in f64.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(-1000i64..=1000), b.gen_range(-1000i64..=1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let w = rng.gen_range(0u8..4);
            assert!(w < 4);
            let x = rng.gen_range(0..3);
            assert!((0..3).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "suspicious bias: {hits}");
    }
}
