//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use: `Criterion::bench_function`, benchmark groups with
//! `bench_with_input`/`sample_size`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is a simple
//! median-of-samples wall clock; results are printed one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque benchmark identifier (function + parameter).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function`-style entry points.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Measurement loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, `sample_size` samples of one iteration each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            black_box(out);
        }
    }
}

/// Identity function that defeats constant-propagation of its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one(full_id: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench {full_id:<40} median {median:?} ({} samples)",
        b.samples.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 3 }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into_benchmark_id().id, self.sample_size, |b| f(b));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires n >= 10; the shim just caps the loop count low
        // to keep `cargo bench` wall-clock reasonable offline.
        self.sample_size = n.clamp(1, 10).min(5);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&full, self.sample_size, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut runs = 0;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 1);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| total += n);
        });
        group.finish();
        assert!(total >= 4);
    }
}
