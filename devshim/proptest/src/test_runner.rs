//! Deterministic case runner and RNG for the vendored proptest shim.

use std::borrow::Cow;

/// Per-suite configuration (only the fields the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per test.
    pub cases: u32,
    /// Rejections tolerated before the test aborts as over-constrained.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 96,
            max_global_rejects: 65_536,
        }
    }
}

/// Outcome of one generated case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Case does not apply (`prop_assume!` / filter miss); redrawn for free.
    Reject(Cow<'static, str>),
    /// Property violated.
    Fail(Cow<'static, str>),
}

impl TestCaseError {
    #[must_use]
    pub fn reject(msg: impl Into<Cow<'static, str>>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    #[must_use]
    pub fn fail(msg: impl Into<Cow<'static, str>>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic xoshiro256++ stream seeded from the test name.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform index in `0..bound` (`bound` > 0).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        (self.next_u128() % bound as u128) as usize
    }

    /// Uniform in `[0, 1]` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
    }
}

/// FNV-1a — stable test-name hashing for per-test seeds.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive `case` until `config.cases` successful executions. Panics on the
/// first failing case with its case index and seed so reruns reproduce it.
pub fn run_proptest(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let base = fnv1a(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while accepted < config.cases {
        let seed = base ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut rng = TestRng::new(seed);
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest `{name}`: too many rejected cases \
                     ({rejected}, last: {why}) — over-constrained generator"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {accepted} \
                     (attempt {attempt}, seed {seed:#x}): {msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_counts_successes() {
        let mut n = 0;
        run_proptest(&ProptestConfig::with_cases(10), "t", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn rejections_do_not_count() {
        let mut total = 0u32;
        run_proptest(&ProptestConfig::with_cases(5), "t2", |rng| {
            total += 1;
            if rng.next_u64() % 2 == 0 {
                return Err(TestCaseError::reject("even"));
            }
            Ok(())
        });
        assert!(total >= 5);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        run_proptest(&ProptestConfig::with_cases(5), "t3", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
