//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal property-testing harness implementing exactly the API surface the
//! test suites use: the `proptest!` macro (with `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, `prop_oneof!`, `Just`,
//! `any::<T>()`, integer/float range strategies, tuple strategies,
//! `prop::collection::vec`, and the `prop_map`/`prop_filter`/
//! `prop_recursive`/`boxed` combinators.
//!
//! Differences from upstream: no shrinking (failures report the original
//! case), and generation distributions are plain uniform rather than
//! edge-biased. Case streams are deterministic per test name, so failures
//! reproduce across runs.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for i128 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u128() as i128
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u128()
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            // Full bit-pattern coverage (callers `prop_assume!` finiteness
            // where it matters), mixed with tame magnitudes so typical runs
            // exercise ordinary arithmetic too.
            if rng.next_u64() & 3 == 0 {
                f64::from_bits(rng.next_u64())
            } else {
                let mag = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let scale = 10f64.powi((rng.next_u64() % 19) as i32 - 9);
                let s = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                s * mag * scale
            }
        }
    }

    /// Strategy wrapper produced by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary + Clone + 'static> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> Result<T, crate::strategy::Reject> {
            Ok(T::arbitrary_value(rng))
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::{Reject, Strategy};
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection size range is empty");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "collection size range is empty");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element_strategy, size_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Reject the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::borrow::Cow::Borrowed(concat!("assumption failed: ", stringify!($cond))),
            ));
        }
    };
}

/// Fail the current case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::borrow::Cow::Owned(::std::format!($($fmt)*)),
            ));
        }
    };
}

/// Equality assertion with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Inequality assertion with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

/// Uniform choice between heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The main property-test macro: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run_proptest(
                    &__config,
                    stringify!($name),
                    |__rng| {
                        $(
                            let $pat = match $crate::strategy::Strategy::sample(&($strat), __rng) {
                                ::core::result::Result::Ok(v) => v,
                                ::core::result::Result::Err(r) => {
                                    return ::core::result::Result::Err(
                                        $crate::test_runner::TestCaseError::Reject(r.0),
                                    )
                                }
                            };
                        )+
                        let __outcome: $crate::test_runner::TestCaseResult = (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                        __outcome
                    },
                );
            }
        )*
    };
}
