//! Value-generation strategies: uniform primitives, combinators, unions,
//! and bounded recursion. No shrinking — see the crate docs.

use crate::test_runner::TestRng;
use std::borrow::Cow;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A strategy declined to produce a value (e.g. a filter failed); the whole
/// test case is re-drawn without counting toward the case budget.
#[derive(Clone, Debug)]
pub struct Reject(pub Cow<'static, str>);

/// How a value of `Self::Value` is generated.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, Reject>;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values passing `pred`. Retries locally before rejecting the
    /// whole case.
    fn prop_filter<F>(self, whence: impl Into<Cow<'static, str>>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Bounded recursive strategy: `self` generates leaves; `recurse` builds
    /// one level on top of a strategy for the level below. `_desired_size`
    /// and `_expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // Mix in leaves at every level so expected size stays bounded.
            current = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        current
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Result<T, Reject> {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Result<T, Reject> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> Result<U, Reject> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: Cow<'static, str>,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
        for _ in 0..32 {
            let v = self.inner.sample(rng)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Reject(self.whence.clone()))
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Result<T, Reject> {
        let idx = rng.below(self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let r = rng.next_u128() % span;
                Ok(((self.start as i128).wrapping_add(r as i128)) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let r = rng.next_u128() % span;
                Ok(((lo as i128).wrapping_add(r as i128)) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> Result<f64, Reject> {
        assert!(self.start < self.end, "strategy range is empty");
        Ok(self.start + (self.end - self.start) * rng.unit_f64())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> Result<f64, Reject> {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "strategy range is empty");
        Ok(lo + (hi - lo) * rng.unit_f64())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Ok(($($name.sample(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
