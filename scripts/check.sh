#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 verify from ROADMAP.md.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cdb-lint (hygiene rules + interprocedural passes, baseline ratchet)"
cargo run -p cdb-lint --

echo "==> cdb-lint JSON report is parseable and stable across runs"
cargo run -q -p cdb-lint -- --format json > lint_report.json
cargo run -q -p cdb-lint -- --format json | cmp - lint_report.json

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> E22 smoke: server transcripts byte-identical across batching/workers"
cargo run --release -p cdb-bench --bin repro -- e22 > /dev/null
grep -q '"all_outputs_equal": true' BENCH_server.json
grep -q '"hardware_threads"' BENCH_server.json

echo "==> E23 smoke: planned QE matches forced CAD and the alibi oracle"
cargo run --release -p cdb-bench --bin repro -- e23 > /dev/null
grep -q '"all_outputs_equal": true' BENCH_alibi.json
grep -q '"oracle_matches": true' BENCH_alibi.json
grep -q '"hardware_threads"' BENCH_alibi.json

echo "All checks passed."
