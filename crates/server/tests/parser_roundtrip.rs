//! Parser round-trip property tests and error-position unit tests.
//!
//! The round-trip property: for any generated [`Statement`],
//! `parse(print(stmt)) == stmt` — the pretty-printer emits exactly the
//! canonical surface the parser accepts, including verbatim embedded
//! CALC_F / Datalog¬ text. The error tests pin down *positions* (1-based
//! line/col), not just messages: a parser that loses track of where it is
//! fails these even if the message text stays right.

use cdb_num::Rat;
use cdb_server::{parse_script, parse_statement, Rows, Statement};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("R".to_owned()),
        Just("S2".to_owned()),
        Just("Edge".to_owned()),
        Just("P_1".to_owned()),
        Just("very_long_relation_name".to_owned()),
    ]
}

fn arb_var() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("x".to_owned()),
        Just("y".to_owned()),
        Just("z0".to_owned()),
        Just("w_".to_owned()),
    ]
}

fn arb_rat() -> impl Strategy<Value = Rat> {
    (-999i64..=999, 1i64..=30).prop_map(|(n, d)| Rat::from_ints(n, d))
}

/// CALC_F-ish embedded text. Only has to lex under the statement lexer
/// and survive a trim round-trip — the CALC_F parser owns its own
/// grammar — but everything generated here is in fact valid CALC_F.
fn arb_formula_text() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("x + y <= 3".to_owned()),
        Just("4*x^2 - y - 20*x + 25 <= 0".to_owned()),
        Just("R(x, y)".to_owned()),
        Just("x = 1/2".to_owned()),
        Just("not (x >= 0)".to_owned()),
        Just("exists z (R(x, z) and z <= y)".to_owned()),
    ];
    proptest::collection::vec(atom, 1..=3).prop_map(|parts| parts.join(" and "))
}

fn arb_datalog_text() -> impl Strategy<Value = String> {
    let rule = prop_oneof![
        Just("T(x, y) :- E(x, y).".to_owned()),
        Just("T(x, y) :- T(x, z), E(z, y).".to_owned()),
        Just("Off(x) :- Dom(x), not R(x).".to_owned()),
        Just("Reach(y) :- Reach(x), x <= y, y <= x + 1.".to_owned()),
    ];
    proptest::collection::vec(rule, 1..=3).prop_map(|rules| rules.join(" "))
}

/// Point rows of one fixed arity (the devshim proptest has no
/// `prop_flat_map`, so each arity is its own strategy arm).
fn arb_points(arity: usize) -> impl Strategy<Value = Rows> {
    proptest::collection::vec(proptest::collection::vec(arb_rat(), arity..=arity), 1..=4)
        .prop_map(Rows::Points)
}

fn arb_rows() -> impl Strategy<Value = Rows> {
    prop_oneof![
        arb_points(1),
        arb_points(2),
        arb_points(3),
        arb_formula_text().prop_map(Rows::Constraint),
    ]
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        (
            arb_name(),
            proptest::collection::vec(arb_var(), 1..=3),
            prop_oneof![Just(None), arb_formula_text().prop_map(Some)],
        )
            .prop_map(|(name, vars, definition)| Statement::CreateRelation {
                name,
                vars,
                definition,
            }),
        (arb_name(), arb_rows()).prop_map(|(name, rows)| Statement::Insert { name, rows }),
        (arb_name(), arb_rows()).prop_map(|(name, rows)| Statement::Delete { name, rows }),
        arb_formula_text().prop_map(|query| Statement::Select { query }),
        arb_datalog_text().prop_map(|program| Statement::Datalog { program }),
        Just(Statement::ShowRelations),
        arb_name().prop_map(|name| Statement::DropRelation { name }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ print is the identity on statements.
    #[test]
    fn print_parse_roundtrip(stmt in arb_statement()) {
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(&reparsed, &stmt, "printed as `{}`", printed);
        // And printing is a fixpoint.
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    /// Scripts of several statements split and round-trip.
    #[test]
    fn script_roundtrip(stmts in proptest::collection::vec(arb_statement(), 1..=4)) {
        let script = stmts
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        let reparsed = parse_script(&script)
            .unwrap_or_else(|e| panic!("reparse of script `{script}` failed: {e}"));
        prop_assert_eq!(reparsed, stmts);
    }
}

/// Error positions: (line, col) of the offending token, 1-based.
fn err_pos(src: &str) -> (u32, u32, String) {
    let e = parse_script(src).expect_err("expected a parse error");
    (e.line, e.col, e.message)
}

#[test]
fn lex_error_position() {
    let (line, col, msg) = err_pos("SELECT S(x) ? 3;");
    assert_eq!((line, col), (1, 13));
    assert!(msg.contains('?'), "message: {msg}");
}

#[test]
fn wrong_keyword_position() {
    // `TABLE` sits at column 8 — the error points at it, not at `CREATE`.
    let (line, col, msg) = err_pos("CREATE TABLE x;");
    assert_eq!((line, col), (1, 8));
    assert!(msg.contains("RELATION"), "message: {msg}");
}

#[test]
fn error_on_second_line() {
    let (line, col, msg) = err_pos("CREATE RELATION P(x);\nINSERT INTO P VALUEZ (1);");
    assert_eq!((line, col), (2, 15));
    assert!(
        msg.contains("VALUES") || msg.contains("CONSTRAINT"),
        "message: {msg}"
    );
}

#[test]
fn end_of_input_position_is_after_last_token() {
    // `DROP RELATION` ends at col 14; the missing identifier is reported
    // one past the end of the last token's start (col 15 > 14 > 5).
    let (line, col, msg) = err_pos("DROP RELATION");
    assert_eq!(line, 1);
    assert!(col >= 6, "col {col} should be past `DROP`");
    assert!(msg.contains("end of input"), "message: {msg}");
}

#[test]
fn zero_denominator_points_at_denominator() {
    let (line, col, msg) = err_pos("INSERT INTO P VALUES (1, 3/0);");
    assert_eq!((line, col), (1, 28));
    assert!(msg.contains("denominator"), "message: {msg}");
}

#[test]
fn unterminated_datalog_block() {
    let (line, col, msg) = err_pos("DATALOG { T(x) :- E(x).");
    assert_eq!(line, 1);
    assert!(col >= 23, "col {col}");
    assert!(msg.contains("unterminated"), "message: {msg}");
}

#[test]
fn multiline_columns_reset() {
    // The stray `)` is at line 3, col 3.
    let (line, col, _msg) = err_pos("SHOW\nRELATIONS\n  );");
    assert_eq!((line, col), (3, 3));
}

#[test]
fn keyword_case_is_insensitive_but_canonicalized() {
    let stmt = parse_statement("create relation Mixed(a, b);").unwrap();
    assert_eq!(stmt.to_string(), "CREATE RELATION Mixed(a, b);");
}
