//! Spanned lexer for the server's SQL-ish statement surface.
//!
//! Every token carries a [`Span`]: byte offsets into the source (so the
//! parser can slice embedded CALC_F / Datalog¬ text back out verbatim) plus
//! a 1-based line/column (so errors point at the offending character, not
//! just describe it). Keywords are not distinguished here — the parser
//! matches identifiers case-insensitively in keyword position, which keeps
//! `select`, `Select`, and `SELECT` equivalent without reserving words.
//!
//! The accepted alphabet covers the statement grammar *and* everything that
//! can appear inside an embedded CALC_F formula or Datalog¬ program
//! (`^`, comparison operators, `:-`, `.`, aggregate brackets/braces), so a
//! whole script lexes in one pass; `--` starts a comment to end of line
//! (the Datalog¬ comment convention, harmless in formulas because `--` is
//! also a valid double negation only in term position — statements use it
//! for comments only).

use std::fmt;

/// Byte range plus human coordinates of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

/// Token kinds. Two-character operators (`<=`, `>=`, `!=`, `:-`) lex as two
/// consecutive [`TokenKind::Punct`] tokens — the statement parser never
/// interprets them, and raw-text capture slices the source by byte offset,
/// so splitting loses nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword: `[A-Za-z_][A-Za-z0-9_]*`.
    Ident(String),
    /// Unsigned integer literal digit run (sign is a separate `Punct`).
    Int(String),
    /// Single punctuation character from the accepted alphabet.
    Punct(char),
}

/// One token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

/// Lexing failure at a precise source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// The unexpected character.
    pub ch: char,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, col {}: unexpected character `{}`",
            self.line, self.col, self.ch
        )
    }
}

impl std::error::Error for LexError {}

/// Punctuation accepted by the surface (statement grammar plus embedded
/// CALC_F / Datalog¬ text).
const PUNCT: &str = "()[]{},;+-*/^<>=!.:";

/// Tokenize `src`. Whitespace separates tokens; `--` comments run to end
/// of line. The only error is an unexpected character, reported with its
/// position.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut iter = src.char_indices().peekable();
    while let Some(&(start, c)) = iter.peek() {
        if c == '\n' {
            iter.next();
            line += 1;
            col = 1;
            continue;
        }
        if c.is_whitespace() {
            iter.next();
            col += 1;
            continue;
        }
        // `--` comment to end of line.
        if c == '-' && src[start..].starts_with("--") {
            while let Some(&(_, c2)) = iter.peek() {
                if c2 == '\n' {
                    break;
                }
                iter.next();
            }
            continue;
        }
        let span_line = line;
        let span_col = col;
        if c.is_ascii_alphabetic() || c == '_' {
            let mut end = start;
            let mut text = String::new();
            while let Some(&(i, c2)) = iter.peek() {
                if c2.is_ascii_alphanumeric() || c2 == '_' {
                    text.push(c2);
                    end = i + c2.len_utf8();
                    iter.next();
                    col += 1;
                } else {
                    break;
                }
            }
            toks.push(Token {
                kind: TokenKind::Ident(text),
                span: Span {
                    start,
                    end,
                    line: span_line,
                    col: span_col,
                },
            });
            continue;
        }
        if c.is_ascii_digit() {
            let mut end = start;
            let mut text = String::new();
            while let Some(&(i, c2)) = iter.peek() {
                if c2.is_ascii_digit() {
                    text.push(c2);
                    end = i + 1;
                    iter.next();
                    col += 1;
                } else {
                    break;
                }
            }
            toks.push(Token {
                kind: TokenKind::Int(text),
                span: Span {
                    start,
                    end,
                    line: span_line,
                    col: span_col,
                },
            });
            continue;
        }
        if PUNCT.contains(c) {
            iter.next();
            col += 1;
            toks.push(Token {
                kind: TokenKind::Punct(c),
                span: Span {
                    start,
                    end: start + c.len_utf8(),
                    line: span_line,
                    col: span_col,
                },
            });
            continue;
        }
        return Err(LexError {
            ch: c,
            line: span_line,
            col: span_col,
        });
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("SELECT S(x);\n  DROP").unwrap();
        let drop = toks.last().unwrap();
        assert_eq!(drop.kind, TokenKind::Ident("DROP".into()));
        assert_eq!(drop.span.line, 2);
        assert_eq!(drop.span.col, 3);
    }

    #[test]
    fn byte_offsets_slice_source() {
        let src = "SELECT  4*x^2 - y <= 0;";
        let toks = lex(src).unwrap();
        // Reconstruct the formula text between the SELECT keyword and `;`.
        let start = toks[1].span.start;
        let end = toks[toks.len() - 2].span.end;
        assert_eq!(&src[start..end], "4*x^2 - y <= 0");
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SHOW -- a comment ; with punctuation\nRELATIONS;").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].kind, TokenKind::Ident("RELATIONS".into()));
        assert_eq!(toks[1].span.line, 2);
    }

    #[test]
    fn rejects_unknown_character_with_position() {
        let err = lex("SELECT S(x) @ 3;").unwrap_err();
        assert_eq!(err.ch, '@');
        assert_eq!(err.line, 1);
        assert_eq!(err.col, 13);
    }
}
