//! Sessions, snapshots, and batched admission (DESIGN.md §13).
//!
//! ## Architecture
//!
//! One [`Server`] owns the **master** [`ConstraintDb`] behind a mutex.
//! Each [`Session`] holds its own `ConstraintDb` **snapshot** — a cheap
//! clone, because relation storage is `Arc` copy-on-write (PR 2) and the
//! algebraic memo-cache is an `Arc`-backed handle, so every snapshot shares
//! one cache with the master and with every other session: one user's CAD
//! projections warm every user's cache.
//!
//! **Reads** (`SELECT`, `SHOW RELATIONS`) evaluate against the session's
//! snapshot — never against the master — so they are snapshot-isolated and
//! lock-free. **Writes** (`CREATE`, `INSERT`, `DELETE`, `DATALOG`, `DROP`)
//! serialize through the master mutex via PR 7's update path
//! (`insert_tuples` / `retract_tuples`, with incremental view
//! maintenance), and the writing session then refreshes its own snapshot;
//! other sessions keep their old snapshot until they next write or call
//! [`Session::refresh`].
//!
//! ## Batched admission
//!
//! With [`ServerConfig::batching`] on, read statements are not evaluated
//! on the submitting thread. The session enqueues the pair *(snapshot
//! handle, query text)* and blocks; a dedicated admission thread drains
//! the queue, groups up to [`ServerConfig::max_batch`] pending reads into
//! one batch, and evaluates the batch through
//! [`cdb_qe::par_map_result`] with [`ServerConfig::workers`] threads.
//! All read statements are mutually compatible: each result is a pure
//! function of its own (snapshot, query) pair, so grouping changes
//! *when* a query runs, never *what* it returns — the determinism
//! argument for why batched and unbatched admission are byte-identical
//! (E22 asserts this across batch compositions and interleavings).
//! Per-query engine parallelism is left at 1; the batch itself is the
//! unit of parallelism, so nested fan-outs never oversubscribe the pool.

use crate::parser::{parse_statement, Rows, Statement};
use crate::{Response, ServerError};
use cdb_constraints::{ConstraintRelation, GeneralizedTuple};
use cdb_qe::par_map_result;
use constraintdb::{parse_program, ConstraintDb};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Maximum Datalog¬ fixpoint iterations a `DATALOG` statement may run.
const MAX_DATALOG_ITERATIONS: usize = 256;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads for evaluating one admitted batch (clamped to the
    /// hardware by `par_map_result`).
    pub workers: usize,
    /// Maximum read queries admitted into one batch.
    pub max_batch: usize,
    /// Batched admission on/off. Off = reads evaluate inline on the
    /// submitting thread (same results, no cross-session batching).
    pub batching: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            max_batch: 32,
            batching: true,
        }
    }
}

/// Integer snapshot of the server's counters (all exact — no rates; the
/// bench layer derives ratios).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Statements executed (reads + writes).
    pub statements: u64,
    /// Read statements (batched or inline).
    pub reads: u64,
    /// Write statements applied to the master.
    pub writes: u64,
    /// Batches admitted by the admission loop.
    pub batches: u64,
    /// Reads that went through batched admission.
    pub batched_reads: u64,
    /// Batch size distribution: `(size, count)`, ascending by size.
    pub batch_sizes: Vec<(usize, u64)>,
    /// Algebraic memo-cache hits (shared across all sessions).
    pub cache_hits: u64,
    /// Algebraic memo-cache misses.
    pub cache_misses: u64,
}

/// A read request parked in the admission queue.
struct Pending {
    /// The submitting session's snapshot at enqueue time.
    db: ConstraintDb,
    /// The read to evaluate against it.
    stmt: ReadStmt,
    /// Where the result is delivered.
    slot: Arc<Slot>,
}

/// The read-only statements eligible for admission.
enum ReadStmt {
    Select(String),
    ShowRelations,
}

/// One-shot result mailbox.
#[derive(Default)]
struct Slot {
    result: Mutex<Option<Result<Response, ServerError>>>,
    ready: Condvar,
}

/// Admission queue state under one lock (the shutdown flag shares it so a
/// submit can never race past a shutdown — no lost wakeups).
#[derive(Default)]
struct QueueState {
    pending: Vec<Pending>,
    shutdown: bool,
}

/// Shared server state.
struct Inner {
    cfg: ServerConfig,
    master: Mutex<ConstraintDb>,
    queue: Mutex<QueueState>,
    arrived: Condvar,
    statements: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    batches: AtomicU64,
    batched_reads: AtomicU64,
    batch_hist: Mutex<BTreeMap<usize, u64>>,
}

impl Inner {
    fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::SeqCst);
        self.batched_reads.fetch_add(size as u64, Ordering::SeqCst);
        let mut hist = self
            .batch_hist
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *hist.entry(size).or_insert(0) += 1;
    }
}

/// Evaluate one read against a snapshot. Pure in (snapshot, statement):
/// this is the whole batching determinism argument — admission order and
/// batch composition cannot reach the result.
fn eval_read(db: &ConstraintDb, stmt: &ReadStmt) -> Result<Response, ServerError> {
    match stmt {
        ReadStmt::Select(query) => db
            .query(query)
            .map(|r| Response::Rows {
                text: r.display(),
                exact: r.is_exact(),
            })
            .map_err(|e| ServerError::Db(e.to_string())),
        ReadStmt::ShowRelations => Ok(Response::Relations {
            schema: db.schema(),
        }),
    }
}

fn deliver(p: &Pending, r: Result<Response, ServerError>) {
    let mut slot = p.slot.result.lock().unwrap_or_else(PoisonError::into_inner);
    *slot = Some(r);
    drop(slot);
    p.slot.ready.notify_all();
}

/// Block until the queue has work (or shutdown), then drain up to
/// `max_batch` pending reads. `None` means shutdown with an empty queue —
/// every accepted request is drained before the loop exits. The queue
/// guard never outlives this function, so batch evaluation runs lock-free.
fn next_batch(inner: &Inner) -> Option<Vec<Pending>> {
    let mut q = inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
    loop {
        if !q.pending.is_empty() {
            break;
        }
        if q.shutdown {
            return None;
        }
        q = inner
            .arrived
            .wait(q)
            .unwrap_or_else(PoisonError::into_inner);
    }
    let take = q.pending.len().min(inner.cfg.max_batch.max(1));
    Some(q.pending.drain(..take).collect())
}

/// The admission loop: drain up to `max_batch` pending reads, evaluate
/// them as one `par_map_result` batch, deliver, repeat until shutdown.
fn admission_loop(inner: &Inner) {
    loop {
        let Some(batch) = next_batch(inner) else {
            return;
        };
        inner.record_batch(batch.len());
        // Evaluate the whole batch in parallel. The per-request mapping
        // never returns `Err` at the fan-out layer (each request's own
        // failure is data, delivered to its submitter), so one failing
        // query cannot abort its batchmates.
        let evaluated =
            par_map_result(&batch, inner.cfg.workers, |p| Ok(eval_read(&p.db, &p.stmt)));
        match evaluated {
            Ok(results) => {
                for (p, r) in batch.iter().zip(results) {
                    deliver(p, r);
                }
            }
            Err(e) => {
                // Unreachable with an infallible mapping; answer everyone
                // rather than leave them blocked.
                for p in &batch {
                    deliver(p, Err(ServerError::Db(e.to_string())));
                }
            }
        }
    }
}

/// A long-lived constraint-database server: master store, admission
/// queue, and the worker that drains it.
pub struct Server {
    inner: Arc<Inner>,
    admission: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Fresh empty server.
    #[must_use]
    pub fn new(cfg: ServerConfig) -> Server {
        Server::with_db(ConstraintDb::new(), cfg)
    }

    /// Serve an existing database (its memo-cache becomes the shared
    /// server cache). Per-query engine parallelism is forced to 1 — the
    /// admitted batch is the unit of parallelism.
    #[must_use]
    pub fn with_db(mut db: ConstraintDb, cfg: ServerConfig) -> Server {
        db.engine_mut().workers = 1;
        let inner = Arc::new(Inner {
            cfg: cfg.clone(),
            master: Mutex::new(db),
            queue: Mutex::new(QueueState::default()),
            arrived: Condvar::new(),
            statements: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_reads: AtomicU64::new(0),
            batch_hist: Mutex::new(BTreeMap::new()),
        });
        let admission = if cfg.batching {
            let worker = Arc::clone(&inner);
            Some(std::thread::spawn(move || admission_loop(&worker)))
        } else {
            None
        };
        Server {
            inner,
            admission: Mutex::new(admission),
        }
    }

    /// Open a session. Its snapshot is the master state as of this call.
    #[must_use]
    pub fn session(&self) -> Session {
        let snapshot = {
            let master = self
                .inner
                .master
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            master.clone()
        };
        Session {
            inner: Arc::clone(&self.inner),
            snapshot,
        }
    }

    /// Counter snapshot (batch histogram sorted ascending by size).
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let (cache_hits, cache_misses) = {
            let master = self
                .inner
                .master
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            (master.cache().hits(), master.cache().misses())
        };
        let batch_sizes: Vec<(usize, u64)> = {
            let hist = self
                .inner
                .batch_hist
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            hist.iter().map(|(&s, &c)| (s, c)).collect()
        };
        ServerStats {
            statements: self.inner.statements.load(Ordering::SeqCst),
            reads: self.inner.reads.load(Ordering::SeqCst),
            writes: self.inner.writes.load(Ordering::SeqCst),
            batches: self.inner.batches.load(Ordering::SeqCst),
            batched_reads: self.inner.batched_reads.load(Ordering::SeqCst),
            batch_sizes,
            cache_hits,
            cache_misses,
        }
    }

    /// Flag shutdown, wake the admission loop, and join it. Requests
    /// already queued are answered; later submissions get
    /// [`ServerError::Shutdown`]. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            q.shutdown = true;
        }
        self.inner.arrived.notify_all();
        let handle = {
            let mut slot = self
                .admission
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            slot.take()
        };
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One client's connection: a private snapshot plus a handle to the
/// shared server state.
pub struct Session {
    inner: Arc<Inner>,
    snapshot: ConstraintDb,
}

impl Session {
    /// Parse and execute one statement.
    pub fn execute(&mut self, src: &str) -> Result<Response, ServerError> {
        let stmt = parse_statement(src).map_err(ServerError::Parse)?;
        self.execute_statement(&stmt)
    }

    /// Execute an already-parsed statement.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<Response, ServerError> {
        self.inner.statements.fetch_add(1, Ordering::SeqCst);
        match stmt {
            Statement::Select { query } => self.read(ReadStmt::Select(query.clone())),
            Statement::ShowRelations => self.read(ReadStmt::ShowRelations),
            _ => self.write(stmt),
        }
    }

    /// Re-snapshot from the master, picking up other sessions' committed
    /// writes. Never implicit on reads: snapshot isolation means a
    /// session's view moves only when it writes or asks.
    pub fn refresh(&mut self) {
        let fresh = {
            let master = self
                .inner
                .master
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            master.clone()
        };
        self.snapshot = fresh;
    }

    /// The session's current view (for tests and tooling).
    #[must_use]
    pub fn snapshot(&self) -> &ConstraintDb {
        &self.snapshot
    }

    fn read(&self, stmt: ReadStmt) -> Result<Response, ServerError> {
        self.inner.reads.fetch_add(1, Ordering::SeqCst);
        if !self.inner.cfg.batching {
            return eval_read(&self.snapshot, &stmt);
        }
        let slot = Arc::new(Slot::default());
        {
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if q.shutdown {
                return Err(ServerError::Shutdown);
            }
            q.pending.push(Pending {
                db: self.snapshot.clone(),
                stmt,
                slot: Arc::clone(&slot),
            });
        }
        self.inner.arrived.notify_all();
        let mut result = slot.result.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match result.take() {
                Some(r) => return r,
                None => {
                    result = slot
                        .ready
                        .wait(result)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    fn write(&mut self, stmt: &Statement) -> Result<Response, ServerError> {
        self.inner.writes.fetch_add(1, Ordering::SeqCst);
        let outcome = {
            let mut master = self
                .inner
                .master
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let r = apply_write(&mut master, stmt);
            // Refresh the session's own snapshot on success so it reads
            // its own writes; on failure the master is untouched (every
            // update path rejects before mutating).
            match r {
                Ok(resp) => {
                    self.snapshot = master.clone();
                    Ok(resp)
                }
                Err(e) => Err(e),
            }
        };
        outcome
    }
}

/// Apply one write statement to the master database.
fn apply_write(db: &mut ConstraintDb, stmt: &Statement) -> Result<Response, ServerError> {
    let db_err = |e: constraintdb::DbError| ServerError::Db(e.to_string());
    match stmt {
        Statement::CreateRelation {
            name,
            vars,
            definition,
        } => {
            let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
            match definition {
                Some(src) => db.define(name, &var_refs, src).map_err(db_err)?,
                None => {
                    db.insert(name, ConstraintRelation::new(vars.len(), Vec::new()))
                        .map_err(db_err)?;
                    db.rename_vars(name, &var_refs).map_err(db_err)?;
                }
            }
            Ok(Response::Created {
                name: name.clone(),
                arity: vars.len(),
            })
        }
        Statement::Insert { name, rows } => {
            let tuples = compile_rows(db, name, rows)?;
            let report = db.insert_tuples(name, &tuples).map_err(db_err)?;
            Ok(Response::Updated {
                relation: report.relation,
                inserted: report.inserted,
                retracted: report.retracted,
                refreshed: report.refreshed_views.len() + report.refreshed_heads.len(),
            })
        }
        Statement::Delete { name, rows } => {
            let tuples = compile_rows(db, name, rows)?;
            let report = db.retract_tuples(name, &tuples).map_err(db_err)?;
            Ok(Response::Updated {
                relation: report.relation,
                inserted: report.inserted,
                retracted: report.retracted,
                refreshed: report.refreshed_views.len() + report.refreshed_heads.len(),
            })
        }
        Statement::Datalog { program } => {
            let prog = parse_program(program).map_err(db_err)?;
            let stats = db
                .run_datalog(&prog, MAX_DATALOG_ITERATIONS)
                .map_err(db_err)?;
            Ok(Response::Fixpoint {
                iterations: stats.iterations,
                qe_calls: stats.qe_calls,
            })
        }
        Statement::DropRelation { name } => match db.remove(name) {
            Some(_) => Ok(Response::Dropped { name: name.clone() }),
            None => Err(ServerError::Db(format!(
                "schema error: no relation named {name}"
            ))),
        },
        Statement::Select { .. } | Statement::ShowRelations => Err(ServerError::Db(
            "internal: read statement routed to the write path".to_owned(),
        )),
    }
}

/// Turn `INSERT`/`DELETE` rows into generalized tuples for the update
/// path: point rows become point tuples; a `CONSTRAINT` body is compiled
/// by the CALC_F engine over the relation's declared variables.
fn compile_rows(
    db: &mut ConstraintDb,
    name: &str,
    rows: &Rows,
) -> Result<Vec<GeneralizedTuple>, ServerError> {
    let arity = db
        .relation(name)
        .map(ConstraintRelation::nvars)
        .ok_or_else(|| ServerError::Db(format!("schema error: no relation named {name}")))?;
    match rows {
        Rows::Points(points) => {
            for p in points {
                if p.len() != arity {
                    return Err(ServerError::Db(format!(
                        "arity mismatch on {name}: stored relation has arity {arity}, got {}",
                        p.len()
                    )));
                }
            }
            Ok(ConstraintRelation::from_points(arity, points)
                .tuples()
                .to_vec())
        }
        Rows::Constraint(src) => {
            let names: Vec<String> = db
                .var_names(name)
                .map(<[String]>::to_vec)
                .unwrap_or_default();
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            // The engine compiles against the raw store (relation symbols
            // inside the constraint body resolve to stored relations);
            // clone the engine handle to end the facade borrow first.
            let engine = db.engine_mut().clone();
            let rel = engine
                .compile_relation(db.raw(), &name_refs, src)
                .map_err(|e| ServerError::Db(e.to_string()))?;
            Ok(rel.tuples().to_vec())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_server(cfg: ServerConfig) -> Server {
        let server = Server::new(cfg);
        let mut s = server.session();
        s.execute("CREATE RELATION S(x, y) AS 4*x^2 - y - 20*x + 25 <= 0;")
            .unwrap();
        s.execute("CREATE RELATION P(x);").unwrap();
        s.execute("INSERT INTO P VALUES (1), (2), (7/2);").unwrap();
        server
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let server = seeded_server(ServerConfig::default());
        let mut s = server.session();
        let resp = s.execute("SELECT P(x) and x >= 2;").unwrap();
        let Response::Rows { text, .. } = &resp else {
            panic!("expected rows, got {resp:?}");
        };
        // Closed-form constraint rows: x = 2 and x = 7/2 (as 2*x - 7 = 0).
        assert!(text.contains("x - 2 = 0"), "missing point 2 in {text}");
        assert!(text.contains("2*x - 7 = 0"), "missing point 7/2 in {text}");
    }

    #[test]
    fn batched_and_inline_reads_agree() {
        let batched = seeded_server(ServerConfig {
            batching: true,
            ..ServerConfig::default()
        });
        let inline = seeded_server(ServerConfig {
            batching: false,
            ..ServerConfig::default()
        });
        for q in [
            "SELECT S(x, y) and y = 0;",
            "SELECT P(x) and x >= 2;",
            "SHOW RELATIONS;",
        ] {
            let a = batched.session().execute(q).unwrap();
            let b = inline.session().execute(q).unwrap();
            assert_eq!(a.to_string(), b.to_string(), "divergence on {q}");
        }
        assert!(batched.stats().batches >= 3);
        assert_eq!(inline.stats().batches, 0);
    }

    #[test]
    fn snapshot_isolation_until_own_write_or_refresh() {
        let server = seeded_server(ServerConfig::default());
        let mut reader = server.session();
        let before = reader.execute("SELECT P(x);").unwrap().to_string();
        let mut writer = server.session();
        writer.execute("INSERT INTO P VALUES (100);").unwrap();
        // The reader's snapshot predates the write.
        assert_eq!(reader.execute("SELECT P(x);").unwrap().to_string(), before);
        // The writer reads its own write.
        let writer_view = writer.execute("SELECT P(x);").unwrap().to_string();
        assert!(writer_view.contains("100"));
        // An explicit refresh catches the reader up.
        reader.refresh();
        assert_eq!(
            reader.execute("SELECT P(x);").unwrap().to_string(),
            writer_view
        );
    }

    #[test]
    fn concurrent_sessions_identical_transcripts() {
        // N threads × M queries over one server: per-session transcripts
        // must equal the single-threaded run regardless of interleaving.
        let queries = [
            "SELECT P(x) and x >= 2;",
            "SELECT S(x, y) and y = 0;",
            "SELECT P(x) and x <= 1;",
        ];
        let expected: Vec<String> = {
            let server = seeded_server(ServerConfig::default());
            let mut s = server.session();
            queries
                .iter()
                .map(|q| s.execute(q).unwrap().to_string())
                .collect()
        };
        let server = seeded_server(ServerConfig {
            workers: 4,
            max_batch: 8,
            batching: true,
        });
        let transcripts: Vec<Vec<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let mut s = server.session();
                    let queries = &queries;
                    scope.spawn(move || {
                        queries
                            .iter()
                            .map(|q| s.execute(q).unwrap().to_string())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for t in &transcripts {
            assert_eq!(*t, expected);
        }
        let stats = server.stats();
        assert_eq!(stats.reads, 12);
        assert_eq!(stats.batched_reads, 12);
    }

    #[test]
    fn constraint_rows_and_datalog_views() {
        let server = Server::new(ServerConfig::default());
        let mut s = server.session();
        s.execute("CREATE RELATION E(x, y);").unwrap();
        s.execute("INSERT INTO E VALUES (1, 2), (2, 3);").unwrap();
        s.execute("DATALOG { T(x, y) :- E(x, y). T(x, y) :- T(x, z), E(z, y). };")
            .unwrap();
        let closed = s.execute("SELECT T(x, y);").unwrap().to_string();
        assert!(closed.contains('3'), "transitive closure missing: {closed}");
        // An insert through the update path refreshes the materialized head.
        let resp = s.execute("INSERT INTO E VALUES (3, 4);").unwrap();
        let Response::Updated { refreshed, .. } = resp else {
            panic!("expected update report");
        };
        assert!(refreshed >= 1, "materialized view not refreshed");
        let after = s.execute("SELECT T(x, y);").unwrap().to_string();
        assert!(after.contains('4'), "closure not maintained: {after}");
        // Constraint rows: a generalized tuple with a strict region.
        s.execute("CREATE RELATION Band(x);").unwrap();
        s.execute("INSERT INTO Band CONSTRAINT x >= 1 and x <= 2;")
            .unwrap();
        let band = s.execute("SELECT Band(x);").unwrap().to_string();
        assert!(band.contains('1') && band.contains('2'), "band: {band}");
    }

    #[test]
    fn errors_are_typed_and_do_not_poison() {
        let server = seeded_server(ServerConfig::default());
        let mut s = server.session();
        assert!(matches!(s.execute("SELECT"), Err(ServerError::Parse(_))));
        assert!(matches!(
            s.execute("SELECT Nope(x);"),
            Err(ServerError::Db(_))
        ));
        assert!(matches!(
            s.execute("INSERT INTO P VALUES (1, 2);"),
            Err(ServerError::Db(_))
        ));
        // A failing query does not abort its batch or wedge the server.
        assert!(s.execute("SELECT P(x);").is_ok());
    }

    #[test]
    fn shutdown_rejects_late_reads() {
        let server = seeded_server(ServerConfig::default());
        let mut s = server.session();
        server.shutdown();
        assert!(matches!(
            s.execute("SELECT P(x);"),
            Err(ServerError::Shutdown)
        ));
        // Writes still apply (the master mutex outlives admission).
        assert!(s.execute("INSERT INTO P VALUES (9);").is_ok());
    }
}
