//! `serve`: a line-oriented REPL over one server session.
//!
//! Reads statements from stdin (`;`-terminated, possibly spanning lines),
//! prints one response or error line per statement. A quick way to poke
//! the surface by hand:
//!
//! ```text
//! $ echo 'CREATE RELATION P(x); INSERT INTO P VALUES (1), (2); SELECT P(x);' | serve
//! created P/1
//! updated P: +2 -0 (refreshed 0)
//! rows (exact=true): ...
//! ```

use cdb_server::{parse_script, Server, ServerConfig};
use std::io::{BufRead, Write};

fn main() {
    let server = Server::new(ServerConfig::default());
    let mut session = server.session();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    let mut buf = String::new();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        buf.push_str(&line);
        buf.push('\n');
        // Execute once the buffer holds at least one full statement.
        if !line.contains(';') {
            continue;
        }
        match parse_script(&buf) {
            Ok(stmts) => {
                for stmt in &stmts {
                    match session.execute_statement(stmt) {
                        Ok(resp) => {
                            let _ = writeln!(out, "{resp}");
                        }
                        Err(e) => {
                            let _ = writeln!(out, "error: {e}");
                        }
                    }
                }
                buf.clear();
            }
            Err(e) => {
                // Incomplete trailing statement: keep buffering. A real
                // syntax error surfaces once the input ends.
                if buf.trim_end().ends_with(';') {
                    let _ = writeln!(out, "error: parse error: {e}");
                    buf.clear();
                }
            }
        }
    }
    if !buf.trim().is_empty() {
        match parse_script(&buf) {
            Ok(stmts) => {
                for stmt in &stmts {
                    match session.execute_statement(stmt) {
                        Ok(resp) => {
                            let _ = writeln!(out, "{resp}");
                        }
                        Err(e) => {
                            let _ = writeln!(out, "error: {e}");
                        }
                    }
                }
            }
            Err(e) => {
                let _ = writeln!(out, "error: parse error: {e}");
            }
        }
    }
    server.shutdown();
}
