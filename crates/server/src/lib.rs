#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! `cdb-server`: the serving layer over the `constraintdb` facade —
//! a textual statement surface, concurrent snapshot sessions, and
//! batched query admission (DESIGN.md §13).
//!
//! The paper's setting ("heavy traffic from millions of users", §1) makes
//! query evaluation a *repeated* elimination task; following
//! Giusti–Heintz–Kuijpers, the win is amortization across queries. Here
//! that takes two forms:
//!
//! * **one shared algebraic memo-cache** — every session snapshot clones
//!   the master [`constraintdb::ConstraintDb`], whose cache handle is
//!   `Arc`-backed, so resultants/discriminants/Sturm chains computed for
//!   one user's query answer every user's later queries;
//! * **batched admission** — concurrent read queries are drained into one
//!   batch and fanned out through `cdb_qe::par_map_result`, putting the
//!   parallel QE pipeline to work *across* queries instead of only within
//!   one.
//!
//! Three layers, one module each: [`lexer`] (spanned tokens), [`parser`]
//! (statements + canonical pretty-printer), [`session`] (server, sessions,
//! admission loop).

pub mod lexer;
pub mod parser;
pub mod session;

pub use parser::{parse_script, parse_statement, ParseError, Rows, Statement};
pub use session::{Server, ServerConfig, ServerStats, Session};

use std::fmt;

/// What a statement returned. [`fmt::Display`] renders every variant as
/// one deterministic line — the unit of E22's byte-identity transcripts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `CREATE RELATION` succeeded.
    Created {
        /// The new relation.
        name: String,
        /// Its arity.
        arity: usize,
    },
    /// `INSERT`/`DELETE` applied through the update path.
    Updated {
        /// The relation written.
        relation: String,
        /// Tuples actually added.
        inserted: usize,
        /// Tuples actually removed.
        retracted: usize,
        /// Derived relations (views + materialized heads) refreshed by
        /// propagation.
        refreshed: usize,
    },
    /// `SELECT` result: the closed-form answer relation.
    Rows {
        /// Canonical display of the answer relation.
        text: String,
        /// Whether the answer is exact (no analytic-function
        /// approximation entered the evaluation).
        exact: bool,
    },
    /// `SHOW RELATIONS` result.
    Relations {
        /// `(name, arity)` pairs, sorted by name.
        schema: Vec<(String, usize)>,
    },
    /// `DATALOG` program ran to its inflationary fixpoint.
    Fixpoint {
        /// Iterations executed.
        iterations: usize,
        /// QE calls issued for rule bodies.
        qe_calls: usize,
    },
    /// `DROP RELATION` succeeded.
    Dropped {
        /// The removed relation.
        name: String,
    },
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Created { name, arity } => write!(f, "created {name}/{arity}"),
            Response::Updated {
                relation,
                inserted,
                retracted,
                refreshed,
            } => write!(
                f,
                "updated {relation}: +{inserted} -{retracted} (refreshed {refreshed})"
            ),
            Response::Rows { text, exact } => write!(f, "rows (exact={exact}): {text}"),
            Response::Relations { schema } => {
                write!(f, "relations:")?;
                for (name, arity) in schema {
                    write!(f, " {name}/{arity}")?;
                }
                Ok(())
            }
            Response::Fixpoint {
                iterations,
                qe_calls,
            } => write!(f, "fixpoint: {iterations} iterations, {qe_calls} qe calls"),
            Response::Dropped { name } => write!(f, "dropped {name}"),
        }
    }
}

/// Server-level errors: everything a statement can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The statement did not parse (position included).
    Parse(ParseError),
    /// The database rejected the operation (rendered
    /// [`constraintdb::DbError`]).
    Db(String),
    /// The server is shutting down; the request was not admitted.
    Shutdown,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Parse(e) => write!(f, "parse error: {e}"),
            ServerError::Db(m) => write!(f, "{m}"),
            ServerError::Shutdown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServerError {}
