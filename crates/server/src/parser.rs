//! Recursive-descent parser for the statement surface, plus the canonical
//! pretty-printer ([`fmt::Display`] on [`Statement`]).
//!
//! Grammar (keywords case-insensitive, statements `;`-terminated):
//!
//! ```text
//! script    := statement*
//! statement := "CREATE" "RELATION" IDENT "(" idents ")" ("AS" raw)? ";"
//!            | "INSERT" "INTO" IDENT rows ";"
//!            | "DELETE" "FROM" IDENT rows ";"
//!            | "SELECT" raw ";"                      -- CALC_F query text
//!            | "DATALOG" "{" raw "}" ";"             -- Datalog¬ program
//!            | "SHOW" "RELATIONS" ";"
//!            | "DROP" "RELATION" IDENT ";"
//! rows      := "VALUES" point ("," point)*
//!            | "CONSTRAINT" raw                      -- CALC_F conjunction
//! point     := "(" number ("," number)* ")"
//! number    := "-"? INT ("/" INT)?
//! ```
//!
//! `raw` spans are captured **verbatim** from the source by byte offset
//! (trimmed), never re-serialized from tokens — embedded CALC_F and
//! Datalog¬ text round-trips exactly, and their own parsers remain the
//! single source of truth for that grammar. The pretty-printer emits the
//! canonical spacing for everything else, so `parse ∘ print ∘ parse`
//! is the identity on parsed statements (property-tested).

use crate::lexer::{lex, Token, TokenKind};
use cdb_num::Rat;
use std::fmt;

/// Parse failure at a precise source position (1-based line/column; the
/// position of the offending token, or of end-of-input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Rows of an `INSERT`/`DELETE`: explicit points, or one generalized tuple
/// given as a CALC_F constraint conjunction over the relation's variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rows {
    /// `VALUES (a, b), (c, d)` — finite point rows, exact rationals.
    Points(Vec<Vec<Rat>>),
    /// `CONSTRAINT <calc_f text>` — a constraint row (generalized tuple).
    Constraint(String),
}

/// One parsed statement of the server surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE RELATION name(vars)` with an optional `AS <definition>`
    /// CALC_F body; without one the relation starts empty.
    CreateRelation {
        /// Relation name.
        name: String,
        /// Declared variable names, in column order.
        vars: Vec<String>,
        /// CALC_F definition text, if any.
        definition: Option<String>,
    },
    /// `INSERT INTO name <rows>`.
    Insert {
        /// Target base relation.
        name: String,
        /// What to insert.
        rows: Rows,
    },
    /// `DELETE FROM name <rows>` (syntactic retraction).
    Delete {
        /// Target base relation.
        name: String,
        /// What to retract.
        rows: Rows,
    },
    /// `SELECT <calc_f text>` — a read-only query.
    Select {
        /// CALC_F query text, verbatim.
        query: String,
    },
    /// `DATALOG { <program> }` — run a Datalog¬ program to fixpoint and
    /// materialize its heads.
    Datalog {
        /// Program text, verbatim.
        program: String,
    },
    /// `SHOW RELATIONS` — list the catalog.
    ShowRelations,
    /// `DROP RELATION name`.
    DropRelation {
        /// Relation to remove.
        name: String,
    },
}

impl Statement {
    /// Whether the statement only reads — eligible for batched admission
    /// (snapshot-isolated, side-effect-free).
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        matches!(self, Statement::Select { .. } | Statement::ShowRelations)
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateRelation {
                name,
                vars,
                definition,
            } => {
                write!(f, "CREATE RELATION {name}({})", vars.join(", "))?;
                if let Some(d) = definition {
                    write!(f, " AS {d}")?;
                }
                write!(f, ";")
            }
            Statement::Insert { name, rows } => write!(f, "INSERT INTO {name} {rows};"),
            Statement::Delete { name, rows } => write!(f, "DELETE FROM {name} {rows};"),
            Statement::Select { query } => write!(f, "SELECT {query};"),
            Statement::Datalog { program } => write!(f, "DATALOG {{ {program} }};"),
            Statement::ShowRelations => write!(f, "SHOW RELATIONS;"),
            Statement::DropRelation { name } => write!(f, "DROP RELATION {name};"),
        }
    }
}

impl fmt::Display for Rows {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rows::Points(points) => {
                write!(f, "VALUES ")?;
                for (i, p) in points.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, r) in p.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{r}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Rows::Constraint(text) => write!(f, "CONSTRAINT {text}"),
        }
    }
}

/// Parse one statement (must consume the whole input bar trailing
/// whitespace/comments).
pub fn parse_statement(src: &str) -> Result<Statement, ParseError> {
    let mut stmts = parse_script(src)?;
    match (stmts.len(), stmts.pop()) {
        (1, Some(s)) => Ok(s),
        (0, _) => Err(ParseError {
            message: "empty input: expected a statement".to_owned(),
            line: 1,
            col: 1,
        }),
        _ => Err(ParseError {
            message: "expected a single statement, found several".to_owned(),
            line: 1,
            col: 1,
        }),
    }
}

/// Parse a `;`-separated script into statements.
pub fn parse_script(src: &str) -> Result<Vec<Statement>, ParseError> {
    let toks = lex(src).map_err(|e| ParseError {
        message: format!("unexpected character `{}`", e.ch),
        line: e.line,
        col: e.col,
    })?;
    let mut p = Parser {
        src,
        toks: &toks,
        pos: 0,
    };
    let mut out = Vec::new();
    while p.pos < p.toks.len() {
        out.push(p.statement()?);
    }
    Ok(out)
}

struct Parser<'a> {
    src: &'a str,
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    /// Error at the current token (or at end of input, positioned after
    /// the last token).
    fn err_here(&self, message: String) -> ParseError {
        match self.peek() {
            Some(t) => ParseError {
                message,
                line: t.span.line,
                col: t.span.col,
            },
            None => {
                let (line, col) = self
                    .toks
                    .last()
                    .map_or((1, 1), |t| (t.span.line, t.span.col + 1));
                ParseError { message, line, col }
            }
        }
    }

    /// Error at the token with index `pos` (which must exist).
    fn err_at(&self, pos: usize, message: String) -> ParseError {
        match self.toks.get(pos) {
            Some(t) => ParseError {
                message,
                line: t.span.line,
                col: t.span.col,
            },
            None => self.err_here(message),
        }
    }

    /// Consume an identifier in keyword position, matched
    /// case-insensitively.
    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            Some(k) => Err(self.err_here(format!("expected `{kw}`, got {}", describe(k)))),
            None => Err(self.err_here(format!("expected `{kw}`, got end of input"))),
        }
    }

    /// Whether the current token is the given keyword (not consumed).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek().map(|t| &t.kind),
                 Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(k) => Err(self.err_here(format!("expected identifier, got {}", describe(k)))),
            None => Err(self.err_here("expected identifier, got end of input".to_owned())),
        }
    }

    fn punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Punct(p)) if *p == c => {
                self.pos += 1;
                Ok(())
            }
            Some(k) => Err(self.err_here(format!("expected `{c}`, got {}", describe(k)))),
            None => Err(self.err_here(format!("expected `{c}`, got end of input"))),
        }
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Punct(p)) if *p == c)
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        let Some(TokenKind::Ident(head)) = self.peek().map(|t| &t.kind) else {
            return Err(self.err_here("expected a statement keyword".to_owned()));
        };
        let head = head.to_ascii_uppercase();
        match head.as_str() {
            "CREATE" => self.create_relation(),
            "INSERT" => self.insert(),
            "DELETE" => self.delete(),
            "SELECT" => self.select(),
            "DATALOG" => self.datalog(),
            "SHOW" => {
                self.keyword("SHOW")?;
                self.keyword("RELATIONS")?;
                self.punct(';')?;
                Ok(Statement::ShowRelations)
            }
            "DROP" => {
                self.keyword("DROP")?;
                self.keyword("RELATION")?;
                let name = self.ident()?;
                self.punct(';')?;
                Ok(Statement::DropRelation { name })
            }
            _ => Err(self.err_here(format!(
                "unknown statement `{head}` (expected CREATE, INSERT, DELETE, SELECT, DATALOG, SHOW, or DROP)"
            ))),
        }
    }

    fn create_relation(&mut self) -> Result<Statement, ParseError> {
        self.keyword("CREATE")?;
        self.keyword("RELATION")?;
        let name = self.ident()?;
        self.punct('(')?;
        let mut vars = vec![self.ident()?];
        while self.at_punct(',') {
            self.pos += 1;
            vars.push(self.ident()?);
        }
        self.punct(')')?;
        let definition = if self.at_keyword("AS") {
            self.pos += 1;
            Some(self.raw_until_semi("CALC_F definition")?)
        } else {
            None
        };
        self.punct(';')?;
        Ok(Statement::CreateRelation {
            name,
            vars,
            definition,
        })
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.keyword("INSERT")?;
        self.keyword("INTO")?;
        let name = self.ident()?;
        let rows = self.rows()?;
        self.punct(';')?;
        Ok(Statement::Insert { name, rows })
    }

    fn delete(&mut self) -> Result<Statement, ParseError> {
        self.keyword("DELETE")?;
        self.keyword("FROM")?;
        let name = self.ident()?;
        let rows = self.rows()?;
        self.punct(';')?;
        Ok(Statement::Delete { name, rows })
    }

    fn select(&mut self) -> Result<Statement, ParseError> {
        self.keyword("SELECT")?;
        let query = self.raw_until_semi("CALC_F query")?;
        self.punct(';')?;
        Ok(Statement::Select { query })
    }

    fn rows(&mut self) -> Result<Rows, ParseError> {
        if self.at_keyword("CONSTRAINT") {
            self.pos += 1;
            return Ok(Rows::Constraint(self.raw_until_semi("constraint body")?));
        }
        self.keyword("VALUES")?;
        let mut points = vec![self.point()?];
        while self.at_punct(',') {
            self.pos += 1;
            points.push(self.point()?);
        }
        Ok(Rows::Points(points))
    }

    fn point(&mut self) -> Result<Vec<Rat>, ParseError> {
        self.punct('(')?;
        let mut coords = vec![self.number()?];
        while self.at_punct(',') {
            self.pos += 1;
            coords.push(self.number()?);
        }
        self.punct(')')?;
        Ok(coords)
    }

    fn number(&mut self) -> Result<Rat, ParseError> {
        let neg = if self.at_punct('-') {
            self.pos += 1;
            true
        } else {
            false
        };
        let num = self.int_literal()?;
        let den = if self.at_punct('/') {
            self.pos += 1;
            let den_tok = self.pos;
            let d = self.int_literal()?;
            if d == 0 {
                return Err(self.err_at(den_tok, "zero denominator in rational literal".to_owned()));
            }
            d
        } else {
            1
        };
        let num = if neg { -num } else { num };
        Ok(Rat::from_ints(num, den))
    }

    fn int_literal(&mut self) -> Result<i64, ParseError> {
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Int(s)) => match s.parse::<i64>() {
                Ok(v) => {
                    self.pos += 1;
                    Ok(v)
                }
                Err(_) => Err(self.err_here(format!("integer literal `{s}` out of range"))),
            },
            Some(k) => Err(self.err_here(format!("expected a number, got {}", describe(k)))),
            None => Err(self.err_here("expected a number, got end of input".to_owned())),
        }
    }

    /// Capture raw source text from the current token up to (not
    /// including) the statement-terminating `;`, which is left for the
    /// caller to consume. At least one token is required.
    fn raw_until_semi(&mut self, what: &str) -> Result<String, ParseError> {
        let start_tok = self.pos;
        let mut end_tok = self.pos;
        while self.pos < self.toks.len() && !self.at_punct(';') {
            end_tok = self.pos;
            self.pos += 1;
        }
        if self.pos == start_tok {
            return Err(self.err_here(format!("expected {what} before `;`")));
        }
        let start = self.toks[start_tok].span.start;
        let end = self.toks[end_tok].span.end;
        Ok(self.src[start..end].trim().to_owned())
    }

    fn datalog(&mut self) -> Result<Statement, ParseError> {
        self.keyword("DATALOG")?;
        self.punct('{')?;
        // Capture to the matching `}` (depth-counted: aggregate constraint
        // bodies may themselves contain braces).
        let start_tok = self.pos;
        let mut depth = 1usize;
        let mut end_tok = self.pos;
        loop {
            match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Punct('{')) => depth += 1,
                Some(TokenKind::Punct('}')) => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Some(_) => {}
                None => {
                    return Err(self.err_here("unterminated DATALOG block: expected `}`".to_owned()))
                }
            }
            end_tok = self.pos;
            self.pos += 1;
        }
        if self.pos == start_tok {
            return Err(self.err_here("empty DATALOG block".to_owned()));
        }
        let start = self.toks[start_tok].span.start;
        let end = self.toks[end_tok].span.end;
        let program = self.src[start..end].trim().to_owned();
        self.punct('}')?;
        self.punct(';')?;
        Ok(Statement::Datalog { program })
    }
}

fn describe(k: &TokenKind) -> String {
    match k {
        TokenKind::Ident(s) => format!("`{s}`"),
        TokenKind::Int(s) => format!("`{s}`"),
        TokenKind::Punct(c) => format!("`{c}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_with_definition_roundtrips() {
        let src = "CREATE RELATION S(x, y) AS 4*x^2 - y - 20*x + 25 <= 0;";
        let stmt = parse_statement(src).unwrap();
        assert_eq!(
            stmt,
            Statement::CreateRelation {
                name: "S".into(),
                vars: vec!["x".into(), "y".into()],
                definition: Some("4*x^2 - y - 20*x + 25 <= 0".into()),
            }
        );
        assert_eq!(stmt.to_string(), src);
        assert_eq!(parse_statement(&stmt.to_string()).unwrap(), stmt);
    }

    #[test]
    fn insert_points_parses_rationals() {
        let stmt = parse_statement("insert into P values (1, 3/2), (-2, 0);").unwrap();
        let Statement::Insert { name, rows } = &stmt else {
            panic!("wrong variant");
        };
        assert_eq!(name, "P");
        assert_eq!(
            *rows,
            Rows::Points(vec![
                vec![Rat::one(), Rat::from_ints(3, 2)],
                vec![Rat::from_ints(-2, 1), Rat::zero()],
            ])
        );
        // Pretty-print canonicalizes keyword case and spacing.
        assert_eq!(stmt.to_string(), "INSERT INTO P VALUES (1, 3/2), (-2, 0);");
    }

    #[test]
    fn datalog_block_captured_verbatim() {
        let stmt = parse_statement("DATALOG { T(x, y) :- E(x, y). T(x, y) :- T(x, z), E(z, y). };")
            .unwrap();
        assert_eq!(
            stmt,
            Statement::Datalog {
                program: "T(x, y) :- E(x, y). T(x, y) :- T(x, z), E(z, y).".into()
            }
        );
        assert_eq!(parse_statement(&stmt.to_string()).unwrap(), stmt);
    }

    #[test]
    fn script_splits_statements() {
        let stmts = parse_script(
            "CREATE RELATION P(x);\nINSERT INTO P VALUES (1);\nSELECT P(x) AND x >= 0;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(stmts[2].is_read_only());
        assert!(!stmts[1].is_read_only());
    }

    #[test]
    fn select_captures_query_text() {
        let stmt = parse_statement("SELECT   exists y (S(x, y) and y >= 2)  ;").unwrap();
        assert_eq!(
            stmt,
            Statement::Select {
                query: "exists y (S(x, y) and y >= 2)".into()
            }
        );
    }
}
