//! Property tests for the CALC_F parser: display/parse round trips and
//! translation consistency between the parsed AST and hand-built formulas.

use cdb_calcf::{parse_formula, CFormula, CTerm};
use cdb_constraints::RelOp;
use cdb_num::Rat;
use proptest::prelude::*;

/// Strategy for random polynomial terms over variables x, y.
fn arb_term() -> impl Strategy<Value = CTerm> {
    let leaf = prop_oneof![
        Just(CTerm::Var("x".into())),
        Just(CTerm::Var("y".into())),
        (-9i64..=9).prop_map(|v| CTerm::Const(Rat::from(v))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CTerm::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CTerm::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CTerm::Mul(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| CTerm::Neg(Box::new(a))),
            (inner, 1u32..=3).prop_map(|(a, n)| CTerm::Pow(Box::new(a), n)),
        ]
    })
}

fn arb_op() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        Just(RelOp::Eq),
        Just(RelOp::Ne),
        Just(RelOp::Lt),
        Just(RelOp::Le),
        Just(RelOp::Gt),
        Just(RelOp::Ge),
    ]
}

fn arb_formula() -> impl Strategy<Value = CFormula> {
    let atom = (arb_term(), arb_op(), arb_term()).prop_map(|(a, op, b)| CFormula::Cmp(a, op, b));
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CFormula::And(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CFormula::Or(vec![a, b])),
            inner.clone().prop_map(|a| CFormula::Not(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Displayed formulas re-parse to a semantically equal formula: compile
    /// both to polynomials via the engine and compare pointwise.
    #[test]
    fn display_parse_semantic_roundtrip(f in arb_formula()) {
        let printed = f.to_string();
        let reparsed = parse_formula(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        // Compare by compiling both as relations over (x, y) and probing.
        let engine = cdb_calcf::CalcFEngine::default();
        let db = cdb_constraints::Database::new();
        let ra = engine.compile_relation(&db, &["x", "y"], &printed);
        let rb = engine.compile_relation(&db, &["x", "y"], &reparsed.to_string());
        let (Ok(ra), Ok(rb)) = (ra, rb) else {
            // Both must fail together (e.g. trivial formulas).
            return Ok(());
        };
        for px in -3i64..=3 {
            for py in -3i64..=3 {
                let p = [Rat::from(px), Rat::from(py)];
                prop_assert_eq!(
                    ra.satisfied_at(&p),
                    rb.satisfied_at(&p),
                    "at ({}, {}) for `{}`", px, py, printed
                );
            }
        }
    }

    /// Terms evaluate identically before and after a print/parse cycle.
    #[test]
    fn term_roundtrip_values(t in arb_term(), px in -4i64..=4, py in -4i64..=4) {
        let src = format!("{t} = 0");
        let parsed = parse_formula(&src)
            .unwrap_or_else(|e| panic!("parse of `{src}` failed: {e}"));
        let CFormula::Cmp(t2, RelOp::Eq, _) = parsed else {
            panic!("expected comparison");
        };
        prop_assert_eq!(
            eval_term(&t, px, py),
            eval_term(&t2, px, py),
            "term `{}`", t
        );
    }
}

fn eval_term(t: &CTerm, x: i64, y: i64) -> Rat {
    match t {
        CTerm::Var(v) if v == "x" => Rat::from(x),
        CTerm::Var(_) => Rat::from(y),
        CTerm::Const(c) => c.clone(),
        CTerm::Add(a, b) => &eval_term(a, x, y) + &eval_term(b, x, y),
        CTerm::Sub(a, b) => &eval_term(a, x, y) - &eval_term(b, x, y),
        CTerm::Mul(a, b) => &eval_term(a, x, y) * &eval_term(b, x, y),
        CTerm::Neg(a) => -eval_term(a, x, y),
        CTerm::Pow(a, n) => eval_term(a, x, y).pow(*n as i32),
        CTerm::Apply(..) | CTerm::Agg(..) => unreachable!("not generated"),
    }
}
