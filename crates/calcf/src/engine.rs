//! The staged CALC_F evaluator (§5).
//!
//! "Queries are evaluated in several stages, depending on the maximal
//! number of nesting levels of aggregate predicates used": aggregates are
//! evaluated innermost-first along the DAG `G_Q`; analytic function terms
//! are replaced by polynomial approximations over the a-base's hypercubes
//! (each guarded by range constraints `z ∈ e`); the resulting polynomial
//! formula is evaluated in closed form by the QE pipeline.

use crate::ast::{CFormula, CTerm};
use crate::parser::{parse_formula, ParseError};
use cdb_agg::aggregate::AggOutput;
use cdb_agg::{apply_aggregate, AggError, Aggregate};
use cdb_approx::modules::{approximate, ApproxError, ApproxMethod};
use cdb_approx::ABase;
use cdb_constraints::{Atom, ConstraintRelation, Database, Formula, RelOp};
use cdb_num::Rat;
use cdb_poly::{MPoly, UPoly};
use cdb_qe::{evaluate_query, QeContext, QeError};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from CALC_F evaluation.
#[derive(Debug)]
pub enum CalcFError {
    /// Surface syntax error.
    Parse(ParseError),
    /// Aggregate module failure ("undefined" per the paper).
    Aggregate(AggError),
    /// Approximation module failure (domain/singularity).
    Approx(ApproxError),
    /// Quantifier elimination failure (including finite-precision
    /// undefinedness).
    Qe(QeError),
    /// Static semantic error (shadowing, parameterized aggregate, arity…).
    Semantic(String),
    /// An internal evaluator invariant was broken — never expected; returned
    /// instead of panicking so embedding applications can recover.
    Internal(String),
}

impl fmt::Display for CalcFError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalcFError::Parse(e) => write!(f, "{e}"),
            CalcFError::Aggregate(e) => write!(f, "{e}"),
            CalcFError::Approx(e) => write!(f, "{e}"),
            CalcFError::Qe(e) => write!(f, "{e}"),
            CalcFError::Semantic(m) => write!(f, "semantic error: {m}"),
            CalcFError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for CalcFError {}

impl From<ParseError> for CalcFError {
    fn from(e: ParseError) -> Self {
        CalcFError::Parse(e)
    }
}
impl From<AggError> for CalcFError {
    fn from(e: AggError) -> Self {
        CalcFError::Aggregate(e)
    }
}
impl From<ApproxError> for CalcFError {
    fn from(e: ApproxError) -> Self {
        CalcFError::Approx(e)
    }
}
impl From<QeError> for CalcFError {
    fn from(e: QeError) -> Self {
        CalcFError::Qe(e)
    }
}

/// Result of a CALC_F query.
#[derive(Debug, Clone)]
pub struct CalcFOutput {
    /// Closed-form answer relation over the ambient ring.
    pub relation: ConstraintRelation,
    /// Variable names of the ambient ring (index = variable).
    pub var_names: Vec<String>,
    /// Indices of the query's free variables.
    pub free_vars: Vec<usize>,
    /// True when no approximation (aggregate or analytic) was involved.
    pub exact: bool,
    /// Empirical upper bound on the sup-norm error of the analytic-function
    /// approximations used anywhere in the evaluation (0.0 when exact).
    /// The paper leaves error analysis open (§5: "Error analysis remains an
    /// interesting issue"); this is the measured bound of our modules.
    // cdb-lint: allow(float) — diagnostic-only error *bound* reported beside
    // the answer; the answer relation itself is exact (§5 leaves error
    // analysis open, so this stays instrumentation, never a result).
    pub approx_sup_error: f64,
}

impl CalcFOutput {
    /// Pretty-print the relation with the query's variable names.
    #[must_use]
    pub fn display(&self) -> String {
        let refs: Vec<&str> = self.var_names.iter().map(String::as_str).collect();
        self.relation.display_with(&refs)
    }

    /// If the answer is a finite set of points over the free variables,
    /// return them (coordinates in free-variable order). The bound/ambient
    /// variables were eliminated by QE and do not occur in the relation.
    #[must_use]
    pub fn as_points(&self) -> Option<Vec<Vec<Rat>>> {
        // Project onto the free variables: remap free var i → position.
        let mut map = vec![0usize; self.relation.nvars()];
        for (pos, &v) in self.free_vars.iter().enumerate() {
            map[v] = pos;
        }
        let projected = self.relation.remap_vars(&map, self.free_vars.len().max(1));
        projected.as_finite_points()
    }

    /// Build an ambient-ring point from free-variable coordinates (test
    /// and example helper).
    #[must_use]
    pub fn point(&self, free_coords: &[Rat]) -> Vec<Rat> {
        assert_eq!(free_coords.len(), self.free_vars.len());
        let mut p = vec![Rat::zero(); self.var_names.len().max(1)];
        for (&v, c) in self.free_vars.iter().zip(free_coords) {
            p[v] = c.clone();
        }
        p
    }
}

/// The CALC_F engine: an a-base, an approximation order `k` and method,
/// precision ε for numerical modules, and an optional finite-precision bit
/// budget for the QE stage.
#[derive(Debug, Clone)]
pub struct CalcFEngine {
    /// Approximation base for analytic functions.
    pub abase: ABase,
    /// Approximation order (degree bound of Definition 5.2).
    pub order: u32,
    /// Approximation method.
    pub method: ApproxMethod,
    /// Precision for aggregates and numerical evaluation.
    pub eps: Rat,
    /// Optional `Z_k` bit budget (finite precision semantics).
    pub budget_bits: Option<u64>,
    /// Worker threads for independent aggregate DAG nodes and for the QE
    /// stage (`1` = fully sequential evaluation).
    pub workers: usize,
    /// Memo-cache for resultants/discriminants/Sturm chains in the QE
    /// stage. Cloning an engine shares the cache (it is an [`Arc`]-backed
    /// handle), so a long-lived engine amortizes algebra across queries.
    ///
    /// [`Arc`]: std::sync::Arc
    pub cache: cdb_qe::AlgebraicCache,
    /// Strategy selection for the per-disjunct QE planner (DESIGN.md §16).
    /// `Auto` picks the cheapest applicable eliminator per disjunct; the
    /// `Force*` modes exist for differential testing and benchmarks.
    pub plan_mode: cdb_qe::PlanMode,
}

impl Default for CalcFEngine {
    fn default() -> Self {
        CalcFEngine {
            abase: ABase::uniform(Rat::from(-16i64), Rat::from(16i64), 32),
            order: 6,
            method: ApproxMethod::Chebyshev,
            eps: Rat::new(1i64.into(), cdb_num::Int::pow2(30)),
            budget_bits: None,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache: cdb_qe::AlgebraicCache::default(),
            plan_mode: cdb_qe::PlanMode::default(),
        }
    }
}

impl CalcFEngine {
    /// Evaluate a CALC_F query given as source text.
    pub fn evaluate(&self, db: &Database, src: &str) -> Result<CalcFOutput, CalcFError> {
        let ast = parse_formula(src)?;
        self.evaluate_ast(db, &ast)
    }

    /// Evaluate a parsed CALC_F formula.
    pub fn evaluate_ast(&self, db: &Database, query: &CFormula) -> Result<CalcFOutput, CalcFError> {
        self.evaluate_with_vars(db, query, &[])
    }

    /// Compile a CALC_F formula into a stored constraint relation over the
    /// named variables (in the given order) — the way applications define
    /// relations from text, e.g.
    /// `compile_relation(db, &["x", "y"], "4*x^2 - y - 20*x + 25 <= 0")`.
    ///
    /// Note: definitions using analytic functions are *baked in* as their
    /// polynomial approximations; the stored relation carries no exactness
    /// provenance, so later queries over it report `exact = true`. Keep
    /// approximate definitions to query time when provenance matters.
    pub fn compile_relation(
        &self,
        db: &Database,
        names: &[&str],
        src: &str,
    ) -> Result<cdb_constraints::ConstraintRelation, CalcFError> {
        let ast = parse_formula(src)?;
        for v in ast.free_vars() {
            if !names.contains(&v.as_str()) {
                return Err(CalcFError::Semantic(format!(
                    "definition uses variable {v} outside the declared schema"
                )));
            }
        }
        let leading: Vec<String> = names.iter().map(|s| (*s).to_owned()).collect();
        let out = self.evaluate_with_vars(db, &ast, &leading)?;
        // The declared variables occupy ring indices 0..names.len() by
        // construction; quantified helper variables (eliminated by QE, so
        // absent from the relation) are dropped from the ring.
        let map: Vec<usize> = (0..out.relation.nvars())
            .map(|i| if i < names.len() { i } else { 0 })
            .collect();
        Ok(out.relation.remap_vars(&map, names.len().max(1)))
    }

    /// Evaluate with a fixed leading variable order (`leading` names take
    /// ring indices `0..leading.len()`; remaining variables follow in
    /// first-appearance order).
    pub fn evaluate_with_vars(
        &self,
        db: &Database,
        query: &CFormula,
        leading: &[String],
    ) -> Result<CalcFOutput, CalcFError> {
        let mut var_names: Vec<String> = leading.to_vec();
        for v in query.all_vars_in_order() {
            if !var_names.contains(&v) {
                var_names.push(v);
            }
        }
        check_no_shadowing(query)?;
        let index: BTreeMap<String, usize> = var_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let nvars = var_names.len().max(1);
        let mut exact = true;
        // cdb-lint: allow(float) — accumulator for the diagnostic sup-norm
        // bound (see `CalcFOutput::approx_sup_error`).
        let mut err = 0.0f64;
        // Stage 1: aggregates, innermost-first.
        let agg_free = self.eliminate_aggregates(db, query, &index, nvars, &mut exact, &mut err)?;
        // Stage 2: NNF, then analytic terms → piecewise approximations.
        let nnf = cnnf(&agg_free, false);
        let poly_formula = self.eliminate_analytic(&nnf, &index, nvars, &mut exact, &mut err)?;
        // Stage 3: the polynomial QE pipeline.
        let ctx = match self.budget_bits {
            Some(k) => QeContext::with_budget(k),
            None => QeContext::exact(),
        }
        .with_workers(self.workers)
        .with_cache(&self.cache)
        .with_plan_mode(self.plan_mode);
        let out = evaluate_query(db, &poly_formula, nvars, &ctx)?;
        let free_names = query.free_vars();
        let mut free_vars = Vec::with_capacity(free_names.len());
        for n in &free_names {
            free_vars.push(index.get(n).copied().ok_or_else(|| {
                CalcFError::Internal(format!("free variable {n} missing from the ring index"))
            })?);
        }
        Ok(CalcFOutput {
            relation: out.relation,
            var_names,
            free_vars,
            exact,
            approx_sup_error: err,
        })
    }

    /// Replace every aggregate predicate by its value (scalar constants, or
    /// the EVAL relation inlined).
    #[allow(clippy::too_many_arguments)]
    // cdb-lint: allow(float-taint) — the only float in the signature is the
    // `err` sup-norm accumulator, a diagnostic; values stay exact
    fn eliminate_aggregates(
        &self,
        db: &Database,
        f: &CFormula,
        index: &BTreeMap<String, usize>,
        nvars: usize,
        exact: &mut bool,
        // cdb-lint: allow(float) — diagnostic sup-norm bound (see above).
        err: &mut f64,
    ) -> Result<CFormula, CalcFError> {
        Ok(match f {
            CFormula::True => CFormula::True,
            CFormula::False => CFormula::False,
            CFormula::Rel(name, args) => CFormula::Rel(name.clone(), args.clone()),
            CFormula::Cmp(a, op, b) => CFormula::Cmp(
                self.eliminate_aggregates_term(db, a, exact, err)?,
                *op,
                self.eliminate_aggregates_term(db, b, exact, err)?,
            ),
            CFormula::EvalPred(vars, body) => {
                // Evaluate the body as a standalone relation over its own
                // ring, apply EVAL, then express the result as a formula
                // over the outer variables.
                let inner = self.aggregate_input(db, Aggregate::Eval, vars, body, exact, err)?;
                let (rel, inner_vars) = inner;
                let ctx = QeContext::exact()
                    .with_workers(self.workers)
                    .with_plan_mode(self.plan_mode);
                let out = apply_aggregate(Aggregate::Eval, &rel, &inner_vars, &self.eps, &ctx)?;
                let AggOutput::Relation(result) = out else {
                    return Err(CalcFError::Internal(
                        "EVAL aggregate did not yield a relation".to_owned(),
                    ));
                };
                // Remap: inner ring variable i corresponds to outer
                // variable index[vars[pos]] where inner_vars[pos] = i.
                let mut map = vec![0usize; result.nvars()];
                for (pos, &iv) in inner_vars.iter().enumerate() {
                    map[iv] = *index.get(&vars[pos]).ok_or_else(|| {
                        CalcFError::Semantic(format!("unknown variable {}", vars[pos]))
                    })?;
                }
                let remapped = result.remap_vars(&map, nvars);
                relation_to_cformula(&remapped, index)
            }
            CFormula::Not(g) => CFormula::Not(Box::new(
                self.eliminate_aggregates(db, g, index, nvars, exact, err)?,
            )),
            CFormula::And(fs) => {
                CFormula::And(self.eliminate_aggregates_children(db, fs, index, nvars, exact, err)?)
            }
            CFormula::Or(fs) => {
                CFormula::Or(self.eliminate_aggregates_children(db, fs, index, nvars, exact, err)?)
            }
            CFormula::Exists(v, g) => CFormula::Exists(
                v.clone(),
                Box::new(self.eliminate_aggregates(db, g, index, nvars, exact, err)?),
            ),
            CFormula::Forall(v, g) => CFormula::Forall(
                v.clone(),
                Box::new(self.eliminate_aggregates(db, g, index, nvars, exact, err)?),
            ),
        })
    }

    /// Eliminate aggregates in the children of an `And`/`Or` node. Siblings
    /// of the aggregate DAG are independent (aggregates are parameter-free,
    /// §5 assumption), so when at least two children actually contain
    /// aggregates they are evaluated on separate workers; the exactness
    /// flag is AND-merged and the error bound max-merged, both
    /// order-insensitive, and the rewritten children are returned in input
    /// order — identical to the sequential result.
    #[allow(clippy::too_many_arguments)]
    fn eliminate_aggregates_children(
        &self,
        db: &Database,
        fs: &[CFormula],
        index: &BTreeMap<String, usize>,
        nvars: usize,
        exact: &mut bool,
        // cdb-lint: allow(float) — diagnostic sup-norm bound (see above).
        err: &mut f64,
    ) -> Result<Vec<CFormula>, CalcFError> {
        let heavy = fs.iter().filter(|g| contains_aggregate(g)).count();
        if self.workers.max(1) <= 1 || heavy < 2 {
            return fs
                .iter()
                .map(|g| self.eliminate_aggregates(db, g, index, nvars, exact, err))
                .collect();
        }
        let results = par_indexed(fs.len(), self.workers, |i| {
            let mut ex = true;
            // cdb-lint: allow(float) — diagnostic sup-norm bound (see above).
            let mut er = 0.0f64;
            let g = self.eliminate_aggregates(db, &fs[i], index, nvars, &mut ex, &mut er)?;
            Ok((g, ex, er))
        })?;
        let mut out = Vec::with_capacity(fs.len());
        for (g, ex, er) in results {
            if !ex {
                *exact = false;
            }
            *err = err.max(er);
            out.push(g);
        }
        Ok(out)
    }

    fn eliminate_aggregates_term(
        &self,
        db: &Database,
        t: &CTerm,
        exact: &mut bool,
        // cdb-lint: allow(float) — diagnostic sup-norm bound (see above).
        err: &mut f64,
    ) -> Result<CTerm, CalcFError> {
        Ok(match t {
            CTerm::Var(_) | CTerm::Const(_) => t.clone(),
            CTerm::Add(a, b) => CTerm::Add(
                Box::new(self.eliminate_aggregates_term(db, a, exact, err)?),
                Box::new(self.eliminate_aggregates_term(db, b, exact, err)?),
            ),
            CTerm::Sub(a, b) => CTerm::Sub(
                Box::new(self.eliminate_aggregates_term(db, a, exact, err)?),
                Box::new(self.eliminate_aggregates_term(db, b, exact, err)?),
            ),
            CTerm::Mul(a, b) => CTerm::Mul(
                Box::new(self.eliminate_aggregates_term(db, a, exact, err)?),
                Box::new(self.eliminate_aggregates_term(db, b, exact, err)?),
            ),
            CTerm::Neg(a) => {
                CTerm::Neg(Box::new(self.eliminate_aggregates_term(db, a, exact, err)?))
            }
            CTerm::Pow(a, n) => CTerm::Pow(
                Box::new(self.eliminate_aggregates_term(db, a, exact, err)?),
                *n,
            ),
            CTerm::Apply(g, a) => CTerm::Apply(
                *g,
                Box::new(self.eliminate_aggregates_term(db, a, exact, err)?),
            ),
            CTerm::Agg(agg, vars, body) => {
                if *agg == Aggregate::Eval {
                    return Err(CalcFError::Semantic(
                        "EVAL is a predicate, not a scalar term".into(),
                    ));
                }
                let (rel, inner_vars) = self.aggregate_input(db, *agg, vars, body, exact, err)?;
                let ctx = QeContext::exact()
                    .with_workers(self.workers)
                    .with_plan_mode(self.plan_mode);
                let out = apply_aggregate(*agg, &rel, &inner_vars, &self.eps, &ctx)?;
                let AggOutput::Scalar(v) = out else {
                    return Err(CalcFError::Internal(
                        "non-EVAL aggregate did not yield a scalar".to_owned(),
                    ));
                };
                if !v.exact {
                    *exact = false;
                }
                CTerm::Const(v.value)
            }
        })
    }

    /// Evaluate an aggregate's body into a constraint relation over its own
    /// variable ring; return the relation and the ring indices of the
    /// aggregate's bound variables.
    #[allow(clippy::too_many_arguments)]
    fn aggregate_input(
        &self,
        db: &Database,
        agg: Aggregate,
        vars: &[String],
        body: &CFormula,
        exact: &mut bool,
        // cdb-lint: allow(float) — diagnostic sup-norm bound (see above).
        err: &mut f64,
    ) -> Result<(ConstraintRelation, Vec<usize>), CalcFError> {
        // The paper's technical assumption: no free parameters.
        let free = body.free_vars();
        for v in &free {
            if !vars.contains(v) {
                return Err(CalcFError::Semantic(format!(
                    "aggregate {} has free parameter {v} (unsupported, §5 assumption)",
                    agg.name()
                )));
            }
        }
        let sub = self.evaluate_ast(db, body)?;
        if !sub.exact {
            *exact = false;
        }
        *err = err.max(sub.approx_sup_error);
        let inner_vars: Vec<usize> = vars
            .iter()
            .map(|v| {
                sub.var_names.iter().position(|n| n == v).ok_or_else(|| {
                    CalcFError::Semantic(format!("aggregate variable {v} unused in its formula"))
                })
            })
            .collect::<Result<_, _>>()?;
        Ok((sub.relation, inner_vars))
    }

    /// Replace analytic function applications by piecewise polynomial
    /// approximations ("each tuple t containing f(z̄) is replaced by a set
    /// of tuples t_e ∧ z ∈ e"), and translate to the pure formula type.
    // cdb-lint: allow(float-taint) — the only float in the signature is the
    // `err` sup-norm accumulator, a diagnostic; values stay exact
    fn eliminate_analytic(
        &self,
        f: &CFormula,
        index: &BTreeMap<String, usize>,
        nvars: usize,
        exact: &mut bool,
        // cdb-lint: allow(float) — diagnostic sup-norm bound (see above).
        err: &mut f64,
    ) -> Result<Formula, CalcFError> {
        Ok(match f {
            CFormula::True => Formula::True,
            CFormula::False => Formula::False,
            CFormula::Rel(name, args) => {
                let idx: Vec<usize> =
                    args.iter()
                        .map(|a| {
                            index.get(a).copied().ok_or_else(|| {
                                CalcFError::Semantic(format!("unknown variable {a}"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                Formula::Rel(name.clone(), idx)
            }
            CFormula::EvalPred(..) => {
                return Err(CalcFError::Internal(
                    "EVAL predicate survived stage-1 aggregate elimination".to_owned(),
                ))
            }
            CFormula::Cmp(a, op, b) => {
                let t = CTerm::Sub(Box::new(a.clone()), Box::new(b.clone()));
                self.atom_to_formula(&t, *op, index, nvars, exact, err)?
            }
            CFormula::Not(g) => {
                // NNF leaves Not only over relation symbols.
                Formula::not(self.eliminate_analytic(g, index, nvars, exact, err)?)
            }
            CFormula::And(fs) => Formula::And(
                fs.iter()
                    .map(|g| self.eliminate_analytic(g, index, nvars, exact, err))
                    .collect::<Result<_, _>>()?,
            ),
            CFormula::Or(fs) => Formula::Or(
                fs.iter()
                    .map(|g| self.eliminate_analytic(g, index, nvars, exact, err))
                    .collect::<Result<_, _>>()?,
            ),
            CFormula::Exists(v, g) => {
                let vi = *index
                    .get(v)
                    .ok_or_else(|| CalcFError::Semantic(format!("unknown variable {v}")))?;
                Formula::exists(vi, self.eliminate_analytic(g, index, nvars, exact, err)?)
            }
            CFormula::Forall(v, g) => {
                let vi = *index
                    .get(v)
                    .ok_or_else(|| CalcFError::Semantic(format!("unknown variable {v}")))?;
                Formula::forall(vi, self.eliminate_analytic(g, index, nvars, exact, err)?)
            }
        })
    }

    /// Turn `t op 0` into a pure formula, expanding analytic applications
    /// over the a-base.
    #[allow(clippy::too_many_arguments)]
    fn atom_to_formula(
        &self,
        t: &CTerm,
        op: RelOp,
        index: &BTreeMap<String, usize>,
        nvars: usize,
        exact: &mut bool,
        // cdb-lint: allow(float) — diagnostic sup-norm bound (see above).
        err: &mut f64,
    ) -> Result<Formula, CalcFError> {
        // Find an innermost analytic application.
        if let Some((func, arg)) = find_innermost_apply(t) {
            *exact = false;
            // The argument is analytic-free: a polynomial.
            let arg_poly = term_to_mpoly(&arg, index, nvars)?;
            let mut branches = Vec::with_capacity(self.abase.num_intervals());
            let mut skipped = 0usize;
            for (lo, hi) in self.abase.intervals() {
                // Cells outside the function's domain contribute no points
                // (the function is undefined there — the paper's singular-
                // point caveat); skip them rather than failing the query.
                if !func.interval_in_domain(lo.to_f64(), hi.to_f64()) {
                    skipped += 1;
                    continue;
                }
                let h_e = approximate(func, &lo, &hi, self.order, self.method)?;
                // Track the measured sup-norm error of this piece.
                *err = err.max(cdb_approx::sup_error(
                    func,
                    &h_e,
                    lo.to_f64(),
                    hi.to_f64(),
                    64,
                ));
                // Substitute h_e(arg) for the application.
                let replaced = substitute_apply(t, &func, &arg, &h_e);
                // Guard: lo ≤ arg ≤ hi.
                let guard_lo = Atom::new(&MPoly::constant(lo, nvars) - &arg_poly, RelOp::Le);
                let guard_hi = Atom::new(&arg_poly - &MPoly::constant(hi, nvars), RelOp::Le);
                let inner = self.atom_to_formula(&replaced, op, index, nvars, exact, err)?;
                branches.push(Formula::And(vec![
                    Formula::Atom(guard_lo),
                    Formula::Atom(guard_hi),
                    inner,
                ]));
            }
            if branches.is_empty() && skipped > 0 {
                return Err(CalcFError::Approx(
                    cdb_approx::modules::ApproxError::OutOfDomain {
                        func: func.name(),
                        interval: format!("the whole a-base span {:?}", self.abase.span()),
                    },
                ));
            }
            return Ok(Formula::Or(branches));
        }
        // Polynomial atom.
        let poly = term_to_mpoly(t, index, nvars)?;
        Ok(Formula::Atom(Atom::new(poly, op)))
    }
}

/// Map `f` over `0..n` on up to `workers` scoped threads, results in index
/// order; the reported error is the lowest-index one (indices are claimed
/// monotonically, so everything below the first stored error completed).
fn par_indexed<T: Send>(
    n: usize,
    workers: usize,
    f: impl Fn(usize) -> Result<T, CalcFError> + Sync,
) -> Result<Vec<T>, CalcFError> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    // SeqCst per the determinism rule: claim order and the stop flag gate
    // which slots get filled. A poisoned slot mutex means a worker panicked
    // mid-store; the stored value (if any) is a fully-written `Some(r)`, so
    // recovering the inner value is sound.
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<T, CalcFError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= n {
                    break;
                }
                let r = f(i);
                if r.is_err() {
                    stop.store(true, Ordering::SeqCst);
                }
                *slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            // Unclaimed slots only exist past the first error, which the
            // scan above returns before reaching them.
            None => {
                return Err(CalcFError::Internal(
                    "parallel fan-out: unclaimed work slot without a prior error".to_owned(),
                ))
            }
        }
    }
    Ok(out)
}

/// Whether a formula contains any aggregate predicate or aggregate term.
fn contains_aggregate(f: &CFormula) -> bool {
    match f {
        CFormula::True | CFormula::False | CFormula::Rel(..) => false,
        CFormula::EvalPred(..) => true,
        CFormula::Cmp(a, _, b) => term_has_aggregate(a) || term_has_aggregate(b),
        CFormula::Not(g) | CFormula::Exists(_, g) | CFormula::Forall(_, g) => contains_aggregate(g),
        CFormula::And(fs) | CFormula::Or(fs) => fs.iter().any(contains_aggregate),
    }
}

fn term_has_aggregate(t: &CTerm) -> bool {
    match t {
        CTerm::Var(_) | CTerm::Const(_) => false,
        CTerm::Add(a, b) | CTerm::Sub(a, b) | CTerm::Mul(a, b) => {
            term_has_aggregate(a) || term_has_aggregate(b)
        }
        CTerm::Neg(a) | CTerm::Pow(a, _) | CTerm::Apply(_, a) => term_has_aggregate(a),
        CTerm::Agg(..) => true,
    }
}

/// Reject quantifier shadowing (two bindings of the same name, or binding a
/// name that is also free) — variable identity is by name.
fn check_no_shadowing(f: &CFormula) -> Result<(), CalcFError> {
    fn go(f: &CFormula, bound: &mut Vec<String>) -> Result<(), CalcFError> {
        match f {
            CFormula::True | CFormula::False | CFormula::Rel(..) | CFormula::Cmp(..) => Ok(()),
            CFormula::EvalPred(_, g) => go(g, bound),
            CFormula::Not(g) => go(g, bound),
            CFormula::And(fs) | CFormula::Or(fs) => {
                for g in fs {
                    go(g, bound)?;
                }
                Ok(())
            }
            CFormula::Exists(v, g) | CFormula::Forall(v, g) => {
                if bound.contains(v) {
                    return Err(CalcFError::Semantic(format!(
                        "variable {v} is quantified twice (shadowing unsupported)"
                    )));
                }
                bound.push(v.clone());
                go(g, bound)?;
                bound.pop();
                Ok(())
            }
        }
    }
    go(f, &mut Vec::new())
}

/// Negation normal form for CALC_F formulas: negation absorbed into
/// comparison operators; `Not` survives only over relation symbols.
fn cnnf(f: &CFormula, neg: bool) -> CFormula {
    match f {
        CFormula::True => {
            if neg {
                CFormula::False
            } else {
                CFormula::True
            }
        }
        CFormula::False => {
            if neg {
                CFormula::True
            } else {
                CFormula::False
            }
        }
        CFormula::Cmp(a, op, b) => {
            CFormula::Cmp(a.clone(), if neg { op.negated() } else { *op }, b.clone())
        }
        CFormula::Rel(..) | CFormula::EvalPred(..) => {
            if neg {
                CFormula::Not(Box::new(f.clone()))
            } else {
                f.clone()
            }
        }
        CFormula::Not(g) => cnnf(g, !neg),
        CFormula::And(fs) => {
            let parts = fs.iter().map(|g| cnnf(g, neg)).collect();
            if neg {
                CFormula::Or(parts)
            } else {
                CFormula::And(parts)
            }
        }
        CFormula::Or(fs) => {
            let parts = fs.iter().map(|g| cnnf(g, neg)).collect();
            if neg {
                CFormula::And(parts)
            } else {
                CFormula::Or(parts)
            }
        }
        CFormula::Exists(v, g) => {
            let body = Box::new(cnnf(g, neg));
            if neg {
                CFormula::Forall(v.clone(), body)
            } else {
                CFormula::Exists(v.clone(), body)
            }
        }
        CFormula::Forall(v, g) => {
            let body = Box::new(cnnf(g, neg));
            if neg {
                CFormula::Exists(v.clone(), body)
            } else {
                CFormula::Forall(v.clone(), body)
            }
        }
    }
}

/// Find an innermost analytic application (its argument is analytic-free).
fn find_innermost_apply(t: &CTerm) -> Option<(cdb_approx::AnalyticFn, CTerm)> {
    match t {
        CTerm::Var(_) | CTerm::Const(_) => None,
        CTerm::Add(a, b) | CTerm::Sub(a, b) | CTerm::Mul(a, b) => {
            find_innermost_apply(a).or_else(|| find_innermost_apply(b))
        }
        CTerm::Neg(a) | CTerm::Pow(a, _) => find_innermost_apply(a),
        CTerm::Apply(f, a) => find_innermost_apply(a).or_else(|| Some((*f, (**a).clone()))),
        CTerm::Agg(..) => None,
    }
}

/// Replace occurrences of `func(arg)` in `t` by the polynomial `h(arg)`.
fn substitute_apply(t: &CTerm, func: &cdb_approx::AnalyticFn, arg: &CTerm, h: &UPoly) -> CTerm {
    match t {
        CTerm::Apply(f, a) if f == func && a.as_ref() == arg => {
            // h(arg) as a term: Horner.
            let mut acc = CTerm::Const(Rat::zero());
            for c in h.coeffs().iter().rev() {
                acc = CTerm::Add(
                    Box::new(CTerm::Mul(Box::new(acc), Box::new(arg.clone()))),
                    Box::new(CTerm::Const(c.clone())),
                );
            }
            acc
        }
        CTerm::Var(_) | CTerm::Const(_) => t.clone(),
        CTerm::Add(a, b) => CTerm::Add(
            Box::new(substitute_apply(a, func, arg, h)),
            Box::new(substitute_apply(b, func, arg, h)),
        ),
        CTerm::Sub(a, b) => CTerm::Sub(
            Box::new(substitute_apply(a, func, arg, h)),
            Box::new(substitute_apply(b, func, arg, h)),
        ),
        CTerm::Mul(a, b) => CTerm::Mul(
            Box::new(substitute_apply(a, func, arg, h)),
            Box::new(substitute_apply(b, func, arg, h)),
        ),
        CTerm::Neg(a) => CTerm::Neg(Box::new(substitute_apply(a, func, arg, h))),
        CTerm::Pow(a, n) => CTerm::Pow(Box::new(substitute_apply(a, func, arg, h)), *n),
        CTerm::Apply(f, a) => CTerm::Apply(*f, Box::new(substitute_apply(a, func, arg, h))),
        CTerm::Agg(..) => t.clone(),
    }
}

/// Convert an analytic-free, aggregate-free term to a polynomial.
fn term_to_mpoly(
    t: &CTerm,
    index: &BTreeMap<String, usize>,
    nvars: usize,
) -> Result<MPoly, CalcFError> {
    Ok(match t {
        CTerm::Var(v) => {
            let i = *index
                .get(v)
                .ok_or_else(|| CalcFError::Semantic(format!("unknown variable {v}")))?;
            MPoly::var(i, nvars)
        }
        CTerm::Const(c) => MPoly::constant(c.clone(), nvars),
        CTerm::Add(a, b) => &term_to_mpoly(a, index, nvars)? + &term_to_mpoly(b, index, nvars)?,
        CTerm::Sub(a, b) => &term_to_mpoly(a, index, nvars)? - &term_to_mpoly(b, index, nvars)?,
        CTerm::Mul(a, b) => &term_to_mpoly(a, index, nvars)? * &term_to_mpoly(b, index, nvars)?,
        CTerm::Neg(a) => -&term_to_mpoly(a, index, nvars)?,
        CTerm::Pow(a, n) => term_to_mpoly(a, index, nvars)?.pow(*n),
        CTerm::Apply(f, _) => {
            return Err(CalcFError::Semantic(format!(
                "analytic function {f} not eliminated"
            )))
        }
        CTerm::Agg(agg, ..) => {
            return Err(CalcFError::Semantic(format!(
                "aggregate {} not eliminated",
                agg.name()
            )))
        }
    })
}

/// Express a DNF relation as a CALC_F formula (used to inline EVAL results).
fn relation_to_cformula(rel: &ConstraintRelation, index: &BTreeMap<String, usize>) -> CFormula {
    let names: Vec<String> = {
        let mut v = vec![String::new(); index.len().max(rel.nvars())];
        for (n, &i) in index {
            if i < v.len() {
                v[i] = n.clone();
            }
        }
        v
    };
    if rel.tuples().is_empty() {
        return CFormula::False;
    }
    let mut disjuncts = Vec::new();
    for t in rel.tuples() {
        let mut conj = Vec::new();
        for a in t.atoms() {
            conj.push(CFormula::Cmp(
                mpoly_to_cterm(&a.poly, &names),
                a.op,
                CTerm::Const(Rat::zero()),
            ));
        }
        disjuncts.push(if conj.is_empty() {
            CFormula::True
        } else {
            CFormula::And(conj)
        });
    }
    match disjuncts.pop() {
        Some(only) if disjuncts.is_empty() => only,
        Some(last) => {
            disjuncts.push(last);
            CFormula::Or(disjuncts)
        }
        None => CFormula::Or(disjuncts),
    }
}

fn mpoly_to_cterm(p: &MPoly, names: &[String]) -> CTerm {
    let mut acc = CTerm::Const(Rat::zero());
    for (mono, coeff) in p.terms() {
        let mut term = CTerm::Const(coeff.clone());
        for (i, e) in mono.exps().enumerate() {
            if e == 0 {
                continue;
            }
            let var = CTerm::Var(names[i].clone());
            let factor = if e == 1 {
                var
            } else {
                CTerm::Pow(Box::new(var), e)
            };
            term = CTerm::Mul(Box::new(term), Box::new(factor));
        }
        acc = CTerm::Add(Box::new(acc), Box::new(term));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_constraints::GeneralizedTuple;

    fn c(v: i64, n: usize) -> MPoly {
        MPoly::constant(Rat::from(v), n)
    }

    /// Database with the paper's S(x, y).
    fn paper_db() -> Database {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&(&c(4, 2) * &x.pow(2)) - &y) - &(&(&c(20, 2) * &x) - &c(25, 2));
        let mut db = Database::new();
        db.insert(
            "S",
            ConstraintRelation::new(
                2,
                vec![GeneralizedTuple::new(2, vec![Atom::new(p, RelOp::Le)])],
            ),
        );
        db
    }

    /// **Example 5.1 / 5.4**: the SURFACE query answers {18}.
    #[test]
    fn example_51_surface_query() {
        let db = paper_db();
        let engine = CalcFEngine::default();
        let out = engine
            .evaluate(&db, "z = SURFACE[x, y]{ S(x, y) and y <= 9 }")
            .unwrap();
        let pts = out.as_points().expect("finite answer");
        assert_eq!(pts, vec![vec![Rat::from(18i64)]]);
        assert!(out.exact, "polynomial bounds are integrated exactly");
    }

    /// **Figure 1** through the CALC_F surface syntax.
    #[test]
    fn figure1_textual() {
        let db = paper_db();
        let engine = CalcFEngine::default();
        let out = engine
            .evaluate(&db, "exists y (S(x, y) and y <= 0)")
            .unwrap();
        assert!(out
            .relation
            .satisfied_at(&out.point(&["5/2".parse().unwrap()])));
        assert!(!out.relation.satisfied_at(&out.point(&[Rat::from(2i64)])));
        assert_eq!(out.var_names[out.free_vars[0]], "x");
    }

    /// Analytic function: sin(x) = 0 near the origin within the a-base.
    #[test]
    fn analytic_sin_roots() {
        let db = Database::new();
        let engine = CalcFEngine {
            abase: ABase::uniform(Rat::from(-4i64), Rat::from(4i64), 16),
            order: 8,
            ..CalcFEngine::default()
        };
        let out = engine
            .evaluate(&db, "sin(x) = 0 and x >= 1 and x <= 4")
            .unwrap();
        assert!(!out.exact);
        // The only true sin-root in [1, 4] is π; our approximate relation
        // must hold near π and fail away from it.
        let ctx = QeContext::exact();
        let pts = cdb_qe::pipeline::numerical_evaluation(
            &out.relation,
            &out.free_vars,
            &"1/1048576".parse().unwrap(),
            &ctx,
        )
        .unwrap()
        .expect("finite");
        assert_eq!(pts.len(), 1, "one root in [1,4]");
        let root = pts[0].coords[0].to_f64();
        assert!(
            (root - std::f64::consts::PI).abs() < 1e-3,
            "root {root} vs π"
        );
    }

    /// MIN over a derived set.
    #[test]
    fn min_aggregate() {
        let db = paper_db();
        let engine = CalcFEngine::default();
        // MIN of { y | S(2.5, y) }: at x = 2.5 the parabola bottoms at 0…
        // but MIN needs a parameter-free formula: use exists x.
        let out = engine
            .evaluate(&db, "m = MIN[y]{ exists x (S(x, y) and x = 2) }")
            .unwrap();
        // At x = 2: 16 − y − 40 + 25 ≤ 0 ⇔ y ≥ 1: MIN = 1.
        let pts = out.as_points().expect("finite");
        assert_eq!(pts, vec![vec![Rat::one()]]);
    }

    /// EVAL as a predicate: solutions of (2x−5)² ≤ 0.
    #[test]
    fn eval_predicate() {
        let db = paper_db();
        let engine = CalcFEngine::default();
        let out = engine
            .evaluate(&db, "EVAL[x]{ exists y (S(x, y) and y <= 0) }")
            .unwrap();
        let pts = out.as_points().expect("finite");
        assert_eq!(pts.len(), 1);
        assert!((&pts[0][0] - &"5/2".parse().unwrap()).abs() < "1/1000".parse().unwrap());
    }

    /// Nested aggregates: MAX over a singleton built from SURFACE.
    #[test]
    fn nested_aggregates() {
        let db = paper_db();
        let engine = CalcFEngine::default();
        let out = engine
            .evaluate(
                &db,
                "w = MAX[v]{ v = SURFACE[x, y]{ S(x, y) and y <= 9 } or v = 1 }",
            )
            .unwrap();
        let pts = out.as_points().expect("finite");
        assert_eq!(pts, vec![vec![Rat::from(18i64)]]);
    }

    /// Parameterized aggregates are rejected (the paper's assumption).
    #[test]
    fn parameterized_aggregate_rejected() {
        let db = paper_db();
        let engine = CalcFEngine::default();
        let err = engine.evaluate(&db, "z = MIN[y]{ S(x, y) }").unwrap_err();
        assert!(matches!(err, CalcFError::Semantic(_)), "{err}");
    }

    /// Shadowing is rejected.
    #[test]
    fn shadowing_rejected() {
        let db = Database::new();
        let engine = CalcFEngine::default();
        let err = engine
            .evaluate(&db, "exists x (exists x (x = 0))")
            .unwrap_err();
        assert!(matches!(err, CalcFError::Semantic(_)));
    }

    /// Undefined aggregate (unbounded region) maps to a typed error.
    #[test]
    fn undefined_aggregate() {
        let db = Database::new();
        let engine = CalcFEngine::default();
        let err = engine.evaluate(&db, "z = MAX[y]{ y >= 0 }").unwrap_err();
        assert!(matches!(err, CalcFError::Aggregate(AggError::Unbounded)));
    }

    /// Finite-precision CALC_F: tiny budgets give undefined, not wrong.
    #[test]
    fn finite_precision_budget() {
        let db = paper_db();
        let engine = CalcFEngine {
            budget_bits: Some(3),
            ..CalcFEngine::default()
        };
        let err = engine
            .evaluate(&db, "exists y (S(x, y) and y <= 0)")
            .unwrap_err();
        assert!(matches!(
            err,
            CalcFError::Qe(QeError::PrecisionExceeded { .. })
        ));
    }
}
