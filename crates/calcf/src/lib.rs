#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! `cdb-calcf`: the CALC_F constraint query language (§5).
//!
//! CALC_F extends the relational calculus with (i) analytic functions
//! (exp, ln, sin, cos, tan, atan, sqrt) and (ii) aggregate predicates
//! `AGG[vars]{φ}` for MIN, MAX, AVG, LENGTH, SURFACE, VOLUME and EVAL.
//! Because no proper extension of the real field by analytic functions
//! admits quantifier elimination \[Dr82\], evaluation is staged (§5):
//!
//! 1. aggregate predicates are evaluated innermost-first along the DAG
//!    `G_Q` (the paper's technical assumption applies: aggregate formulas
//!    carry no free parameters);
//! 2. analytic function terms are replaced by k-order polynomial
//!    approximations over the hypercubes of an a-base, each guarded by the
//!    range constraints `z ∈ e`;
//! 3. the resulting pure polynomial formula goes through the QE pipeline,
//!    yielding a closed-form constraint relation — with PTIME data
//!    complexity and polynomially many module calls (Theorem 5.5).

pub mod ast;
pub mod engine;
pub mod lexer;
pub mod parser;

pub use ast::{CFormula, CTerm};
pub use engine::{CalcFEngine, CalcFError, CalcFOutput};
pub use parser::parse_formula;
