//! Abstract syntax of CALC_F.
//!
//! Terms may contain analytic function applications and aggregate
//! predicates `g_ȳ[φ]` (§5: "if φ is a formula in CALC_F with free
//! variables among x̄, ȳ and g_ȳ is an aggregate function … then g_ȳ\[φ\] is
//! an (|x̄| + k)-ary aggregate predicate"). Our surface syntax renders the
//! aggregate predicate as a *term*, `AGG[ȳ]{φ}`, compared against other
//! terms — e.g. the paper's Example 5.1 is written
//! `z = SURFACE[x, y]{ S(x, y) and y <= 9 }`.

use cdb_agg::Aggregate;
use cdb_approx::AnalyticFn;
use cdb_constraints::RelOp;
use cdb_num::Rat;
use std::collections::BTreeSet;
use std::fmt;

/// A CALC_F term.
#[derive(Debug, Clone, PartialEq)]
pub enum CTerm {
    /// Variable by name.
    Var(String),
    /// Rational constant.
    Const(Rat),
    /// Sum.
    Add(Box<CTerm>, Box<CTerm>),
    /// Difference.
    Sub(Box<CTerm>, Box<CTerm>),
    /// Product.
    Mul(Box<CTerm>, Box<CTerm>),
    /// Negation.
    Neg(Box<CTerm>),
    /// Natural power.
    Pow(Box<CTerm>, u32),
    /// Analytic function application.
    Apply(AnalyticFn, Box<CTerm>),
    /// Aggregate predicate: `AGG[vars]{formula}`.
    Agg(Aggregate, Vec<String>, Box<CFormula>),
}

/// A CALC_F formula.
#[derive(Debug, Clone, PartialEq)]
pub enum CFormula {
    /// ⊤
    True,
    /// ⊥
    False,
    /// Term comparison.
    Cmp(CTerm, RelOp, CTerm),
    /// Database relation applied to variables.
    Rel(String, Vec<String>),
    /// The EVAL aggregate used as a predicate: `EVAL[vars]{φ}` holds of the
    /// listed variables — the system's finite solution set when it exists,
    /// the system itself otherwise (§5).
    EvalPred(Vec<String>, Box<CFormula>),
    /// Negation.
    Not(Box<CFormula>),
    /// Conjunction.
    And(Vec<CFormula>),
    /// Disjunction.
    Or(Vec<CFormula>),
    /// ∃
    Exists(String, Box<CFormula>),
    /// ∀
    Forall(String, Box<CFormula>),
}

impl CTerm {
    /// Variables occurring (free; aggregate-bound variables excluded).
    pub fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            CTerm::Var(v) => {
                out.insert(v.clone());
            }
            CTerm::Const(_) => {}
            CTerm::Add(a, b) | CTerm::Sub(a, b) | CTerm::Mul(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            CTerm::Neg(a) | CTerm::Pow(a, _) | CTerm::Apply(_, a) => a.collect_vars(out),
            CTerm::Agg(_, bound, f) => {
                let mut inner = BTreeSet::new();
                f.collect_free_vars(&mut inner);
                for v in inner {
                    if !bound.contains(&v) {
                        out.insert(v);
                    }
                }
            }
        }
    }

    /// True iff the term contains an analytic function application.
    #[must_use]
    pub fn has_analytic(&self) -> bool {
        match self {
            CTerm::Var(_) | CTerm::Const(_) => false,
            CTerm::Add(a, b) | CTerm::Sub(a, b) | CTerm::Mul(a, b) => {
                a.has_analytic() || b.has_analytic()
            }
            CTerm::Neg(a) | CTerm::Pow(a, _) => a.has_analytic(),
            CTerm::Apply(..) => true,
            CTerm::Agg(..) => false, // aggregates are evaluated away first
        }
    }

    /// True iff the term contains an aggregate predicate.
    #[must_use]
    pub fn has_aggregate(&self) -> bool {
        match self {
            CTerm::Var(_) | CTerm::Const(_) => false,
            CTerm::Add(a, b) | CTerm::Sub(a, b) | CTerm::Mul(a, b) => {
                a.has_aggregate() || b.has_aggregate()
            }
            CTerm::Neg(a) | CTerm::Pow(a, _) | CTerm::Apply(_, a) => a.has_aggregate(),
            CTerm::Agg(..) => true,
        }
    }
}

impl CFormula {
    /// Free variables of the formula.
    pub fn collect_free_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            CFormula::True | CFormula::False => {}
            CFormula::Cmp(a, _, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            CFormula::Rel(_, args) => out.extend(args.iter().cloned()),
            CFormula::EvalPred(vars, _) => out.extend(vars.iter().cloned()),
            CFormula::Not(f) => f.collect_free_vars(out),
            CFormula::And(fs) | CFormula::Or(fs) => {
                for f in fs {
                    f.collect_free_vars(out);
                }
            }
            CFormula::Exists(v, f) | CFormula::Forall(v, f) => {
                let mut inner = BTreeSet::new();
                f.collect_free_vars(&mut inner);
                inner.remove(v);
                out.extend(inner);
            }
        }
    }

    /// Free variables, sorted.
    #[must_use]
    pub fn free_vars(&self) -> Vec<String> {
        let mut s = BTreeSet::new();
        self.collect_free_vars(&mut s);
        s.into_iter().collect()
    }

    /// All variables mentioned anywhere (free, quantified, aggregate-bound),
    /// in first-appearance order — the paper's "pre-established order".
    #[must_use]
    pub fn all_vars_in_order(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn push(out: &mut Vec<String>, v: &str) {
            if !out.iter().any(|o| o == v) {
                out.push(v.to_owned());
            }
        }
        fn term(t: &CTerm, out: &mut Vec<String>) {
            match t {
                CTerm::Var(v) => push(out, v),
                CTerm::Const(_) => {}
                CTerm::Add(a, b) | CTerm::Sub(a, b) | CTerm::Mul(a, b) => {
                    term(a, out);
                    term(b, out);
                }
                CTerm::Neg(a) | CTerm::Pow(a, _) | CTerm::Apply(_, a) => term(a, out),
                CTerm::Agg(_, bound, f) => {
                    for v in bound {
                        push(out, v);
                    }
                    go(f, out);
                }
            }
        }
        fn go(f: &CFormula, out: &mut Vec<String>) {
            match f {
                CFormula::True | CFormula::False => {}
                CFormula::Cmp(a, _, b) => {
                    term(a, out);
                    term(b, out);
                }
                CFormula::Rel(_, args) => {
                    for v in args {
                        push(out, v);
                    }
                }
                CFormula::EvalPred(vars, g) => {
                    for v in vars {
                        push(out, v);
                    }
                    go(g, out);
                }
                CFormula::Not(g) => go(g, out),
                CFormula::And(fs) | CFormula::Or(fs) => {
                    for g in fs {
                        go(g, out);
                    }
                }
                CFormula::Exists(v, g) | CFormula::Forall(v, g) => {
                    push(out, v);
                    go(g, out);
                }
            }
        }
        go(self, &mut out);
        out
    }

    /// Maximum nesting depth of aggregate predicates (the number of stages
    /// the evaluator runs; 0 = no aggregates).
    #[must_use]
    pub fn aggregate_depth(&self) -> usize {
        fn term(t: &CTerm) -> usize {
            match t {
                CTerm::Var(_) | CTerm::Const(_) => 0,
                CTerm::Add(a, b) | CTerm::Sub(a, b) | CTerm::Mul(a, b) => term(a).max(term(b)),
                CTerm::Neg(a) | CTerm::Pow(a, _) | CTerm::Apply(_, a) => term(a),
                CTerm::Agg(_, _, f) => 1 + f.aggregate_depth(),
            }
        }
        match self {
            CFormula::True | CFormula::False | CFormula::Rel(..) => 0,
            CFormula::EvalPred(_, f) => 1 + f.aggregate_depth(),
            CFormula::Cmp(a, _, b) => term(a).max(term(b)),
            CFormula::Not(f) | CFormula::Exists(_, f) | CFormula::Forall(_, f) => {
                f.aggregate_depth()
            }
            CFormula::And(fs) | CFormula::Or(fs) => {
                fs.iter().map(CFormula::aggregate_depth).max().unwrap_or(0)
            }
        }
    }
}

impl fmt::Display for CTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CTerm::Var(v) => write!(f, "{v}"),
            CTerm::Const(c) => write!(f, "{c}"),
            CTerm::Add(a, b) => write!(f, "({a} + {b})"),
            CTerm::Sub(a, b) => write!(f, "({a} - {b})"),
            CTerm::Mul(a, b) => write!(f, "({a} * {b})"),
            // Parenthesize the operand: `-(-8)` must not print as `--8`,
            // which the lexer reads as a comment.
            CTerm::Neg(a) => write!(f, "(-({a}))"),
            // Parenthesize any base that is not a plain variable or a
            // nonnegative constant: `-1^2` would re-parse as `-(1^2)`.
            CTerm::Pow(a, n) => match a.as_ref() {
                CTerm::Var(_) => write!(f, "{a}^{n}"),
                CTerm::Const(c) if c >= &Rat::zero() => write!(f, "{a}^{n}"),
                _ => write!(f, "({a})^{n}"),
            },
            CTerm::Apply(g, a) => write!(f, "{g}({a})"),
            CTerm::Agg(g, vars, body) => {
                write!(f, "{}[{}]{{{body}}}", g.name(), vars.join(", "))
            }
        }
    }
}

impl fmt::Display for CFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CFormula::True => write!(f, "true"),
            CFormula::False => write!(f, "false"),
            CFormula::Cmp(a, op, b) => write!(f, "{a} {} {b}", op.symbol()),
            CFormula::Rel(name, args) => write!(f, "{name}({})", args.join(", ")),
            CFormula::EvalPred(vars, g) => {
                write!(f, "EVAL[{}]{{{g}}}", vars.join(", "))
            }
            CFormula::Not(g) => write!(f, "not ({g})"),
            CFormula::And(fs) => {
                let parts: Vec<String> = fs.iter().map(|g| format!("({g})")).collect();
                write!(f, "{}", parts.join(" and "))
            }
            CFormula::Or(fs) => {
                let parts: Vec<String> = fs.iter().map(|g| format!("({g})")).collect();
                write!(f, "{}", parts.join(" or "))
            }
            CFormula::Exists(v, g) => write!(f, "exists {v} ({g})"),
            CFormula::Forall(v, g) => write!(f, "forall {v} ({g})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example51() -> CFormula {
        // z = SURFACE[x, y]{ S(x, y) and y <= 9 }
        CFormula::Cmp(
            CTerm::Var("z".into()),
            RelOp::Eq,
            CTerm::Agg(
                Aggregate::Surface,
                vec!["x".into(), "y".into()],
                Box::new(CFormula::And(vec![
                    CFormula::Rel("S".into(), vec!["x".into(), "y".into()]),
                    CFormula::Cmp(
                        CTerm::Var("y".into()),
                        RelOp::Le,
                        CTerm::Const(Rat::from(9i64)),
                    ),
                ])),
            ),
        )
    }

    #[test]
    fn free_vars_exclude_aggregate_bound() {
        let f = example51();
        assert_eq!(f.free_vars(), vec!["z".to_owned()]);
        assert_eq!(f.aggregate_depth(), 1);
    }

    #[test]
    fn variable_order_is_first_appearance() {
        let f = example51();
        assert_eq!(
            f.all_vars_in_order(),
            vec!["z".to_owned(), "x".to_owned(), "y".to_owned()]
        );
    }

    #[test]
    fn display_roundtrips_visually() {
        let f = example51();
        assert_eq!(f.to_string(), "z = SURFACE[x, y]{(S(x, y)) and (y <= 9)}");
    }

    #[test]
    fn analytic_detection() {
        let t = CTerm::Apply(AnalyticFn::Sin, Box::new(CTerm::Var("x".into())));
        assert!(t.has_analytic());
        assert!(!CTerm::Var("x".into()).has_analytic());
    }
}
