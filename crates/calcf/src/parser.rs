//! Recursive-descent / Pratt parser for CALC_F.
//!
//! Grammar (precedence ascending):
//!
//! ```text
//! formula   := or
//! or        := and ("or" and)*
//! and       := unary ("and" unary)*
//! unary     := "not" unary | quantifier | primary
//! quantifier:= ("exists" | "forall") IDENT unary
//! primary   := "(" formula ")" | "true" | "false" | atom
//! atom      := term (("="|"!="|"<"|"<="|">"|">=") term)?   -- must compare
//!            | REL "(" vars ")"
//! term      := sum;  sum := product (("+"|"-") product)*
//! product   := factor (("*"|"/") factor)*
//! factor    := "-" factor | power
//! power     := atom_term ("^" NAT)?
//! atom_term := NUMBER | IDENT | IDENT "(" term ")"      -- analytic fn
//!            | AGG "[" vars "]" "{" formula "}" | "(" term ")"
//! ```
//!
//! An identifier followed by `(` is a relation symbol inside formulas and
//! an analytic function inside terms; aggregates are recognized by name.

use crate::ast::{CFormula, CTerm};
use crate::lexer::{tokenize, LexError, Token};
use cdb_agg::Aggregate;
use cdb_approx::AnalyticFn;
use cdb_constraints::RelOp;
use cdb_num::Rat;
use std::fmt;

/// Parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parse a CALC_F formula from source text.
pub fn parse_formula(src: &str) -> Result<CFormula, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let f = p.formula()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError {
            message: format!("unexpected trailing token: {}", p.tokens[p.pos]),
        });
    }
    Ok(f)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(ref got) if got == t => Ok(()),
            Some(got) => Err(ParseError {
                message: format!("expected {t}, got {got}"),
            }),
            None => Err(ParseError {
                message: format!("expected {t}, got end of input"),
            }),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(got) => Err(ParseError {
                message: format!("expected identifier, got {got}"),
            }),
            None => Err(ParseError {
                message: "expected identifier, got end of input".into(),
            }),
        }
    }

    fn formula(&mut self) -> Result<CFormula, ParseError> {
        let mut parts = vec![self.and_formula()?];
        while self.peek() == Some(&Token::Or) {
            self.next();
            parts.push(self.and_formula()?);
        }
        Ok(match parts.pop() {
            Some(only) if parts.is_empty() => only,
            Some(last) => {
                parts.push(last);
                CFormula::Or(parts)
            }
            None => CFormula::Or(parts),
        })
    }

    fn and_formula(&mut self) -> Result<CFormula, ParseError> {
        let mut parts = vec![self.unary_formula()?];
        while self.peek() == Some(&Token::And) {
            self.next();
            parts.push(self.unary_formula()?);
        }
        Ok(match parts.pop() {
            Some(only) if parts.is_empty() => only,
            Some(last) => {
                parts.push(last);
                CFormula::And(parts)
            }
            None => CFormula::And(parts),
        })
    }

    fn unary_formula(&mut self) -> Result<CFormula, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                self.next();
                Ok(CFormula::Not(Box::new(self.unary_formula()?)))
            }
            Some(Token::Exists) => {
                self.next();
                let v = self.ident()?;
                Ok(CFormula::Exists(v, Box::new(self.unary_formula()?)))
            }
            Some(Token::Forall) => {
                self.next();
                let v = self.ident()?;
                Ok(CFormula::Forall(v, Box::new(self.unary_formula()?)))
            }
            Some(Token::True) => {
                self.next();
                Ok(CFormula::True)
            }
            Some(Token::False) => {
                self.next();
                Ok(CFormula::False)
            }
            Some(Token::LParen) => {
                // Could be a parenthesized formula OR a parenthesized term
                // beginning an atom; try formula first with backtracking.
                let save = self.pos;
                self.next();
                if let Ok(f) = self.formula() {
                    if self.peek() == Some(&Token::RParen) {
                        self.next();
                        // If a comparison operator follows, it was a term.
                        if self.peek_cmp().is_none() {
                            return Ok(f);
                        }
                    }
                }
                self.pos = save;
                self.atom()
            }
            _ => self.atom(),
        }
    }

    fn peek_cmp(&self) -> Option<RelOp> {
        match self.peek() {
            Some(Token::Eq) => Some(RelOp::Eq),
            Some(Token::Ne) => Some(RelOp::Ne),
            Some(Token::Lt) => Some(RelOp::Lt),
            Some(Token::Le) => Some(RelOp::Le),
            Some(Token::Gt) => Some(RelOp::Gt),
            Some(Token::Ge) => Some(RelOp::Ge),
            _ => None,
        }
    }

    /// Relation atom, EVAL predicate, or term comparison.
    fn atom(&mut self) -> Result<CFormula, ParseError> {
        // EVAL in predicate position: EVAL[vars]{φ} not followed by a
        // comparison operator.
        if let Some(Token::Ident(name)) = self.peek() {
            if Aggregate::by_name(name) == Some(Aggregate::Eval)
                && self.tokens.get(self.pos + 1) == Some(&Token::LBracket)
            {
                let save = self.pos;
                self.next(); // EVAL
                self.next(); // [
                let mut vars = vec![self.ident()?];
                while self.peek() == Some(&Token::Comma) {
                    self.next();
                    vars.push(self.ident()?);
                }
                self.expect(&Token::RBracket)?;
                self.expect(&Token::LBrace)?;
                let body = self.formula()?;
                self.expect(&Token::RBrace)?;
                if self.peek_cmp().is_none() {
                    return Ok(CFormula::EvalPred(vars, Box::new(body)));
                }
                self.pos = save;
            }
        }
        // Relation atom: IDENT ( vars ) not followed by an operator, where
        // IDENT is not an analytic function or aggregate name.
        if let Some(Token::Ident(name)) = self.peek().cloned() {
            let is_fn = AnalyticFn::by_name(&name).is_some() || Aggregate::by_name(&name).is_some();
            if !is_fn && self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                let save = self.pos;
                self.next(); // name
                self.next(); // (
                let mut args = Vec::new();
                let ok = loop {
                    match self.next() {
                        Some(Token::Ident(v)) => args.push(v),
                        _ => break false,
                    }
                    match self.next() {
                        Some(Token::Comma) => {}
                        Some(Token::RParen) => break true,
                        _ => break false,
                    }
                };
                if ok && self.peek_cmp().is_none() {
                    return Ok(CFormula::Rel(name, args));
                }
                self.pos = save;
            }
        }
        let lhs = self.term()?;
        let Some(op) = self.peek_cmp() else {
            return Err(ParseError {
                message: "expected comparison operator after term".into(),
            });
        };
        self.next();
        let rhs = self.term()?;
        Ok(CFormula::Cmp(lhs, op, rhs))
    }

    fn term(&mut self) -> Result<CTerm, ParseError> {
        let mut acc = self.product()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.next();
                    acc = CTerm::Add(Box::new(acc), Box::new(self.product()?));
                }
                Some(Token::Minus) => {
                    self.next();
                    acc = CTerm::Sub(Box::new(acc), Box::new(self.product()?));
                }
                _ => return Ok(acc),
            }
        }
    }

    fn product(&mut self) -> Result<CTerm, ParseError> {
        let mut acc = self.factor()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.next();
                    acc = CTerm::Mul(Box::new(acc), Box::new(self.factor()?));
                }
                Some(Token::Slash) => {
                    // Only division by a constant is polynomial.
                    self.next();
                    let rhs = self.factor()?;
                    let CTerm::Const(c) = rhs else {
                        return Err(ParseError {
                            message: "division only by rational constants".into(),
                        });
                    };
                    if c.is_zero() {
                        return Err(ParseError {
                            message: "division by zero".into(),
                        });
                    }
                    acc = CTerm::Mul(Box::new(acc), Box::new(CTerm::Const(c.recip())));
                }
                _ => return Ok(acc),
            }
        }
    }

    fn factor(&mut self) -> Result<CTerm, ParseError> {
        if self.peek() == Some(&Token::Minus) {
            self.next();
            return Ok(CTerm::Neg(Box::new(self.factor()?)));
        }
        self.power()
    }

    fn power(&mut self) -> Result<CTerm, ParseError> {
        let mut base = self.atom_term()?;
        // Left-associative chains: a^2^3 = (a^2)^3 (matching Display of
        // nested Pow nodes).
        while self.peek() == Some(&Token::Caret) {
            self.next();
            match self.next() {
                Some(Token::Number(n)) if !n.contains('.') => {
                    let e: u32 = n.parse().map_err(|_| ParseError {
                        message: format!("bad exponent {n}"),
                    })?;
                    base = CTerm::Pow(Box::new(base), e);
                }
                other => {
                    return Err(ParseError {
                        message: format!("expected natural exponent, got {other:?}"),
                    })
                }
            }
        }
        Ok(base)
    }

    fn atom_term(&mut self) -> Result<CTerm, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => {
                let r: Rat = n.parse().map_err(|_| ParseError {
                    message: format!("bad number {n}"),
                })?;
                Ok(CTerm::Const(r))
            }
            Some(Token::LParen) => {
                let t = self.term()?;
                self.expect(&Token::RParen)?;
                Ok(t)
            }
            Some(Token::Ident(name)) => {
                // Aggregate?
                if let Some(agg) = Aggregate::by_name(&name) {
                    if self.peek() == Some(&Token::LBracket) {
                        self.next();
                        let mut vars = vec![self.ident()?];
                        while self.peek() == Some(&Token::Comma) {
                            self.next();
                            vars.push(self.ident()?);
                        }
                        self.expect(&Token::RBracket)?;
                        self.expect(&Token::LBrace)?;
                        let body = self.formula()?;
                        self.expect(&Token::RBrace)?;
                        return Ok(CTerm::Agg(agg, vars, Box::new(body)));
                    }
                }
                // Analytic function?
                if let Some(f) = AnalyticFn::by_name(&name) {
                    if self.peek() == Some(&Token::LParen) {
                        self.next();
                        let arg = self.term()?;
                        self.expect(&Token::RParen)?;
                        return Ok(CTerm::Apply(f, Box::new(arg)));
                    }
                }
                Ok(CTerm::Var(name))
            }
            other => Err(ParseError {
                message: format!("unexpected token in term: {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_query_parses() {
        let f = parse_formula("exists y (S(x, y) and y <= 0)").unwrap();
        match &f {
            CFormula::Exists(v, body) => {
                assert_eq!(v, "y");
                match body.as_ref() {
                    CFormula::And(parts) => {
                        assert_eq!(parts.len(), 2);
                        assert!(matches!(&parts[0], CFormula::Rel(name, args)
                            if name == "S" && args == &vec!["x".to_owned(), "y".to_owned()]));
                    }
                    other => panic!("expected and, got {other}"),
                }
            }
            other => panic!("expected exists, got {other}"),
        }
    }

    #[test]
    fn example_51_parses() {
        let f = parse_formula("z = SURFACE[x, y]{ S(x, y) and y <= 9 }").unwrap();
        assert_eq!(f.free_vars(), vec!["z".to_owned()]);
        assert_eq!(f.aggregate_depth(), 1);
    }

    #[test]
    fn polynomial_atom() {
        let f = parse_formula("4*x^2 - y - 20*x + 25 <= 0").unwrap();
        assert!(matches!(f, CFormula::Cmp(_, RelOp::Le, _)));
    }

    #[test]
    fn analytic_functions() {
        let f = parse_formula("sin(x) <= 1/2 and x >= 0").unwrap();
        match &f {
            CFormula::And(parts) => match &parts[0] {
                CFormula::Cmp(CTerm::Apply(g, _), RelOp::Le, _) => {
                    assert_eq!(*g, AnalyticFn::Sin);
                }
                other => panic!("expected sin comparison, got {other}"),
            },
            other => panic!("expected and, got {other}"),
        }
    }

    #[test]
    fn precedence() {
        // 1 + 2*x^2 parses as 1 + (2*(x^2)).
        let f = parse_formula("1 + 2*x^2 = 0").unwrap();
        let CFormula::Cmp(lhs, _, _) = f else {
            panic!()
        };
        assert_eq!(lhs.to_string(), "(1 + (2 * x^2))");
    }

    #[test]
    fn nested_parens_and_quantifiers() {
        let f = parse_formula("forall x (exists y (x < y) or (x = 0))").unwrap();
        assert!(matches!(f, CFormula::Forall(_, _)));
        // Parenthesized comparison of a parenthesized term.
        let g = parse_formula("(x + 1) * 2 <= 4").unwrap();
        assert!(matches!(g, CFormula::Cmp(..)));
    }

    #[test]
    fn division_by_constant_only() {
        assert!(parse_formula("x / 2 <= 1").is_ok());
        assert!(parse_formula("1 / x <= 1").is_err());
        assert!(parse_formula("x / 0 <= 1").is_err());
    }

    /// Regression (panic-surface triage): the single-element `And`/`Or`
    /// folds were rewritten without `pop().expect`; parse shapes must be
    /// unchanged on both the one-element and many-element paths.
    #[test]
    fn single_element_folds_keep_shape() {
        assert!(matches!(
            parse_formula("x <= 1").unwrap(),
            CFormula::Cmp(..)
        ));
        assert!(matches!(
            parse_formula("x <= 1 or x >= 2").unwrap(),
            CFormula::Or(_)
        ));
        assert!(matches!(
            parse_formula("x <= 1 and x >= 0").unwrap(),
            CFormula::And(_)
        ));
    }

    #[test]
    fn error_messages() {
        assert!(parse_formula("exists (x)").is_err());
        assert!(parse_formula("x <=").is_err());
        assert!(parse_formula("x <= 1 garbage").is_err());
        assert!(parse_formula("S(x,) <= 1").is_err());
    }

    #[test]
    fn nested_aggregates() {
        let f = parse_formula("w = MAX[v]{ v = SURFACE[x, y]{ S(x, y) and y <= 9 } or v = 0 }")
            .unwrap();
        assert_eq!(f.aggregate_depth(), 2);
    }

    #[test]
    fn relation_vs_function_disambiguation() {
        // `S(x, y)` is a relation; `sin(x)` is a function; both in one query.
        let f = parse_formula("S(x, y) and sin(x) <= y").unwrap();
        let CFormula::And(parts) = &f else { panic!() };
        assert!(matches!(&parts[0], CFormula::Rel(..)));
        assert!(matches!(&parts[1], CFormula::Cmp(CTerm::Apply(..), _, _)));
    }
}
