//! Tokenizer for the CALC_F surface syntax.

use std::fmt;

/// A token of the CALC_F language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier (variable, relation, function, or aggregate name).
    Ident(String),
    /// Numeric literal (integer or decimal), kept as text.
    Number(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// keyword `and`
    And,
    /// keyword `or`
    Or,
    /// keyword `not`
    Not,
    /// keyword `exists`
    Exists,
    /// keyword `forall`
    Forall,
    /// keyword `true`
    True,
    /// keyword `false`
    False,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(s) => write!(f, "{s}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Caret => write!(f, "^"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::And => write!(f, "and"),
            Token::Or => write!(f, "or"),
            Token::Not => write!(f, "not"),
            Token::Exists => write!(f, "exists"),
            Token::Forall => write!(f, "forall"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
        }
    }
}

/// Lexing error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub position: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize CALC_F source text.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b'[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            b']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            b'{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            b'}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                // Comment support: `--` to end of line.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                i += 1;
            }
            b'^' => {
                out.push(Token::Caret);
                i += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected '=' after '!'".into(),
                        position: i,
                    });
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                out.push(Token::Number(src[start..i].to_owned()));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                out.push(match word {
                    "and" => Token::And,
                    "or" => Token::Or,
                    "not" => Token::Not,
                    "exists" => Token::Exists,
                    "forall" => Token::Forall,
                    "true" => Token::True,
                    "false" => Token::False,
                    other => Token::Ident(other.to_owned()),
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected byte {:?}", other as char),
                    position: i,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_query() {
        let toks = tokenize("exists y (S(x, y) and y <= 0)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Exists,
                Token::Ident("y".into()),
                Token::LParen,
                Token::Ident("S".into()),
                Token::LParen,
                Token::Ident("x".into()),
                Token::Comma,
                Token::Ident("y".into()),
                Token::RParen,
                Token::And,
                Token::Ident("y".into()),
                Token::Le,
                Token::Number("0".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn aggregate_syntax() {
        let toks = tokenize("z = SURFACE[x, y]{ S(x, y) and y <= 9 }").unwrap();
        assert!(toks.contains(&Token::LBracket));
        assert!(toks.contains(&Token::LBrace));
        assert!(toks.contains(&Token::Ident("SURFACE".into())));
    }

    #[test]
    fn operators_and_numbers() {
        let toks = tokenize("4*x^2 - 20*x + 25 >= 0.5").unwrap();
        assert!(toks.contains(&Token::Caret));
        assert!(toks.contains(&Token::Number("0.5".into())));
        assert!(toks.contains(&Token::Ge));
        assert_eq!(tokenize("a <> b").unwrap()[1], Token::Ne);
        assert_eq!(tokenize("a != b").unwrap()[1], Token::Ne);
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("x -- this is a comment\n <= 1").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("x".into()),
                Token::Le,
                Token::Number("1".into())
            ]
        );
    }

    #[test]
    fn bad_byte_errors() {
        assert!(tokenize("x # y").is_err());
        assert!(tokenize("x ! y").is_err());
    }
}
