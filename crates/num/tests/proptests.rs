//! Property-based tests for the arithmetic substrate: ring/field axioms,
//! division invariants, parse/display round trips, interval containment and
//! F_k partiality.

use cdb_num::{Fk, FkParams, Int, Rat, RatInterval, Sign, Zk};
use proptest::prelude::*;

fn arb_int() -> impl Strategy<Value = Int> {
    // Mix of small values and multi-limb magnitudes.
    prop_oneof![
        any::<i64>().prop_map(Int::from),
        (any::<i128>(), 0u64..200).prop_map(|(v, sh)| &Int::from(v) << sh),
    ]
}

fn arb_rat() -> impl Strategy<Value = Rat> {
    (any::<i64>(), 1i64..=i64::MAX).prop_map(|(n, d)| Rat::new(Int::from(n), Int::from(d)))
}

proptest! {
    #[test]
    fn int_add_commutative(a in arb_int(), b in arb_int()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn int_add_associative(a in arb_int(), b in arb_int(), c in arb_int()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn int_mul_commutative(a in arb_int(), b in arb_int()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn int_mul_associative(a in arb_int(), b in arb_int(), c in arb_int()) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn int_distributive(a in arb_int(), b in arb_int(), c in arb_int()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn int_sub_inverse(a in arb_int(), b in arb_int()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn int_divrem_invariant(a in arb_int(), b in arb_int()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a.clone());
        prop_assert!(r.abs() < b.abs());
        // Remainder sign matches dividend (or zero).
        prop_assert!(r.is_zero() || r.sign() == a.sign());
    }

    #[test]
    fn int_div_euclid_invariant(a in arb_int(), b in arb_int()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_euclid(&b);
        prop_assert_eq!(&(&q * &b) + &r, a);
        prop_assert!(r.sign() != Sign::Neg);
        prop_assert!(r < b.abs());
    }

    #[test]
    fn int_gcd_divides(a in arb_int(), b in arb_int()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.divrem(&g).1.is_zero());
            prop_assert!(b.divrem(&g).1.is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn int_parse_display_roundtrip(a in arb_int()) {
        let s = a.to_string();
        let back: Int = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn int_shift_roundtrip(a in arb_int(), sh in 0u64..300) {
        prop_assert_eq!(&(&a << sh) >> sh, a);
    }

    #[test]
    fn int_bit_length_bounds(a in arb_int()) {
        prop_assume!(!a.is_zero());
        let bl = a.bit_length();
        prop_assert!(a.abs() < Int::pow2(bl));
        prop_assert!(a.abs() >= Int::pow2(bl - 1));
    }

    #[test]
    fn int_ordering_consistent_with_sub(a in arb_int(), b in arb_int()) {
        prop_assert_eq!(a.cmp(&b), (&a - &b).cmp(&Int::zero()));
    }

    #[test]
    fn rat_field_axioms(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a);
        }
    }

    #[test]
    fn rat_parse_display_roundtrip(a in arb_rat()) {
        let back: Rat = a.to_string().parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn rat_floor_ceil_bracket(a in arb_rat()) {
        let f = Rat::from(a.floor());
        let c = Rat::from(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(&c - &f <= Rat::one());
    }

    #[test]
    fn rat_f64_exact_roundtrip(v in any::<f64>()) {
        prop_assume!(v.is_finite());
        let r = Rat::from_f64(v).unwrap();
        prop_assert_eq!(r.to_f64(), v);
    }

    #[test]
    fn interval_add_contains_pointwise(
        (al, aw) in (-1000i64..1000, 0i64..100),
        (bl, bw) in (-1000i64..1000, 0i64..100),
        t in 0.0f64..=1.0, u in 0.0f64..=1.0,
    ) {
        let a = RatInterval::new(Rat::from(al), Rat::from(al + aw));
        let b = RatInterval::new(Rat::from(bl), Rat::from(bl + bw));
        // Sample interior points via rational approximations of t, u.
        let pa = &Rat::from(al) + &(&Rat::from(aw) * &Rat::from_f64(t).unwrap());
        let pb = &Rat::from(bl) + &(&Rat::from(bw) * &Rat::from_f64(u).unwrap());
        prop_assert!(a.add(&b).contains(&(&pa + &pb)));
        prop_assert!(a.mul(&b).contains(&(&pa * &pb)));
        prop_assert!(a.sub(&b).contains(&(&pa - &pb)));
    }

    #[test]
    fn fk_round_is_close(n in -10_000i64..10_000, d in 1i64..10_000) {
        let params = FkParams::with_k(24);
        let r = Rat::new(Int::from(n), Int::from(d));
        let f = Fk::from_rat_round(&r, params).unwrap();
        // Relative error <= 2^-23 for values in range (plus underflow floor).
        let err = (&f.to_rat() - &r).abs();
        let tol = &r.abs() * &Rat::new(Int::one(), Int::pow2(23))
            + Rat::new(Int::one(), Int::pow2(24));
        prop_assert!(err <= tol, "rounding error too large for {r}");
    }

    #[test]
    fn fk_exact_ops_are_exact(a in -2000i64..2000, b in -2000i64..2000) {
        let params = FkParams::with_k(40);
        let fa = Fk::from_rat_exact(&Rat::from(a), params).unwrap();
        let fb = Fk::from_rat_exact(&Rat::from(b), params).unwrap();
        prop_assert_eq!(fa.add_exact(&fb).unwrap().to_rat(), Rat::from(a + b));
        prop_assert_eq!(fa.mul_exact(&fb).unwrap().to_rat(), Rat::from(a * b));
    }

    #[test]
    fn zk_split_ops_reconstruct(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2, k in 4u32..32) {
        let z = Zk::new(k);
        let m = 1u64 << k;
        let (wa, wb) = (Int::from(a % m), Int::from(b % m));
        // lo + 2^k * hi == exact op
        let sum = z.compose(&z.add_lo(&wa, &wb), &z.add_hi(&wa, &wb));
        prop_assert_eq!(sum, &wa + &wb);
        let prod = z.compose(&z.mul_lo(&wa, &wb), &z.mul_hi(&wa, &wb));
        prop_assert_eq!(prod, &wa * &wb);
    }
}

/// Exact rational value of a finite `f64` (every finite float is dyadic).
fn dyadic(x: f64) -> Option<Rat> {
    if !x.is_finite() {
        return None;
    }
    let bits = x.to_bits();
    let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
    let exp = ((bits >> 52) & 0x7ff) as i64;
    let frac = (bits & ((1u64 << 52) - 1)) as i64;
    let (m, e) = if exp == 0 {
        (sign * frac, -1074i64)
    } else {
        (sign * (frac + (1 << 52)), exp - 1075)
    };
    Some(if e >= 0 {
        Rat::new(&Int::from(m) * &Int::pow2(e as u64), Int::one())
    } else {
        Rat::new(Int::from(m), Int::pow2((-e) as u64))
    })
}

/// `r` lies inside the outward-rounded enclosure `iv` (exact comparison:
/// finite endpoints are compared as dyadic rationals, infinite ones hold
/// trivially).
fn encloses(iv: &cdb_num::FIntv, r: &Rat) -> bool {
    let lo_ok = dyadic(iv.lo()).is_none_or(|lo| &lo <= r);
    let hi_ok = dyadic(iv.hi()).is_none_or(|hi| r <= &hi);
    lo_ok && hi_ok
}

proptest! {
    /// The split-word conversion encloses the exact rational, including
    /// multi-limb numerators/denominators from the shifted generator.
    #[test]
    fn fintv_from_rat_encloses(r in arb_rat(), sh in 0u64..200) {
        let wide = Rat::new(r.numer() << sh, r.denom().clone());
        prop_assert!(encloses(&cdb_num::FIntv::from(&r), &r));
        prop_assert!(encloses(&cdb_num::FIntv::from(&wide), &wide));
    }

    /// Enclosure is preserved by +, −, × (Thm 4.3's split-word ops with
    /// outward rounding): the float interval always contains the exact
    /// rational result.
    #[test]
    fn fintv_ops_enclose_exact(a in arb_rat(), b in arb_rat()) {
        let (fa, fb) = (cdb_num::FIntv::from(&a), cdb_num::FIntv::from(&b));
        prop_assert!(encloses(&fa.add(&fb), &(&a + &b)));
        prop_assert!(encloses(&fa.sub(&fb), &(&a - &b)));
        prop_assert!(encloses(&fa.mul(&fb), &(&a * &b)));
    }

    /// A definite filter sign is never wrong: when the enclosure of a single
    /// rational decides a sign, it is the exact sign.
    #[test]
    fn fintv_definite_sign_is_exact(a in arb_rat(), b in arb_rat()) {
        let v = &a * &b;
        let fv = cdb_num::FIntv::from(&a).mul(&cdb_num::FIntv::from(&b));
        if let Some(s) = fv.sign() {
            prop_assert_eq!(s, v.sign());
        }
    }

    /// The small-limb fast paths agree with the generic multi-limb route:
    /// push both operands past the single-limb boundary and compare.
    #[test]
    fn int_small_and_big_paths_agree(a in any::<i64>(), b in any::<i64>(), sh in 0u64..130) {
        let (sa, sb) = (Int::from(a), Int::from(b));
        let (ba, bb) = (&sa << sh, &sb << sh);
        prop_assert_eq!(&(&sa + &sb) << sh, &ba + &bb);
        prop_assert_eq!(&(&sa * &sb) << (2 * sh), &ba * &bb);
        prop_assert_eq!(sa.cmp(&sb), ba.cmp(&bb));
        if !sa.is_zero() || !sb.is_zero() {
            prop_assert_eq!(&sa.gcd(&sb) << sh, ba.gcd(&bb));
        }
    }
}
