//! The paper's k-floating numbers `F_k` (§4).
//!
//! A floating number is a pair `[n, e]` denoting `n · 2^e` with a mantissa
//! `n` of at most `k` bits and an exponent `e` of at most `log(k)`-many
//! digits, i.e. bounded magnitude. Arithmetic over `F_k` is **partial**
//! (footnote 1 of the paper): an operation whose exact result cannot be
//! represented is *undefined*, caused by "overflow of exponent (number too
//! large or too small) or mantissa (insufficient precision)".
//!
//! We expose both faces used in the paper:
//!
//! * [`Fk::add_exact`] etc. — the relational, partial operations of the
//!   structure `F_k = ⟨F_k, ≤, +, ×, 0, 1⟩`; `None` when undefined.
//! * [`Fk::add_round`] etc. — round-to-nearest versions (ties to even), the
//!   "finite precision arithmetics" whose poor algebraic properties §4
//!   catalogues (no distributivity, order-of-evaluation sensitivity, a
//!   greatest element). These still return `None` on exponent overflow.

use crate::{Int, Rat, Sign};
use std::cmp::Ordering;
use std::fmt;

/// Shape parameters of the structure `F_k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FkParams {
    /// Maximum mantissa bit length `k`.
    pub mantissa_bits: u32,
    /// Exponent magnitude bound: `|e| <= exp_bound`.
    pub exp_bound: i64,
}

impl FkParams {
    /// Parameters with mantissa `k` and the paper's `log(k)`-digit exponent,
    /// i.e. `|e| < 2^ceil(log2 k) ~ k`.
    #[must_use]
    pub fn with_k(k: u32) -> FkParams {
        FkParams {
            mantissa_bits: k,
            exp_bound: i64::from(k.max(2)),
        }
    }

    /// IEEE-double-like shape (53-bit mantissa).
    #[must_use]
    pub fn double_like() -> FkParams {
        FkParams {
            mantissa_bits: 53,
            exp_bound: 1023,
        }
    }
}

/// Error raised when an `F_k` operation is undefined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FkError {
    /// Exponent outside `[-exp_bound, exp_bound]`.
    ExponentOverflow,
    /// Exact result needs more than `k` mantissa bits.
    InsufficientPrecision,
}

impl fmt::Display for FkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FkError::ExponentOverflow => write!(f, "F_k exponent overflow"),
            FkError::InsufficientPrecision => write!(f, "F_k mantissa precision exceeded"),
        }
    }
}

impl std::error::Error for FkError {}

/// A k-floating number `[n, e]` = `n · 2^e`, normalized so that `n` is odd
/// or zero (maximizing representable range).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Fk {
    mant: Int,
    exp: i64,
    params: FkParams,
}

impl Fk {
    /// Zero in the given structure.
    #[must_use]
    pub fn zero(params: FkParams) -> Fk {
        Fk {
            mant: Int::zero(),
            exp: 0,
            params,
        }
    }

    /// One in the given structure.
    #[must_use]
    pub fn one(params: FkParams) -> Fk {
        Fk {
            mant: Int::one(),
            exp: 0,
            params,
        }
    }

    /// Construct from mantissa and exponent, normalizing. `Err` if the value
    /// is not representable in `F_k`.
    pub fn new(mut mant: Int, mut exp: i64, params: FkParams) -> Result<Fk, FkError> {
        if mant.is_zero() {
            return Ok(Fk::zero(params));
        }
        if let Some(tz) = mant.trailing_zeros() {
            if tz > 0 {
                mant = &mant >> tz;
                exp = exp
                    .checked_add(tz as i64)
                    .ok_or(FkError::ExponentOverflow)?;
            }
        }
        if mant.bit_length() > u64::from(params.mantissa_bits) {
            return Err(FkError::InsufficientPrecision);
        }
        if exp.abs() > params.exp_bound {
            return Err(FkError::ExponentOverflow);
        }
        Ok(Fk { mant, exp, params })
    }

    /// The largest element of `F_k` — which *exists*, unlike in `R` (the
    /// paper's example of a non-desirable deduction: `F_k ⊨ ∃x∀y (y ≤ x)`).
    #[must_use]
    pub fn max_value(params: FkParams) -> Fk {
        let mant = &Int::pow2(u64::from(params.mantissa_bits)) - &Int::one();
        // cdb-lint: allow(panic) — (2^m − 1) · 2^exp_bound is representable by
        // construction: the mantissa has exactly `mantissa_bits` bits and the
        // exponent equals the bound, so `Fk::new` cannot reject it.
        Fk::new(mant, params.exp_bound, params).expect("max value is representable")
    }

    /// Structure parameters.
    #[must_use]
    pub fn params(&self) -> FkParams {
        self.params
    }

    /// Mantissa.
    #[must_use]
    pub fn mantissa(&self) -> &Int {
        &self.mant
    }

    /// Exponent.
    #[must_use]
    pub fn exponent(&self) -> i64 {
        self.exp
    }

    /// True iff 0.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.mant.is_zero()
    }

    /// Exact value as a rational.
    #[must_use]
    pub fn to_rat(&self) -> Rat {
        if self.exp >= 0 {
            Rat::from(&self.mant << (self.exp as u64))
        } else {
            Rat::new(self.mant.clone(), Int::pow2((-self.exp) as u64))
        }
    }

    /// Exact conversion from a rational; `Err` if not a representable dyadic.
    pub fn from_rat_exact(r: &Rat, params: FkParams) -> Result<Fk, FkError> {
        let den = r.denom();
        // Representable iff denominator is a power of two (dyadic).
        let tz = den.trailing_zeros().unwrap_or(0);
        if (den >> tz) != Int::one() {
            return Err(FkError::InsufficientPrecision);
        }
        Fk::new(r.numer().clone(), -(tz as i64), params)
    }

    /// Round a rational to the nearest representable `F_k` value
    /// (ties to even). `Err` only on exponent overflow.
    pub fn from_rat_round(r: &Rat, params: FkParams) -> Result<Fk, FkError> {
        if r.is_zero() {
            return Ok(Fk::zero(params));
        }
        let k = i64::from(params.mantissa_bits);
        // Find e such that mant = round(r * 2^-e) has exactly <= k bits:
        // bitlen(num) - bitlen(den) approximates log2 |r|.
        let approx_log = r.numer().bit_length() as i64 - r.denom().bit_length() as i64;
        // Gradual underflow: never scale below 2^-exp_bound; tiny values lose
        // mantissa bits rather than becoming undefined (only "number too
        // large" overflows the exponent under rounding).
        let mut e = (approx_log - k).max(-params.exp_bound);
        // scaled = r / 2^e; adjust e until mantissa fits in k bits exactly.
        loop {
            let mant = Fk::round_div_pow2(r, e);
            let bl = mant.bit_length() as i64;
            if bl > k {
                e += bl - k;
                continue;
            }
            if bl < k && bl > 0 {
                // Could use more precision; but rounding again at finer scale
                // may round up to k+1 bits, so check. Stay within the
                // exponent range.
                let finer_e = (e - (k - bl)).max(-params.exp_bound);
                if finer_e < e {
                    let finer = Fk::round_div_pow2(r, finer_e);
                    if finer.bit_length() as i64 <= k {
                        return Fk::new(finer, finer_e, params);
                    }
                }
            }
            return Fk::new(mant, e, params);
        }
    }

    /// round(r / 2^e), ties to even.
    fn round_div_pow2(r: &Rat, e: i64) -> Int {
        // r / 2^e = num * 2^-e / den
        let (num, den) = if e >= 0 {
            (r.numer().clone(), r.denom() << (e as u64))
        } else {
            (r.numer() << ((-e) as u64), r.denom().clone())
        };
        let (q, rem) = num.div_euclid(&den);
        let twice = &(&rem + &rem) - &den; // sign tells which half
        match twice.sign() {
            Sign::Neg => q,
            Sign::Pos => &q + &Int::one(),
            Sign::Zero => {
                if q.is_even() {
                    q
                } else {
                    &q + &Int::one()
                }
            }
        }
    }

    fn check_params(&self, other: &Fk) {
        assert_eq!(self.params, other.params, "mixing F_k structures");
    }

    /// Partial exact addition (the relational `+` of the structure `F_k`).
    pub fn add_exact(&self, other: &Fk) -> Result<Fk, FkError> {
        self.check_params(other);
        Fk::from_rat_exact(&(&self.to_rat() + &other.to_rat()), self.params)
    }

    /// Partial exact multiplication.
    pub fn mul_exact(&self, other: &Fk) -> Result<Fk, FkError> {
        self.check_params(other);
        Fk::from_rat_exact(&(&self.to_rat() * &other.to_rat()), self.params)
    }

    /// Partial exact subtraction.
    pub fn sub_exact(&self, other: &Fk) -> Result<Fk, FkError> {
        self.check_params(other);
        Fk::from_rat_exact(&(&self.to_rat() - &other.to_rat()), self.params)
    }

    /// Rounded addition (round to nearest, ties even).
    pub fn add_round(&self, other: &Fk) -> Result<Fk, FkError> {
        self.check_params(other);
        Fk::from_rat_round(&(&self.to_rat() + &other.to_rat()), self.params)
    }

    /// Rounded subtraction.
    pub fn sub_round(&self, other: &Fk) -> Result<Fk, FkError> {
        self.check_params(other);
        Fk::from_rat_round(&(&self.to_rat() - &other.to_rat()), self.params)
    }

    /// Rounded multiplication.
    pub fn mul_round(&self, other: &Fk) -> Result<Fk, FkError> {
        self.check_params(other);
        Fk::from_rat_round(&(&self.to_rat() * &other.to_rat()), self.params)
    }

    /// Rounded division. `Err(InsufficientPrecision)` is never produced;
    /// `Err(ExponentOverflow)` on range overflow. Panics on division by zero.
    pub fn div_round(&self, other: &Fk) -> Result<Fk, FkError> {
        self.check_params(other);
        Fk::from_rat_round(&(&self.to_rat() / &other.to_rat()), self.params)
    }
}

impl PartialOrd for Fk {
    fn partial_cmp(&self, other: &Fk) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fk {
    fn cmp(&self, other: &Fk) -> Ordering {
        self.to_rat().cmp(&other.to_rat())
    }
}

impl fmt::Display for Fk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.mant, self.exp)
    }
}

impl fmt::Debug for Fk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fk({} * 2^{})", self.mant, self.exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p8() -> FkParams {
        FkParams::with_k(8)
    }

    fn fk(m: i64, e: i64) -> Fk {
        Fk::new(Int::from(m), e, p8()).unwrap()
    }

    #[test]
    fn normalization_strips_trailing_zeros() {
        let a = fk(8, 0);
        assert_eq!(a.mantissa(), &Int::from(1));
        assert_eq!(a.exponent(), 3);
    }

    #[test]
    fn exact_add_within_precision() {
        let a = fk(3, 0);
        let b = fk(5, 0);
        assert_eq!(a.add_exact(&b).unwrap(), fk(8, 0));
    }

    #[test]
    fn exact_add_insufficient_precision() {
        // 255*2 + 1 = 511 needs 9 mantissa bits; k = 8.
        let a = Fk::new(Int::from(255), 1, p8()).unwrap();
        let b = Fk::one(p8());
        assert_eq!(a.add_exact(&b), Err(FkError::InsufficientPrecision));
    }

    #[test]
    fn exponent_overflow() {
        assert_eq!(
            Fk::new(Int::one(), 100, p8()).unwrap_err(),
            FkError::ExponentOverflow
        );
        let m = Fk::max_value(p8());
        assert!(m.mul_round(&m).is_err());
    }

    #[test]
    fn greatest_element_exists() {
        // F_k |= exists x forall y (y <= x): max_value is that witness.
        let m = Fk::max_value(p8());
        for v in [-100i64, 0, 1, 200] {
            let w = Fk::from_rat_round(&Rat::from(v), p8()).unwrap();
            assert!(w <= m);
        }
    }

    #[test]
    fn distributivity_fails_under_rounding() {
        // Find witnesses a*(b+c) != a*b + a*c under round-to-8-bits.
        let params = p8();
        let mk = |v: i64| Fk::from_rat_round(&Rat::from(v), params).unwrap();
        let mut found = false;
        'outer: for a in 1..40i64 {
            for b in 1..40i64 {
                for c in 1..40i64 {
                    let (fa, fb, fc) = (mk(a), mk(b), mk(c));
                    let lhs = fa.mul_round(&fb.add_round(&fc).unwrap()).unwrap();
                    let rhs = fa
                        .mul_round(&fb)
                        .unwrap()
                        .add_round(&fa.mul_round(&fc).unwrap())
                        .unwrap();
                    if lhs != rhs {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "distributivity should fail somewhere in F_8");
    }

    #[test]
    fn rounding_ties_to_even() {
        // 5/2 rounds... exactly representable. Use a tiny mantissa space:
        let params = FkParams {
            mantissa_bits: 2,
            exp_bound: 32,
        };
        // 5 = 101b needs 3 bits; round to 2 bits: candidates 4 (=100b -> 1*2^2)
        // and 6 (=11*2). 5 is equidistant; ties-to-even picks 4 (mantissa 1).
        let r = Fk::from_rat_round(&Rat::from(5i64), params).unwrap();
        assert_eq!(r.to_rat(), Rat::from(4i64));
    }

    #[test]
    fn rat_roundtrip() {
        let a = fk(-37, 3);
        assert_eq!(Fk::from_rat_exact(&a.to_rat(), p8()).unwrap(), a);
    }

    #[test]
    fn order_matches_value() {
        assert!(fk(1, 4) > fk(15, 0)); // 16 > 15
        assert!(fk(-1, 4) < fk(-15, 0));
        assert!(fk(3, -2) < fk(1, 0)); // 0.75 < 1
    }

    #[test]
    fn round_from_rational_third() {
        let params = FkParams::with_k(10);
        let third = Rat::from_ints(1, 3);
        let r = Fk::from_rat_round(&third, params).unwrap();
        let err = (&r.to_rat() - &third).abs();
        // error < 2^-(10) relative-ish: ulp at scale ~2^-10 / 2^10
        assert!(err < Rat::new(Int::one(), Int::pow2(11)));
    }
}
