//! Exact rational interval arithmetic.
//!
//! Used for sign determination at real algebraic sample points during CAD
//! lifting: an algebraic number is carried as a shrinking rational enclosure,
//! and polynomial values are evaluated over the enclosure until the sign is
//! decided (interval arithmetic with *exact* endpoints never lies — it is
//! only ever inconclusive, in which case the enclosure is refined).

use crate::{Rat, Sign};
use std::fmt;

/// A closed interval `[lo, hi]` with exact rational endpoints, `lo <= hi`.
#[derive(Clone, PartialEq, Eq)]
pub struct RatInterval {
    lo: Rat,
    hi: Rat,
}

impl RatInterval {
    /// Construct; panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: Rat, hi: Rat) -> RatInterval {
        assert!(lo <= hi, "interval endpoints out of order");
        RatInterval { lo, hi }
    }

    /// A degenerate point interval.
    #[must_use]
    pub fn point(v: Rat) -> RatInterval {
        RatInterval {
            lo: v.clone(),
            hi: v,
        }
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(&self) -> &Rat {
        &self.lo
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(&self) -> &Rat {
        &self.hi
    }

    /// Width `hi - lo`.
    #[must_use]
    pub fn width(&self) -> Rat {
        &self.hi - &self.lo
    }

    /// Midpoint.
    #[must_use]
    pub fn midpoint(&self) -> Rat {
        Rat::midpoint(&self.lo, &self.hi)
    }

    /// True iff `v` lies inside (closed).
    #[must_use]
    pub fn contains(&self, v: &Rat) -> bool {
        &self.lo <= v && v <= &self.hi
    }

    /// True iff `0` lies inside (closed).
    #[must_use]
    pub fn contains_zero(&self) -> bool {
        !self.lo.sign().eq(&Sign::Pos) && !self.hi.sign().eq(&Sign::Neg)
    }

    /// Definite sign of every point of the interval, or `None` if mixed.
    #[must_use]
    pub fn sign(&self) -> Option<Sign> {
        match (self.lo.sign(), self.hi.sign()) {
            (Sign::Pos, _) => Some(Sign::Pos),
            (_, Sign::Neg) => Some(Sign::Neg),
            (Sign::Zero, Sign::Zero) => Some(Sign::Zero),
            _ => None,
        }
    }

    /// Interval sum.
    #[must_use]
    pub fn add(&self, other: &RatInterval) -> RatInterval {
        RatInterval {
            lo: &self.lo + &other.lo,
            hi: &self.hi + &other.hi,
        }
    }

    /// Interval difference.
    #[must_use]
    pub fn sub(&self, other: &RatInterval) -> RatInterval {
        RatInterval {
            lo: &self.lo - &other.hi,
            hi: &self.hi - &other.lo,
        }
    }

    /// Interval negation.
    #[must_use]
    pub fn neg(&self) -> RatInterval {
        RatInterval {
            lo: -&self.hi,
            hi: -&self.lo,
        }
    }

    /// Interval product (min/max of the four corner products).
    #[must_use]
    pub fn mul(&self, other: &RatInterval) -> RatInterval {
        let mut lo = &self.lo * &other.lo;
        let mut hi = lo.clone();
        for p in [
            &self.lo * &other.hi,
            &self.hi * &other.lo,
            &self.hi * &other.hi,
        ] {
            if p < lo {
                lo = p.clone();
            }
            if p > hi {
                hi = p;
            }
        }
        RatInterval { lo, hi }
    }

    /// Scale by an exact rational.
    #[must_use]
    pub fn scale(&self, c: &Rat) -> RatInterval {
        if c.sign() == Sign::Neg {
            RatInterval {
                lo: &self.hi * c,
                hi: &self.lo * c,
            }
        } else {
            RatInterval {
                lo: &self.lo * c,
                hi: &self.hi * c,
            }
        }
    }

    /// Interval power by repeated squaring-compatible exact rules.
    #[must_use]
    pub fn pow(&self, n: u32) -> RatInterval {
        if n == 0 {
            return RatInterval::point(Rat::one());
        }
        if n % 2 == 1 {
            // Odd power is monotone.
            return RatInterval {
                lo: self.lo.pow(n as i32),
                hi: self.hi.pow(n as i32),
            };
        }
        // Even power: minimum at the point closest to 0.
        let lo_p = self.lo.pow(n as i32);
        let hi_p = self.hi.pow(n as i32);
        if self.contains_zero() {
            RatInterval {
                lo: Rat::zero(),
                hi: Rat::max(lo_p, hi_p),
            }
        } else {
            RatInterval {
                lo: Rat::min(lo_p.clone(), hi_p.clone()),
                hi: Rat::max(lo_p, hi_p),
            }
        }
    }

    /// Interval division; `None` when the divisor contains zero.
    #[must_use]
    pub fn div(&self, other: &RatInterval) -> Option<RatInterval> {
        if other.contains_zero() {
            return None;
        }
        let inv = RatInterval {
            lo: other.hi.recip(),
            hi: other.lo.recip(),
        };
        Some(self.mul(&inv))
    }

    /// Intersection; `None` when disjoint.
    #[must_use]
    pub fn intersect(&self, other: &RatInterval) -> Option<RatInterval> {
        let lo = Rat::max(self.lo.clone(), other.lo.clone());
        let hi = Rat::min(self.hi.clone(), other.hi.clone());
        (lo <= hi).then_some(RatInterval { lo, hi })
    }

    /// Left and right halves split at the midpoint.
    #[must_use]
    pub fn bisect(&self) -> (RatInterval, RatInterval) {
        let m = self.midpoint();
        (
            RatInterval {
                lo: self.lo.clone(),
                hi: m.clone(),
            },
            RatInterval {
                lo: m,
                hi: self.hi.clone(),
            },
        )
    }
}

impl fmt::Display for RatInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl fmt::Debug for RatInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RatInterval{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> RatInterval {
        RatInterval::new(Rat::from(a), Rat::from(b))
    }

    #[test]
    fn basic_ops() {
        assert_eq!(iv(1, 2).add(&iv(3, 4)), iv(4, 6));
        assert_eq!(iv(1, 2).sub(&iv(3, 4)), iv(-3, -1));
        assert_eq!(iv(-1, 2).mul(&iv(3, 4)), iv(-4, 8));
        assert_eq!(iv(-2, -1).mul(&iv(-3, 4)), iv(-8, 6));
    }

    #[test]
    fn signs() {
        assert_eq!(iv(1, 5).sign(), Some(Sign::Pos));
        assert_eq!(iv(-5, -1).sign(), Some(Sign::Neg));
        assert_eq!(iv(-1, 1).sign(), None);
        assert_eq!(iv(0, 0).sign(), Some(Sign::Zero));
        assert_eq!(iv(0, 3).sign(), None); // contains 0 and positives
    }

    #[test]
    fn division() {
        assert_eq!(iv(1, 2).div(&iv(-1, 1)), None);
        let q = iv(1, 2).div(&iv(2, 4)).unwrap();
        assert_eq!(q, RatInterval::new("1/4".parse().unwrap(), Rat::one()));
    }

    #[test]
    fn powers() {
        assert_eq!(iv(-2, 3).pow(2), iv(0, 9));
        assert_eq!(iv(-3, -2).pow(2), iv(4, 9));
        assert_eq!(iv(-2, 3).pow(3), iv(-8, 27));
        assert_eq!(iv(-2, 3).pow(0), iv(1, 1));
    }

    #[test]
    fn intersection_and_bisection() {
        assert_eq!(iv(0, 4).intersect(&iv(2, 6)), Some(iv(2, 4)));
        assert_eq!(iv(0, 1).intersect(&iv(2, 3)), None);
        let (l, r) = iv(0, 2).bisect();
        assert_eq!(l, iv(0, 1));
        assert_eq!(r, iv(1, 2));
    }

    #[test]
    fn containment_monotone_under_mul() {
        // The product interval contains all pairwise products of members.
        let a = iv(-3, 5);
        let b = iv(-2, 7);
        let p = a.mul(&b);
        for x in [-3i64, 0, 5] {
            for y in [-2i64, 1, 7] {
                assert!(p.contains(&Rat::from(x * y)));
            }
        }
    }
}
