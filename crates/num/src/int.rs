//! Arbitrary-precision signed integers.
//!
//! Implemented from scratch (no external bignum crates are available in this
//! environment): sign-magnitude representation over little-endian `u64`
//! limbs, schoolbook + Karatsuba multiplication, Knuth Algorithm D division.
//!
//! Magnitudes that fit one `u64` are stored inline ([`Mag::Small`]) so the
//! small coefficients that dominate CAD/Sturm workloads never touch the heap;
//! add/mul/cmp/gcd/divrem all have allocation-free single-limb fast paths.
//!
//! Bit lengths are first-class here ([`Int::bit_length`]) because the paper's
//! finite-precision semantics (§4) is defined by bounding the bit length of
//! every integer the QE algorithm manipulates.

use crate::Sign;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// Magnitude storage: inline single limb or heap-allocated limb vector.
///
/// Canonical form (required for derived `PartialEq`/`Hash` to coincide with
/// numeric equality): the value 0 is always `Small(0)` (paired with
/// `Sign::Zero`); any magnitude fitting one limb is `Small`; `Big` always
/// holds >= 2 limbs with a nonzero top limb.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Mag {
    /// Inline single-limb magnitude (no heap allocation).
    Small(u64),
    /// Little-endian magnitude limbs, length >= 2, top limb nonzero.
    Big(Vec<u64>),
}

/// Arbitrary-precision signed integer.
///
/// Invariants: `mag` is in canonical form (see [`Mag`]); `sign` is `Zero`
/// iff the magnitude is zero.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Int {
    sign: Sign,
    mag: Mag,
}

const KARATSUBA_THRESHOLD: usize = 32;

impl Int {
    /// The integer 0.
    #[must_use]
    pub fn zero() -> Int {
        Int {
            sign: Sign::Zero,
            mag: Mag::Small(0),
        }
    }

    /// The integer 1.
    #[must_use]
    pub fn one() -> Int {
        Int::from(1i64)
    }

    /// True iff this is 0.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True iff this is 1.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Pos && matches!(self.mag, Mag::Small(1))
    }

    /// Sign of the integer.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// True iff strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Neg
    }

    /// True iff even (0 is even).
    #[must_use]
    pub fn is_even(&self) -> bool {
        self.limbs().first().is_none_or(|l| l & 1 == 0)
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Int {
        Int {
            sign: if self.is_zero() {
                Sign::Zero
            } else {
                Sign::Pos
            },
            mag: self.mag.clone(),
        }
    }

    /// Magnitude limbs as a little-endian slice (empty for 0).
    fn limbs(&self) -> &[u64] {
        match &self.mag {
            Mag::Small(0) => &[],
            Mag::Small(l) => std::slice::from_ref(l),
            Mag::Big(v) => v,
        }
    }

    /// Canonical single-limb constructor; `m == 0` yields [`Int::zero`].
    fn small(sign: Sign, m: u64) -> Int {
        if m == 0 {
            Int::zero()
        } else {
            debug_assert!(sign != Sign::Zero);
            Int {
                sign,
                mag: Mag::Small(m),
            }
        }
    }

    /// Canonical constructor from a `u128` magnitude.
    fn from_u128_mag(sign: Sign, m: u128) -> Int {
        let hi = (m >> 64) as u64;
        if hi == 0 {
            Int::small(sign, m as u64)
        } else {
            Int {
                sign,
                mag: Mag::Big(vec![m as u64, hi]),
            }
        }
    }

    /// Number of bits in the magnitude; 0 for the integer 0.
    ///
    /// This is the quantity bounded by the finite-precision semantics: an
    /// integer `n` "occurs with bit length `bit_length(n)`".
    #[must_use]
    pub fn bit_length(&self) -> u64 {
        let limbs = self.limbs();
        match limbs.last() {
            None => 0,
            Some(&top) => (limbs.len() as u64 - 1) * 64 + (64 - u64::from(top.leading_zeros())),
        }
    }

    /// Number of trailing zero bits; `None` for 0.
    #[must_use]
    pub fn trailing_zeros(&self) -> Option<u64> {
        if self.is_zero() {
            return None;
        }
        let mut total = 0u64;
        for &limb in self.limbs() {
            if limb == 0 {
                total += 64;
            } else {
                return Some(total + u64::from(limb.trailing_zeros()));
            }
        }
        // cdb-lint: allow(panic) — `is_zero()` returned false above, and the
        // magnitude is kept trimmed by construction (`Int::trim`), so a
        // nonzero limb always exists; total conversion has no error channel
        // in this infallible numeric API.
        unreachable!("normalized nonzero Int has a nonzero limb")
    }

    fn trim(mut mag: Vec<u64>) -> Vec<u64> {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        mag
    }

    fn from_mag(sign: Sign, mag: Vec<u64>) -> Int {
        let mag = Int::trim(mag);
        if let [only] = mag.as_slice() {
            return Int {
                sign,
                mag: Mag::Small(*only),
            };
        }
        if mag.is_empty() {
            return Int::zero();
        }
        Int {
            sign,
            mag: Mag::Big(mag),
        }
    }

    /// Compare magnitudes only.
    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            if a[i] != b[i] {
                return a[i].cmp(&b[i]);
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &li) in long.iter().enumerate() {
            let bi = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = li.overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// Requires |a| >= |b|.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Int::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for (i, &ai) in a.iter().enumerate() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (d1, b1) = ai.overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        Int::trim(out)
    }

    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        if a.len().min(b.len()) >= KARATSUBA_THRESHOLD {
            return Int::karatsuba(a, b);
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = u128::from(out[i + j]) + u128::from(ai) * u128::from(bj) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = u128::from(out[k]) + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Int::trim(out)
    }

    fn karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
        let split = a.len().max(b.len()) / 2;
        let (a0, a1) = a.split_at(a.len().min(split));
        let (b0, b1) = b.split_at(b.len().min(split));
        // a = a1*B + a0, b = b1*B + b0 with B = 2^(64*split).
        let z0 = Int::mul_mag(a0, b0);
        let z2 = Int::mul_mag(a1, b1);
        let a01 = Int::add_mag(a0, a1);
        let b01 = Int::add_mag(b0, b1);
        let mut z1 = Int::mul_mag(&a01, &b01);
        z1 = Int::sub_mag(&z1, &z0);
        z1 = Int::sub_mag(&z1, &z2);
        // result = z2*B^2 + z1*B + z0
        let mut out = vec![0u64; a.len() + b.len() + 1];
        Int::add_shifted(&mut out, &z0, 0);
        Int::add_shifted(&mut out, &z1, split);
        Int::add_shifted(&mut out, &z2, 2 * split);
        Int::trim(out)
    }

    fn add_shifted(acc: &mut [u64], v: &[u64], shift: usize) {
        let mut carry = 0u64;
        let mut i = 0;
        while i < v.len() || carry != 0 {
            let idx = shift + i;
            let add = v.get(i).copied().unwrap_or(0);
            let (s1, c1) = acc[idx].overflowing_add(add);
            let (s2, c2) = s1.overflowing_add(carry);
            acc[idx] = s2;
            carry = u64::from(c1) + u64::from(c2);
            i += 1;
        }
    }

    fn shl_mag(mag: &[u64], bits: u64) -> Vec<u64> {
        if mag.is_empty() {
            return Vec::new();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(mag);
        } else {
            let mut carry = 0u64;
            for &l in mag {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Int::trim(out)
    }

    fn shr_mag(mag: &[u64], bits: u64) -> Vec<u64> {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= mag.len() {
            return Vec::new();
        }
        let bit_shift = bits % 64;
        let src = &mag[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        Int::trim(out)
    }

    /// Knuth Algorithm D. Returns (quotient, remainder) of magnitudes;
    /// requires `b` nonzero.
    fn divrem_mag(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert!(!b.is_empty(), "division by zero");
        match Int::cmp_mag(a, b) {
            Ordering::Less => return (Vec::new(), a.to_vec()),
            Ordering::Equal => return (vec![1], Vec::new()),
            Ordering::Greater => {}
        }
        if let [d] = b {
            let d = *d;
            let mut q = vec![0u64; a.len()];
            let mut rem = 0u128;
            for i in (0..a.len()).rev() {
                let cur = (rem << 64) | u128::from(a[i]);
                q[i] = (cur / u128::from(d)) as u64;
                rem = cur % u128::from(d);
            }
            let r = if rem == 0 {
                Vec::new()
            } else {
                vec![rem as u64]
            };
            return (Int::trim(q), r);
        }
        // Normalize so the divisor's top limb has its high bit set. The shift
        // keeps bn at b.len() limbs and an grows to at most a.len()+1.
        let shift = u64::from(b.last().map_or(0, |t| t.leading_zeros()));
        let bn = Int::shl_mag(b, shift);
        let mut an = Int::shl_mag(a, shift);
        an.resize(a.len() + 1, 0);
        let n = bn.len();
        debug_assert_eq!(n, b.len());
        let m = an.len() - n - 1;
        let mut q = vec![0u64; m + 1];
        let btop = u128::from(bn[n - 1]);
        let bsec = if n >= 2 { u128::from(bn[n - 2]) } else { 0 };
        for j in (0..=m).rev() {
            let top = (u128::from(an[j + n]) << 64) | u128::from(an[j + n - 1]);
            let mut qhat = top / btop;
            let mut rhat = top % btop;
            if qhat > u128::from(u64::MAX) {
                qhat = u128::from(u64::MAX);
                rhat = top - qhat * btop;
            }
            while rhat <= u128::from(u64::MAX)
                && qhat * bsec > ((rhat << 64) | u128::from(if n >= 2 { an[j + n - 2] } else { 0 }))
            {
                qhat -= 1;
                rhat += btop;
            }
            // Multiply-subtract qhat * bn from an[j..j+n+1].
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * u128::from(bn[i]) + carry;
                carry = p >> 64;
                let sub = i128::from(an[j + i]) - i128::from(p as u64) + borrow;
                an[j + i] = sub as u64;
                borrow = sub >> 64;
            }
            let sub = i128::from(an[j + n]) - i128::from(carry as u64) + borrow;
            an[j + n] = sub as u64;
            borrow = sub >> 64;
            let mut qj = qhat as u64;
            if borrow < 0 {
                // qhat was one too large: add back.
                qj -= 1;
                let mut c = 0u64;
                for i in 0..n {
                    let (s1, c1) = an[j + i].overflowing_add(bn[i]);
                    let (s2, c2) = s1.overflowing_add(c);
                    an[j + i] = s2;
                    c = u64::from(c1) + u64::from(c2);
                }
                an[j + n] = an[j + n].wrapping_add(c);
            }
            q[j] = qj;
        }
        let r = Int::shr_mag(&Int::trim(an[..n].to_vec()), shift);
        (Int::trim(q), r)
    }

    /// Truncated division with remainder: `self = q*other + r`,
    /// `|r| < |other|`, `r` has the sign of `self` (or is zero).
    #[must_use]
    pub fn divrem(&self, other: &Int) -> (Int, Int) {
        assert!(!other.is_zero(), "division by zero");
        if self.is_zero() {
            return (Int::zero(), Int::zero());
        }
        if let (Mag::Small(a), Mag::Small(b)) = (&self.mag, &other.mag) {
            return (
                Int::small(self.sign.mul(other.sign), a / b),
                Int::small(self.sign, a % b),
            );
        }
        let (qm, rm) = Int::divrem_mag(self.limbs(), other.limbs());
        let qsign = self.sign.mul(other.sign);
        (Int::from_mag(qsign, qm), Int::from_mag(self.sign, rm))
    }

    /// Euclidean division: remainder in `[0, |other|)`.
    #[must_use]
    pub fn div_euclid(&self, other: &Int) -> (Int, Int) {
        let (q, r) = self.divrem(other);
        if r.is_negative() {
            if other.is_negative() {
                (&q + &Int::one(), &r - other)
            } else {
                (&q - &Int::one(), &r + other)
            }
        } else {
            (q, r)
        }
    }

    /// Exact division; panics in debug builds if the division is not exact.
    #[must_use]
    pub fn div_exact(&self, other: &Int) -> Int {
        let (q, r) = self.divrem(other);
        debug_assert!(r.is_zero(), "div_exact with nonzero remainder");
        q
    }

    /// Greatest common divisor (always non-negative).
    #[must_use]
    pub fn gcd(&self, other: &Int) -> Int {
        fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let r = a % b;
                a = b;
                b = r;
            }
            a
        }
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            // Euclid's magnitudes shrink monotonically, so most of the loop
            // runs in the allocation-free single-limb regime.
            if let (Mag::Small(x), Mag::Small(y)) = (&a.mag, &b.mag) {
                return Int::small(Sign::Pos, gcd_u64(*x, *y));
            }
            let r = a.divrem(&b).1;
            a = b;
            b = r;
        }
        a
    }

    /// `self^exp`.
    #[must_use]
    pub fn pow(&self, mut exp: u32) -> Int {
        let mut base = self.clone();
        let mut acc = Int::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Convert to `f64` (may overflow to infinity, lose precision).
    ///
    /// This function and [`Int::to_f64_interval`] are the audited
    /// exact→float widening primitives behind the `FIntv` filter — the one
    /// door finite precision walks through (Thm 4.3); hence the per-line
    /// float allows.
    #[must_use]
    // cdb-lint: allow(float) — FIntv widening boundary (Thm 4.3): this block is the audited exact→float door
    pub fn to_f64(&self) -> f64 {
        // cdb-lint: allow(float) — FIntv widening boundary (Thm 4.3): this block is the audited exact→float door
        let mut v = 0.0f64;
        for &limb in self.limbs().iter().rev() {
            // cdb-lint: allow(float) — FIntv widening boundary (Thm 4.3): this block is the audited exact→float door
            v = v * 1.8446744073709552e19 + limb as f64; // 2^64
        }
        if self.sign == Sign::Neg {
            -v
        } else {
            v
        }
    }

    /// Guaranteed two-sided `f64` enclosure: returns `(lo, hi)` with
    /// `lo <= self <= hi` as real numbers.
    ///
    /// The enclosure is exact (`lo == hi`) whenever the value fits in 53
    /// bits; otherwise it is outward-rounded from the top 64 bits of the
    /// magnitude via [`f64::next_down`]/[`f64::next_up`] — the `+l`/`+u`
    /// directed roundings of the paper's split-word arithmetic (Thm 4.3).
    /// Values beyond the finite `f64` range yield an infinite endpoint on
    /// the far side and `±f64::MAX` on the near side, so the enclosure
    /// stays valid.
    #[must_use]
    // cdb-lint: allow(float) — FIntv widening boundary (Thm 4.3): this block is the audited exact→float door
    pub fn to_f64_interval(&self) -> (f64, f64) {
        let bits = self.bit_length();
        if bits == 0 {
            return (0.0, 0.0); // cdb-lint: allow(float) — FIntv widening boundary (Thm 4.3): this block is the audited exact→float door
        }
        let (mlo, mhi) = if bits <= 53 {
            // Exact: fits the mantissa.
            // cdb-lint: allow(float) — FIntv widening boundary (Thm 4.3): this block is the audited exact→float door
            let v = self.limbs().first().copied().unwrap_or(0) as f64;
            (v, v)
        } else if bits <= 64 {
            // Correctly rounded: off by <= ulp/2.
            // cdb-lint: allow(float) — FIntv widening boundary (Thm 4.3): this block is the audited exact→float door
            let v = self.limbs().first().copied().unwrap_or(0) as f64;
            (v.next_down(), v.next_up())
        } else {
            // top = magnitude >> shift has exactly 64 bits (MSB set), so
            // top <= |self| / 2^shift < top + 1, and ulp(top as f64) = 2048:
            // one step of directed rounding absorbs both the cast error
            // (<= 1024) and the truncated low bits (< 1).
            let shift = bits - 64;
            let top = Int::shr_mag(self.limbs(), shift);
            debug_assert_eq!(top.len(), 1);
            // cdb-lint: allow(float) — FIntv widening boundary (Thm 4.3): this block is the audited exact→float door
            let t = top.first().copied().unwrap_or(0) as f64;
            // Exact power of two 2^shift (infinite once past the f64 range).
            let scale = if shift > 1023 {
                f64::INFINITY // cdb-lint: allow(float) — FIntv widening boundary (Thm 4.3): this block is the audited exact→float door
            } else {
                f64::from_bits((1023 + shift) << 52) // cdb-lint: allow(float) — FIntv widening boundary (Thm 4.3): this block is the audited exact→float door
            };
            let lo = t.next_down() * scale;
            let hi = t.next_up() * scale;
            (if lo.is_finite() { lo } else { f64::MAX }, hi) // cdb-lint: allow(float) — FIntv widening boundary (Thm 4.3): this block is the audited exact→float door
        };
        match self.sign {
            Sign::Neg => (-mhi, -mlo),
            _ => (mlo, mhi),
        }
    }

    /// Convert to `i64` if it fits.
    #[must_use]
    pub fn to_i64(&self) -> Option<i64> {
        match &self.mag {
            Mag::Small(m) => match self.sign {
                Sign::Zero => Some(0),
                Sign::Pos if *m <= i64::MAX as u64 => Some(*m as i64),
                Sign::Neg if *m <= 1u64 << 63 => Some((*m as i128).wrapping_neg() as i64),
                _ => None,
            },
            Mag::Big(_) => None,
        }
    }

    /// Construct `2^e`.
    #[must_use]
    pub fn pow2(e: u64) -> Int {
        if e < 64 {
            return Int {
                sign: Sign::Pos,
                mag: Mag::Small(1u64 << e),
            };
        }
        let limb = (e / 64) as usize;
        let mut mag = vec![0u64; limb + 1];
        mag[limb] = 1u64 << (e % 64);
        Int {
            sign: Sign::Pos,
            mag: Mag::Big(mag),
        }
    }

    /// Magnitude modulo `m` (sign ignored): `|self| mod m`, in `[0, m)`.
    ///
    /// Single pass over the limbs, high to low, with a 128-bit running
    /// remainder — this is the hot reduction of the CRT resultant kernel
    /// ([`crate::modp`]), so it never allocates.
    #[must_use]
    pub fn mod_u64(&self, m: u64) -> u64 {
        assert!(m != 0, "modulus must be nonzero");
        let mut rem = 0u128;
        for &limb in self.limbs().iter().rev() {
            rem = ((rem << 64) | u128::from(limb)) % u128::from(m);
        }
        rem as u64
    }

    /// Decimal string of the magnitude.
    fn mag_to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        // Repeated division by 10^19 (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut mag = self.limbs().to_vec();
        let mut chunks: Vec<u64> = Vec::new();
        while !mag.is_empty() {
            let mut rem = 0u128;
            for i in (0..mag.len()).rev() {
                let cur = (rem << 64) | u128::from(mag[i]);
                mag[i] = (cur / u128::from(CHUNK)) as u64;
                rem = cur % u128::from(CHUNK);
            }
            chunks.push(rem as u64);
            mag = Int::trim(mag);
        }
        let mut s = chunks.last().map_or_else(|| "0".to_owned(), u64::to_string);
        for c in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{c:019}"));
        }
        s
    }
}

impl Default for Int {
    fn default() -> Self {
        Int::zero()
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Int {
        match v.cmp(&0) {
            Ordering::Equal => Int::zero(),
            Ordering::Greater => Int::small(Sign::Pos, v as u64),
            Ordering::Less => Int::small(Sign::Neg, (v as i128).unsigned_abs() as u64),
        }
    }
}

impl From<u64> for Int {
    fn from(v: u64) -> Int {
        Int::small(Sign::Pos, v)
    }
}

impl From<i32> for Int {
    fn from(v: i32) -> Int {
        Int::from(i64::from(v))
    }
}

impl From<i128> for Int {
    fn from(v: i128) -> Int {
        if v == 0 {
            return Int::zero();
        }
        let sign = if v > 0 { Sign::Pos } else { Sign::Neg };
        Int::from_u128_mag(sign, v.unsigned_abs())
    }
}

/// Parse error for [`Int`] / [`crate::Rat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntError(pub String);

impl fmt::Display for ParseIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal: {}", self.0)
    }
}

impl std::error::Error for ParseIntError {}

impl FromStr for Int {
    type Err = ParseIntError;

    fn from_str(s: &str) -> Result<Int, ParseIntError> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(d) => (true, d),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseIntError(s.to_owned()));
        }
        let mut acc = Int::zero();
        let _ten_pow19 = Int::from(10_000_000_000_000_000_000u64);
        for chunk in digits.as_bytes().chunks(19) {
            let chunk_str = std::str::from_utf8(chunk).map_err(|_| ParseIntError(s.to_owned()))?;
            let v: u64 = chunk_str.parse().map_err(|_| ParseIntError(s.to_owned()))?;
            let scale = Int::from(10u64).pow(chunk.len() as u32);
            acc = &(&acc * &scale) + &Int::from(v);
        }
        if neg {
            acc = -acc;
        }
        Ok(acc)
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Neg {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag_to_decimal())
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Int({self})")
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Int) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Int) -> Ordering {
        if let (Mag::Small(a), Mag::Small(b)) = (&self.mag, &other.mag) {
            // Branch-light single-limb path: compare signed (sign, mag) keys.
            return match (self.sign, other.sign) {
                (Sign::Neg, Sign::Neg) => b.cmp(a),
                (sa, sb) if sa != sb => sa.to_i32().cmp(&sb.to_i32()),
                _ => a.cmp(b),
            };
        }
        match (self.sign, other.sign) {
            (Sign::Neg, Sign::Neg) => Int::cmp_mag(other.limbs(), self.limbs()),
            (Sign::Neg, _) => Ordering::Less,
            (Sign::Zero, Sign::Neg) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Pos) => Ordering::Less,
            (Sign::Pos, Sign::Pos) => Int::cmp_mag(self.limbs(), other.limbs()),
            (Sign::Pos, _) => Ordering::Greater,
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(mut self) -> Int {
        self.sign = self.sign.neg();
        self
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        -self.clone()
    }
}

impl Int {
    /// Allocation-free signed addition of two single-limb magnitudes.
    fn add_small(sa: Sign, a: u64, sb: Sign, b: u64) -> Int {
        match (sa, sb) {
            (Sign::Zero, _) => Int::small(sb, b),
            (_, Sign::Zero) => Int::small(sa, a),
            _ if sa == sb => {
                let (s, carry) = a.overflowing_add(b);
                if carry {
                    Int {
                        sign: sa,
                        mag: Mag::Big(vec![s, 1]),
                    }
                } else {
                    Int {
                        sign: sa,
                        mag: Mag::Small(s),
                    }
                }
            }
            _ => match a.cmp(&b) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => Int {
                    sign: sa,
                    mag: Mag::Small(a - b),
                },
                Ordering::Less => Int {
                    sign: sb,
                    mag: Mag::Small(b - a),
                },
            },
        }
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, rhs: &Int) -> Int {
        if let (Mag::Small(a), Mag::Small(b)) = (&self.mag, &rhs.mag) {
            return Int::add_small(self.sign, *a, rhs.sign, *b);
        }
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => Int::from_mag(a, Int::add_mag(self.limbs(), rhs.limbs())),
            _ => match Int::cmp_mag(self.limbs(), rhs.limbs()) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => {
                    Int::from_mag(self.sign, Int::sub_mag(self.limbs(), rhs.limbs()))
                }
                Ordering::Less => Int::from_mag(rhs.sign, Int::sub_mag(rhs.limbs(), self.limbs())),
            },
        }
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, rhs: &Int) -> Int {
        if let (Mag::Small(a), Mag::Small(b)) = (&self.mag, &rhs.mag) {
            return Int::add_small(self.sign, *a, rhs.sign.neg(), *b);
        }
        self + &(-rhs.clone())
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, rhs: &Int) -> Int {
        if self.is_zero() || rhs.is_zero() {
            return Int::zero();
        }
        if let (Mag::Small(a), Mag::Small(b)) = (&self.mag, &rhs.mag) {
            return Int::from_u128_mag(self.sign.mul(rhs.sign), u128::from(*a) * u128::from(*b));
        }
        Int::from_mag(
            self.sign.mul(rhs.sign),
            Int::mul_mag(self.limbs(), rhs.limbs()),
        )
    }
}

impl Div for &Int {
    type Output = Int;
    fn div(self, rhs: &Int) -> Int {
        self.divrem(rhs).0
    }
}

impl Rem for &Int {
    type Output = Int;
    fn rem(self, rhs: &Int) -> Int {
        self.divrem(rhs).1
    }
}

impl Shl<u64> for &Int {
    type Output = Int;
    fn shl(self, bits: u64) -> Int {
        if self.is_zero() {
            return Int::zero();
        }
        if let Mag::Small(m) = &self.mag {
            if u64::from(m.leading_zeros()) >= bits {
                return Int {
                    sign: self.sign,
                    mag: Mag::Small(m << bits),
                };
            }
        }
        Int::from_mag(self.sign, Int::shl_mag(self.limbs(), bits))
    }
}

impl Shr<u64> for &Int {
    type Output = Int;
    fn shr(self, bits: u64) -> Int {
        // Arithmetic-toward-zero shift of the magnitude.
        if let Mag::Small(m) = &self.mag {
            let r = if bits >= 64 { 0 } else { m >> bits };
            return Int::small(self.sign, r);
        }
        Int::from_mag(self.sign, Int::shr_mag(self.limbs(), bits))
    }
}

macro_rules! forward_binop_owned {
    ($trait:ident, $method:ident) => {
        impl $trait for Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Int> for Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                (&self).$method(rhs)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop_owned!(Add, add);
forward_binop_owned!(Sub, sub);
forward_binop_owned!(Mul, mul);
forward_binop_owned!(Div, div);
forward_binop_owned!(Rem, rem);

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, rhs: &Int) {
        *self = &*self - rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(s: &str) -> Int {
        s.parse().unwrap()
    }

    #[test]
    fn zero_properties() {
        let z = Int::zero();
        assert!(z.is_zero());
        assert_eq!(z.bit_length(), 0);
        assert_eq!(z.to_string(), "0");
        assert_eq!(&z + &Int::from(5), Int::from(5));
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(&Int::from(2) + &Int::from(3), Int::from(5));
        assert_eq!(&Int::from(2) - &Int::from(3), Int::from(-1));
        assert_eq!(&Int::from(-4) * &Int::from(-5), Int::from(20));
        assert_eq!(&Int::from(7) / &Int::from(2), Int::from(3));
        assert_eq!(&Int::from(7) % &Int::from(2), Int::from(1));
        assert_eq!(&Int::from(-7) / &Int::from(2), Int::from(-3));
        assert_eq!(&Int::from(-7) % &Int::from(2), Int::from(-1));
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "18446744073709551616",
            "-340282366920938463463374607431768211456",
            "99999999999999999999999999999999999999999999",
        ] {
            assert_eq!(int(s).to_string(), s);
        }
    }

    #[test]
    fn big_multiplication() {
        let a = int("123456789012345678901234567890");
        let b = int("987654321098765432109876543210");
        let p = &a * &b;
        assert_eq!(
            p.to_string(),
            "121932631137021795226185032733622923332237463801111263526900"
        );
    }

    #[test]
    fn big_division() {
        let a = int("121932631137021795226185032733622923332237463801111263526900");
        let b = int("987654321098765432109876543210");
        let (q, r) = a.divrem(&b);
        assert_eq!(q.to_string(), "123456789012345678901234567890");
        assert!(r.is_zero());
        let a2 = &a + &Int::from(17);
        let (q2, r2) = a2.divrem(&b);
        assert_eq!(q2, q);
        assert_eq!(r2, Int::from(17));
    }

    #[test]
    fn division_sign_convention() {
        for (a, b) in [(7i64, 3i64), (-7, 3), (7, -3), (-7, -3)] {
            let (q, r) = Int::from(a).divrem(&Int::from(b));
            assert_eq!(q, Int::from(a / b), "q for {a}/{b}");
            assert_eq!(r, Int::from(a % b), "r for {a}/{b}");
        }
    }

    #[test]
    fn bit_length() {
        assert_eq!(Int::from(1).bit_length(), 1);
        assert_eq!(Int::from(2).bit_length(), 2);
        assert_eq!(Int::from(255).bit_length(), 8);
        assert_eq!(Int::from(256).bit_length(), 9);
        assert_eq!(Int::pow2(100).bit_length(), 101);
        assert_eq!(Int::from(-255).bit_length(), 8);
    }

    #[test]
    fn shifts() {
        let a = int("123456789012345678901234567890");
        assert_eq!(&(&a << 13) >> 13, a);
        assert_eq!(&Int::from(1) << 64, int("18446744073709551616"));
        assert_eq!(&int("18446744073709551617") >> 64, Int::from(1));
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(Int::from(12).gcd(&Int::from(18)), Int::from(6));
        assert_eq!(Int::from(-12).gcd(&Int::from(18)), Int::from(6));
        assert_eq!(Int::zero().gcd(&Int::from(-5)), Int::from(5));
        assert_eq!(Int::from(17).gcd(&Int::from(13)), Int::from(1));
    }

    #[test]
    fn pow() {
        assert_eq!(Int::from(3).pow(0), Int::from(1));
        assert_eq!(Int::from(3).pow(5), Int::from(243));
        assert_eq!(
            Int::from(10).pow(30),
            int("1000000000000000000000000000000")
        );
        assert_eq!(Int::from(-2).pow(3), Int::from(-8));
    }

    #[test]
    fn euclid_division() {
        let (q, r) = Int::from(-7).div_euclid(&Int::from(3));
        assert_eq!((q, r), (Int::from(-3), Int::from(2)));
        let (q, r) = Int::from(-7).div_euclid(&Int::from(-3));
        assert_eq!((q, r), (Int::from(3), Int::from(2)));
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(Int::from(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(Int::from(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!((&Int::from(i64::MAX) + &Int::one()).to_i64(), None);
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands big enough to cross the Karatsuba threshold.
        let mut a = Int::one();
        let mut b = Int::from(3);
        for i in 0..40 {
            a = &(&a * &int("1000000000000000000019")) + &Int::from(i);
            b = &(&b * &int("999999999999999999989")) + &Int::from(2 * i + 1);
        }
        let p = &a * &b;
        // Verify via divrem: p / a == b exactly.
        let (q, r) = p.divrem(&a);
        assert_eq!(q, b);
        assert!(r.is_zero());
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(Int::zero().trailing_zeros(), None);
        assert_eq!(Int::from(1).trailing_zeros(), Some(0));
        assert_eq!(Int::from(8).trailing_zeros(), Some(3));
        assert_eq!(Int::pow2(130).trailing_zeros(), Some(130));
    }

    // ── Single-limb edge cases the CRT resultant path leans on ──────────

    #[test]
    fn u64_max_boundary_add_carries() {
        // u64::MAX + 1 must carry out of the inline limb into Big storage.
        let max = Int::from(u64::MAX);
        let succ = &max + &Int::one();
        assert_eq!(succ, Int::pow2(64));
        assert_eq!(succ.bit_length(), 65);
        // … and subtracting brings it back down to a canonical Small.
        assert_eq!(&succ - &Int::one(), max);
        assert_eq!((&succ - &Int::one()).bit_length(), 64);
        // MAX + MAX = 2^65 − 2 straddles the limb boundary from both sides.
        let doubled = &max + &max;
        assert_eq!(doubled, &Int::pow2(65) - &Int::from(2));
        assert_eq!(&doubled - &max, max);
    }

    #[test]
    fn u64_max_boundary_mul_carries() {
        // MAX² = 2^128 − 2^65 + 1: the full-width single-limb product.
        let max = Int::from(u64::MAX);
        let sq = &max * &max;
        let expect = &(&Int::pow2(128) - &Int::pow2(65)) + &Int::one();
        assert_eq!(sq, expect);
        assert_eq!(sq.bit_length(), 128);
        // Exact division recovers the factor, and mod_u64 sees residue 0.
        assert_eq!(sq.div_exact(&max), max);
        assert_eq!(sq.mod_u64(u64::MAX), 0);
        assert_eq!((&sq + &Int::one()).mod_u64(u64::MAX), 1);
    }

    #[test]
    fn to_f64_interval_at_2_to_53() {
        // 2^53 − 1 is the largest odd integer that fits the mantissa: the
        // enclosure must be a point there (bit_length = 53, exact branch).
        let exact = Int::pow2(53);
        let below = &exact - &Int::one();
        assert_eq!(
            below.to_f64_interval(),
            (9007199254740991.0, 9007199254740991.0)
        );
        // 2^53 itself has bit_length 54, so it crosses into the
        // correctly-rounded branch: the enclosure widens outward by one ulp
        // step each way but must still contain the exact value.
        let (lo, hi) = exact.to_f64_interval();
        assert!(lo <= 9007199254740992.0 && 9007199254740992.0 <= hi);
        assert!(hi - lo <= 4.0, "enclosure stays within 2 ulps at 2^53");
        // 2^53 + 1 (odd, 54 bits) cannot be an f64 at all: the enclosure
        // must properly straddle the true value.
        let above = &exact + &Int::one();
        let (lo, hi) = above.to_f64_interval();
        assert!(lo < hi, "2^53 + 1 is not an f64; interval must widen");
        assert!(lo <= 9007199254740992.0 && 9007199254740994.0 <= hi);
        // Negative mirror.
        let (nlo, nhi) = (-&above).to_f64_interval();
        assert_eq!((nlo, nhi), (-hi, -lo));
    }

    #[test]
    fn gcd_of_mixed_small_and_big_magnitudes() {
        // gcd(2^100 · 3, 6) = 6: one operand Big, one Small.
        let big = &Int::pow2(100) * &Int::from(3);
        assert_eq!(big.gcd(&Int::from(6)), Int::from(6));
        assert_eq!(Int::from(6).gcd(&big), Int::from(6));
        // Coprime mix in either order, and sign-insensitivity.
        let p = &Int::pow2(89) - &Int::one(); // Mersenne prime M89
        assert_eq!(p.gcd(&Int::from(u64::MAX)), Int::one());
        assert_eq!((-&p).gcd(&Int::from(-6)), Int::one());
        // Shared Big factor found through a Small cofactor:
        // gcd(m · 7, 7) where m · 7 is multi-limb.
        let m7 = &p * &Int::from(7);
        assert_eq!(m7.gcd(&Int::from(7)), Int::from(7));
        // Zero identities at the boundary.
        assert_eq!(big.gcd(&Int::zero()), big.abs());
        assert_eq!(Int::zero().gcd(&Int::from(u64::MAX)), Int::from(u64::MAX));
    }

    #[test]
    fn mod_u64_matches_divrem() {
        let samples = [
            Int::zero(),
            Int::from(1),
            Int::from(-1),
            Int::from(u64::MAX),
            &Int::pow2(64) + &Int::from(5),
            &Int::pow2(200) - &Int::from(3),
            -&(&Int::pow2(130) + &Int::from(911)),
        ];
        for m in [1u64, 2, 97, u64::MAX, 4611686018427387847] {
            for v in &samples {
                let (_, r) = v.abs().divrem(&Int::from(m));
                assert_eq!(Int::from(v.mod_u64(m)), r, "v = {v}, m = {m}");
            }
        }
    }
}
