//! Exact rational numbers over [`Int`].
//!
//! Rationals are the working field of quantifier elimination: isolating
//! interval endpoints, CAD sample points and polynomial coefficients all live
//! in `Q`. The representation is always normalized (`den > 0`, `gcd = 1`) so
//! equality is structural.

use crate::int::{Int, ParseIntError};
use crate::Sign;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// Arbitrary-precision rational number, always normalized.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: Int,
    /// Strictly positive.
    den: Int,
}

impl Rat {
    /// 0/1.
    #[must_use]
    pub fn zero() -> Rat {
        Rat {
            num: Int::zero(),
            den: Int::one(),
        }
    }

    /// 1/1.
    #[must_use]
    pub fn one() -> Rat {
        Rat {
            num: Int::one(),
            den: Int::one(),
        }
    }

    /// Construct and normalize `num/den`. Panics if `den == 0`.
    #[must_use]
    pub fn new(num: Int, den: Int) -> Rat {
        assert!(!den.is_zero(), "rational with zero denominator");
        let (num, den) = if den.is_negative() {
            (-num, -den)
        } else {
            (num, den)
        };
        if num.is_zero() {
            return Rat::zero();
        }
        let g = num.gcd(&den);
        if g.is_one() {
            Rat { num, den }
        } else {
            Rat {
                num: num.div_exact(&g),
                den: den.div_exact(&g),
            }
        }
    }

    /// Construct from integers.
    #[must_use]
    pub fn from_ints(num: i64, den: i64) -> Rat {
        Rat::new(Int::from(num), Int::from(den))
    }

    /// Numerator (sign-carrying).
    #[must_use]
    pub fn numer(&self) -> &Int {
        &self.num
    }

    /// Denominator (always positive).
    #[must_use]
    pub fn denom(&self) -> &Int {
        &self.den
    }

    /// True iff 0.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True iff an integer.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Sign.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse. Panics on 0.
    #[must_use]
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat::new(self.den.clone(), self.num.clone())
    }

    /// Integer power (negative exponents allowed for nonzero values).
    #[must_use]
    pub fn pow(&self, exp: i32) -> Rat {
        if exp < 0 {
            self.recip().pow(-exp)
        } else {
            Rat::new(self.num.pow(exp as u32), self.den.pow(exp as u32))
        }
    }

    /// Largest integer `<= self`.
    #[must_use]
    pub fn floor(&self) -> Int {
        self.num.div_euclid(&self.den).0
    }

    /// Smallest integer `>= self`.
    #[must_use]
    pub fn ceil(&self) -> Int {
        -((-self.clone()).floor())
    }

    /// Midpoint of two rationals.
    #[must_use]
    pub fn midpoint(a: &Rat, b: &Rat) -> Rat {
        &(a + b) * &Rat::from_ints(1, 2)
    }

    /// Lossy conversion to `f64`.
    #[must_use]
    // cdb-lint: allow(float) — audited exact↔f64 conversion boundary (Thm 4.3): callers needing soundness must go through FIntv
    pub fn to_f64(&self) -> f64 {
        // Scale so the quotient retains ~80 bits of precision before the
        // floating division, avoiding premature overflow/underflow.
        // cdb-lint: allow(float) — audited exact↔f64 conversion boundary (Thm 4.3): callers needing soundness must go through FIntv
        fn ldexp(mut x: f64, mut e: i64) -> f64 {
            while e > 1000 {
                x *= 2f64.powi(1000); // cdb-lint: allow(float) — audited exact↔f64 conversion boundary (Thm 4.3): callers needing soundness must go through FIntv
                e -= 1000;
            }
            while e < -1000 {
                x *= 2f64.powi(-1000); // cdb-lint: allow(float) — audited exact↔f64 conversion boundary (Thm 4.3): callers needing soundness must go through FIntv
                e += 1000;
            }
            x * 2f64.powi(e as i32) // cdb-lint: allow(float) — audited exact↔f64 conversion boundary (Thm 4.3): callers needing soundness must go through FIntv
        }
        let nb = self.num.bit_length() as i64;
        let db = self.den.bit_length() as i64;
        let shift = nb - db - 80;
        if shift > 0 {
            let q = &self.num / &(&self.den << (shift as u64));
            ldexp(q.to_f64(), shift)
        } else {
            let q = &(&self.num << ((-shift) as u64)) / &self.den;
            ldexp(q.to_f64(), shift)
        }
    }

    /// Exact conversion from a finite `f64` (every finite double is dyadic).
    ///
    /// Returns `None` for NaN/infinite inputs.
    #[must_use]
    // cdb-lint: allow(float) — audited exact↔f64 conversion boundary (Thm 4.3): callers needing soundness must go through FIntv
    pub fn from_f64(v: f64) -> Option<Rat> {
        if !v.is_finite() {
            return None;
        }
        // cdb-lint: allow(float) — audited exact↔f64 conversion boundary (Thm 4.3): callers needing soundness must go through FIntv
        if v == 0.0 {
            return Some(Rat::zero());
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exp = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mant, e2) = if exp == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), exp - 1075)
        };
        let m = &Int::from(mant) * &Int::from(sign);
        Some(if e2 >= 0 {
            Rat::new(&m << (e2 as u64), Int::one())
        } else {
            Rat::new(m, Int::pow2((-e2) as u64))
        })
    }

    /// Maximum bit length over numerator and denominator — the "size" of a
    /// rational for finite-precision accounting.
    #[must_use]
    pub fn bit_length(&self) -> u64 {
        self.num.bit_length().max(self.den.bit_length())
    }

    /// min by value.
    #[must_use]
    pub fn min(a: Rat, b: Rat) -> Rat {
        if a <= b {
            a
        } else {
            b
        }
    }

    /// max by value.
    #[must_use]
    pub fn max(a: Rat, b: Rat) -> Rat {
        if a >= b {
            a
        } else {
            b
        }
    }
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::zero()
    }
}

impl From<Int> for Rat {
    fn from(v: Int) -> Rat {
        Rat {
            num: v,
            den: Int::one(),
        }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::from(Int::from(v))
    }
}

impl From<i32> for Rat {
    fn from(v: i32) -> Rat {
        Rat::from(Int::from(v))
    }
}

impl FromStr for Rat {
    type Err = ParseIntError;

    /// Accepts `"3"`, `"-3/4"`, `"1.25"`, `"-0.5"`.
    fn from_str(s: &str) -> Result<Rat, ParseIntError> {
        if let Some((n, d)) = s.split_once('/') {
            let num: Int = n.trim().parse()?;
            let den: Int = d.trim().parse()?;
            if den.is_zero() {
                return Err(ParseIntError(s.to_owned()));
            }
            return Ok(Rat::new(num, den));
        }
        if let Some((ip, fp)) = s.split_once('.') {
            if fp.is_empty() || !fp.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseIntError(s.to_owned()));
            }
            let neg = ip.trim_start().starts_with('-');
            let int_part: Int = if ip.is_empty() || ip == "-" || ip == "+" {
                Int::zero()
            } else {
                ip.parse()?
            };
            let frac_num: Int = fp.parse()?;
            let scale = Int::from(10i64).pow(fp.len() as u32);
            let mag = &(&int_part.abs() * &scale) + &frac_num;
            let signed = if neg { -mag } else { mag };
            return Ok(Rat::new(signed, scale));
        }
        Ok(Rat::from(s.parse::<Int>()?))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rat({self})")
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        -self.clone()
    }
}

impl Add for &Rat {
    type Output = Rat;
    fn add(self, rhs: &Rat) -> Rat {
        Rat::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &Rat {
    type Output = Rat;
    fn sub(self, rhs: &Rat) -> Rat {
        Rat::new(
            &(&self.num * &rhs.den) - &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Mul for &Rat {
    type Output = Rat;
    fn mul(self, rhs: &Rat) -> Rat {
        Rat::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &Rat {
    type Output = Rat;
    fn div(self, rhs: &Rat) -> Rat {
        assert!(!rhs.is_zero(), "rational division by zero");
        Rat::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_rat_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                (&self).$method(rhs)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                self.$method(&rhs)
            }
        }
    };
}

forward_rat_binop!(Add, add);
forward_rat_binop!(Sub, sub);
forward_rat_binop!(Mul, mul);
forward_rat_binop!(Div, div);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, rhs: &Rat) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, rhs: &Rat) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, rhs: &Rat) {
        *self = &*self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(s: &str) -> Rat {
        s.parse().unwrap()
    }

    #[test]
    fn normalization() {
        assert_eq!(rat("2/4"), rat("1/2"));
        assert_eq!(rat("-2/-4"), rat("1/2"));
        assert_eq!(rat("2/-4"), rat("-1/2"));
        assert_eq!(rat("0/5"), Rat::zero());
        assert_eq!(rat("6/3"), Rat::from(2i64));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(&rat("1/2") + &rat("1/3"), rat("5/6"));
        assert_eq!(&rat("1/2") - &rat("1/3"), rat("1/6"));
        assert_eq!(&rat("2/3") * &rat("3/4"), rat("1/2"));
        assert_eq!(&rat("1/2") / &rat("1/4"), Rat::from(2i64));
    }

    #[test]
    fn ordering() {
        assert!(rat("1/3") < rat("1/2"));
        assert!(rat("-1/2") < rat("-1/3"));
        assert!(rat("7/3") > Rat::from(2i64));
        assert_eq!(Rat::min(rat("1/3"), rat("1/2")), rat("1/3"));
    }

    #[test]
    fn decimal_parsing() {
        assert_eq!(rat("1.25"), rat("5/4"));
        assert_eq!(rat("-0.5"), rat("-1/2"));
        assert_eq!(rat("2.5"), rat("5/2"));
        assert_eq!(rat("0.125"), rat("1/8"));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(rat("7/2").floor(), Int::from(3));
        assert_eq!(rat("7/2").ceil(), Int::from(4));
        assert_eq!(rat("-7/2").floor(), Int::from(-4));
        assert_eq!(rat("-7/2").ceil(), Int::from(-3));
        assert_eq!(Rat::from(3i64).floor(), Int::from(3));
        assert_eq!(Rat::from(3i64).ceil(), Int::from(3));
    }

    #[test]
    fn f64_roundtrip() {
        for v in [0.0, 1.0, -1.5, 0.1, 1e-300, 1e300, std::f64::consts::PI] {
            let r = Rat::from_f64(v).unwrap();
            assert_eq!(r.to_f64(), v, "roundtrip {v}");
        }
        assert!(Rat::from_f64(f64::NAN).is_none());
        assert!(Rat::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn from_f64_exact_dyadic() {
        assert_eq!(Rat::from_f64(0.25).unwrap(), rat("1/4"));
        assert_eq!(Rat::from_f64(-2.5).unwrap(), rat("-5/2"));
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(rat("2/3").pow(2), rat("4/9"));
        assert_eq!(rat("2/3").pow(-2), rat("9/4"));
        assert_eq!(rat("2/3").pow(0), Rat::one());
        assert_eq!(rat("-3/5").recip(), rat("-5/3"));
    }

    #[test]
    fn midpoint() {
        assert_eq!(Rat::midpoint(&rat("1/2"), &rat("3/2")), Rat::one());
    }

    #[test]
    fn to_f64_extremes() {
        // Huge rational close to 1.
        let big = Int::pow2(2000);
        let r = Rat::new(&big + &Int::one(), big);
        assert!((r.to_f64() - 1.0).abs() < 1e-12);
    }
}
