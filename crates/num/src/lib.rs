#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! `cdb-num`: exact and finite-precision arithmetic substrate for the
//! constraint database.
//!
//! The paper's framework needs three kinds of numbers:
//!
//! * **Arbitrary-precision integers** ([`Int`]) — coefficients of the
//!   polynomials that encode generalized tuples, and the raw material of the
//!   finite-precision semantics (bit lengths of these integers are what the
//!   `⊨_QE^F` satisfaction relation bounds).
//! * **Rationals** ([`Rat`]) — sample points, isolating-interval endpoints,
//!   and every intermediate value of quantifier elimination.
//! * **k-floating numbers** ([`fk::Fk`]) — the paper's §4 structure
//!   `F_k = ⟨F_k, ≤, +, ×, 0, 1⟩` of floating numbers `[n, e]` denoting
//!   `n·2^e`, whose arithmetic is *partial* (undefined on exponent overflow
//!   or insufficient mantissa precision).
//! * **Bounded integers** ([`zk::Zk`]) — the §4 structure `Z_k` of integers of
//!   bit length at most `k`, with the split-word operations `+l/+u/×l/×u` of
//!   Theorem 4.3.
//! * **Word-size prime fields** ([`modp::ModP`]) — `Z_p` residue arithmetic
//!   and Chinese-remainder reconstruction ([`modp::Crt`]) powering the
//!   modular resultant kernels of DESIGN.md §11.
//!
//! Rational interval arithmetic ([`interval::RatInterval`]) supports exact
//! sign determination at real algebraic points during CAD lifting, and
//! outward-rounded machine-float intervals ([`fintv::FIntv`]) provide the
//! split-word *filter* layer that short-circuits exact sign computations
//! whenever a cheap f64 enclosure already excludes zero.

pub mod fintv;
pub mod fk;
pub mod int;
pub mod interval;
pub mod modp;
pub mod rat;
pub mod zk;

pub use fintv::FIntv;
pub use fk::{Fk, FkError, FkParams};
pub use int::Int;
pub use interval::RatInterval;
pub use modp::ModP;
pub use rat::Rat;
pub use zk::Zk;

/// Sign of a real quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Neg,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Pos,
}

// The arithmetic-flavoured method names are deliberate (sign algebra);
// they are not operator-trait implementations.
#[allow(clippy::should_implement_trait)]
impl Sign {
    /// Sign of a product.
    #[must_use]
    pub fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (Sign::Neg, Sign::Neg) | (Sign::Pos, Sign::Pos) => Sign::Pos,
            _ => Sign::Neg,
        }
    }

    /// Sign flip.
    #[must_use]
    pub fn neg(self) -> Sign {
        match self {
            Sign::Neg => Sign::Pos,
            Sign::Zero => Sign::Zero,
            Sign::Pos => Sign::Neg,
        }
    }

    /// From any integer-like comparison value.
    #[must_use]
    pub fn from_i32(v: i32) -> Sign {
        match v.cmp(&0) {
            std::cmp::Ordering::Less => Sign::Neg,
            std::cmp::Ordering::Equal => Sign::Zero,
            std::cmp::Ordering::Greater => Sign::Pos,
        }
    }

    /// As -1 / 0 / +1.
    #[must_use]
    pub fn to_i32(self) -> i32 {
        match self {
            Sign::Neg => -1,
            Sign::Zero => 0,
            Sign::Pos => 1,
        }
    }
}
