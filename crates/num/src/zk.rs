//! The structure `Z_k` of integers of bounded bit length (§4), with the
//! split-word arithmetic `+l, +u, ×l, ×u` of Theorem 4.3.
//!
//! `Z_k = ⟨Z_k, ≤, +, ×, 0, 1⟩` where `Z_k = { n : |n| < 2^k }`. Plain
//! addition/multiplication are partial (overflow ⇒ undefined), mirroring
//! `F_k`. The *split* operations are total functions `Z_k² → Z_k`:
//!
//! * `a +l b` — the low `k` bits of the sum, `a +u b` — the high `k` bits;
//! * `a ×l b` — the low `k` bits of the product, `a ×u b` — the high bits.
//!
//! Lemma 4.5 shows `Z_{2k}^{l/u}` is first-order definable in `Z_k^{l/u}`;
//! crate `cdb-fp` implements those defining formulas as executable code and
//! property-tests them against the direct operations defined here.
//!
//! Representation: magnitudes are handled on *unsigned* `k`-bit words, which
//! matches the doubling construction (a `2k`-bit word is a pair of `k`-bit
//! words `[lo, hi]`). Signs are layered on top by `cdb-fp` where needed.

use crate::Int;

/// The structure of unsigned integers of bit length at most `k`, with split
/// operations. (Lemma 4.5's pairing `[x, x']` concatenates these words.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zk {
    /// Word size in bits.
    pub k: u32,
}

impl Zk {
    /// New structure; `k >= 1`.
    #[must_use]
    pub fn new(k: u32) -> Zk {
        assert!(k >= 1, "Z_k needs k >= 1");
        Zk { k }
    }

    /// `2^k` as an [`Int`].
    #[must_use]
    pub fn modulus(&self) -> Int {
        Int::pow2(u64::from(self.k))
    }

    /// True iff `v` is a legal word: `0 <= v < 2^k`.
    #[must_use]
    pub fn contains(&self, v: &Int) -> bool {
        !v.is_negative() && v.bit_length() <= u64::from(self.k)
    }

    fn assert_word(&self, v: &Int) {
        assert!(self.contains(v), "value {v} outside Z_{}", self.k);
    }

    /// Partial addition: `None` on overflow out of `Z_k`.
    #[must_use]
    pub fn add(&self, a: &Int, b: &Int) -> Option<Int> {
        self.assert_word(a);
        self.assert_word(b);
        let s = a + b;
        self.contains(&s).then_some(s)
    }

    /// Partial multiplication: `None` on overflow out of `Z_k`.
    #[must_use]
    pub fn mul(&self, a: &Int, b: &Int) -> Option<Int> {
        self.assert_word(a);
        self.assert_word(b);
        let p = a * b;
        self.contains(&p).then_some(p)
    }

    /// Total: low `k` bits of `a + b` (`+l` in the paper).
    #[must_use]
    pub fn add_lo(&self, a: &Int, b: &Int) -> Int {
        self.assert_word(a);
        self.assert_word(b);
        (a + b).div_euclid(&self.modulus()).1
    }

    /// Total: high bits of `a + b` (`+u` in the paper) — the carry, 0 or 1.
    #[must_use]
    pub fn add_hi(&self, a: &Int, b: &Int) -> Int {
        self.assert_word(a);
        self.assert_word(b);
        (a + b).div_euclid(&self.modulus()).0
    }

    /// Total: low `k` bits of `a × b` (`×l`).
    #[must_use]
    pub fn mul_lo(&self, a: &Int, b: &Int) -> Int {
        self.assert_word(a);
        self.assert_word(b);
        (a * b).div_euclid(&self.modulus()).1
    }

    /// Total: high `k` bits of `a × b` (`×u`).
    #[must_use]
    pub fn mul_hi(&self, a: &Int, b: &Int) -> Int {
        self.assert_word(a);
        self.assert_word(b);
        (a * b).div_euclid(&self.modulus()).0
    }

    /// Compose a `2k`-bit value from a `[lo, hi]` pair of `k`-bit words.
    #[must_use]
    pub fn compose(&self, lo: &Int, hi: &Int) -> Int {
        self.assert_word(lo);
        self.assert_word(hi);
        &(hi * &self.modulus()) + lo
    }

    /// Split a `2k`-bit value into its `[lo, hi]` pair.
    #[must_use]
    pub fn split(&self, v: &Int) -> (Int, Int) {
        assert!(!v.is_negative() && v.bit_length() <= 2 * u64::from(self.k));
        let (hi, lo) = v.div_euclid(&self.modulus());
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_ops() {
        let z = Zk::new(4); // words 0..15
        let i = |v: i64| Int::from(v);
        assert_eq!(z.add(&i(7), &i(8)), Some(i(15)));
        assert_eq!(z.add(&i(8), &i(8)), None);
        assert_eq!(z.mul(&i(3), &i(5)), Some(i(15)));
        assert_eq!(z.mul(&i(4), &i(4)), None);
    }

    #[test]
    fn split_ops_cover_all_small_words() {
        let z = Zk::new(4);
        let m = 16i64;
        for a in 0..m {
            for b in 0..m {
                let (ia, ib) = (Int::from(a), Int::from(b));
                assert_eq!(z.add_lo(&ia, &ib), Int::from((a + b) % m));
                assert_eq!(z.add_hi(&ia, &ib), Int::from((a + b) / m));
                assert_eq!(z.mul_lo(&ia, &ib), Int::from((a * b) % m));
                assert_eq!(z.mul_hi(&ia, &ib), Int::from((a * b) / m));
            }
        }
    }

    #[test]
    fn compose_split_roundtrip() {
        let z = Zk::new(8);
        let v = Int::from(0xBEEFi64 & 0xFFFF);
        let (lo, hi) = z.split(&v);
        assert_eq!(z.compose(&lo, &hi), v);
        assert_eq!(lo, Int::from(0xEFi64));
        assert_eq!(hi, Int::from(0xBEi64));
    }

    #[test]
    #[should_panic(expected = "outside Z_")]
    fn rejects_out_of_range() {
        let z = Zk::new(4);
        let _ = z.add_lo(&Int::from(16), &Int::from(0));
    }
}
