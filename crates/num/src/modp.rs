//! Word-size prime fields `Z_p` and Chinese-remainder reconstruction.
//!
//! This is the arithmetic substrate of the modular resultant kernel
//! (DESIGN.md §11): multivariate resultants are mapped into `Z_p` for a
//! sequence of word-size primes, computed there entirely in `u64`
//! arithmetic, and recombined exactly with [`Crt`]. It extends the §4
//! bounded-word philosophy of [`crate::Zk`] — spend as few exact big-number
//! operations as possible and let cheap fixed-width arithmetic carry the
//! bulk — from the *semantics* layer down into the *algebra* kernels.
//!
//! Elements of `Z_p` are plain least non-negative residues in `u64`; the
//! field context [`ModP`] carries the modulus. Products go through `u128`
//! (no Montgomery form: a 128-bit multiply + remainder is branch-free and
//! deterministic, and profiling the resultant kernel shows reduction is not
//! the bottleneck — interpolation is). All primes in [`PRIMES`] sit just
//! below `2^62`, so sums of two reduced residues never overflow a `u64` and
//! every prime contributes at least 61 bits to a CRT modulus.
//!
//! Determinism: this module is pure integer arithmetic — no floats, no
//! hash-order iteration, no relaxed atomics (enforced by `cdb-lint`, which
//! applies both the float-confinement and the determinism rule here).

use crate::int::Int;
use crate::Sign;

/// Word-size primes just below `2^62`, in decreasing order.
///
/// Forty primes × ≥61 bits each ≈ 2440 bits of CRT capacity — far beyond
/// any resultant the CAD projection operator encounters in practice; the
/// kernel falls back to the fraction-free PRS path if a workload ever
/// exhausts the list (see `cdb_poly::resultant`).
pub const PRIMES: [u64; 40] = [
    4611686018427387847,
    4611686018427387817,
    4611686018427387787,
    4611686018427387761,
    4611686018427387751,
    4611686018427387737,
    4611686018427387733,
    4611686018427387709,
    4611686018427387701,
    4611686018427387631,
    4611686018427387617,
    4611686018427387587,
    4611686018427387461,
    4611686018427387421,
    4611686018427387409,
    4611686018427387329,
    4611686018427387323,
    4611686018427387301,
    4611686018427387271,
    4611686018427387241,
    4611686018427387139,
    4611686018427387131,
    4611686018427387127,
    4611686018427387113,
    4611686018427387091,
    4611686018427387073,
    4611686018427386981,
    4611686018427386923,
    4611686018427386911,
    4611686018427386903,
    4611686018427386897,
    4611686018427386887,
    4611686018427386707,
    4611686018427386663,
    4611686018427386611,
    4611686018427386551,
    4611686018427386471,
    4611686018427386389,
    4611686018427386351,
    4611686018427386329,
];

/// Every prime in [`PRIMES`] exceeds `2^PRIME_BITS`, so `k` primes give a
/// CRT modulus of more than `k · PRIME_BITS` bits.
pub const PRIME_BITS: u64 = 61;

/// A word-size prime field `Z_p`. Elements are least non-negative residues
/// stored as raw `u64`; all operations return reduced values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModP {
    p: u64,
}

impl ModP {
    /// Field context for modulus `p`.
    ///
    /// `p` must be an odd prime below `2^62`; the arithmetic here silently
    /// assumes primality (inverses via Fermat), so callers should draw
    /// moduli from [`PRIMES`] or check with [`is_prime_u64`].
    #[must_use]
    pub fn new(p: u64) -> ModP {
        assert!(p > 2 && p & 1 == 1 && p < 1 << 62, "odd prime below 2^62");
        ModP { p }
    }

    /// The modulus `p`.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Reduce an arbitrary `u64`.
    #[must_use]
    pub fn reduce(&self, a: u64) -> u64 {
        a % self.p
    }

    /// `a + b mod p` for reduced inputs.
    #[must_use]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        // Both summands are < p < 2^62, so the sum fits a u64.
        let s = a + b;
        if s >= self.p {
            s - self.p
        } else {
            s
        }
    }

    /// `a - b mod p` for reduced inputs.
    #[must_use]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        if a >= b {
            a - b
        } else {
            a + (self.p - b)
        }
    }

    /// `-a mod p` for a reduced input.
    #[must_use]
    pub fn neg(&self, a: u64) -> u64 {
        if a == 0 {
            0
        } else {
            self.p - a
        }
    }

    /// `a · b mod p` for reduced inputs (via a 128-bit product).
    #[must_use]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        ((u128::from(a) * u128::from(b)) % u128::from(self.p)) as u64
    }

    /// `a^e mod p` by binary exponentiation (`0^0 = 1`).
    #[must_use]
    pub fn pow(&self, mut a: u64, mut e: u64) -> u64 {
        let mut acc = 1u64 % self.p;
        a = self.reduce(a);
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, a);
            }
            a = self.mul(a, a);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse of `a`, or `None` for `a ≡ 0`.
    ///
    /// Uses Fermat's little theorem (`a^{p−2}`), which is why the modulus
    /// must be prime.
    #[must_use]
    pub fn inv(&self, a: u64) -> Option<u64> {
        let a = self.reduce(a);
        if a == 0 {
            None
        } else {
            Some(self.pow(a, self.p - 2))
        }
    }

    /// Reduce an arbitrary-precision integer into `Z_p`.
    #[must_use]
    pub fn from_int(&self, v: &Int) -> u64 {
        let m = v.mod_u64(self.p);
        match v.sign() {
            Sign::Neg => self.neg(m),
            _ => m,
        }
    }

    /// Simultaneous inverses of `xs` (Montgomery's trick): `3(n−1)` products
    /// and a *single* Fermat exponentiation, versus one exponentiation per
    /// element. `None` if any element is `≡ 0` (nothing is inverted then).
    ///
    /// The resultant kernels lean on this: Newton divided differences and
    /// per-evaluation-point denominators arrive as a batch, and the batch
    /// inverse turns the kernel's `O(n²)` inversions into `O(n²)` plain
    /// multiplications plus one `pow`.
    #[must_use]
    pub fn batch_inv(&self, xs: &[u64]) -> Option<Vec<u64>> {
        if xs.is_empty() {
            return Some(Vec::new());
        }
        // prefix[k] = xs[0] · … · xs[k]
        let mut prefix = Vec::with_capacity(xs.len());
        let mut acc = 1u64;
        for &x in xs {
            acc = self.mul(acc, self.reduce(x));
            prefix.push(acc);
        }
        let mut inv_acc = self.inv(acc)?; // 0 iff some xs[k] ≡ 0
        let mut out = vec![0u64; xs.len()];
        for k in (1..xs.len()).rev() {
            out[k] = self.mul(inv_acc, prefix[k - 1]);
            inv_acc = self.mul(inv_acc, self.reduce(xs[k]));
        }
        out[0] = inv_acc; // cdb-lint: allow(panic) — xs (hence out) is non-empty: the empty case returned above
        Some(out)
    }
}

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
///
/// The witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} is known to
/// be complete below `3.3 · 10^24`, which covers the whole `u64` range.
#[must_use]
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &small in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(small) {
            return n == small;
        }
    }
    let s = (n - 1).trailing_zeros();
    let d = (n - 1) >> s;
    let mulmod = |a: u64, b: u64| ((u128::from(a) * u128::from(b)) % u128::from(n)) as u64;
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = {
            let mut acc = 1u64;
            let mut base = a % n;
            let mut e = d;
            while e > 0 {
                if e & 1 == 1 {
                    acc = mulmod(acc, base);
                }
                base = mulmod(base, base);
                e >>= 1;
            }
            acc
        };
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mulmod(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Incremental Chinese-remainder accumulator (Garner form).
///
/// Feed it one residue per pairwise-coprime modulus with [`Crt::push`]; at
/// any point [`Crt::symmetric`] yields the unique representative of the
/// accumulated residue in `(−M/2, M/2]`, where `M` is the product of the
/// moduli so far. The modular resultant kernel reconstructs every integer
/// coefficient this way once the product exceeds twice its Hadamard bound.
#[derive(Debug, Clone)]
pub struct Crt {
    /// Least non-negative residue of the solution modulo `modulus`.
    value: Int,
    /// Product of all moduli pushed so far.
    modulus: Int,
}

impl Default for Crt {
    fn default() -> Crt {
        Crt::new()
    }
}

impl Crt {
    /// Empty accumulator (solution `0` modulo `1`).
    #[must_use]
    pub fn new() -> Crt {
        Crt {
            value: Int::zero(),
            modulus: Int::one(),
        }
    }

    /// Product of the moduli accumulated so far.
    #[must_use]
    pub fn modulus(&self) -> &Int {
        &self.modulus
    }

    /// Incorporate `residue` modulo `p`.
    ///
    /// `p` must be prime (or at least coprime to every modulus pushed
    /// before); returns `false` without changing the accumulator if the
    /// running modulus is not invertible mod `p` (a repeated prime).
    pub fn push(&mut self, residue: u64, p: u64) -> bool {
        let fp = ModP::new(p);
        let m_mod_p = fp.from_int(&self.modulus);
        let Some(m_inv) = fp.inv(m_mod_p) else {
            return false;
        };
        self.push_with_inv(residue, fp, m_inv);
        true
    }

    /// Incorporate one residue per accumulator, all modulo the same new
    /// prime `p`, for accumulators advanced in lockstep (identical prime
    /// sequence, hence identical `modulus`). The Garner inverse
    /// `modulus⁻¹ mod p` depends only on the shared modulus, so it is
    /// computed once for the whole batch instead of once per accumulator —
    /// this is how the CRT resultant kernel recombines all coefficients of
    /// a `y`-polynomial per prime.
    ///
    /// Returns `false` without changing anything if `p` is not coprime to
    /// the shared modulus (a repeated prime), like [`Crt::push`].
    ///
    /// # Panics
    /// If the accumulators' moduli differ (they were not in lockstep) or
    /// `residues.len() != crts.len()`.
    pub fn push_batch(crts: &mut [Crt], residues: &[u64], p: u64) -> bool {
        assert_eq!(crts.len(), residues.len(), "one residue per accumulator");
        let Some(first) = crts.first() else {
            return true;
        };
        let shared = first.modulus.clone();
        let fp = ModP::new(p);
        let m_mod_p = fp.from_int(&shared);
        let Some(m_inv) = fp.inv(m_mod_p) else {
            return false;
        };
        for (crt, &residue) in crts.iter_mut().zip(residues) {
            assert_eq!(
                crt.modulus, shared,
                "push_batch requires lockstep accumulators"
            );
            crt.push_with_inv(residue, fp, m_inv);
        }
        true
    }

    /// Garner step with a precomputed `m_inv = modulus⁻¹ mod p`.
    fn push_with_inv(&mut self, residue: u64, fp: ModP, m_inv: u64) {
        // delta = (residue − value) · modulus⁻¹ mod p, then
        // value += modulus · delta;  the new value is < modulus · p.
        let v_mod_p = fp.from_int(&self.value);
        let delta = fp.mul(fp.sub(fp.reduce(residue), v_mod_p), m_inv);
        self.value = &self.value + &(&self.modulus * &Int::from(delta));
        self.modulus = &self.modulus * &Int::from(fp.modulus());
    }

    /// The unique representative in the symmetric range `(−M/2, M/2]`.
    #[must_use]
    pub fn symmetric(&self) -> Int {
        let doubled = &self.value + &self.value;
        if doubled > self.modulus {
            &self.value - &self.modulus
        } else {
            self.value.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_table_is_prime_and_sized() {
        for &p in &PRIMES {
            assert!(is_prime_u64(p), "{p} must be prime");
            assert!(p > 1 << PRIME_BITS, "{p} must exceed 2^{PRIME_BITS}");
            assert!(p < 1 << 62, "{p} must stay below 2^62");
        }
        // Strictly decreasing, hence pairwise distinct (CRT needs coprime).
        for w in PRIMES.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn miller_rabin_agrees_with_trial_division() {
        let naive = |n: u64| {
            n >= 2
                && (2..n)
                    .take_while(|d| d * d <= n)
                    .all(|d| !n.is_multiple_of(d))
        };
        for n in 0..2000 {
            assert_eq!(is_prime_u64(n), naive(n), "n = {n}");
        }
        assert!(is_prime_u64(u64::MAX - 58)); // 2^64 − 59 is prime
        assert!(!is_prime_u64(u64::MAX)); // 3 · 5 · 17 · 257 · 641 · 65537 · 6700417
    }

    #[test]
    fn field_ops_roundtrip() {
        let fp = ModP::new(PRIMES[0]);
        let p = fp.modulus();
        for a in [0u64, 1, 2, p - 1, p / 2, 123456789] {
            assert_eq!(fp.add(a, fp.neg(a)), 0);
            assert_eq!(fp.sub(a, a), 0);
            if a != 0 {
                let inv = fp.inv(a).unwrap();
                assert_eq!(fp.mul(a, inv), 1, "a·a⁻¹ = 1 for a = {a}");
            }
        }
        assert_eq!(fp.inv(0), None);
        assert_eq!(fp.pow(3, 4), 81);
        assert_eq!(fp.pow(0, 0), 1);
        // (p−1)² ≡ 1: exercises the full-width u128 product path.
        assert_eq!(fp.mul(p - 1, p - 1), 1);
    }

    #[test]
    fn from_int_handles_signs_and_multiple_limbs() {
        let fp = ModP::new(PRIMES[0]);
        assert_eq!(fp.from_int(&Int::from(7i64)), 7);
        assert_eq!(fp.from_int(&Int::from(-7i64)), fp.neg(7));
        assert_eq!(fp.from_int(&Int::zero()), 0);
        // A value larger than one limb reduces consistently with Int math.
        let big = &Int::pow2(200) + &Int::from(12345i64);
        let direct = fp.from_int(&big);
        let via_parts = fp.add(fp.from_int(&Int::pow2(200)), 12345);
        assert_eq!(direct, via_parts);
    }

    #[test]
    fn crt_reconstructs_known_values() {
        for value in [0i64, 1, -1, 123456789, -987654321] {
            let v = Int::from(value);
            let mut crt = Crt::new();
            for &p in &PRIMES[..3] {
                crt.push(ModP::new(p).from_int(&v), p);
            }
            assert_eq!(crt.symmetric(), v, "value = {value}");
        }
    }

    #[test]
    fn crt_symmetric_range_boundaries() {
        // Single modulus p: representatives must lie in (−p/2, p/2].
        let p = PRIMES[0];
        let fp = ModP::new(p);
        let half = Int::from(p / 2); // p odd: floor(p/2)
        let mut crt = Crt::new();
        crt.push(fp.from_int(&half), p);
        assert_eq!(crt.symmetric(), half); // p/2 ≤ M/2 stays positive
        let mut crt = Crt::new();
        crt.push(fp.from_int(&(&half + &Int::one())), p);
        assert_eq!(crt.symmetric(), -&half); // (p+1)/2 ≡ −(p−1)/2
    }

    #[test]
    fn batch_inv_matches_single_inversions() {
        let fp = ModP::new(PRIMES[0]);
        let xs = [1u64, 2, 3, 123456789, fp.modulus() - 1, 42];
        let invs = fp.batch_inv(&xs).unwrap();
        for (&x, &ix) in xs.iter().zip(&invs) {
            assert_eq!(ix, fp.inv(x).unwrap(), "x = {x}");
            assert_eq!(fp.mul(x, ix), 1);
        }
        assert_eq!(fp.batch_inv(&[]).unwrap(), Vec::<u64>::new());
        assert_eq!(fp.batch_inv(&[3, 0, 5]), None, "zero poisons the batch");
    }

    #[test]
    fn push_batch_matches_sequential_pushes() {
        let values = [0i64, 1, -1, 987654321, -123456789];
        let ints: Vec<Int> = values.iter().map(|&v| Int::from(v)).collect();
        let mut batched: Vec<Crt> = vec![Crt::new(); ints.len()];
        let mut sequential: Vec<Crt> = vec![Crt::new(); ints.len()];
        for &p in &PRIMES[..3] {
            let fp = ModP::new(p);
            let residues: Vec<u64> = ints.iter().map(|v| fp.from_int(v)).collect();
            assert!(Crt::push_batch(&mut batched, &residues, p));
            for (crt, &r) in sequential.iter_mut().zip(&residues) {
                assert!(crt.push(r, p));
            }
        }
        for ((b, s), v) in batched.iter().zip(&sequential).zip(&ints) {
            assert_eq!(b.symmetric(), *v);
            assert_eq!(s.symmetric(), *v);
            assert_eq!(b.modulus(), s.modulus());
        }
        // Repeated prime: rejected as a unit, nothing mutated.
        let before = batched[0].symmetric();
        assert!(!Crt::push_batch(&mut batched, &[0; 5], PRIMES[0]));
        assert_eq!(batched[0].symmetric(), before);
        // Empty batch is trivially fine.
        assert!(Crt::push_batch(&mut [], &[], PRIMES[0]));
    }

    #[test]
    fn crt_rejects_repeated_prime() {
        let p = PRIMES[0];
        let mut crt = Crt::new();
        assert!(crt.push(5, p));
        assert!(!crt.push(5, p), "repeated modulus must be rejected");
        assert_eq!(crt.symmetric(), Int::from(5i64));
    }

    #[test]
    fn crt_two_prime_product_exceeds_single_word() {
        // Reconstruct a 100-bit integer: needs two 62-bit primes.
        let v = &Int::pow2(100) + &Int::from(77i64);
        let mut crt = Crt::new();
        for &p in &PRIMES[..2] {
            crt.push(ModP::new(p).from_int(&v), p);
        }
        assert_eq!(crt.symmetric(), v);
        let neg = -&v;
        let mut crt = Crt::new();
        for &p in &PRIMES[..2] {
            crt.push(ModP::new(p).from_int(&neg), p);
        }
        assert_eq!(crt.symmetric(), neg);
    }
}
