//! Outward-rounded `f64` intervals — the split-word filter arithmetic.
//!
//! [`FIntv`] is the machine-float realisation of the paper's split-word
//! arithmetic (Thm 4.3 / Lemma 4.4): every operation is computed twice,
//! once rounded toward −∞ for the lower word (`+l`, `×l`, …) and once
//! toward +∞ for the upper word (`+u`, `×u`, …). We emulate the directed
//! roundings on round-to-nearest hardware by widening each result with
//! [`f64::next_down`]/[`f64::next_up`], which over-approximates both
//! directed modes and therefore preserves the enclosure invariant:
//!
//! > for every exact rational value `v` tracked by an `FIntv`,
//! > `lo <= v <= hi` holds as real numbers.
//!
//! [`FIntv::sign`] is the *filter*: it answers `Some(sign)` only when the
//! enclosure excludes zero (or is the exact point zero), so a caller may
//! short-circuit an exact big-rational sign computation. When the enclosure
//! straddles zero the filter answers `None` and the caller must *certify*
//! with exact arithmetic — the certify-on-straddle invariant that keeps
//! every filtered decision byte-identical to the unfiltered pipeline.
//!
//! The module also hosts the process-global filter instrumentation
//! (hit/fallback counters and the on/off switch used by the differential
//! tests and E18's before/after measurements).

use crate::{Int, Rat, Sign};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Outward-rounded floating-point interval (split-word filter value).
///
/// Invariants: `lo <= hi`, neither endpoint is NaN (infinite endpoints mark
/// an unbounded enclosure). Every arithmetic result is widened one ulp per
/// endpoint so the true real result is always contained.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FIntv {
    lo: f64,
    hi: f64,
}

/// Process-global count of sign decisions the float filter settled.
static FILTER_HITS: AtomicU64 = AtomicU64::new(0);
/// Process-global count of straddles that required exact certification.
static FILTER_FALLBACKS: AtomicU64 = AtomicU64::new(0);
/// Master switch; disabled means every filtered call goes straight to the
/// exact path (used by differential tests and before/after benchmarks).
static FILTER_ENABLED: AtomicBool = AtomicBool::new(true);

/// Is the float filter currently enabled? (Default: yes.)
#[must_use]
// cdb-lint: allow(determinism-taint) — the flag only gates a result-transparent
// fast path: on either branch the exact path confirms the same bytes
pub fn filter_enabled() -> bool {
    FILTER_ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable the float filter process-wide.
///
/// Disabling routes every filtered sign decision to the exact path; results
/// are byte-identical either way (the filter only short-circuits decisions
/// the exact path would confirm), so this exists for differential testing
/// and for measuring the filter's wall-clock contribution.
pub fn set_filter_enabled(enabled: bool) {
    FILTER_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Record one filter hit (float enclosure settled the sign).
// cdb-lint: allow(determinism-taint) — stats counter; never read on a result path
pub fn note_filter_hit() {
    FILTER_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Record one filter fallback (straddle; exact certification ran).
// cdb-lint: allow(determinism-taint) — stats counter; never read on a result path
pub fn note_filter_fallback() {
    FILTER_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the process-global `(hits, fallbacks)` filter counters.
#[must_use]
// cdb-lint: allow(determinism-taint) — diagnostics snapshot; callers report it,
// results never depend on it
pub fn filter_counters() -> (u64, u64) {
    (
        FILTER_HITS.load(Ordering::Relaxed),
        FILTER_FALLBACKS.load(Ordering::Relaxed),
    )
}

impl FIntv {
    /// The point interval `[v, v]` (no widening; `v` must be exact).
    #[must_use]
    pub fn point(v: f64) -> FIntv {
        debug_assert!(!v.is_nan());
        FIntv { lo: v, hi: v }
    }

    /// The exact zero interval `[0, 0]`.
    #[must_use]
    pub fn zero() -> FIntv {
        FIntv::point(0.0)
    }

    /// The whole real line `[-inf, +inf]` (conveys no information).
    #[must_use]
    pub fn whole() -> FIntv {
        FIntv {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// Construct from endpoints, mapping any NaN to [`FIntv::whole`].
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> FIntv {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            FIntv::whole()
        } else {
            FIntv { lo, hi }
        }
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// True iff this is the exact point zero.
    #[must_use]
    pub fn is_exact_zero(&self) -> bool {
        self.lo == 0.0 && self.hi == 0.0
    }

    /// Sign of every real number in the enclosure, or `None` when the
    /// enclosure straddles zero (the caller must certify exactly).
    ///
    /// `Some(Sign::Zero)` is returned only for the exact point zero, which
    /// under outward rounding arises solely from exact constructions — it
    /// is never the result of a widened operation on nonzero inputs.
    #[must_use]
    pub fn sign(&self) -> Option<Sign> {
        if self.lo > 0.0 {
            Some(Sign::Pos)
        } else if self.hi < 0.0 {
            Some(Sign::Neg)
        } else if self.lo == 0.0 && self.hi == 0.0 {
            Some(Sign::Zero)
        } else {
            None
        }
    }

    /// Interval negation (exact: no widening needed).
    #[must_use]
    pub fn neg(&self) -> FIntv {
        FIntv {
            lo: -self.hi,
            hi: -self.lo,
        }
    }

    /// Outward-rounded addition (`+l` on the lower word, `+u` on the upper).
    #[must_use]
    pub fn add(&self, other: &FIntv) -> FIntv {
        if self.is_exact_zero() {
            return *other;
        }
        if other.is_exact_zero() {
            return *self;
        }
        FIntv::new(
            (self.lo + other.lo).next_down(),
            (self.hi + other.hi).next_up(),
        )
    }

    /// Outward-rounded subtraction.
    #[must_use]
    pub fn sub(&self, other: &FIntv) -> FIntv {
        self.add(&other.neg())
    }

    /// Outward-rounded multiplication (`×l` / `×u` over the four corner
    /// products).
    #[must_use]
    pub fn mul(&self, other: &FIntv) -> FIntv {
        // Exact algebraic identity; also avoids 0 * inf = NaN corners.
        if self.is_exact_zero() || other.is_exact_zero() {
            return FIntv::zero();
        }
        let c = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        if c.iter().any(|v| v.is_nan()) {
            return FIntv::whole();
        }
        let lo = c.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        FIntv::new(lo.next_down(), hi.next_up())
    }

    /// Outward-rounded `n`-th power, sharp for even powers of straddling
    /// intervals (the result is clamped to `>= 0`, mirroring
    /// [`crate::RatInterval::pow`]).
    #[must_use]
    pub fn pow(&self, n: u32) -> FIntv {
        fn pow_down(x: f64, n: u32) -> f64 {
            debug_assert!(x >= 0.0);
            let mut acc = 1.0f64;
            for _ in 0..n {
                acc = (acc * x).next_down().max(0.0);
            }
            acc
        }
        fn pow_up(x: f64, n: u32) -> f64 {
            debug_assert!(x >= 0.0);
            let mut acc = 1.0f64;
            for _ in 0..n {
                acc = (acc * x).next_up();
            }
            acc
        }
        if n == 0 {
            return FIntv::point(1.0);
        }
        if n == 1 {
            return *self;
        }
        let (lo, hi) = (self.lo, self.hi);
        if n % 2 == 1 {
            // Odd powers are monotone.
            let plo = if lo >= 0.0 {
                pow_down(lo, n)
            } else {
                -pow_up(-lo, n)
            };
            let phi = if hi >= 0.0 {
                pow_up(hi, n)
            } else {
                -pow_down(-hi, n)
            };
            FIntv::new(plo, phi)
        } else if lo >= 0.0 {
            FIntv::new(pow_down(lo, n), pow_up(hi, n))
        } else if hi <= 0.0 {
            FIntv::new(pow_down(-hi, n), pow_up(-lo, n))
        } else {
            // Straddles zero: minimum is 0, maximum at the larger magnitude.
            FIntv::new(0.0, pow_up((-lo).max(hi), n))
        }
    }

    /// Widening conversion from an exact integer (guaranteed enclosure).
    #[must_use]
    pub fn from_int(v: &Int) -> FIntv {
        let (lo, hi) = v.to_f64_interval();
        FIntv { lo, hi }
    }

    /// Hull of two rational endpoints: the tightest representable float
    /// interval containing `[lo, hi]`.
    #[must_use]
    pub fn from_rat_endpoints(lo: &Rat, hi: &Rat) -> FIntv {
        let l = FIntv::from(lo);
        let h = FIntv::from(hi);
        FIntv::new(l.lo, h.hi)
    }

    /// True iff the enclosure contains `v` (endpoint-inclusive).
    #[must_use]
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

impl From<&Rat> for FIntv {
    /// Widening conversion: a guaranteed enclosure of the exact rational,
    /// built from integer enclosures of the numerator and (positive)
    /// denominator via outward-rounded corner division.
    fn from(r: &Rat) -> FIntv {
        if r.is_zero() {
            return FIntv::zero();
        }
        let (nlo, nhi) = r.numer().to_f64_interval();
        let (dlo, dhi) = r.denom().to_f64_interval();
        debug_assert!(dlo > 0.0, "Rat denominators are normalized positive");
        let c = [nlo / dlo, nlo / dhi, nhi / dlo, nhi / dhi];
        if c.iter().any(|v| v.is_nan()) {
            return FIntv::whole();
        }
        let lo = c.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        FIntv::new(lo.next_down(), hi.next_up())
    }
}

impl From<&Int> for FIntv {
    fn from(v: &Int) -> FIntv {
        FIntv::from_int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i64, d: i64) -> Rat {
        Rat::new(Int::from(n), Int::from(d))
    }

    fn contains_rat(iv: &FIntv, v: &Rat) {
        // Compare exactly: endpoints are floats, so convert them to Rat.
        if iv.lo().is_finite() {
            let lo = Rat::from_f64(iv.lo()).unwrap();
            assert!(&lo <= v, "lo {} > value {v}", iv.lo());
        }
        if iv.hi().is_finite() {
            let hi = Rat::from_f64(iv.hi()).unwrap();
            assert!(v <= &hi, "hi {} < value {v}", iv.hi());
        }
    }

    #[test]
    fn point_and_sign() {
        assert_eq!(FIntv::point(2.0).sign(), Some(Sign::Pos));
        assert_eq!(FIntv::point(-2.0).sign(), Some(Sign::Neg));
        assert_eq!(FIntv::zero().sign(), Some(Sign::Zero));
        assert_eq!(FIntv::new(-1.0, 1.0).sign(), None);
        assert_eq!(FIntv::whole().sign(), None);
    }

    #[test]
    fn rat_conversion_encloses() {
        for (n, d) in [(1, 3), (-22, 7), (0, 5), (i64::MAX, 3), (-7, 11)] {
            let r = rat(n, d);
            let iv = FIntv::from(&r);
            contains_rat(&iv, &r);
        }
    }

    #[test]
    fn huge_int_enclosure() {
        let big = Int::pow2(300);
        let (lo, hi) = big.to_f64_interval();
        assert!(lo <= 2f64.powi(300) && 2f64.powi(300) <= hi);
        let over = Int::pow2(2000);
        let (lo, hi) = over.to_f64_interval();
        assert_eq!(hi, f64::INFINITY);
        assert_eq!(lo, f64::MAX);
        let (lo, hi) = (-over).to_f64_interval();
        assert_eq!(lo, f64::NEG_INFINITY);
        assert_eq!(hi, -f64::MAX);
    }

    #[test]
    fn arithmetic_encloses() {
        let a = rat(1, 3);
        let b = rat(-22, 7);
        let (fa, fb) = (FIntv::from(&a), FIntv::from(&b));
        contains_rat(&fa.add(&fb), &(&a + &b));
        contains_rat(&fa.sub(&fb), &(&a - &b));
        contains_rat(&fa.mul(&fb), &(&a * &b));
        contains_rat(&fb.pow(3), &(&(&b * &b) * &b));
        contains_rat(&fb.pow(2), &(&b * &b));
    }

    #[test]
    fn even_pow_of_straddle_is_nonnegative() {
        let iv = FIntv::new(-2.0, 1.0).pow(2);
        assert!(iv.lo() >= 0.0);
        assert!(iv.hi() >= 4.0);
    }

    #[test]
    fn exact_zero_propagates() {
        let z = FIntv::zero();
        let x = FIntv::new(3.0, 4.0);
        assert!(z.mul(&x).is_exact_zero());
        assert_eq!(z.add(&x), x);
        assert_eq!(z.mul(&FIntv::whole()).sign(), Some(Sign::Zero));
    }

    #[test]
    fn counters_move() {
        let (h0, f0) = filter_counters();
        note_filter_hit();
        note_filter_fallback();
        let (h1, f1) = filter_counters();
        assert!(h1 > h0 && f1 > f0);
    }
}
