//! Executable versions of the word-doubling constructions (Theorem 4.2,
//! Theorem 4.3 / Lemma 4.5).
//!
//! The paper proves that the arithmetic of `Z_{2k}` is first-order definable
//! from `Z_k` — with order and partial addition only (Theorem 4.2), and with
//! the split-word operations `+l/+u/×l/×u` for full multiplication (Lemma
//! 4.5). Here the defining formulas are implemented as *executable
//! functions that only call `Z_k` operations*, so property tests can verify
//! them against direct big-integer arithmetic ("by iterating this
//! technique, we obtain integers … of sufficient length").
//!
//! A `2k`-bit word is a pair `[lo, hi]` of `k`-bit words with value
//! `lo + 2^k·hi`.

use cdb_num::{Int, Zk};

/// A double word `[lo, hi]` over `Z_k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pair {
    /// Low `k` bits.
    pub lo: Int,
    /// High `k` bits.
    pub hi: Int,
}

impl Pair {
    /// Split a `2k`-bit value.
    #[must_use]
    pub fn split(z: &Zk, v: &Int) -> Pair {
        let (lo, hi) = z.split(v);
        Pair { lo, hi }
    }

    /// Recompose the `2k`-bit value.
    #[must_use]
    pub fn value(&self, z: &Zk) -> Int {
        z.compose(&self.lo, &self.hi)
    }
}

/// Lemma 4.5 order: `[x, x'] ≤_{2k} [y, y'] ⇔ x' < y' ∨ (x' = y' ∧ x ≤ y)`.
#[must_use]
pub fn le2k(_z: &Zk, a: &Pair, b: &Pair) -> bool {
    a.hi < b.hi || (a.hi == b.hi && a.lo <= b.lo)
}

/// Theorem 4.2 addition: `Z_{2k}` addition defined from the *partial*
/// `Z_k` addition plus subtraction/order. Overflow of the low word is
/// detected by the partiality of `+_k`; the carry is propagated exactly as
/// in the paper's defining formula. Returns `None` when the result
/// overflows `2k` bits (the `+_{2k}` operation is itself partial).
#[must_use]
pub fn add2k_partial(z: &Zk, a: &Pair, b: &Pair) -> Option<Pair> {
    let max = &z.modulus() - &Int::one();
    // Low word: x + y if representable, else x − (max − y) − 1 with carry.
    let (lo, carry) = match z.add(&a.lo, &b.lo) {
        Some(s) => (s, Int::zero()),
        None => {
            // x + y ≥ 2^k: z = x − (max − y) − 1 is representable.
            let s = &(&a.lo - &(&max - &b.lo)) - &Int::one();
            (s, Int::one())
        }
    };
    // High word: x' + y' + carry, must stay within k bits.
    let h1 = z.add(&a.hi, &b.hi)?;
    let hi = z.add(&h1, &carry)?;
    Some(Pair { lo, hi })
}

/// Lemma 4.5 addition, low part (`+l_{2k}`): total, from split ops only.
#[must_use]
pub fn add2k_lo(z: &Zk, a: &Pair, b: &Pair) -> Pair {
    let lo = z.add_lo(&a.lo, &b.lo);
    let carry = z.add_hi(&a.lo, &b.lo);
    let hi = z.add_lo(&z.add_lo(&a.hi, &b.hi), &carry);
    Pair { lo, hi }
}

/// Lemma 4.5 addition, high part (`+u_{2k}`): the carry out of the double
/// word (0 or 1), from split ops only.
#[must_use]
pub fn add2k_hi(z: &Zk, a: &Pair, b: &Pair) -> Pair {
    let c0 = z.add_hi(&a.lo, &b.lo);
    let s1 = z.add_lo(&a.hi, &b.hi);
    let c1 = z.add_hi(&a.hi, &b.hi);
    let c2 = z.add_hi(&s1, &c0);
    // Total carry out = c1 + c2 (each 0/1; they cannot both be 1 and push
    // past one bit of carry for word sizes ≥ 1).
    let hi_carry = z.add_lo(&c1, &c2);
    Pair {
        lo: hi_carry,
        hi: Int::zero(),
    }
}

/// Lemma 4.5 multiplication: the four `k`-bit words of `a·b` (a `4k`-bit
/// product) computed from split ops only. Returned low-to-high.
#[must_use]
pub fn mul2k_words(z: &Zk, a: &Pair, b: &Pair) -> [Int; 4] {
    // Partial products.
    let ll_l = z.mul_lo(&a.lo, &b.lo);
    let ll_h = z.mul_hi(&a.lo, &b.lo);
    let lh_l = z.mul_lo(&a.lo, &b.hi);
    let lh_h = z.mul_hi(&a.lo, &b.hi);
    let hl_l = z.mul_lo(&a.hi, &b.lo);
    let hl_h = z.mul_hi(&a.hi, &b.lo);
    let hh_l = z.mul_lo(&a.hi, &b.hi);
    let hh_h = z.mul_hi(&a.hi, &b.hi);
    // Column accumulation with carries, all in Z_k split ops.
    let w0 = ll_l;
    // Column 1: ll_h + lh_l + hl_l.
    let (s1, c1a) = (z.add_lo(&ll_h, &lh_l), z.add_hi(&ll_h, &lh_l));
    let (w1, c1b) = (z.add_lo(&s1, &hl_l), z.add_hi(&s1, &hl_l));
    let carry1 = z.add_lo(&c1a, &c1b); // ≤ 2, fits in k bits for k ≥ 2
                                       // Column 2: lh_h + hl_h + hh_l + carry1.
    let (s2, c2a) = (z.add_lo(&lh_h, &hl_h), z.add_hi(&lh_h, &hl_h));
    let (s3, c2b) = (z.add_lo(&s2, &hh_l), z.add_hi(&s2, &hh_l));
    let (w2, c2c) = (z.add_lo(&s3, &carry1), z.add_hi(&s3, &carry1));
    let carry2 = z.add_lo(&z.add_lo(&c2a, &c2b), &c2c);
    // Column 3: hh_h + carry2 (cannot overflow: product < 2^{4k}).
    let w3 = z.add_lo(&hh_h, &carry2);
    debug_assert!(z.add_hi(&hh_h, &carry2).is_zero());
    [w0, w1, w2, w3]
}

/// `×l_{2k}`: low `2k` bits of the product.
#[must_use]
pub fn mul2k_lo(z: &Zk, a: &Pair, b: &Pair) -> Pair {
    let [w0, w1, _, _] = mul2k_words(z, a, b);
    Pair { lo: w0, hi: w1 }
}

/// `×u_{2k}`: high `2k` bits of the product.
#[must_use]
pub fn mul2k_hi(z: &Zk, a: &Pair, b: &Pair) -> Pair {
    let [_, _, w2, w3] = mul2k_words(z, a, b);
    Pair { lo: w2, hi: w3 }
}

/// Iterate the doubling: compute `a + b` and `a × b` for `2^levels · k`-bit
/// words using only `Z_k` split operations (the paper's "by iterating this
/// technique"). Returns the (low, high) halves at the top width.
///
/// This is a reference implementation used by tests and the E9 experiment;
/// it represents wide words as binary trees of `Z_k` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wide {
    /// A `k`-bit leaf.
    Leaf(Int),
    /// A pair of half-width words `[lo, hi]`.
    Node(Box<Wide>, Box<Wide>),
}

impl Wide {
    /// Build a wide word of `2^levels` leaves from a big integer.
    #[must_use]
    pub fn from_int(z: &Zk, v: &Int, levels: u32) -> Wide {
        if levels == 0 {
            assert!(z.contains(v), "leaf out of range");
            return Wide::Leaf(v.clone());
        }
        let half_bits = u64::from(z.k) << (levels - 1);
        let modulus = Int::pow2(half_bits);
        let (hi, lo) = v.div_euclid(&modulus);
        Wide::Node(
            Box::new(Wide::from_int(z, &lo, levels - 1)),
            Box::new(Wide::from_int(z, &hi, levels - 1)),
        )
    }

    /// Recompose the big integer.
    #[must_use]
    pub fn to_int(&self, z: &Zk) -> Int {
        match self {
            Wide::Leaf(v) => v.clone(),
            Wide::Node(lo, hi) => {
                let bits = self.bits(z) / 2;
                &lo.to_int(z) + &(&hi.to_int(z) * &Int::pow2(bits))
            }
        }
    }

    fn bits(&self, z: &Zk) -> u64 {
        match self {
            Wide::Leaf(_) => u64::from(z.k),
            Wide::Node(lo, _) => 2 * lo.bits(z),
        }
    }

    /// Low half of the sum, via recursive application of the Lemma 4.5
    /// formulas (leaves use the native split ops).
    #[must_use]
    pub fn add_lo(&self, other: &Wide, z: &Zk) -> Wide {
        match (self, other) {
            (Wide::Leaf(a), Wide::Leaf(b)) => Wide::Leaf(z.add_lo(a, b)),
            (Wide::Node(alo, ahi), Wide::Node(blo, bhi)) => {
                let lo = alo.add_lo(blo, z);
                let carry = alo.add_hi(blo, z);
                let hi = ahi.add_lo(bhi, z).add_lo(&carry, z);
                Wide::Node(Box::new(lo), Box::new(hi))
            }
            // cdb-lint: allow(panic) — mixed-depth operands violate the Wide
            // construction invariant (both sides of every Lemma 4.5 doubling
            // step come from the same `Zk`); the numeric API has no error channel.
            _ => panic!("width mismatch"),
        }
    }

    /// Carry out of the sum (a wide word holding 0 or 1).
    #[must_use]
    pub fn add_hi(&self, other: &Wide, z: &Zk) -> Wide {
        match (self, other) {
            (Wide::Leaf(a), Wide::Leaf(b)) => Wide::Leaf(z.add_hi(a, b)),
            (Wide::Node(alo, ahi), Wide::Node(blo, bhi)) => {
                // Carries are half-width words holding 0/1; the total carry
                // (0, 1 — never 2 for the carry out of a sum of two words)
                // is returned zero-extended to full width.
                let c0 = alo.add_hi(blo, z);
                let s1 = ahi.add_lo(bhi, z);
                let c1 = ahi.add_hi(bhi, z);
                let c2 = s1.add_hi(&c0, z);
                let total = c1.add_lo(&c2, z);
                let zero = alo.zero_like(z);
                Wide::Node(Box::new(total), Box::new(zero))
            }
            // cdb-lint: allow(panic) — mixed-depth operands violate the Wide
            // construction invariant (both sides of every Lemma 4.5 doubling
            // step come from the same `Zk`); the numeric API has no error channel.
            _ => panic!("width mismatch"),
        }
    }

    fn zero_like(&self, z: &Zk) -> Wide {
        let _ = z;
        match self {
            Wide::Leaf(_) => Wide::Leaf(Int::zero()),
            Wide::Node(lo, _) => {
                let half = lo.zero_like(z);
                Wide::Node(Box::new(half.clone()), Box::new(half))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z4() -> Zk {
        Zk::new(4)
    }

    fn pair(z: &Zk, v: i64) -> Pair {
        Pair::split(z, &Int::from(v))
    }

    #[test]
    fn le2k_matches_value_order() {
        let z = z4();
        for a in [0i64, 1, 15, 16, 100, 255] {
            for b in [0i64, 3, 16, 99, 255] {
                assert_eq!(le2k(&z, &pair(&z, a), &pair(&z, b)), a <= b, "{a} <= {b}");
            }
        }
    }

    #[test]
    fn add2k_partial_exhaustive_small() {
        let z = Zk::new(3); // doubled words hold 0..63
        for a in 0i64..64 {
            for b in 0i64..64 {
                let got = add2k_partial(&z, &pair(&z, a), &pair(&z, b));
                if a + b < 64 {
                    assert_eq!(got.map(|p| p.value(&z)), Some(Int::from(a + b)), "{a}+{b}");
                } else {
                    assert!(got.is_none(), "{a}+{b} should overflow");
                }
            }
        }
    }

    #[test]
    fn split_add_reconstructs_full_sum() {
        let z = z4();
        for a in [0i64, 7, 128, 255] {
            for b in [0i64, 1, 130, 255] {
                let lo = add2k_lo(&z, &pair(&z, a), &pair(&z, b));
                let hi = add2k_hi(&z, &pair(&z, a), &pair(&z, b));
                let total = &lo.value(&z) + &(&hi.value(&z) * &Int::from(256));
                assert_eq!(total, Int::from(a + b), "{a}+{b}");
            }
        }
    }

    #[test]
    fn split_mul_reconstructs_full_product() {
        let z = z4();
        for a in [0i64, 3, 16, 100, 255] {
            for b in [0i64, 1, 17, 200, 255] {
                let words = mul2k_words(&z, &pair(&z, a), &pair(&z, b));
                let mut total = Int::zero();
                for (i, w) in words.iter().enumerate() {
                    total = &total + &(w * &Int::pow2(4 * i as u64));
                }
                assert_eq!(total, Int::from(a * b), "{a}*{b}");
                // And the lo/hi views agree (hi weighted by 2^{2k} = 256).
                let lo = mul2k_lo(&z, &pair(&z, a), &pair(&z, b)).value(&z);
                let hi = mul2k_hi(&z, &pair(&z, a), &pair(&z, b)).value(&z);
                assert_eq!(&lo + &(&hi * &Int::from(256)), Int::from(a * b));
            }
        }
    }

    #[test]
    fn wide_words_iterate_the_doubling() {
        // 3 levels over k=4: 32-bit arithmetic from 4-bit split ops.
        let z = z4();
        for (a, b) in [
            (0u32, 0u32),
            (123_456, 654_321),
            (0xFFFF_FFFF, 1),
            (0xDEAD_BEEF, 0x0BAD_F00D),
        ] {
            let (a, b) = (u64::from(a), u64::from(b));
            let wa = Wide::from_int(&z, &Int::from(a), 3);
            let wb = Wide::from_int(&z, &Int::from(b), 3);
            let lo = wa.add_lo(&wb, &z).to_int(&z);
            let expected = Int::from((a + b) & 0xFFFF_FFFF);
            assert_eq!(lo, expected, "{a}+{b} low 32 bits");
            let carry = wa.add_hi(&wb, &z).to_int(&z);
            let full = &lo + &(&carry * &Int::pow2(32));
            assert_eq!(full, &Int::from(a) + &Int::from(b), "{a}+{b} full");
        }
    }
}
