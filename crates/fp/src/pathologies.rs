//! The §4 counterexamples: why Tarskian semantics over `F_k` is hopeless.
//!
//! "It is indeed easy to see that for instance `F_k ⊨ ∃x∀y (y ≤ x)` … and
//! sadly, `F_k` does not even satisfy the distributive laws … two different
//! evaluation strategies of the same expression may lead to different
//! results." These constructive witnesses power experiment E15.

use cdb_num::{Fk, FkParams, Rat};

/// Witness of `∃x∀y (y ≤ x)` in `F_k`: the greatest element. (In `R` this
/// sentence is false; under Tarskian semantics over `F_k` it is true, which
/// is exactly why the paper defines satisfaction relative to the QE
/// algorithm instead.)
#[must_use]
pub fn greatest_element(params: FkParams) -> Fk {
    Fk::max_value(params)
}

/// A distributivity failure under rounding: values `(a, b, c)` with
/// `a ⊗ (b ⊕ c) ≠ (a ⊗ b) ⊕ (a ⊗ c)`, searched over small integers.
#[must_use]
pub fn distributivity_counterexample(params: FkParams) -> Option<(Fk, Fk, Fk)> {
    let mk = |v: i64| Fk::from_rat_round(&Rat::from(v), params).ok();
    // A dense search over small values finds witnesses quickly for small k
    // (rounding kicks in as soon as sums/products exceed the mantissa).
    let bound = 64i64;
    for a in 1..bound {
        for b in 1..bound {
            for c in 1..bound {
                let (fa, fb, fc) = (mk(a)?, mk(b)?, mk(c)?);
                let lhs = fb.add_round(&fc).ok().and_then(|s| fa.mul_round(&s).ok());
                let rhs = fa
                    .mul_round(&fb)
                    .ok()
                    .and_then(|ab| fa.mul_round(&fc).ok().map(|ac| (ab, ac)))
                    .and_then(|(ab, ac)| ab.add_round(&ac).ok());
                match (lhs, rhs) {
                    (Some(l), Some(r)) if l != r => return Some((fa, fb, fc)),
                    _ => {}
                }
            }
        }
    }
    None
}

/// Evaluation-order sensitivity: a list of values whose rounded sum differs
/// between left-to-right and right-to-left association. Returns
/// `(values, sum_ltr, sum_rtl)`.
#[must_use]
pub fn summation_order_counterexample(params: FkParams) -> Option<(Vec<Fk>, Fk, Fk)> {
    // One large value plus many small ones: absorbed one-by-one (each too
    // small to register), but summed together first they contribute.
    let big = Fk::from_rat_round(&Rat::from(1i64 << params.mantissa_bits.min(40)), params).ok()?;
    let one = Fk::one(params);
    let mut values = vec![big];
    for _ in 0..4 {
        values.push(one.clone());
    }
    let ltr = fold_sum(values.iter(), params)?;
    let rtl = fold_sum(values.iter().rev(), params)?;
    (ltr != rtl).then_some((values, ltr, rtl))
}

fn fold_sum<'a, I: Iterator<Item = &'a Fk>>(mut it: I, params: FkParams) -> Option<Fk> {
    let mut acc = it.next().cloned().unwrap_or_else(|| Fk::zero(params));
    for v in it {
        acc = acc.add_round(v).ok()?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_num::Rat;

    #[test]
    fn greatest_element_dominates() {
        let params = FkParams::with_k(12);
        let top = greatest_element(params);
        for v in [-5000i64, 0, 1, 4095] {
            let w = Fk::from_rat_round(&Rat::from(v), params).unwrap();
            assert!(w <= top, "{v} should be ≤ max");
        }
    }

    #[test]
    fn distributivity_fails_somewhere() {
        let params = FkParams::with_k(8);
        let (a, b, c) = distributivity_counterexample(params).expect("counterexample");
        let lhs = a.mul_round(&b.add_round(&c).unwrap()).unwrap();
        let rhs = a
            .mul_round(&b)
            .unwrap()
            .add_round(&a.mul_round(&c).unwrap())
            .unwrap();
        assert_ne!(lhs, rhs);
    }

    #[test]
    fn summation_order_matters() {
        let params = FkParams::with_k(8);
        let (values, ltr, rtl) = summation_order_counterexample(params).expect("witness");
        assert_eq!(values.len(), 5);
        assert_ne!(ltr, rtl);
        // Right-to-left (small values first) is the more accurate sum.
        let exact: Rat = values
            .iter()
            .map(Fk::to_rat)
            .fold(Rat::zero(), |a, b| &a + &b);
        let err_ltr = (&ltr.to_rat() - &exact).abs();
        let err_rtl = (&rtl.to_rat() - &exact).abs();
        assert!(err_rtl < err_ltr);
    }
}
