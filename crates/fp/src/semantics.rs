//! The partial query semantics `FOF_QE` (§4).
//!
//! A query is evaluated by the same deterministic QE algorithm as the exact
//! semantics, but every integer the algorithm manipulates is restricted to
//! bit length `k`. "The bit length of the integers allowed in the QE
//! algorithm depends upon the input database and the query": `k` defaults
//! to a multiple of [`input_bit_length`].

use cdb_constraints::{Database, Formula};
use cdb_num::Rat;
use cdb_qe::pipeline::EvalOutput;
use cdb_qe::{evaluate_query, QeContext, QeError};

/// Outcome of a finite-precision evaluation.
#[derive(Debug)]
pub enum FpOutcome {
    /// The QE algorithm completed within the bit budget.
    Defined(EvalOutput),
    /// Undefined: some intermediate integer exceeded the budget.
    Undefined {
        /// The budget that was in force.
        budget_bits: u64,
        /// The bit length that tripped it.
        needed_bits: u64,
    },
}

impl FpOutcome {
    /// The defined result, if any.
    #[must_use]
    pub fn defined(self) -> Option<EvalOutput> {
        match self {
            FpOutcome::Defined(out) => Some(out),
            FpOutcome::Undefined { .. } => None,
        }
    }

    /// True iff the query was defined.
    #[must_use]
    pub fn is_defined(&self) -> bool {
        matches!(self, FpOutcome::Defined(_))
    }
}

/// Bit length of the input: the largest bit length of any integer occurring
/// in the database representation or the query — the `k` such that the
/// active domain is `Z_k` (§4).
#[must_use]
pub fn input_bit_length(db: &Database, query: &Formula) -> u64 {
    fn formula_bits(f: &Formula) -> u64 {
        match f {
            Formula::True | Formula::False | Formula::Rel(..) => 0,
            Formula::Atom(a) => a.poly.max_coeff_bits(),
            Formula::Not(b) | Formula::Quant(_, _, b) => formula_bits(b),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().map(formula_bits).max().unwrap_or(0),
        }
    }
    db.max_coeff_bits().max(formula_bits(query)).max(1)
}

/// Evaluate a query under the finite precision semantics with an explicit
/// bit budget. Errors other than budget exhaustion propagate.
pub fn fp_evaluate_query(
    db: &Database,
    query: &Formula,
    nvars: usize,
    budget_bits: u64,
) -> Result<FpOutcome, QeError> {
    let ctx = QeContext::with_budget(budget_bits);
    match evaluate_query(db, query, nvars, &ctx) {
        Ok(out) => Ok(FpOutcome::Defined(out)),
        Err(QeError::PrecisionExceeded {
            budget_bits,
            seen_bits,
        }) => Ok(FpOutcome::Undefined {
            budget_bits,
            needed_bits: seen_bits,
        }),
        Err(e) => Err(e),
    }
}

/// Compare exact and finite-precision evaluation of the same query, on a
/// grid of probe points over the free variables — the empirical content of
/// Theorems 4.1 and 4.2.
#[derive(Debug)]
pub struct Divergence {
    /// Was the finite-precision run defined at all?
    pub fp_defined: bool,
    /// Number of probe points where the two answers disagreed (0 when
    /// undefined — undefinedness is not disagreement).
    pub disagreements: usize,
    /// Probes examined.
    pub probes: usize,
    /// Max bit length the exact run needed.
    pub exact_bits_needed: u64,
}

/// Run both semantics and probe agreement on integer points in
/// `[-range, range]^free` (scaled by 1/2 to hit half-integers too).
pub fn compare_semantics(
    db: &Database,
    query: &Formula,
    nvars: usize,
    budget_bits: u64,
    range: i64,
) -> Result<Divergence, QeError> {
    let exact_ctx = QeContext::exact();
    let exact = evaluate_query(db, query, nvars, &exact_ctx)?;
    let fp = fp_evaluate_query(db, query, nvars, budget_bits)?;
    let exact_bits_needed = exact_ctx.max_bits_seen.get();
    let FpOutcome::Defined(fp_out) = fp else {
        return Ok(Divergence {
            fp_defined: false,
            disagreements: 0,
            probes: 0,
            exact_bits_needed,
        });
    };
    // Probe grid over free variables.
    let free = &exact.free_vars;
    let mut disagreements = 0;
    let mut probes = 0;
    let mut point = vec![Rat::zero(); nvars];
    let steps: Vec<Rat> = (-(2 * range)..=(2 * range))
        .map(|i| Rat::from_ints(i, 2))
        .collect();
    // Enumerate the grid (cartesian product over free vars).
    let mut idx = vec![0usize; free.len()];
    loop {
        for (d, &v) in free.iter().enumerate() {
            point[v] = steps[idx[d]].clone();
        }
        probes += 1;
        if exact.relation.satisfied_at(&point) != fp_out.relation.satisfied_at(&point) {
            disagreements += 1;
        }
        // Increment odometer.
        let mut d = 0;
        loop {
            if d == free.len() {
                return Ok(Divergence {
                    fp_defined: true,
                    disagreements,
                    probes,
                    exact_bits_needed,
                });
            }
            idx[d] += 1;
            if idx[d] < steps.len() {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
        if free.is_empty() {
            return Ok(Divergence {
                fp_defined: true,
                disagreements,
                probes,
                exact_bits_needed,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_constraints::{Atom, ConstraintRelation, GeneralizedTuple, RelOp};
    use cdb_poly::MPoly;

    fn c(v: i64, n: usize) -> MPoly {
        MPoly::constant(Rat::from(v), n)
    }

    fn linear_db(coeff: i64) -> (Database, Formula) {
        // R(x, y) ≡ y = coeff·x ∧ 0 ≤ x ≤ 4; query ∃y R(x, y).
        let n = 2;
        let x = MPoly::var(0, n);
        let y = MPoly::var(1, n);
        let rel = ConstraintRelation::new(
            n,
            vec![GeneralizedTuple::new(
                n,
                vec![
                    Atom::cmp(y, RelOp::Eq, x.scale(&Rat::from(coeff))),
                    Atom::new(-&x, RelOp::Le),
                    Atom::cmp(x, RelOp::Le, c(4, n)),
                ],
            )],
        );
        let mut db = Database::new();
        db.insert("R", rel);
        let q = Formula::exists(1, Formula::Rel("R".into(), vec![0, 1]));
        (db, q)
    }

    #[test]
    fn input_bit_length_reflects_coefficients() {
        let (db, q) = linear_db(1000);
        assert!(input_bit_length(&db, &q) >= 10); // 1000 needs 10 bits
        let (db2, q2) = linear_db(1);
        assert!(input_bit_length(&db2, &q2) <= 4);
    }

    #[test]
    fn linear_queries_agree_with_generous_budget() {
        // Theorem 4.2: with c·k bits, linear FP semantics = exact semantics.
        let (db, q) = linear_db(7);
        let k = input_bit_length(&db, &q);
        let div = compare_semantics(&db, &q, 2, 8 * k, 6).unwrap();
        assert!(div.fp_defined);
        assert_eq!(div.disagreements, 0);
        assert!(div.probes > 0);
    }

    #[test]
    fn tiny_budget_is_undefined_not_wrong() {
        let (db, q) = linear_db(1 << 20);
        let div = compare_semantics(&db, &q, 2, 4, 3).unwrap();
        // Never silently wrong: small budgets give undefined.
        assert!(!div.fp_defined);
        assert_eq!(div.disagreements, 0);
    }

    #[test]
    fn outcome_api() {
        let (db, q) = linear_db(3);
        let out = fp_evaluate_query(&db, &q, 2, 64).unwrap();
        assert!(out.is_defined());
        assert!(out.defined().is_some());
        let under = fp_evaluate_query(&db, &q, 2, 1).unwrap();
        assert!(!under.is_defined());
    }

    #[test]
    fn polynomial_queries_need_polynomially_more_bits() {
        // Theorem 4.1 intuition: CAD on degree-2 inputs squares coefficient
        // sizes; exact run records the growth.
        let n = 2;
        let x = MPoly::var(0, n);
        let y = MPoly::var(1, n);
        let big = 1_000_003i64;
        let p = &(&y.pow(2) - &x.scale(&Rat::from(big))) + &c(1, n);
        let mut db = Database::new();
        db.insert(
            "P",
            ConstraintRelation::new(
                n,
                vec![GeneralizedTuple::new(n, vec![Atom::new(p, RelOp::Le)])],
            ),
        );
        let q = Formula::exists(1, Formula::Rel("P".into(), vec![0, 1]));
        let exact_ctx = QeContext::exact();
        let _ = evaluate_query(&db, &q, n, &exact_ctx).unwrap();
        let input_bits = input_bit_length(&db, &q);
        // CAD intermediate integers exceeded the input bit length.
        assert!(exact_ctx.max_bits_seen.get() > input_bits);
    }
}
