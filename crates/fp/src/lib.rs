#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! `cdb-fp`: the finite precision semantics of §4.
//!
//! The paper replaces Tarskian satisfaction over floating numbers (which
//! would validate `∃x∀y (y ≤ x)` and lose distributivity) with a semantics
//! *relative to the fixed QE algorithm*: `⟨R̂₁,…,R̂ₙ⟩ ⊨_QE^F φ` iff the QE
//! algorithm reduces φ to the tautology using only integers of bit length
//! `k`. This crate provides:
//!
//! * [`semantics`] — the partial query semantics `FOF_QE`: run the exact QE
//!   engines under a bit-length budget; exceeding it makes the query
//!   *undefined* (Theorem 4.1's strictness), and linear queries never
//!   exceed a `c·k` budget (Theorem 4.2 / Lemma 4.4).
//! * [`doubling`] — the Lemma 4.5 / Theorem 4.2 constructions: `Z_{2k}`
//!   arithmetic implemented *only* from `Z_k` operations (split-word
//!   `+l/+u/×l/×u`, or partial ops plus order), executable and
//!   property-tested against direct arithmetic.
//! * [`pathologies`] — the §4 counterexamples for `F_k`: a greatest
//!   element, distributivity failure, and evaluation-order sensitivity.

pub mod doubling;
pub mod pathologies;
pub mod semantics;

pub use semantics::{fp_evaluate_query, input_bit_length, FpOutcome};
