//! Property tests for the word-doubling constructions (Lemma 4.5 /
//! Theorem 4.2): the formulas built from `Z_k` operations must agree with
//! direct big-integer arithmetic on random inputs and word sizes.

use cdb_fp::doubling::{
    add2k_hi, add2k_lo, add2k_partial, le2k, mul2k_lo, mul2k_words, Pair, Wide,
};
use cdb_num::{Int, Zk};
use proptest::prelude::*;

proptest! {
    #[test]
    fn le2k_matches_integer_order(k in 2u32..16, a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let z = Zk::new(k);
        let m = 1u64 << (2 * k).min(62);
        let (a, b) = (a % m, b % m);
        let pa = Pair::split(&z, &Int::from(a));
        let pb = Pair::split(&z, &Int::from(b));
        prop_assert_eq!(le2k(&z, &pa, &pb), a <= b);
    }

    #[test]
    fn add2k_partial_matches(k in 2u32..16, a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let z = Zk::new(k);
        let m = 1u64 << (2 * k).min(60);
        let (a, b) = (a % m, b % m);
        let pa = Pair::split(&z, &Int::from(a));
        let pb = Pair::split(&z, &Int::from(b));
        let got = add2k_partial(&z, &pa, &pb);
        if a + b < m {
            prop_assert_eq!(got.map(|p| p.value(&z)), Some(Int::from(a + b)));
        } else {
            prop_assert!(got.is_none());
        }
    }

    #[test]
    fn split_add_identity(k in 2u32..16, a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let z = Zk::new(k);
        let m = 1u64 << (2 * k).min(60);
        let (a, b) = (a % m, b % m);
        let pa = Pair::split(&z, &Int::from(a));
        let pb = Pair::split(&z, &Int::from(b));
        let lo = add2k_lo(&z, &pa, &pb).value(&z);
        let hi = add2k_hi(&z, &pa, &pb).value(&z);
        prop_assert_eq!(&lo + &(&hi * &Int::from(m)), Int::from(a + b));
    }

    #[test]
    fn split_mul_identity(k in 2u32..12, a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let z = Zk::new(k);
        let m = 1u64 << (2 * k).min(30);
        let (a, b) = (a % m, b % m);
        let pa = Pair::split(&z, &Int::from(a));
        let pb = Pair::split(&z, &Int::from(b));
        let words = mul2k_words(&z, &pa, &pb);
        let mut total = Int::zero();
        for (i, w) in words.iter().enumerate() {
            total = &total + &(w * &Int::pow2(u64::from(k) * i as u64));
        }
        prop_assert_eq!(total, &Int::from(a) * &Int::from(b));
        let lo = mul2k_lo(&z, &pa, &pb).value(&z);
        prop_assert_eq!(lo, Int::from((a as u128 * b as u128 % u128::from(m)) as u64));
    }

    #[test]
    fn wide_iterated_doubling(k in 2u32..8, levels in 1u32..4, a in any::<u64>(), b in any::<u64>()) {
        let z = Zk::new(k);
        let bits = u64::from(k) << levels;
        prop_assume!(bits <= 48);
        let m = 1u64 << bits;
        let (a, b) = (a % m, b % m);
        let wa = Wide::from_int(&z, &Int::from(a), levels);
        let wb = Wide::from_int(&z, &Int::from(b), levels);
        let lo = wa.add_lo(&wb, &z).to_int(&z);
        let carry = wa.add_hi(&wb, &z).to_int(&z);
        prop_assert_eq!(lo, Int::from((a + b) % m));
        prop_assert_eq!(&Int::from((a + b) % m) + &(&carry * &Int::from(m)), Int::from(a + b));
    }
}
