//! End-to-end tests for the `cdb-lint` binary: JSON report stability,
//! baseline ratchet exit codes, and `--write-baseline` round-tripping.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint lives two levels below the workspace root")
        .to_path_buf()
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cdb-lint"))
        .args(args)
        .output()
        .expect("spawn cdb-lint")
}

#[test]
fn json_report_parses_and_is_stable_across_runs() {
    let root = workspace_root();
    let root = root.to_str().expect("utf-8 workspace path");
    let a = run(&["--root", root, "--format", "json"]);
    let b = run(&["--root", root, "--format", "json"]);
    assert!(
        a.status.success(),
        "workspace lint should be clean: {}",
        String::from_utf8_lossy(&a.stdout)
    );
    assert_eq!(a.stdout, b.stdout, "JSON report must be deterministic");

    let text = String::from_utf8(a.stdout).expect("report is utf-8");
    let doc = cdb_lint::baseline::parse(&text).expect("report is well-formed JSON");
    assert_eq!(doc.get("version").and_then(|v| v.as_int()), Some(1));
    let summary = doc.get("summary").expect("summary object");
    assert_eq!(summary.get("new").and_then(|v| v.as_int()), Some(0));
    assert_eq!(summary.get("stale").and_then(|v| v.as_int()), Some(0));
    assert!(
        doc.get("files_scanned")
            .and_then(|v| v.as_int())
            .is_some_and(|n| n > 40),
        "report should cover the whole workspace"
    );
    assert!(
        doc.get("lock_order_edges")
            .and_then(|v| v.as_arr())
            .is_some_and(|a| !a.is_empty()),
        "the serving stack should contribute lock-order edges"
    );
}

#[test]
fn write_baseline_then_ratchet_is_clean() {
    let root = workspace_root();
    let root_s = root.to_str().expect("utf-8 workspace path");
    let dir = std::env::temp_dir().join(format!("cdb-lint-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let base = dir.join("baseline.json");
    let base_s = base.to_str().expect("utf-8 temp path");

    let w = run(&["--root", root_s, "--baseline", base_s, "--write-baseline"]);
    assert!(w.status.success(), "--write-baseline should exit 0");
    let written = std::fs::read_to_string(&base).expect("baseline written");
    cdb_lint::baseline::parse_baseline(&written).expect("baseline is parseable");

    let r = run(&["--root", root_s, "--baseline", base_s]);
    assert!(
        r.status.success(),
        "ratchet against a just-written baseline must pass: {}",
        String::from_utf8_lossy(&r.stdout)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_baseline_entry_fails_the_ratchet() {
    let root = workspace_root();
    let root_s = root.to_str().expect("utf-8 workspace path");
    let dir = std::env::temp_dir().join(format!("cdb-lint-cli-stale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let base = dir.join("baseline.json");
    let stale = cdb_lint::baseline::write_baseline(&[cdb_lint::baseline::Entry {
        file: "crates/ghost/src/lib.rs".into(),
        rule: "panic".into(),
        message: "a finding that no longer exists".into(),
    }]);
    std::fs::write(&base, stale).expect("write stale baseline");

    let r = run(&[
        "--root",
        root_s,
        "--baseline",
        base.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(
        r.status.code(),
        Some(1),
        "a stale baseline entry must fail the ratchet"
    );
    let out = String::from_utf8_lossy(&r.stdout);
    assert!(out.contains("stale"), "output should name the stale entry");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_rule_in_flag_is_a_usage_error() {
    let r = run(&["--format", "yaml"]);
    assert_eq!(r.status.code(), Some(2), "bad --format is a usage error");
}
