//! Fixture corpus: each directory under `tests/fixtures/` holds an
//! `input.rs`, a `path.txt` with the pretend workspace-relative path (rule
//! applicability is path-derived), and a golden `expected.txt` with the
//! diagnostics the linter must emit — empty for a clean fixture.
//!
//! Regenerate goldens with `UPDATE_FIXTURES=1 cargo test -p cdb-lint` and
//! review the diff like any other code change.

use std::path::Path;

fn run_case(dir: &Path) -> (String, String) {
    let src = std::fs::read_to_string(dir.join("input.rs")).expect("fixture input.rs");
    let rel = std::fs::read_to_string(dir.join("path.txt"))
        .expect("fixture path.txt")
        .trim()
        .to_owned();
    let got: String = cdb_lint::lint_file(&rel, &src)
        .iter()
        .map(|d| format!("{d}\n"))
        .collect();
    let expected_path = dir.join("expected.txt");
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::write(&expected_path, &got).expect("write golden");
    }
    let expected = std::fs::read_to_string(&expected_path).unwrap_or_default();
    (got, expected)
}

#[test]
fn fixture_corpus_matches_goldens() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut cases: Vec<_> = std::fs::read_dir(&root)
        .expect("fixtures dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    cases.sort();
    assert!(cases.len() >= 7, "fixture corpus went missing");
    let mut failures = Vec::new();
    for dir in &cases {
        let (got, expected) = run_case(dir);
        if got != expected {
            failures.push(format!(
                "== {}\n-- expected --\n{expected}-- got --\n{got}",
                dir.file_name().unwrap_or_default().to_string_lossy()
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// The linter's reason-for-being: the workspace itself must be clean. Runs
/// the same entry point as the CLI over the real tree.
#[test]
fn workspace_is_clean() {
    let ws = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = cdb_lint::run_root(&ws).expect("scan workspace");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint findings:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.files_scanned > 40,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}
