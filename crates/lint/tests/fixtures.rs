//! Fixture corpus: each directory under `tests/fixtures/` is one case.
//!
//! Single-file cases hold an `input.rs`, a `path.txt` with the pretend
//! workspace-relative path (rule applicability is path-derived), and a
//! golden `expected.txt`. Multi-file cases (the interprocedural passes
//! need cross-file call graphs) hold a `files/` directory instead: every
//! `.rs` inside starts with a `//@ path: <workspace-relative path>` header
//! line, and the whole set is linted as one unit through `lint_files`.
//!
//! Regenerate goldens with `UPDATE_FIXTURES=1 cargo test -p cdb-lint` and
//! review the diff like any other code change.

use std::path::Path;

fn render(diags: &[cdb_lint::Diagnostic]) -> String {
    diags.iter().map(|d| format!("{d}\n")).collect()
}

fn run_case(dir: &Path) -> (String, String) {
    let files_dir = dir.join("files");
    let got = if files_dir.is_dir() {
        let mut inputs: Vec<(String, String)> = Vec::new();
        let mut names: Vec<_> = std::fs::read_dir(&files_dir)
            .expect("fixture files dir")
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        names.sort();
        for path in names {
            let src = std::fs::read_to_string(&path).expect("fixture file");
            let (header, _) = src.split_once('\n').expect("fixture header line");
            let rel = header
                .strip_prefix("//@ path:")
                .unwrap_or_else(|| panic!("{} must start with `//@ path:`", path.display()))
                .trim()
                .to_owned();
            inputs.push((rel, src));
        }
        render(&cdb_lint::lint_files(&inputs).diagnostics)
    } else {
        let src = std::fs::read_to_string(dir.join("input.rs")).expect("fixture input.rs");
        let rel = std::fs::read_to_string(dir.join("path.txt"))
            .expect("fixture path.txt")
            .trim()
            .to_owned();
        render(&cdb_lint::lint_file(&rel, &src))
    };
    let expected_path = dir.join("expected.txt");
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::write(&expected_path, &got).expect("write golden");
    }
    let expected = std::fs::read_to_string(&expected_path).unwrap_or_default();
    (got, expected)
}

#[test]
fn fixture_corpus_matches_goldens() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut cases: Vec<_> = std::fs::read_dir(&root)
        .expect("fixtures dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    cases.sort();
    assert!(cases.len() >= 11, "fixture corpus went missing");
    let mut failures = Vec::new();
    for dir in &cases {
        let (got, expected) = run_case(dir);
        if got != expected {
            failures.push(format!(
                "== {}\n-- expected --\n{expected}-- got --\n{got}",
                dir.file_name().unwrap_or_default().to_string_lossy()
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// The linter's reason-for-being: the workspace itself must be clean
/// against the committed baseline. Runs the same entry point as the CLI
/// over the real tree, then ratchets: fresh findings fail, stale baseline
/// entries fail.
#[test]
fn workspace_is_clean_against_baseline() {
    let ws = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = cdb_lint::run_root(&ws).expect("scan workspace");
    let accepted = match std::fs::read_to_string(ws.join("lint_baseline.json")) {
        Ok(text) => cdb_lint::baseline::parse_baseline(&text).expect("parse baseline"),
        Err(_) => Vec::new(),
    };
    let ratchet = cdb_lint::baseline::ratchet(&report.entries(), &accepted);
    let fresh: Vec<String> = ratchet
        .fresh
        .iter()
        .filter_map(|&i| report.diagnostics.get(i))
        .map(ToString::to_string)
        .collect();
    assert!(
        fresh.is_empty(),
        "workspace has fresh lint findings:\n{}",
        fresh.join("\n")
    );
    assert!(
        ratchet.stale.is_empty(),
        "stale baseline entries (baseline only shrinks deliberately):\n{:?}",
        ratchet.stale
    );
    assert!(
        report.files_scanned > 40,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

/// The lock-order pass is the machine-checked proof obligation for the
/// serving stack (DESIGN.md §13): the acquisition-order graph over the
/// real workspace must contain the documented hierarchy and stay acyclic
/// (every cycle would have surfaced as a diagnostic above).
#[test]
fn workspace_lock_hierarchy_holds() {
    let ws = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = cdb_lint::run_root(&ws).expect("scan workspace");
    let has = |from: &str, to: &str| {
        report
            .lock_edges
            .iter()
            .any(|e| e.from == from && e.to == to)
    };
    // Session::write holds the master cell across apply_write, which can
    // touch the cache shards and the interner.
    assert!(
        has("db-master", "cache-shard"),
        "edges: {:?}",
        report.lock_edges
    );
    assert!(has("db-master", "interner-shard"));
    // The serve loop holds the stdin lock for the whole session.
    assert!(has("stdio", "db-master"));
    // The documented order is top-down only: nothing re-acquires the
    // master cell from below it.
    assert!(!has("cache-shard", "db-master"));
    assert!(!has("interner-shard", "db-master"));
    assert!(!has("admission-queue", "db-master"));
    // The graph carries real volume and the panic surface is populated.
    assert!(report.functions > 500, "functions: {}", report.functions);
    assert!(report.call_edges > 1000, "edges: {}", report.call_edges);
    assert!(
        report.panic_surface.contains_key("qe"),
        "surface: {:?}",
        report.panic_surface
    );
}

/// Pin the path → rule-family mapping for every kind of workspace path:
/// `classify` is the linter's jurisdiction table, and a silent change to
/// it would quietly widen or narrow every rule at once.
#[test]
fn classify_table_is_pinned() {
    // (path, float, determinism, panic, lock)
    let table: &[(&str, bool, bool, bool, bool)] = &[
        // The FIntv boundary and the fp crate are the float zones.
        ("crates/num/src/fintv.rs", false, false, true, true),
        ("crates/fp/src/lib.rs", false, false, true, true),
        ("crates/fp/src/eval.rs", false, false, true, true),
        // Everything else is float-confined.
        ("crates/num/src/rat.rs", true, false, true, true),
        ("crates/poly/src/lib.rs", true, false, true, true),
        // Result-producing crates answer to determinism.
        ("crates/qe/src/lib.rs", true, true, true, true),
        ("crates/qe/src/cad/sample.rs", true, true, true, true),
        // The planner and its quadratic kernel produce result bytes
        // (strategy choice decides which eliminator writes the output),
        // so both sit fully inside the determinism + float scope.
        ("crates/qe/src/plan.rs", true, true, true, true),
        ("crates/qe/src/quad1.rs", true, true, true, true),
        ("crates/datalog/src/program.rs", true, true, true, true),
        ("crates/calcf/src/engine.rs", true, true, true, true),
        ("crates/agg/src/eval.rs", true, true, true, true),
        // Determinism singletons outside those crates.
        ("crates/num/src/modp.rs", true, true, true, true),
        ("crates/core/src/deps.rs", true, true, true, true),
        ("crates/core/src/update.rs", true, true, true, true),
        // The whole serving layer is determinism-scoped.
        ("crates/server/src/session.rs", true, true, true, true),
        ("crates/server/src/wire.rs", true, true, true, true),
        // Binaries may panic on startup but stay float/lock-checked.
        ("crates/server/src/bin/serve.rs", true, true, false, true),
        ("crates/core/src/bin/cdb.rs", true, false, false, true),
        ("crates/qe/src/main.rs", true, true, false, true),
        // Core library files: float + panic + lock.
        ("crates/core/src/lib.rs", true, false, true, true),
        ("crates/lint/src/lib.rs", true, false, true, true),
    ];
    for &(path, float, determinism, panic, lock) in table {
        let c = cdb_lint::classify(path);
        assert_eq!(
            (c.float, c.determinism, c.panic, c.lock),
            (float, determinism, panic, lock),
            "classify({path})"
        );
    }
}
