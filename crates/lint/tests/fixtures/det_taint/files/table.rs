//@ path: crates/poly/src/table.rs
//! Fixture: out-of-scope helpers. `fetch` folds over HashMap iteration
//! order (a real source); `fetch_keyed` is sanctioned at the definition.

pub fn fetch(k: Key) -> Val {
    let m: HashMap<Key, Val> = build(k);
    let mut acc = Val::default();
    for (_, v) in &m {
        acc = acc.merge(v);
    }
    acc
}

// cdb-lint: allow(determinism-taint) — keyed lookup only; iteration order
// never reaches the returned value
pub fn fetch_keyed(k: Key) -> Val {
    let m: HashMap<Key, Val> = build(k);
    m.get(&k).cloned().unwrap_or_default()
}

fn build(_k: Key) -> HashMap<Key, Val> {
    HashMap::new()
}
