//@ path: crates/qe/src/dtscoped.rs
//! Fixture: determinism-scoped code calling an out-of-scope helper that
//! iterates a `HashMap` — rule D cannot see it, determinism-taint can.

pub fn resolve(k: Key) -> Val {
    table::fetch(k)
}

pub fn resolve_sanctioned(k: Key) -> Val {
    table::fetch_keyed(k)
}
