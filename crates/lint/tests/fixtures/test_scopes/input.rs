//! Test-only code is out of scope: the same unwrap that is a finding in
//! library code is fine inside `#[cfg(test)]` or `mod tests`.

/// Library code: this unwrap IS a finding.
pub fn lib_head(v: &[i64]) -> i64 {
    v.first().copied().unwrap()
}

#[cfg(test)]
fn helper_head(v: &[i64]) -> i64 {
    v.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn heads() {
        assert_eq!(super::lib_head(&[1]), 1);
        assert_eq!(super::helper_head(&[2]), 2);
    }
}
