//! Pretend `cdb_num::modp`: the modular-arithmetic substrate is covered by
//! BOTH the float-confinement rule (it is not the `fintv` boundary) and the
//! determinism rule (CRT residues become result bytes). Plain u64 modular
//! arithmetic must pass untouched; floats, unordered containers, and
//! relaxed atomics are findings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fine: pure u64/u128 residue arithmetic.
pub fn mul_mod(a: u64, b: u64, p: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(p)) as u64
}

/// Finding (float): an f64 shortcut has no place in the exact kernel.
pub fn approx_inverse(a: u64, p: u64) -> u64 {
    let guess = (p as f64) / (a as f64);
    guess as u64
}

/// Finding (determinism): hash-order iteration over residues.
pub fn residue_table(rs: &[u64]) -> usize {
    let mut seen: HashMap<u64, u64> = HashMap::new();
    for &r in rs {
        *seen.entry(r).or_default() += 1;
    }
    seen.len()
}

/// Finding (determinism): relaxed counter in the reconstruction path.
pub fn count_bad_primes(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}
