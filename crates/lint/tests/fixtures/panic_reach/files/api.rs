//@ path: crates/core/src/api.rs
//! Fixture: a public function with no panic site of its own that reaches
//! one through a private helper — the per-file rule P flags the site, the
//! panic-reach pass flags the public entry point.

pub fn largest(values: &[i64]) -> i64 {
    inner_max(values)
}

fn inner_max(values: &[i64]) -> i64 {
    values.iter().copied().max().unwrap()
}

/// A justified invariant does not propagate: this entry point stays clean.
pub fn first_or_zero(values: &[i64]) -> i64 {
    checked_first(values)
}

fn checked_first(values: &[i64]) -> i64 {
    if values.is_empty() {
        return 0;
    }
    // cdb-lint: allow(panic) — emptiness checked on the line above
    values.first().copied().unwrap()
}
