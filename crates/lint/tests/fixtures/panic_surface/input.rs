//! Library panic surface: unwrap/expect/panic!/unreachable!/todo! and
//! constant-subscript indexing are findings.

/// Head of a coefficient list, with every forbidden idiom in one place.
pub fn head(v: &[i64], flag: bool) -> i64 {
    if flag {
        panic!("flag set");
    }
    match v.len() {
        0 => unreachable!(),
        1 => v.first().copied().unwrap(),
        2 => v.first().copied().expect("two elements"),
        3 => todo!(),
        _ => v[0],
    }
}
