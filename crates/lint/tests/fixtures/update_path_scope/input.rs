//! Pretend `constraintdb::update`: the update scheduler is in the
//! determinism scope (DESIGN.md §12) — which units re-run, and in what
//! order, is derived from dependency sets, so iteration order becomes
//! evaluation order. BTree containers and SeqCst pass untouched;
//! unordered containers, relaxed atomics, wall-clocks, and library
//! panics are findings.

use std::collections::{BTreeSet, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fine: ordered set drives a deterministic replay order.
pub fn replay_order(names: &BTreeSet<String>) -> Vec<String> {
    names.iter().cloned().collect()
}

/// Finding (determinism): hash-order traversal of the affected set.
pub fn affected_order(names: &HashSet<String>) -> Vec<String> {
    names.iter().cloned().collect()
}

/// Finding (determinism): wall-clock reads make replay order time-dependent.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

/// Finding (determinism): relaxed counter on the invalidation path.
pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}

/// Finding (panic): library code must surface errors, not unwrap.
pub fn first_head(heads: &[String]) -> String {
    heads.first().unwrap().clone()
}
