//! Inside `crates/fp/` the float rule is off: this file must lint clean.

/// Split-word doubling works on raw doubles by design (Lemma 4.5).
pub fn twice(x: f64) -> f64 {
    x * 2.0
}
