//! Directive grammar: a justified allow suppresses its finding; a missing
//! reason, an unknown rule, and an unused allow are each findings.

/// Suppressed by a same-line allow with a reason.
pub fn narrowed(num: i64) -> f64 {
    num as f64 // cdb-lint: allow(float) — audited reporting-only conversion
}

// cdb-lint: allow(float)
/// The directive above has no written reason.
pub fn no_reason(num: i64) -> f64 {
    num as f64
}

// cdb-lint: allow(speed) — not a rule family
/// The directive above names an unknown rule.
pub fn unknown_rule() {}

// cdb-lint: allow(panic) — nothing on the next line can panic
/// The directive above suppresses nothing.
pub fn unused_allow() {}
