//! Lock discipline: two `.lock()` calls in one statement deadlock under
//! opposite acquisition order; a guard held across `par_map_result`
//! serializes the fan-out.

use std::sync::Mutex;

/// Pairwise sum taking both locks in a single statement.
pub fn pair_sum(a: &Mutex<i64>, b: &Mutex<i64>) -> i64 {
    *a.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        + *b.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Fan out while a guard is still live.
pub fn fan_out(total: &Mutex<i64>, items: &[i64]) -> i64 {
    let guard = total.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let s: i64 = par_map_result(items);
    *guard + s
}

fn par_map_result(items: &[i64]) -> i64 {
    items.iter().sum()
}
