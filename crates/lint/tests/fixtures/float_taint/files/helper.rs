//@ path: crates/qe/src/fthelper.rs
//! Fixture: the float-signature helper. Rule F is satisfied by the allow,
//! but calling it from confined code is still a taint finding.

// cdb-lint: allow(float) — fixture: approximate width probe
pub fn approx_width(_a: &Alg) -> f64 {
    0
}
