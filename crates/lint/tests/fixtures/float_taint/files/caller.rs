//@ path: crates/qe/src/ftcaller.rs
//! Fixture: float-confined code that never names `f64` but calls a helper
//! whose signature carries one — the laundering hole float-taint closes.

pub fn cell_width(a: &Alg) -> Rat {
    let w = approx_width(a);
    quantize(w)
}

fn quantize(_w: W) -> Rat {
    Rat::default()
}
