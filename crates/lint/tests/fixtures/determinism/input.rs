//! Result-producing crate: unordered containers, wall clocks, and relaxed
//! atomics are findings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Accumulate counts in hash order (nondeterministic iteration).
pub fn tally(keys: &[String]) -> usize {
    let started = Instant::now();
    let mut seen: HashMap<String, usize> = HashMap::new();
    for k in keys {
        *seen.entry(k.clone()).or_default() += 1;
    }
    let ticks = AtomicU64::new(0);
    ticks.fetch_add(1, Ordering::Relaxed);
    let _ = started;
    seen.len()
}
