//! Pretend `cdb-server::session`: the serving layer is in the
//! determinism scope (DESIGN.md §13) — batched and unbatched admission
//! must return byte-identical results for every batch composition and
//! worker count, so nothing order- or clock-dependent may sit on a
//! result path, and the session loop must never panic out from under a
//! queued request. BTree containers, SeqCst counters, and poison
//! recovery pass untouched.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Fine: ordered histogram — iteration order is part of the stats output.
pub fn batch_histogram(sizes: &[usize]) -> BTreeMap<usize, u64> {
    let mut hist = BTreeMap::new();
    for &s in sizes {
        *hist.entry(s).or_insert(0) += 1;
    }
    hist
}

/// Fine: SeqCst counter; poison recovery instead of unwrap.
pub fn note_read(reads: &AtomicU64, hist: &Mutex<BTreeMap<usize, u64>>, size: usize) {
    reads.fetch_add(1, Ordering::SeqCst);
    let mut h = hist.lock().unwrap_or_else(PoisonError::into_inner);
    *h.entry(size).or_insert(0) += 1;
}

/// Finding (determinism): hash-order catalog listing reaches the reply.
pub fn catalog_reply(schema: &HashMap<String, usize>) -> Vec<String> {
    schema.iter().map(|(n, a)| format!("{n}/{a}")).collect()
}

/// Finding (determinism): wall-clock latency on the result path.
pub fn stamp_response(text: String) -> (String, std::time::Instant) {
    (text, std::time::Instant::now())
}

/// Finding (determinism): relaxed read of the admitted-batch counter.
pub fn batches_admitted(batches: &AtomicU64) -> u64 {
    batches.load(Ordering::Relaxed)
}

/// Finding (panic): unwrap in the session loop drops a queued request.
pub fn take_result(slot: &Mutex<Option<String>>) -> String {
    slot.lock().unwrap().take().unwrap()
}
