//! The per-disjunct planner sits on the QE result path, so it answers to
//! the determinism and float rules: naked wall clocks and floats are
//! findings; the stats-only timing idiom needs an explicit allow.

use std::collections::HashMap;
use std::time::Instant;

/// Naked wall-clock read on a result path: a finding.
pub fn classify_timed(n: usize) -> usize {
    let t0 = Instant::now();
    let _ = t0;
    n
}

/// Float cost model steering strategy choice: a finding (costs must be
/// integral ranks, not measured floats).
pub fn float_cost(disjuncts: usize) -> f64 {
    disjuncts as f64 * 1.5
}

/// Hash-ordered strategy histogram: iteration order would reach the
/// stats output nondeterministically.
pub fn histogram(strategies: &[String]) -> usize {
    let mut by_name: HashMap<String, u64> = HashMap::new();
    for s in strategies {
        *by_name.entry(s.clone()).or_default() += 1;
    }
    by_name.len()
}

/// The accepted idiom: wall time feeding *only* diagnostics, under an
/// explicit allow naming that justification.
pub fn timed_stats_only(n: usize) -> usize {
    // cdb-lint: allow(determinism) — stats-only timing; the reading feeds
    // the PlanStats diagnostics, never a result-producing decision.
    let t0 = Instant::now();
    let _ = t0.elapsed();
    n
}
