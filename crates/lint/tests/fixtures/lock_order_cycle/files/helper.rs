//@ path: crates/srv/src/helper.rs
//! Fixture: `backward` takes the admission queue first and the master cell
//! under it — the opposite order to `flow::forward`, closing the cycle.

pub fn grab_queue(s: &S) {
    let q = s.queue.lock().unwrap_or_else(recover);
    consume(&q);
}

pub fn backward(s: &S) {
    let q = s.queue.lock().unwrap_or_else(recover);
    let g = s.master.lock().unwrap_or_else(recover);
    consume_both(&g, &q);
}

fn consume(_q: &Q) {}

fn consume_both(_g: &G, _q: &Q) {}

fn recover(e: E) -> G {
    e.into_inner()
}
