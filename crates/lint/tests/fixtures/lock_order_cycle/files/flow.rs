//@ path: crates/srv/src/flow.rs
//! Fixture: acquires the master cell, then calls into `helper`, which
//! takes the admission queue — the forward direction of the cycle.

pub fn forward(s: &S) {
    let g = s.master.lock().unwrap_or_else(recover);
    helper::grab_queue(s);
    touch(&g);
}

fn touch(_g: &G) {}

fn recover(e: E) -> G {
    e.into_inner()
}
