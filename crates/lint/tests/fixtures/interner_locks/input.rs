//! Interner lock discipline: `canonicalize` (every `MPoly` construction)
//! takes an interner shard lock, so reaching it — or any `intern::` path —
//! while a caller-side mutex guard is live nests two lock scopes.

use std::sync::Mutex;

/// Interning while the registry guard is still live.
pub fn register(registry: &Mutex<Vec<u64>>, terms: Vec<u64>) -> u64 {
    let guard = registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let id = canonicalize(terms);
    guard.len() as u64 + id
}

/// Same hazard through the module path.
pub fn register_via_path(registry: &Mutex<Vec<u64>>, n: u64) -> bool {
    let state = registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    intern::set_enabled(n > 0);
    state.is_empty()
}

/// Dropping the guard first is clean.
pub fn register_clean(registry: &Mutex<Vec<u64>>, terms: Vec<u64>) -> u64 {
    let guard = registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let len = guard.len() as u64;
    drop(guard);
    len + canonicalize(terms)
}

fn canonicalize(terms: Vec<u64>) -> u64 {
    terms.iter().sum()
}

mod intern {
    pub fn set_enabled(_on: bool) {}
}
