//! A library file outside the FIntv boundary: every float use is a finding.

/// Narrowing a rational to hardware precision loses soundness.
pub fn narrow(num: i64, den: i64) -> f64 {
    let scale = 0.5;
    (num as f64) / (den as f64) * scale
}
