//! The four per-file rule families, evaluated over a test-stripped token
//! stream.
//!
//! Each check is a linear scan with small windows — precise enough to catch
//! every violation class seen in this workspace's history, cheap enough to
//! run on every commit. The documented blind spots (e.g. slice indexing
//! with a computed subscript) are listed per rule.
//!
//! The panic and determinism checks are built on the exported site
//! detectors [`panic_sites`] and [`determinism_sites`] so the
//! interprocedural reachability passes (`reach.rs`) see exactly the same
//! site classes the per-file rules do.

use crate::lexer::{Tok, TokKind};
use crate::FileClass;

/// A raw finding before allow-directive filtering (file is added by the
/// caller).
#[derive(Debug)]
pub struct RawDiag {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id.
    pub rule: &'static str,
    /// Message.
    pub message: String,
}

/// A site that can panic at runtime, found by the rule-P detector.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Index of the site's anchor token in the scanned stream.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What kind of site: `unwrap`, `expect`, a bang macro name, or
    /// `index` for constant-subscript indexing.
    pub what: &'static str,
}

/// A site whose value or iteration order is nondeterministic, found by the
/// rule-D detector.
#[derive(Debug, Clone)]
pub struct DetSite {
    /// Index of the site's anchor token in the scanned stream.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The offending name (`HashMap`, `Instant`, `Ordering::Relaxed`, …).
    pub what: &'static str,
}

/// Run every applicable family over `toks`.
pub fn check(toks: &[Tok], class: FileClass) -> Vec<RawDiag> {
    let mut out = Vec::new();
    if class.float {
        check_float(toks, &mut out);
    }
    if class.determinism {
        check_determinism(toks, &mut out);
    }
    if class.panic {
        check_panic(toks, &mut out);
    }
    if class.lock {
        check_lock(toks, &mut out);
    }
    out
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Rule F — float confinement (Thm 4.3). Outside `crates/num/src/fintv.rs`
/// and `crates/fp/`, no `f64`/`f32` tokens (types, paths, `as` casts) and
/// no float literals: the outward-rounded `FIntv` filter is the only door
/// finite precision may walk through.
fn check_float(toks: &[Tok], out: &mut Vec<RawDiag>) {
    for t in toks {
        match &t.kind {
            TokKind::Ident(s) if s == "f64" || s == "f32" => {
                out.push(RawDiag {
                    line: t.line,
                    col: t.col,
                    rule: "float",
                    message: format!(
                        "`{s}` outside the FIntv boundary (crates/num/src/fintv.rs, crates/fp): \
                         floats are sound only behind the outward-rounded filter (Thm 4.3)"
                    ),
                });
            }
            TokKind::Float => {
                out.push(RawDiag {
                    line: t.line,
                    col: t.col,
                    rule: "float",
                    message: "float literal outside the FIntv boundary: use `Rat`/`Int` exact \
                              arithmetic, or route through `FIntv` (Thm 4.3)"
                        .to_owned(),
                });
            }
            _ => {}
        }
    }
}

/// Find every nondeterminism site in `toks`: `HashMap`/`HashSet`
/// (iteration order is randomized per process), `Instant`/`SystemTime`
/// (wall-clock-dependent values), `Ordering::Relaxed` atomics
/// (unsynchronized cross-thread reads).
pub fn determinism_sites(toks: &[Tok]) -> Vec<DetSite> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let TokKind::Ident(s) = &t.kind else { continue };
        let what = match s.as_str() {
            "HashMap" => "HashMap",
            "HashSet" => "HashSet",
            "Instant" => "Instant",
            "SystemTime" => "SystemTime",
            "Relaxed"
                if ident_at(toks, i.wrapping_sub(1)) == Some("Ordering")
                    || punct_at(toks, i.wrapping_sub(1)) == Some(':') =>
            {
                "Ordering::Relaxed"
            }
            _ => continue,
        };
        out.push(DetSite {
            tok: i,
            line: t.line,
            col: t.col,
            what,
        });
    }
    out
}

/// Rule D — determinism. In result-producing crates (qe, datalog, calcf,
/// agg, plus modp/deps/update/server): none of the [`determinism_sites`]
/// classes may appear. This is the static twin of the workers∈{1,4}
/// byte-equality tests.
fn check_determinism(toks: &[Tok], out: &mut Vec<RawDiag>) {
    for site in determinism_sites(toks) {
        let message = match site.what {
            "HashMap" | "HashSet" => format!(
                "`{}` in a result-producing crate: iteration order is nondeterministic; \
                 use `BTreeMap`/`BTreeSet` or prove the order never reaches an output",
                site.what
            ),
            "Instant" | "SystemTime" => format!(
                "`{}` in a result-producing crate: wall-clock values must not influence \
                 results (stats-only use needs an allow with that justification)",
                site.what
            ),
            _ => "`Ordering::Relaxed` in a result-producing crate: relaxed atomics may \
                 reorder observable effects; use `SeqCst` or justify why the value never \
                 reaches an output"
                .to_owned(),
        };
        out.push(RawDiag {
            line: site.line,
            col: site.col,
            rule: "determinism",
            message,
        });
    }
}

/// Find every panic-capable site in `toks`: `.unwrap()`/`.expect()`
/// combinators, the panicking bang macros, and constant-subscript indexing
/// (`v[0]` on an empty vec is the classic reachable panic). Known blind
/// spots: computed subscripts (`v[i]`) and arithmetic overflow are out of
/// scope for a token-level check. `self.unwrap(…)`/`self.expect(…)` are
/// method calls on a receiver the file itself defines, not
/// `Option`/`Result` combinators, and are skipped.
pub fn panic_sites(toks: &[Tok]) -> Vec<PanicSite> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            TokKind::Ident(s)
                if (s == "unwrap" || s == "expect")
                    && punct_at(toks, i.wrapping_sub(1)) == Some('.')
                    && punct_at(toks, i + 1) == Some('(')
                    && ident_at(toks, i.wrapping_sub(2)) != Some("self") =>
            {
                out.push(PanicSite {
                    tok: i,
                    line: t.line,
                    col: t.col,
                    what: if s == "unwrap" { "unwrap" } else { "expect" },
                });
            }
            TokKind::Ident(s)
                if punct_at(toks, i + 1) == Some('!')
                    && matches!(
                        s.as_str(),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                    ) =>
            {
                out.push(PanicSite {
                    tok: i,
                    line: t.line,
                    col: t.col,
                    what: match s.as_str() {
                        "panic" => "panic!",
                        "unreachable" => "unreachable!",
                        "todo" => "todo!",
                        _ => "unimplemented!",
                    },
                });
            }
            // `recv[<int>]`: constant-subscript indexing of a value.
            TokKind::Punct('[')
                if matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Int))
                    && punct_at(toks, i + 2) == Some(']')
                    && (matches!(
                        toks.get(i.wrapping_sub(1)).map(|t| &t.kind),
                        Some(TokKind::Ident(_))
                    ) || punct_at(toks, i.wrapping_sub(1)) == Some(')')
                        || punct_at(toks, i.wrapping_sub(1)) == Some(']'))
                    // `let [a] = …` patterns and attr paths never have an
                    // expression receiver, so the receiver check suffices;
                    // still skip `for`/`if`/`while`/`in`/`=` receivers.
                    && !matches!(
                        ident_at(toks, i.wrapping_sub(1)),
                        Some("in" | "if" | "while" | "for" | "return" | "else" | "match")
                    ) =>
            {
                out.push(PanicSite {
                    tok: i,
                    line: t.line,
                    col: t.col,
                    what: "index",
                });
            }
            _ => {}
        }
    }
    out
}

/// Rule P — panic surface. Library code must not contain any
/// [`panic_sites`] class directly; the interprocedural twin (`panic-reach`)
/// extends this to transitive calls.
fn check_panic(toks: &[Tok], out: &mut Vec<RawDiag>) {
    for site in panic_sites(toks) {
        let message = match site.what {
            "unwrap" | "expect" => format!(
                "`.{}()` in library code: surface a typed error (`?`, `ok_or_else`) \
                 or justify the invariant with an allow",
                site.what
            ),
            "index" => "constant-subscript indexing in library code: panics when the \
                        container is short; use `.first()`/`.get(n)` or justify the \
                        length invariant with an allow"
                .to_owned(),
            bang => {
                format!("`{bang}` in library code: return a typed error so callers can recover")
            }
        };
        out.push(RawDiag {
            line: site.line,
            col: site.col,
            rule: "panic",
            message,
        });
    }
}

/// Rule L — lock discipline. Two `.lock(` acquisitions inside one
/// statement risk deadlock under any second lock order; a `Mutex` guard
/// bound by `let` and still live when `par_map_result` fans out serializes
/// the pool or deadlocks it if workers need the same lock. The polynomial
/// interner's entry point (`canonicalize`, reached by every `MPoly`
/// construction, i.e. every polynomial arithmetic op) takes an interner
/// shard lock itself, so calling it — or naming the `intern` module in an
/// expression — while a guard is live nests two lock scopes the same way.
/// The interprocedural twin (`lock-order`, `locks.rs`) checks the global
/// acquisition-order graph for cycles.
fn check_lock(toks: &[Tok], out: &mut Vec<RawDiag>) {
    // (a) nested acquisition in one statement.
    let mut locks_in_stmt = 0usize;
    // (b) named guards: (binding name, brace depth at binding).
    let mut guards: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    let n = toks.len();
    while i < n {
        match &toks[i].kind {
            TokKind::Punct('{') => {
                depth += 1;
                locks_in_stmt = 0;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|(_, d)| *d <= depth);
                locks_in_stmt = 0;
            }
            TokKind::Punct(';') => locks_in_stmt = 0,
            TokKind::Ident(s)
                if s == "lock"
                    && punct_at(toks, i.wrapping_sub(1)) == Some('.')
                    && punct_at(toks, i + 1) == Some('(') =>
            {
                locks_in_stmt += 1;
                if locks_in_stmt >= 2 {
                    out.push(RawDiag {
                        line: toks[i].line,
                        col: toks[i].col,
                        rule: "lock",
                        message: "second `.lock()` within one statement: nested guard \
                                  lifetimes invite lock-order inversion; split the statement \
                                  and drop the first guard early"
                            .to_owned(),
                    });
                }
            }
            TokKind::Ident(s) if s == "let" => {
                // `let [mut] NAME … = … .lock( … ;` → a named guard.
                let mut j = i + 1;
                if ident_at(toks, j) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = ident_at(toks, j) {
                    let name = name.to_owned();
                    // Scan to the end of the let statement.
                    let mut k = j;
                    let mut inner = 0usize;
                    let mut saw_lock = false;
                    while k < n {
                        match &toks[k].kind {
                            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => {
                                inner += 1
                            }
                            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                                inner = inner.saturating_sub(1)
                            }
                            TokKind::Punct(';') if inner == 0 => break,
                            TokKind::Ident(s2)
                                if s2 == "lock"
                                    && punct_at(toks, k.wrapping_sub(1)) == Some('.')
                                    && punct_at(toks, k + 1) == Some('(') =>
                            {
                                saw_lock = true;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    if saw_lock {
                        guards.push((name, depth));
                    }
                }
            }
            TokKind::Ident(s) if s == "drop" && punct_at(toks, i + 1) == Some('(') => {
                if let Some(name) = ident_at(toks, i + 2) {
                    guards.retain(|(g, _)| g != name);
                }
            }
            TokKind::Ident(s) if s == "par_map_result" && !guards.is_empty() => {
                let held: Vec<&str> = guards.iter().map(|(g, _)| g.as_str()).collect();
                out.push(RawDiag {
                    line: toks[i].line,
                    col: toks[i].col,
                    rule: "lock",
                    message: format!(
                        "`par_map_result` fan-out while mutex guard(s) `{}` may still be \
                         live: drop the guard before spawning workers",
                        held.join("`, `")
                    ),
                });
            }
            // Interner entry points: `canonicalize(…)` (the shard-locking
            // entry itself) or an `intern::…` path in expression position.
            // Polynomial arithmetic interns every result, so doing either
            // under a live guard nests the caller's lock inside the interner
            // shard lock. `use crate::intern;` at module scope has no live
            // guards and is not flagged.
            TokKind::Ident(s)
                if !guards.is_empty()
                    && (s == "canonicalize"
                        || (s == "intern" && punct_at(toks, i + 1) == Some(':'))) =>
            {
                let held: Vec<&str> = guards.iter().map(|(g, _)| g.as_str()).collect();
                out.push(RawDiag {
                    line: toks[i].line,
                    col: toks[i].col,
                    rule: "lock",
                    message: format!(
                        "interner entry (`{}`) while mutex guard(s) `{}` may still be live: \
                         polynomial construction takes an interner shard lock; drop the \
                         guard first",
                        s,
                        held.join("`, `")
                    ),
                });
            }
            _ => {}
        }
        i += 1;
    }
}
