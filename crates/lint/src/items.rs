//! A lightweight item parser over the lexed token stream.
//!
//! Extracts `fn` items with their `impl`/`mod` nesting and the syntactic
//! call sites inside each body (`path::f(...)`, `f(...)`, `recv.method(...)`)
//! — just enough structure for the interprocedural passes to build a
//! workspace call graph without a real Rust parser. Macro *invocations*
//! (`name!(…)`) are not calls, but calls appearing inside their argument
//! tokens are still extracted (a `write!(f, "{}", x.to_f64())` launders a
//! float exactly like a plain call would).
//!
//! The parser is conservative where the grammar is ambiguous: a construct
//! it cannot place simply produces no item or no call edge, never a bogus
//! one with a made-up position.

use crate::lexer::{Tok, TokKind};

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (the ident directly before the `(`).
    pub name: String,
    /// For `qual::name(...)`, the last path segment before `name`
    /// (`intern::canonicalize` → `intern`, `Self::new` → `Self`). `None`
    /// for bare calls and method calls.
    pub qual: Option<String>,
    /// True for `recv.name(...)` method syntax.
    pub method: bool,
    /// Index of the name token in the file's scanned stream.
    pub tok: usize,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index into the graph's file table (set by the graph builder; the
    /// per-file parser leaves it 0).
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub impl_name: Option<String>,
    /// Enclosing module path inside the file (`a::b`, empty at top level).
    pub mod_path: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Declared `pub` (plain visibility only — `pub(crate)` and narrower
    /// do not extend the public API surface).
    pub is_pub: bool,
    /// Whether the parameter list contains `self` (method vs. free/assoc).
    pub has_self: bool,
    /// Token range `[start, end)` of the signature (from `fn` to the body
    /// `{` or the terminating `;`).
    pub sig: (usize, usize),
    /// Token range `[start, end)` of the body including both braces;
    /// `(0, 0)` for bodyless declarations.
    pub body: (usize, usize),
    /// Call sites inside the body, in source order.
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// Display path for diagnostics: `Type::name`, `mod::name`, or `name`.
    pub fn display(&self) -> String {
        match (&self.impl_name, self.mod_path.is_empty()) {
            (Some(t), _) => format!("{t}::{}", self.name),
            (None, false) => format!("{}::{}", self.mod_path, self.name),
            (None, true) => self.name.clone(),
        }
    }
}

/// Reserved words that look like `ident (` in expression or item position
/// but are never calls.
const NON_CALL_WORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "move", "where", "impl",
    "dyn", "as", "ref", "mut", "pub", "crate", "super", "use", "mod", "trait", "struct", "enum",
    "union", "type", "const", "static", "unsafe", "extern", "async", "await", "else", "break",
    "continue", "yield", "box",
];

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// A scope the scanner can be inside.
#[derive(Debug)]
enum Scope {
    Mod(String),
    Impl(String),
    /// Index into the output items vec.
    Fn(usize),
    Block,
}

/// A scope header seen but whose `{` has not arrived yet.
#[derive(Debug)]
enum Pending {
    Mod(String),
    Impl(String),
    Fn(usize),
}

/// Parse every `fn` item (with nesting and call sites) out of a
/// test-stripped token stream.
pub fn parse_items(toks: &[Tok]) -> Vec<FnItem> {
    let n = toks.len();
    let mut items: Vec<FnItem> = Vec::new();
    let mut stack: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;
    // Paren/bracket depth since the pending header began — a `{` only
    // opens the pending scope's body at depth 0 (rules out closures in
    // default-expr position and struct exprs inside array lengths).
    let mut pending_depth = 0usize;
    let mut i = 0usize;

    while i < n {
        // Skip attributes entirely: `derive(`, `cfg(` etc. are not calls,
        // and attribute brackets must not disturb scope tracking.
        if punct_at(toks, i) == Some('#')
            && (punct_at(toks, i + 1) == Some('[')
                || (punct_at(toks, i + 1) == Some('!') && punct_at(toks, i + 2) == Some('[')))
        {
            let mut j = if punct_at(toks, i + 1) == Some('!') {
                i + 2
            } else {
                i + 1
            };
            let mut depth = 0usize;
            while j < n {
                match punct_at(toks, j) {
                    Some('[') => depth += 1,
                    Some(']') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }

        match &toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') if pending.is_some() => {
                pending_depth += 1;
                i += 1;
            }
            TokKind::Punct(')') | TokKind::Punct(']') if pending.is_some() => {
                pending_depth = pending_depth.saturating_sub(1);
                i += 1;
            }
            TokKind::Punct('{') => {
                match pending.take() {
                    Some(p) if pending_depth == 0 => {
                        let scope = match p {
                            Pending::Mod(m) => Scope::Mod(m),
                            Pending::Impl(t) => Scope::Impl(t),
                            Pending::Fn(idx) => {
                                if let Some(item) = items.get_mut(idx) {
                                    item.sig.1 = i;
                                    item.body.0 = i;
                                }
                                Scope::Fn(idx)
                            }
                        };
                        stack.push(scope);
                    }
                    p => {
                        // A `{` inside a pending header (const generic
                        // default, etc.): keep the header pending.
                        pending = p;
                        stack.push(Scope::Block);
                    }
                }
                i += 1;
            }
            TokKind::Punct('}') => {
                if let Some(Scope::Fn(idx)) = stack.pop() {
                    if let Some(item) = items.get_mut(idx) {
                        item.body.1 = i + 1;
                    }
                }
                i += 1;
            }
            TokKind::Punct(';') if pending_depth == 0 => {
                // Bodyless declaration (`fn f();` in a trait, `mod m;`).
                if let Some(Pending::Fn(idx)) = pending.take() {
                    if let Some(item) = items.get_mut(idx) {
                        item.sig.1 = i;
                    }
                }
                i += 1;
            }
            TokKind::Ident(kw) if kw == "mod" && pending.is_none() => {
                if let Some(name) = ident_at(toks, i + 1) {
                    pending = Some(Pending::Mod(name.to_owned()));
                    pending_depth = 0;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokKind::Ident(kw) if (kw == "impl" || kw == "trait") && pending.is_none() => {
                let (name, next) = impl_target(toks, i);
                pending = Some(Pending::Impl(name));
                pending_depth = 0;
                i = next;
            }
            TokKind::Ident(kw)
                if kw == "fn" && pending.is_none() && ident_at(toks, i + 1).is_some() =>
            {
                let idx = items.len();
                let item = scan_fn_header(toks, i, &stack);
                items.push(item);
                pending = Some(Pending::Fn(idx));
                pending_depth = 0;
                i += 2;
            }
            TokKind::Ident(name) if punct_at(toks, i + 1) == Some('(') => {
                if !NON_CALL_WORDS.contains(&name.as_str())
                    && ident_at(toks, i.wrapping_sub(1)) != Some("fn")
                {
                    if let Some(fn_idx) = innermost_fn(&stack) {
                        let method = punct_at(toks, i.wrapping_sub(1)) == Some('.');
                        let qual = if !method
                            && punct_at(toks, i.wrapping_sub(1)) == Some(':')
                            && punct_at(toks, i.wrapping_sub(2)) == Some(':')
                        {
                            ident_at(toks, i.wrapping_sub(3)).map(str::to_owned)
                        } else {
                            None
                        };
                        if let Some(item) = items.get_mut(fn_idx) {
                            item.calls.push(CallSite {
                                name: name.clone(),
                                qual,
                                method,
                                tok: i,
                                line: toks[i].line,
                                col: toks[i].col,
                            });
                        }
                    }
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    items
}

fn innermost_fn(stack: &[Scope]) -> Option<usize> {
    stack.iter().rev().find_map(|s| match s {
        Scope::Fn(idx) => Some(*idx),
        _ => None,
    })
}

/// Scan one `fn` header starting at the `fn` keyword: name, visibility,
/// `self` parameter, and signature start. The signature end and body are
/// filled in when the scanner reaches the body `{` / terminating `;`.
fn scan_fn_header(toks: &[Tok], fn_tok: usize, stack: &[Scope]) -> FnItem {
    let name = ident_at(toks, fn_tok + 1).unwrap_or("").to_owned();
    // Plain `pub` looking back over qualifiers; `pub(crate)` has a `)`
    // between `pub` and the qualifier chain and is intentionally not
    // counted as public API surface.
    let mut k = fn_tok;
    let mut is_pub = false;
    while k > 0 {
        k -= 1;
        match ident_at(toks, k) {
            Some("unsafe" | "const" | "async" | "extern") => continue,
            Some("pub") => {
                is_pub = punct_at(toks, k + 1) != Some('(');
                break;
            }
            _ => {
                // `extern "C" fn` has a literal between; step over it.
                if matches!(toks.get(k).map(|t| &t.kind), Some(TokKind::Literal)) {
                    continue;
                }
                break;
            }
        }
    }
    // Find the parameter list: the first `(` after the name at angle
    // depth 0 (a `>` immediately preceded by `-` is the arrow of a
    // nested `Fn(..) -> ..` bound, not a closer).
    let mut j = fn_tok + 2;
    let mut angle = 0i32;
    let mut has_self = false;
    let n = toks.len();
    while j < n {
        match punct_at(toks, j) {
            Some('<') => angle += 1,
            Some('>') if punct_at(toks, j.wrapping_sub(1)) != Some('-') => angle -= 1,
            Some('(') if angle <= 0 => break,
            Some('{') | Some(';') => break,
            _ => {}
        }
        j += 1;
    }
    if punct_at(toks, j) == Some('(') {
        let mut depth = 0usize;
        while j < n {
            match punct_at(toks, j) {
                Some('(') => depth += 1,
                Some(')') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if depth == 1 && ident_at(toks, j) == Some("self") {
                        has_self = true;
                    }
                }
            }
            j += 1;
        }
    }
    let impl_name = stack.iter().rev().find_map(|s| match s {
        Scope::Impl(t) => Some(t.clone()),
        _ => None,
    });
    let mod_path = stack
        .iter()
        .filter_map(|s| match s {
            Scope::Mod(m) => Some(m.as_str()),
            _ => None,
        })
        .collect::<Vec<_>>()
        .join("::");
    FnItem {
        file: 0,
        name,
        impl_name,
        mod_path,
        line: toks[fn_tok].line,
        col: toks[fn_tok].col,
        is_pub,
        has_self,
        sig: (fn_tok, fn_tok),
        body: (0, 0),
        calls: Vec::new(),
    }
}

/// Extract the target type name of an `impl`/`trait` header starting at
/// `i`, and the index to resume scanning from (just past the header
/// keyword — the body `{` is found by the main loop). For
/// `impl Trait for Type`, the name is `Type`; for `impl Type` or
/// `trait Name`, the first plain type ident after the keyword.
fn impl_target(toks: &[Tok], i: usize) -> (String, usize) {
    let n = toks.len();
    // Scan the header up to the `{` (or `;`), tracking the last `for` at
    // angle depth 0.
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut after_for: Option<usize> = None;
    let header_start = j;
    while j < n {
        match &toks[j].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if punct_at(toks, j.wrapping_sub(1)) != Some('-') => {
                angle -= 1;
            }
            TokKind::Punct('{') | TokKind::Punct(';') => break,
            TokKind::Ident(s) if s == "for" && angle <= 0 => after_for = Some(j + 1),
            TokKind::Ident(s) if s == "where" && angle <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    let search_from = after_for.unwrap_or(header_start);
    // First type ident at angle depth 0 from `search_from` (skipping the
    // `impl<T>` generic-parameter group), taking the LAST segment of a
    // path (`fmt::Display for RealAlg` → `RealAlg`; `cad::Coord` →
    // `Coord`), skipping references, lifetimes and qualifiers.
    let mut name = String::new();
    let mut k = search_from;
    let mut kangle = 0i32;
    while k < j {
        match &toks[k].kind {
            TokKind::Punct('<') => kangle += 1,
            TokKind::Punct('>') if punct_at(toks, k.wrapping_sub(1)) != Some('-') => {
                kangle -= 1;
            }
            TokKind::Ident(s) if kangle > 0 || matches!(s.as_str(), "dyn" | "mut" | "const") => {}
            TokKind::Ident(s) => {
                name = s.clone();
                // Follow `::` path segments to the last one.
                while punct_at(toks, k + 1) == Some(':')
                    && punct_at(toks, k + 2) == Some(':')
                    && ident_at(toks, k + 3).is_some()
                {
                    k += 3;
                    if let Some(seg) = ident_at(toks, k) {
                        name = seg.to_owned();
                    }
                }
                break;
            }
            _ => {}
        }
        k += 1;
    }
    (name, i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnItem> {
        parse_items(&lex(src).toks)
    }

    #[test]
    fn free_fn_and_calls() {
        let items = parse("pub fn top(x: u32) -> u32 { helper(x) + other::second(x) }");
        assert_eq!(items.len(), 1);
        let f = &items[0];
        assert_eq!(f.name, "top");
        assert!(f.is_pub);
        assert!(!f.has_self);
        let names: Vec<(&str, Option<&str>, bool)> = f
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.qual.as_deref(), c.method))
            .collect();
        assert_eq!(
            names,
            vec![("helper", None, false), ("second", Some("other"), false)]
        );
    }

    #[test]
    fn impl_nesting_and_methods() {
        let items = parse(
            "impl fmt::Display for Widget {\n  fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {\n    self.render(f)\n  }\n}",
        );
        assert_eq!(items.len(), 1);
        let f = &items[0];
        assert_eq!(f.impl_name.as_deref(), Some("Widget"));
        assert!(f.has_self);
        assert_eq!(f.display(), "Widget::fmt");
        assert!(f.calls.iter().any(|c| c.name == "render" && c.method));
    }

    #[test]
    fn mod_nesting_and_pub_crate() {
        let items = parse("mod inner { pub(crate) fn shy() {} pub fn open() {} }");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].mod_path, "inner");
        assert!(!items[0].is_pub);
        assert!(items[1].is_pub);
    }

    #[test]
    fn macros_are_not_calls_but_their_args_are() {
        let items = parse("fn f(x: T) { write!(out, \"{}\", x.to_approx()).ok(); }");
        let calls: Vec<&str> = items[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(!calls.contains(&"write"));
        assert!(calls.contains(&"to_approx"));
    }

    #[test]
    fn attributes_are_skipped() {
        let items = parse("#[derive(Clone, Debug)]\npub struct S;\nfn g() { go(); }");
        assert_eq!(items.len(), 1);
        let calls: Vec<&str> = items[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(calls, vec!["go"]);
    }

    #[test]
    fn generic_sig_finds_param_list() {
        let items =
            parse("fn map<T: Fn(u32) -> u32>(f: T, v: Vec<u32>) -> Vec<u32> { inner(f, v) }");
        assert_eq!(items.len(), 1);
        assert!(!items[0].has_self);
        assert_eq!(items[0].calls.len(), 1);
    }

    #[test]
    fn trait_decl_without_body() {
        let items = parse(
            "trait T { fn required(&self) -> u32; fn provided(&self) -> u32 { self.required() } }",
        );
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].body, (0, 0));
        assert!(items[1].calls.iter().any(|c| c.name == "required"));
    }

    #[test]
    fn generic_impl_name() {
        let items = parse("impl<T: Clone> Wrapper<T> { fn get(&self) -> T { self.pull() } }");
        assert_eq!(items[0].impl_name.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn keywords_are_not_calls() {
        let items = parse("fn f(x: u32) -> u32 { if (x > 1) { x } else { loop { break x; } } }");
        assert!(items[0].calls.is_empty());
    }
}
