//! A minimal handwritten Rust lexer for `cdb-lint`.
//!
//! The linter never needs a full parse tree: every rule family is decidable
//! from a token stream with source positions, provided the stream is
//! faithful about the things that defeat grep — comments (line, nested
//! block), string literals (plain, raw, byte, C), char literals vs.
//! lifetimes, and float vs. integer literals. Comments are captured
//! separately so allow directives can be parsed; string/char contents are
//! dropped entirely so a message like `"use f64 here"` can never trip a
//! rule. Every token and comment carries a 1-based `(line, col)` so
//! diagnostics can point at the offending token, not just its line.

/// Token kind. String and char literal *contents* are intentionally not
/// represented — rules must never match inside them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (including hex/octal/binary and integer-suffixed).
    Int,
    /// Float literal: has a fractional part, an exponent, or an `f32`/`f64`
    /// suffix.
    Float,
    /// A string, byte-string, or char literal (contents dropped).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
    /// Any single punctuation character.
    Punct(char),
}

/// A token with its 1-based source line and column.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind (and ident text where applicable).
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based column (in chars) the token starts at.
    pub col: u32,
}

/// A comment, captured for directive parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based column the comment starts at.
    pub col: u32,
    /// Raw comment text without the `//`/`/*` introducers.
    pub text: String,
    /// True when a code token precedes the comment on its own line
    /// (a trailing comment annotates that line, not the next one).
    pub has_code_before: bool,
}

/// Lexer output: the token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. The lexer is total: malformed input degrades to `Punct`
/// tokens rather than failing, so the linter can always report *something*
/// about a file that rustc itself would reject.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let n = bytes.len();
    // Precomputed position table: pos[i] = 1-based (line, col) of char i,
    // with one sentinel entry past the end. Computing this up front keeps
    // every branch of the scanner free to jump `i` arbitrarily without
    // threading line/col bookkeeping through each one.
    let pos: Vec<(u32, u32)> = {
        let mut table = Vec::with_capacity(n + 1);
        let (mut line, mut col) = (1u32, 1u32);
        for &ch in &bytes {
            table.push((line, col));
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        table.push((line, col));
        table
    };
    let at = |i: usize| *pos.get(i).unwrap_or(&(0, 0));

    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line_of_last_tok: u32 = 0;

    while i < n {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        let (line, col) = at(i);
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if next == Some('/') => {
                // Line comment (includes `///` and `//!`).
                let start = i + 2;
                let mut j = start;
                while j < n && bytes[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    col,
                    text: bytes.get(start..j).unwrap_or(&[]).iter().collect(),
                    has_code_before: line_of_last_tok == line,
                });
                i = j;
            }
            '/' if next == Some('*') => {
                // Block comment, nested.
                let text_start = i + 2;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if bytes[j] == '/' && bytes.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && bytes.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let text_end = j.saturating_sub(2).max(text_start);
                out.comments.push(Comment {
                    line,
                    col,
                    text: bytes
                        .get(text_start..text_end)
                        .unwrap_or(&[])
                        .iter()
                        .collect(),
                    has_code_before: line_of_last_tok == line,
                });
                i = j;
            }
            '"' => {
                i += string_len(&bytes, i, 0);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    line,
                    col,
                });
                line_of_last_tok = line;
            }
            '\'' => {
                // Lifetime or char literal. `'a` followed by anything but a
                // closing quote is a lifetime; otherwise a char literal.
                let is_lifetime = match next {
                    Some(c2) if c2.is_alphabetic() || c2 == '_' => {
                        let mut j = i + 1;
                        while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                            j += 1;
                        }
                        bytes.get(j) != Some(&'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    let mut j = i + 1;
                    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    i = j;
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        line,
                        col,
                    });
                } else {
                    i += char_literal_len(&bytes, i);
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        line,
                        col,
                    });
                }
                line_of_last_tok = line;
            }
            c if c.is_ascii_digit() => {
                let (len, is_float) = number_len(&bytes, i);
                i += len;
                out.toks.push(Tok {
                    kind: if is_float {
                        TokKind::Float
                    } else {
                        TokKind::Int
                    },
                    line,
                    col,
                });
                line_of_last_tok = line;
            }
            c if c.is_alphabetic() || c == '_' => {
                // Raw / byte string prefixes and raw identifiers.
                if let Some(len) = raw_or_byte_string_len(&bytes, i) {
                    i += len;
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        line,
                        col,
                    });
                    line_of_last_tok = line;
                    continue;
                }
                let mut j = i;
                if c == 'r' && next == Some('#') {
                    // Raw identifier `r#type`.
                    j += 2;
                }
                let word_start = j;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let word: String = bytes.get(word_start..j).unwrap_or(&[]).iter().collect();
                i = j;
                out.toks.push(Tok {
                    kind: TokKind::Ident(word),
                    line,
                    col,
                });
                line_of_last_tok = line;
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct(c),
                    line,
                    col,
                });
                line_of_last_tok = line;
                i += 1;
            }
        }
    }
    out
}

/// Length in chars of the string literal starting at `i` (which holds `"`),
/// for a raw string with `hashes` trailing `#` markers (0 = plain string).
fn string_len(bytes: &[char], i: usize, hashes: usize) -> usize {
    let n = bytes.len();
    let mut j = i + 1;
    while j < n {
        if hashes == 0 {
            match bytes[j] {
                '\\' => j += 2,
                '"' => return j + 1 - i,
                _ => j += 1,
            }
        } else if bytes[j] == '"'
            && bytes
                .get(j + 1..j + 1 + hashes)
                .is_some_and(|w| w.iter().all(|&c| c == '#'))
        {
            return j + 1 + hashes - i;
        } else {
            j += 1;
        }
    }
    n - i
}

/// Length of the char literal starting at `i` (which holds `'`).
fn char_literal_len(bytes: &[char], i: usize) -> usize {
    let n = bytes.len();
    let mut j = i + 1;
    while j < n {
        match bytes[j] {
            '\\' => j += 2,
            '\'' => return j + 1 - i,
            _ => j += 1,
        }
    }
    n - i
}

/// If a raw/byte string literal starts at `i`, return its total length.
/// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `c"..."`.
fn raw_or_byte_string_len(bytes: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    let n = bytes.len();
    // Optional b/c prefix, optional r, then hashes, then a quote.
    if j < n && (bytes[j] == 'b' || bytes[j] == 'c') {
        j += 1;
    }
    let raw = j < n && bytes[j] == 'r';
    if raw {
        j += 1;
    }
    let hash_start = j;
    while j < n && bytes[j] == '#' {
        j += 1;
    }
    let hashes = j - hash_start;
    if j >= n || bytes[j] != '"' || (hashes > 0 && !raw) {
        return None;
    }
    if !raw && j == i {
        // A bare `"` is handled by the caller.
        return None;
    }
    Some(j - i + string_len(bytes, j, if raw { hashes } else { 0 }))
}

/// Length and floatness of the numeric literal starting at `i`.
fn number_len(bytes: &[char], i: usize) -> (usize, bool) {
    let n = bytes.len();
    let mut j = i;
    // Radix prefixes are always integers (suffix chars may include e/f).
    if bytes[j] == '0'
        && matches!(
            bytes.get(j + 1),
            Some('x') | Some('o') | Some('b') | Some('X')
        )
    {
        j += 2;
        while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
            j += 1;
        }
        return (j - i, false);
    }
    let mut is_float = false;
    while j < n && (bytes[j].is_ascii_digit() || bytes[j] == '_') {
        j += 1;
    }
    // Fractional part: `.` followed by a digit, or a trailing `.` that is
    // not `..` (range) and not `.ident` (field/method access).
    if j < n && bytes[j] == '.' {
        match bytes.get(j + 1) {
            Some(c) if c.is_ascii_digit() => {
                is_float = true;
                j += 1;
                while j < n && (bytes[j].is_ascii_digit() || bytes[j] == '_') {
                    j += 1;
                }
            }
            Some('.') => {}
            Some(c) if c.is_alphabetic() || *c == '_' => {}
            _ => {
                is_float = true;
                j += 1;
            }
        }
    }
    // Exponent.
    if j < n && (bytes[j] == 'e' || bytes[j] == 'E') {
        let mut k = j + 1;
        if matches!(bytes.get(k), Some('+') | Some('-')) {
            k += 1;
        }
        if bytes.get(k).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            j = k;
            while j < n && (bytes[j].is_ascii_digit() || bytes[j] == '_') {
                j += 1;
            }
        }
    }
    // Suffix.
    let suffix_start = j;
    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
        j += 1;
    }
    let suffix: String = bytes.get(suffix_start..j).unwrap_or(&[]).iter().collect();
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        is_float = true;
    }
    (j - i, is_float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let l = lex("let x = \"f64 unwrap()\"; // f64 here\n/* unwrap() */ let y = 1;");
        assert!(idents("let x = \"f64 unwrap()\";")
            .iter()
            .all(|s| s != "f64"));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].has_code_before);
    }

    #[test]
    fn raw_strings() {
        let l = lex(r##"let s = r#"f64 "quoted" unwrap()"#; let t = 2;"##);
        let ids = l
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Ident(_)))
            .count();
        assert_eq!(ids, 4); // let s let t
    }

    #[test]
    fn float_vs_int() {
        let kinds: Vec<TokKind> = lex("1 1.5 1e3 2f64 0x1f 1..2 v.0 7u32 2.")
            .toks
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds[0], TokKind::Int);
        assert_eq!(kinds[1], TokKind::Float);
        assert_eq!(kinds[2], TokKind::Float);
        assert_eq!(kinds[3], TokKind::Float);
        assert_eq!(kinds[4], TokKind::Int);
        // 1..2 → Int Punct Punct Int
        assert_eq!(kinds[5], TokKind::Int);
        assert_eq!(kinds[8], TokKind::Int); // v.0 field access
        let last = kinds.len() - 1;
        assert_eq!(kinds[last], TokKind::Float); // trailing-dot float
    }

    #[test]
    fn lifetimes_vs_chars() {
        let kinds: Vec<TokKind> = lex("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }")
            .toks
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert!(kinds.contains(&TokKind::Lifetime));
        assert_eq!(kinds.iter().filter(|k| **k == TokKind::Literal).count(), 2);
    }

    #[test]
    fn lines_are_tracked() {
        let l = lex("a\nb\n  c");
        let lines: Vec<u32> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn columns_are_tracked() {
        let l = lex("ab cd\n  ef.gh()");
        let at: Vec<(u32, u32)> = l.toks.iter().map(|t| (t.line, t.col)).collect();
        // ab@1:1 cd@1:4 ef@2:3 .@2:5 gh@2:6 (@2:8 )@2:9
        assert_eq!(
            at,
            vec![(1, 1), (1, 4), (2, 3), (2, 5), (2, 6), (2, 8), (2, 9)]
        );
        // Comments carry columns too.
        let c = lex("x; // tail");
        assert_eq!(c.comments[0].col, 4);
    }

    #[test]
    fn multiline_tokens_report_start_position() {
        let l = lex("let s = \"a\nb\"; t");
        let t = l
            .toks
            .iter()
            .find(|t| matches!(&t.kind, TokKind::Ident(s) if s == "t"));
        // Line 2 is `b"; t` — the ident lands at column 5.
        assert_eq!(t.map(|t| (t.line, t.col)), Some((2, 5)));
    }
}
