//! `cdb-lint` CLI: lint the enclosing workspace (or `--root <dir>`).
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("cdb-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "cdb-lint — workspace invariant checker\n\n\
                     USAGE: cdb-lint [--root <dir>]\n\n\
                     Rule families (suppress with `// cdb-lint: allow(<rule>) — <reason>`\n\
                     on the offending line or the line above, or\n\
                     `// cdb-lint: allow-file(<rule>) — <reason>` for a whole file):\n\
                     \x20 float        f64/f32 outside crates/num/src/fintv.rs and crates/fp\n\
                     \x20 determinism  HashMap/HashSet, Instant/SystemTime, Ordering::Relaxed\n\
                     \x20               in qe/datalog/calcf/agg\n\
                     \x20 panic        unwrap/expect/panic!/unreachable!/constant-subscript\n\
                     \x20               indexing in library code\n\
                     \x20 lock         nested .lock() in one statement; guards live across\n\
                     \x20               par_map_result"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("cdb-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cdb-lint: cannot determine current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match cdb_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "cdb-lint: no [workspace] Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    match cdb_lint::run_root(&root) {
        Ok(report) => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            if report.diagnostics.is_empty() {
                eprintln!("cdb-lint: clean ({} files scanned)", report.files_scanned);
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "cdb-lint: {} diagnostic(s) across {} files scanned",
                    report.diagnostics.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("cdb-lint: {e}");
            ExitCode::from(2)
        }
    }
}
