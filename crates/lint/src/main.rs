//! `cdb-lint` CLI: lint the enclosing workspace (or `--root <dir>`),
//! ratcheting findings against the committed `lint_baseline.json`.
//!
//! Exit codes: 0 clean (no fresh findings, no stale baseline entries),
//! 1 fresh/stale findings, 2 usage/IO error.

use cdb_lint::baseline;
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut write_baseline = false;
    let mut no_baseline = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("cdb-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("cdb-lint: --baseline requires a path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("cdb-lint: --format requires `text` or `json` (got {other:?})");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => write_baseline = true,
            "--no-baseline" => no_baseline = true,
            "--help" | "-h" => {
                println!(
                    "cdb-lint — workspace invariant checker\n\n\
                     USAGE: cdb-lint [--root <dir>] [--format text|json]\n\
                     \x20               [--baseline <path>] [--no-baseline] [--write-baseline]\n\n\
                     Findings are ratcheted against <root>/lint_baseline.json (override with\n\
                     --baseline, disable with --no-baseline): findings in the baseline are\n\
                     accepted, *new* findings fail, and stale baseline entries fail too, so\n\
                     the baseline only shrinks deliberately. --write-baseline rewrites it\n\
                     from the current findings. --format json emits the full machine-readable\n\
                     report (call-graph stats, lock-order edges, panic surface, findings).\n\n\
                     Rule families (suppress with `// cdb-lint: allow(<rule>) — <reason>`\n\
                     on the offending line or the line above, or\n\
                     `// cdb-lint: allow-file(<rule>) — <reason>` for a whole file):"
                );
                for (_, id, what) in cdb_lint::Rule::ALL {
                    println!("  {id:<18} {what}");
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("cdb-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cdb-lint: cannot determine current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match cdb_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "cdb-lint: no [workspace] Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match cdb_lint::run_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cdb-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let entries = report.entries();
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint_baseline.json"));

    if write_baseline {
        let mut sorted = entries.clone();
        sorted.sort();
        let doc = baseline::write_baseline(&sorted);
        if let Err(e) = std::fs::write(&baseline_path, doc) {
            eprintln!("cdb-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "cdb-lint: wrote {} finding(s) to {}",
            sorted.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let accepted: Vec<baseline::Entry> = if no_baseline {
        Vec::new()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match baseline::parse_baseline(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!(
                        "cdb-lint: malformed baseline {}: {e}",
                        baseline_path.display()
                    );
                    return ExitCode::from(2);
                }
            },
            // A missing baseline is an empty one: every finding is fresh.
            Err(_) => Vec::new(),
        }
    };
    let ratchet = baseline::ratchet(&entries, &accepted);
    let mut baselined = vec![false; report.diagnostics.len()];
    for &i in &ratchet.matched {
        if let Some(b) = baselined.get_mut(i) {
            *b = true;
        }
    }

    match format {
        Format::Json => {
            print!("{}", report.to_json(&baselined, &ratchet.stale));
        }
        Format::Text => {
            for &i in &ratchet.fresh {
                if let Some(d) = report.diagnostics.get(i) {
                    println!("{d}");
                }
            }
            for e in &ratchet.stale {
                println!(
                    "{}: [stale-baseline] baseline entry matched no finding \
                     (rule {}): {}",
                    e.file, e.rule, e.message
                );
            }
            let summary = format!(
                "{} fresh, {} baselined, {} stale across {} files \
                 ({} fns, {} call edges)",
                ratchet.fresh.len(),
                ratchet.matched.len(),
                ratchet.stale.len(),
                report.files_scanned,
                report.functions,
                report.call_edges
            );
            if ratchet.fresh.is_empty() && ratchet.stale.is_empty() {
                eprintln!("cdb-lint: clean ({summary})");
            } else {
                eprintln!("cdb-lint: {summary}");
            }
        }
    }
    if ratchet.fresh.is_empty() && ratchet.stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
