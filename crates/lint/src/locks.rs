//! Interprocedural lock-order analysis (rule `lock-order`).
//!
//! Every `.lock()` site is classified into a **lock class** by its receiver
//! path and file (the serving stack's classes are enumerated in DESIGN.md
//! §9: master db, admission queue, slot mailboxes, batch histogram,
//! admission join handle, cache shards, interner shards, `RealAlg` root
//! cells, parallel fan-out slots, stdio). The pass then computes, for every
//! function, which classes can be *held* when another class is *acquired* —
//! following calls made while a guard is live, with each callee's
//! transitively-acquired classes — and reports any cycle in the resulting
//! acquisition-order graph as a potential deadlock, with the witness edge
//! sites.
//!
//! Guard liveness is tracked with the same heuristics the per-file rule L
//! uses, refined by continuation shape: `let g = x.lock().unwrap…();` binds
//! a named guard (live to end of scope or `drop(g)`); a lock whose result
//! is consumed in-statement (`….lock()….clone()`) is a statement-scoped
//! temporary; a temporary still live at a `{` (the `match x.lock()… {`
//! scrutinee pattern) is promoted to a block-scoped guard.

use crate::graph::Graph;
use crate::items::FnItem;
use crate::lexer::{Tok, TokKind};
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// One edge of the acquisition-order graph: `to` can be acquired while
/// `from` is held, first witnessed at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Class already held.
    pub from: String,
    /// Class acquired under it.
    pub to: String,
    /// Witness file (workspace-relative).
    pub file: String,
    /// Witness line (1-based).
    pub line: u32,
    /// Witness column (1-based).
    pub col: u32,
    /// Human-readable description of the witness.
    pub via: String,
}

/// The pass result: the deduplicated edge list (for the JSON report) and
/// any cycle diagnostics.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    /// Acquisition-order edges, sorted by (from, to).
    pub edges: Vec<LockEdge>,
    /// One diagnostic per distinct cycle.
    pub diags: Vec<Diagnostic>,
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Walk the receiver chain backwards from a `.lock(` site (`i` = the
/// `lock` ident). Returns path segments in source order, e.g.
/// `self.inner.master.lock()` → `["self", "inner", "master"]`; indexing
/// and call parentheses are skipped (`shards[idx].lock()` → `["shards"]`).
fn receiver_segments(toks: &[Tok], i: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    // toks[i - 1] is the `.`; start left of it.
    let mut j = i.wrapping_sub(2);
    loop {
        if j >= toks.len() {
            break;
        }
        match &toks[j].kind {
            TokKind::Ident(s) => {
                segs.push(s.clone());
                // Continue through `.` or `::` chains.
                if punct_at(toks, j.wrapping_sub(1)) == Some('.') {
                    j = j.wrapping_sub(2);
                } else if punct_at(toks, j.wrapping_sub(1)) == Some(':')
                    && punct_at(toks, j.wrapping_sub(2)) == Some(':')
                {
                    j = j.wrapping_sub(3);
                } else {
                    break;
                }
            }
            TokKind::Punct(']') | TokKind::Punct(')') => {
                let close = toks[j].kind.clone();
                let open = if close == TokKind::Punct(']') {
                    '['
                } else {
                    '('
                };
                let close_ch = if open == '[' { ']' } else { ')' };
                let mut depth = 0usize;
                while j < toks.len() {
                    match punct_at(toks, j) {
                        Some(c) if c == close_ch => depth += 1,
                        Some(c) if c == open => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j = j.wrapping_sub(1);
                }
                j = j.wrapping_sub(1);
            }
            _ => break,
        }
        if segs.len() >= 6 {
            break;
        }
    }
    segs.reverse();
    segs
}

/// Classify a lock site into a lock class by receiver segments, then file.
/// The named classes mirror the serving-stack inventory in DESIGN.md §9;
/// everything else gets a deterministic `other:` class so new locks are
/// visible in the report without being misfiled.
fn lock_class(file: &str, segs: &[String]) -> String {
    for s in segs.iter().rev() {
        let class = match s.as_str() {
            "master" => "db-master",
            "queue" => "admission-queue",
            "batch_hist" => "batch-hist",
            "admission" => "admission-join",
            "loc" => "realalg-loc",
            "result" | "slot" => "slot-mailbox",
            "stdin" | "stdout" | "stderr" => "stdio",
            _ => continue,
        };
        return class.to_owned();
    }
    let by_file = match file {
        "crates/qe/src/cache.rs" => Some("cache-shard"),
        "crates/poly/src/intern.rs" => Some("interner-shard"),
        "crates/qe/src/par.rs" => Some("par-slot"),
        "crates/calcf/src/engine.rs" => Some("calcf-slot"),
        _ => None,
    };
    if let Some(c) = by_file {
        return c.to_owned();
    }
    let tag = segs
        .last()
        .map(String::as_str)
        .filter(|s| *s != "self")
        .unwrap_or_else(|| {
            file.rsplit('/')
                .next()
                .unwrap_or(file)
                .trim_end_matches(".rs")
        });
    format!("other:{tag}")
}

/// Index of the token after the `)` matching the `(` at `open`.
fn skip_parens(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match punct_at(toks, j) {
            Some('(') => depth += 1,
            Some(')') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// What follows a `.lock(` call chain: the index just past the trailing
/// `.unwrap()`/`.expect(..)`/`.unwrap_or_else(..)` combinators.
fn after_lock_chain(toks: &[Tok], lock_ident: usize) -> usize {
    let mut j = skip_parens(toks, lock_ident + 1);
    loop {
        if punct_at(toks, j) == Some('.')
            && matches!(
                ident_at(toks, j + 1),
                Some("unwrap" | "expect" | "unwrap_or_else" | "unwrap_or" | "unwrap_or_default")
            )
            && punct_at(toks, j + 2) == Some('(')
        {
            j = skip_parens(toks, j + 2);
        } else {
            return j;
        }
    }
}

/// One acquisition inside a function body.
#[derive(Debug)]
struct Acq {
    class: String,
    line: u32,
    col: u32,
    held: BTreeSet<String>,
}

/// One call site with the classes held at it.
#[derive(Debug)]
struct CallHeld {
    call_idx: usize,
    held: BTreeSet<String>,
}

/// Scan one function body for acquisitions and call-under-guard events.
fn scan_fn(toks: &[Tok], item: &FnItem, file: &str) -> (Vec<Acq>, Vec<CallHeld>) {
    let (b0, b1) = item.body;
    let mut acqs = Vec::new();
    let mut call_helds = Vec::new();
    if b1 <= b0 {
        return (acqs, call_helds);
    }
    // Guard state.
    let mut named: Vec<(String, usize, String)> = Vec::new(); // (name, depth, class)
    let mut blocks: Vec<(usize, String)> = Vec::new(); // (depth, class)
    let mut stmts: Vec<String> = Vec::new();
    let mut pending_let: Option<String> = None;
    let mut depth = 0usize;
    let mut call_ptr = 0usize;

    let held_now =
        |named: &[(String, usize, String)], blocks: &[(usize, String)], stmts: &[String]| {
            let mut h: BTreeSet<String> = BTreeSet::new();
            h.extend(named.iter().map(|(_, _, c)| c.clone()));
            h.extend(blocks.iter().map(|(_, c)| c.clone()));
            h.extend(stmts.iter().cloned());
            h
        };

    let mut i = b0;
    while i < b1 {
        // Record held classes at each extracted call site.
        while call_ptr < item.calls.len() && item.calls[call_ptr].tok < i {
            call_ptr += 1;
        }
        if call_ptr < item.calls.len() && item.calls[call_ptr].tok == i {
            let held = held_now(&named, &blocks, &stmts);
            if !held.is_empty() {
                call_helds.push(CallHeld {
                    call_idx: call_ptr,
                    held,
                });
            }
            call_ptr += 1;
        }
        match &toks[i].kind {
            TokKind::Punct('{') => {
                depth += 1;
                // A temporary still live at a block open is a scrutinee
                // guard: it outlives the whole block (`match x.lock()… {`).
                for c in stmts.drain(..) {
                    blocks.push((depth, c));
                }
                pending_let = None;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                blocks.retain(|(d, _)| *d <= depth);
                named.retain(|(_, d, _)| *d <= depth);
            }
            TokKind::Punct(';') => {
                stmts.clear();
                pending_let = None;
            }
            TokKind::Ident(kw) if kw == "let" => {
                let mut j = i + 1;
                if ident_at(toks, j) == Some("mut") {
                    j += 1;
                }
                pending_let = ident_at(toks, j).map(str::to_owned);
            }
            TokKind::Ident(kw) if kw == "drop" && punct_at(toks, i + 1) == Some('(') => {
                if let Some(name) = ident_at(toks, i + 2) {
                    named.retain(|(g, _, _)| g != name);
                }
            }
            TokKind::Ident(kw)
                if kw == "lock"
                    && punct_at(toks, i.wrapping_sub(1)) == Some('.')
                    && punct_at(toks, i + 1) == Some('(') =>
            {
                let segs = receiver_segments(toks, i);
                let class = lock_class(file, &segs);
                acqs.push(Acq {
                    class: class.clone(),
                    line: toks[i].line,
                    col: toks[i].col,
                    held: held_now(&named, &blocks, &stmts),
                });
                let after = after_lock_chain(toks, i);
                if punct_at(toks, after) == Some(';') {
                    // `… = x.lock().unwrap…();` — a named guard if a let
                    // binding is pending, otherwise dropped immediately.
                    if let Some(name) = pending_let.take() {
                        named.push((name, depth, class));
                    }
                } else {
                    // Result consumed in-statement: a temporary guard live
                    // to the end of the statement (or promoted at `{`).
                    stmts.push(class);
                }
            }
            _ => {}
        }
        i += 1;
    }
    (acqs, call_helds)
}

/// Run the lock-order pass over the whole graph. `toks` is aligned with
/// `g.files`.
pub fn analyze(g: &Graph, toks: &[Vec<Tok>]) -> LockAnalysis {
    let nfns = g.fns.len();
    let mut acqs: Vec<Vec<Acq>> = Vec::with_capacity(nfns);
    let mut call_helds: Vec<Vec<CallHeld>> = Vec::with_capacity(nfns);
    for f in &g.fns {
        let file_toks = toks.get(f.file).map(Vec::as_slice).unwrap_or(&[]);
        let rel = g.files.get(f.file).map(|fi| fi.rel.as_str()).unwrap_or("");
        let (a, c) = scan_fn(file_toks, f, rel);
        acqs.push(a);
        call_helds.push(c);
    }
    // Transitively acquired classes per function (union over candidates —
    // a must-not-happen property wants the over-approximation).
    let mut trans: Vec<BTreeSet<String>> = acqs
        .iter()
        .map(|a| a.iter().map(|x| x.class.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for f in 0..nfns {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for cands in &g.resolved[f] {
                for &c in cands {
                    for cls in &trans[c] {
                        if !trans[f].contains(cls) {
                            add.insert(cls.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                trans[f].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Edge set with first witness (functions are in deterministic id
    // order, events in source order, so the first witness is stable).
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, file: &str, line: u32, col: u32, via: String| {
        edges
            .entry((from.to_owned(), to.to_owned()))
            .or_insert_with(|| LockEdge {
                from: from.to_owned(),
                to: to.to_owned(),
                file: file.to_owned(),
                line,
                col,
                via,
            });
    };
    for f in 0..nfns {
        let item = &g.fns[f];
        let rel = g
            .files
            .get(item.file)
            .map(|fi| fi.rel.as_str())
            .unwrap_or("");
        for a in &acqs[f] {
            for h in &a.held {
                add_edge(
                    h,
                    &a.class,
                    rel,
                    a.line,
                    a.col,
                    format!(
                        "`{}` acquires {} while holding {}",
                        item.display(),
                        a.class,
                        h
                    ),
                );
            }
        }
        for ch in &call_helds[f] {
            let Some(call) = item.calls.get(ch.call_idx) else {
                continue;
            };
            let Some(cands) = g.resolved[f].get(ch.call_idx) else {
                continue;
            };
            for &cand in cands {
                for cls in &trans[cand] {
                    for h in &ch.held {
                        add_edge(
                            h,
                            cls,
                            rel,
                            call.line,
                            call.col,
                            format!(
                                "`{}` calls `{}` (which acquires {}) while holding {}",
                                item.display(),
                                g.fns[cand].display(),
                                cls,
                                h
                            ),
                        );
                    }
                }
            }
        }
    }
    let edges: Vec<LockEdge> = edges.into_values().collect();
    let diags = find_cycles(&edges);
    LockAnalysis { edges, diags }
}

/// Detect cycles in the acquisition-order graph; one diagnostic per
/// distinct cycle (deduplicated by its set of classes), anchored at the
/// first edge's witness.
fn find_cycles(edges: &[LockEdge]) -> Vec<Diagnostic> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let edge_of = |from: &str, to: &str| edges.iter().find(|e| e.from == from && e.to == to);
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut diags = Vec::new();
    for e in edges {
        // A cycle through edge (from → to) exists iff `from` is reachable
        // from `to`. BFS with sorted neighbors gives a deterministic,
        // shortest witness path.
        let path = bfs_path(&adj, &e.to, &e.from);
        let Some(path) = path else { continue };
        // Full cycle: from → to → … → from (the path already ends at
        // `from`, closing the loop).
        let mut cycle: Vec<String> = Vec::with_capacity(path.len() + 1);
        cycle.push(e.from.clone());
        cycle.extend(path.iter().map(|s| (*s).to_owned()));
        let mut key: Vec<String> = cycle.clone();
        key.sort();
        key.dedup();
        if !seen.insert(key) {
            continue;
        }
        let chain = cycle.join(" → ");
        let mut witnesses: Vec<String> = Vec::new();
        for w in cycle.windows(2) {
            if let [a, b] = w {
                if let Some(edge) = edge_of(a, b) {
                    witnesses.push(format!("{} ({}:{})", edge.via, edge.file, edge.line));
                }
            }
        }
        diags.push(Diagnostic {
            file: e.file.clone(),
            line: e.line,
            col: e.col,
            rule: "lock-order",
            message: format!(
                "lock-acquisition-order cycle: {chain}; {}",
                witnesses.join("; ")
            ),
        });
    }
    diags
}

/// Shortest path `from → … → to` over sorted adjacency (inclusive of both
/// endpoints); `None` when unreachable. `from == to` needs an actual edge
/// (self-loop) to count.
fn bfs_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    // Self-loop: from == to with a direct edge.
    if from == to {
        return adj
            .get(from)
            .is_some_and(|s| s.contains(to))
            .then(|| vec![from]);
    }
    let mut prev: BTreeMap<&'a str, &'a str> = BTreeMap::new();
    let mut queue: Vec<&'a str> = vec![from];
    let mut qi = 0usize;
    let mut goal: Option<&'a str> = None;
    'search: while qi < queue.len() {
        let cur = *queue.get(qi)?;
        qi += 1;
        if let Some(nexts) = adj.get(cur) {
            for &n in nexts {
                if prev.contains_key(n) || n == from {
                    continue;
                }
                prev.insert(n, cur);
                if n == to {
                    goal = Some(n);
                    break 'search;
                }
                queue.push(n);
            }
        }
    }
    let mut cur = goal?;
    let mut path = vec![cur];
    while cur != from {
        cur = prev.get(cur).copied()?;
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;
    use crate::lexer::lex;

    fn analyze_src(files: &[(&str, &str)]) -> LockAnalysis {
        let lexed: Vec<(String, Vec<Tok>)> = files
            .iter()
            .map(|(rel, src)| ((*rel).to_owned(), lex(src).toks))
            .collect();
        let g = graph::build(&lexed);
        let toks: Vec<Vec<Tok>> = lexed.into_iter().map(|(_, t)| t).collect();
        analyze(&g, &toks)
    }

    #[test]
    fn classifies_serving_stack_receivers() {
        let toks = lex("fn f(x: &I) { x.inner.master.lock().u(); }").toks;
        let i = toks
            .iter()
            .position(|t| matches!(&t.kind, TokKind::Ident(s) if s == "lock"))
            .unwrap();
        let segs = receiver_segments(&toks, i);
        assert_eq!(segs, vec!["x", "inner", "master"]);
        assert_eq!(
            lock_class("crates/server/src/session.rs", &segs),
            "db-master"
        );
        assert_eq!(
            lock_class("crates/qe/src/cache.rs", &["shard".to_owned()]),
            "cache-shard"
        );
        assert_eq!(
            lock_class("crates/x/src/y.rs", &["self".to_owned(), "loc".to_owned()]),
            "realalg-loc"
        );
    }

    #[test]
    fn opposite_order_acquisition_is_a_cycle() {
        let a = analyze_src(&[(
            "crates/s/src/l.rs",
            "pub fn ab(s: &S) {\n  let g = s.master.lock().unwrap_or_else(e);\n  let h = s.queue.lock().unwrap_or_else(e);\n  use_both(g, h);\n}\npub fn ba(s: &S) {\n  let h = s.queue.lock().unwrap_or_else(e);\n  let g = s.master.lock().unwrap_or_else(e);\n  use_both(g, h);\n}\nfn use_both(a: G, b: H) {}\n",
        )]);
        assert!(a
            .edges
            .iter()
            .any(|e| e.from == "db-master" && e.to == "admission-queue"));
        assert!(a
            .edges
            .iter()
            .any(|e| e.from == "admission-queue" && e.to == "db-master"));
        assert_eq!(a.diags.len(), 1, "one deduplicated cycle: {:?}", a.diags);
        assert!(a.diags[0].message.contains("cycle"));
    }

    #[test]
    fn call_under_guard_propagates() {
        let a = analyze_src(&[(
            "crates/s/src/l.rs",
            "pub fn outer(s: &S) {\n  let g = s.master.lock().unwrap_or_else(e);\n  helper(s);\n  g.touch();\n}\nfn helper(s: &S) {\n  let q = s.queue.lock().unwrap_or_else(e);\n  q.touch();\n}\n",
        )]);
        assert!(
            a.edges
                .iter()
                .any(|e| e.from == "db-master" && e.to == "admission-queue"),
            "edges: {:?}",
            a.edges
        );
        assert!(a.diags.is_empty());
    }

    #[test]
    fn stmt_temp_guard_does_not_leak_past_statement() {
        let a = analyze_src(&[(
            "crates/s/src/l.rs",
            "pub fn f(s: &S) {\n  let v = s.master.lock().unwrap_or_else(e).clone();\n  helper(s);\n}\nfn helper(s: &S) {\n  let q = s.queue.lock().unwrap_or_else(e);\n  q.touch();\n}\n",
        )]);
        assert!(a.edges.is_empty(), "edges: {:?}", a.edges);
    }

    #[test]
    fn match_scrutinee_guard_lives_through_block() {
        let a = analyze_src(&[(
            "crates/s/src/l.rs",
            "pub fn f(s: &S) {\n  match *s.loc.lock().unwrap_or_else(e) {\n    X => helper(s),\n    _ => {}\n  }\n}\nfn helper(s: &S) {\n  let q = s.queue.lock().unwrap_or_else(e);\n  q.touch();\n}\n",
        )]);
        assert!(
            a.edges
                .iter()
                .any(|e| e.from == "realalg-loc" && e.to == "admission-queue"),
            "edges: {:?}",
            a.edges
        );
    }

    #[test]
    fn dropped_guard_clears_held_set() {
        let a = analyze_src(&[(
            "crates/s/src/l.rs",
            "pub fn f(s: &S) {\n  let g = s.master.lock().unwrap_or_else(e);\n  drop(g);\n  helper(s);\n}\nfn helper(s: &S) {\n  let q = s.queue.lock().unwrap_or_else(e);\n  q.touch();\n}\n",
        )]);
        assert!(a.edges.is_empty(), "edges: {:?}", a.edges);
    }
}
