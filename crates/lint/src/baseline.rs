//! Baseline ratchet and JSON report emission.
//!
//! The baseline (`lint_baseline.json` at the workspace root) is the set of
//! *accepted* findings, keyed by `(file, rule, message)` — deliberately no
//! line numbers, so unrelated edits that shift a known finding do not churn
//! the file. Semantics:
//!
//! * a finding **not** in the baseline is *fresh* → CI fails (exit 1);
//! * a baseline entry with no matching finding is *stale* → CI fails too,
//!   so the baseline only ever shrinks by being edited, never silently;
//! * matching is a multiset: two identical findings need two entries.
//!
//! The JSON here is written and read by hand — the lint crate stays
//! dependency-free. The parser handles exactly the subset the writer
//! emits (objects, arrays, strings with `\uXXXX`/common escapes, integers,
//! booleans, null) which also keeps it honest about the report being
//! machine-stable. Integers stay `i64`: this crate lints itself, and rule F
//! would (rightly) object to an `f64` in here.

use std::collections::BTreeMap;

/// One accepted finding in the baseline.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    /// Workspace-relative path of the file the finding is in.
    pub file: String,
    /// Rule id, e.g. `"lock-order"`.
    pub rule: String,
    /// Exact diagnostic message.
    pub message: String,
}

/// Result of ratcheting current findings against a baseline.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// Indices (into the input diagnostics) of findings not in the baseline.
    pub fresh: Vec<usize>,
    /// Indices of findings matched by a baseline entry.
    pub matched: Vec<usize>,
    /// Baseline entries with no matching finding.
    pub stale: Vec<Entry>,
}

/// Match findings against baseline entries as multisets keyed by
/// `(file, rule, message)`.
pub fn ratchet(findings: &[Entry], baseline: &[Entry]) -> Ratchet {
    let mut pool: BTreeMap<&Entry, i64> = BTreeMap::new();
    for e in baseline {
        *pool.entry(e).or_insert(0) += 1;
    }
    let mut out = Ratchet::default();
    for (i, f) in findings.iter().enumerate() {
        match pool.get_mut(f) {
            Some(n) if *n > 0 => {
                *n -= 1;
                out.matched.push(i);
            }
            _ => out.fresh.push(i),
        }
    }
    for (e, n) in pool {
        for _ in 0..n {
            out.stale.push(e.clone());
        }
    }
    out
}

/// Escape a string for JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize baseline entries (sorted, deduplicated order preserved as
/// given — callers sort) to the canonical baseline JSON document.
pub fn write_baseline(entries: &[Entry]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"file\": \"{}\", \"rule\": \"{}\", \"message\": \"{}\" }}{}\n",
            escape(&e.file),
            escape(&e.rule),
            escape(&e.message),
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// A parsed JSON value (subset: no floats — the report never emits any).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (the writer never emits fractions or exponents).
    Int(i64),
    /// String (unescaped).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with source-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a JSON document (the subset the lint report/baseline writer
/// emits). Returns `Err` with a short description on malformed input.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while b
        .get(*pos)
        .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at offset {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_int(b, pos),
        _ => Err(format!("unexpected byte at offset {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {}", *pos))
    }
}

fn parse_int(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    let text = std::str::from_utf8(b.get(start..*pos).unwrap_or(b""))
        .map_err(|_| "non-utf8 number".to_owned())?;
    text.parse::<i64>()
        .map(Json::Int)
        .map_err(|_| format!("bad integer at offset {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "bad \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar worth of bytes.
                let rest = std::str::from_utf8(b.get(*pos..).unwrap_or(b""))
                    .map_err(|_| "non-utf8 string".to_owned())?;
                let Some(c) = rest.chars().next() else {
                    return Err("unterminated string".to_owned());
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at offset {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {}", *pos)),
        }
    }
}

/// Parse a baseline document into entries. Unknown keys are ignored so the
/// format can grow; missing required keys are an error.
pub fn parse_baseline(src: &str) -> Result<Vec<Entry>, String> {
    let doc = parse(src)?;
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or_else(|| "baseline: missing `findings` array".to_owned())?;
    let mut out = Vec::new();
    for f in findings {
        let field = |k: &str| {
            f.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("baseline: finding missing `{k}`"))
        };
        out.push(Entry {
            file: field("file")?,
            rule: field("rule")?,
            message: field("message")?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(file: &str, rule: &str, msg: &str) -> Entry {
        Entry {
            file: file.to_owned(),
            rule: rule.to_owned(),
            message: msg.to_owned(),
        }
    }

    #[test]
    fn ratchet_classifies_fresh_matched_stale() {
        let findings = vec![
            e("a.rs", "float", "m1"),
            e("a.rs", "float", "m1"),
            e("b.rs", "panic", "m2"),
        ];
        let baseline = vec![e("a.rs", "float", "m1"), e("c.rs", "lock", "m3")];
        let r = ratchet(&findings, &baseline);
        assert_eq!(r.matched, vec![0]);
        assert_eq!(r.fresh, vec![1, 2]);
        assert_eq!(r.stale, vec![e("c.rs", "lock", "m3")]);
    }

    #[test]
    fn baseline_roundtrips() {
        let entries = vec![
            e("a.rs", "float", "uses \"f64\"\nhere"),
            e("b/c.rs", "lock-order", "cycle: a \\ b"),
        ];
        let doc = write_baseline(&entries);
        let back = parse_baseline(&doc).expect("parse");
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_baseline_roundtrips() {
        let doc = write_baseline(&[]);
        assert_eq!(parse_baseline(&doc).expect("parse"), vec![]);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"\\q\"").is_err());
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_ints() {
        let v = parse("{\"k\": [-12, \"a\\u0041\\n\", true, null]}").expect("parse");
        let arr = v.get("k").and_then(Json::as_arr).expect("arr");
        assert_eq!(arr.first(), Some(&Json::Int(-12)));
        assert_eq!(arr.get(1), Some(&Json::Str("aA\n".to_owned())));
        assert_eq!(arr.get(2), Some(&Json::Bool(true)));
        assert_eq!(arr.get(3), Some(&Json::Null));
    }
}
