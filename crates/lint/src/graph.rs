//! The workspace call graph.
//!
//! Nodes are the `fn` items parsed by [`crate::items`], in deterministic
//! order (files sorted by path, functions by source position). Edges are
//! *resolved* call sites: a call resolves to a set of candidate callees,
//! never a guess — when the name is a common std method, or the qualifier
//! matches nothing in the workspace, the call simply has no candidates.
//! The interprocedural passes choose per-pass how to combine candidate
//! sets (union for must-not-happen properties like lock order and panic
//! reachability, unanimity for taint, where a single exact-arithmetic
//! candidate should clear the call).

use crate::items::{parse_items, FnItem};
use crate::lexer::Tok;
use std::collections::BTreeMap;

/// Method and function names owned by std/core in practice: resolving
/// these by bare name would wire most of the workspace to any type that
/// happens to share the name. Workspace functions that shadow one of these
/// are reachable only through a qualified path.
const STD_NAMES: &[&str] = &[
    "clone",
    "to_owned",
    "to_string",
    "into",
    "from",
    "try_into",
    "try_from",
    "default",
    "new",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "fold",
    "for_each",
    "collect",
    "iter",
    "iter_mut",
    "into_iter",
    "chars",
    "bytes",
    "lines",
    "split",
    "split_at",
    "splitn",
    "trim",
    "starts_with",
    "ends_with",
    "contains",
    "contains_key",
    "push",
    "push_str",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "entry",
    "or_default",
    "or_insert",
    "or_insert_with",
    "len",
    "is_empty",
    "first",
    "last",
    "next",
    "peek",
    "nth",
    "take",
    "skip",
    "chain",
    "zip",
    "enumerate",
    "rev",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "dedup",
    "retain",
    "extend",
    "append",
    "clear",
    "drain",
    "truncate",
    "resize",
    "join",
    "concat",
    "as_str",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_bytes",
    "as_deref",
    "borrow",
    "borrow_mut",
    "deref",
    "cmp",
    "partial_cmp",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "max",
    "min",
    "max_by_key",
    "min_by_key",
    "max_by",
    "min_by",
    "clamp",
    "abs",
    "pow",
    "powi",
    "hash",
    "fmt",
    "lock",
    "wait",
    "notify_all",
    "notify_one",
    "spawn",
    "drop",
    "swap",
    "replace",
    "wrapping_sub",
    "wrapping_add",
    "saturating_sub",
    "saturating_add",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "div_ceil",
    "fetch_add",
    "fetch_sub",
    "load",
    "store",
    "compare_exchange",
    "to_vec",
    "to_str",
    "to_string_lossy",
    "display",
    "path",
    "file_name",
    "extension",
    "strip_prefix",
    "strip_suffix",
    "parse",
    "trim_start",
    "trim_end",
    "trim_start_matches",
    "trim_end_matches",
    "find",
    "rfind",
    "position",
    "any",
    "all",
    "count",
    "sum",
    "product",
    "step_by",
    "windows",
    "chunks",
    "copied",
    "cloned",
    "unzip",
    "partition",
    "binary_search",
    "binary_search_by",
    "keys",
    "values",
    "values_mut",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "map_or",
    "map_or_else",
    "add",
    "sub",
    "mul",
    "div",
    "rem",
    "neg",
    "not",
    "bitand",
    "bitor",
    "bitxor",
    "shl",
    "shr",
    "index",
    "get_or_insert_with",
    "then",
    "then_some",
    "min_element",
    "max_element",
    "rotate_left",
    "rotate_right",
    "leading_zeros",
    "trailing_zeros",
    "signum",
    "is_char_boundary",
    "char_indices",
    "floor",
    "ceil",
    "round",
    "exp",
    "ln",
    "log2",
    "sin",
    "cos",
    "tan",
    "atan2",
    "hypot",
    "to_bits",
    "from_bits",
    "set",
    "get_or_init",
    "take_while",
    "skip_while",
    "by_ref",
    "last_mut",
    "first_mut",
    "iter_rev",
    "front",
    "back",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "range",
    "split_off",
    "insert_str",
    "char_at",
    "is_ascii_digit",
    "is_alphanumeric",
    "is_alphabetic",
    "is_whitespace",
];

/// Per-file metadata needed for resolution.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// `crates/<dir>` member directory name, if under `crates/`.
    pub crate_dir: Option<String>,
    /// The crate's Rust identifier (`cdb_qe`, `constraintdb`, …).
    pub crate_ident: Option<String>,
    /// File stem (`cache` for `crates/qe/src/cache.rs`) — the module name
    /// a sibling refers to the file by.
    pub stem: String,
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All functions, sorted by (file index, line, col) — ids are stable
    /// across runs because files arrive sorted by path.
    pub fns: Vec<FnItem>,
    /// File table; `FnItem::file` indexes into it.
    pub files: Vec<FileInfo>,
    /// For each function, for each of its call sites (same index as
    /// `FnItem::calls`), the candidate callee ids (possibly empty).
    pub resolved: Vec<Vec<Vec<usize>>>,
}

impl Graph {
    /// Total number of resolved call edges (candidate pairs).
    pub fn edge_count(&self) -> usize {
        self.resolved
            .iter()
            .flat_map(|calls| calls.iter())
            .map(Vec::len)
            .sum()
    }

    /// The file info of function `f`.
    pub fn file_of(&self, f: usize) -> Option<&FileInfo> {
        self.fns.get(f).and_then(|item| self.files.get(item.file))
    }
}

/// The crate identifier for a workspace member directory name.
fn crate_ident(dir: &str) -> String {
    // `crates/core` is the `constraintdb` facade crate; every other member
    // is published as `cdb-<dir>` and referred to as `cdb_<dir>` in code.
    if dir == "core" {
        "constraintdb".to_owned()
    } else {
        format!("cdb_{}", dir.replace('-', "_"))
    }
}

fn file_info(rel: &str) -> FileInfo {
    let crate_dir = rel
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .map(str::to_owned);
    let stem = rel
        .rsplit('/')
        .next()
        .unwrap_or(rel)
        .trim_end_matches(".rs")
        .to_owned();
    FileInfo {
        rel: rel.to_owned(),
        crate_ident: crate_dir.as_deref().map(crate_ident),
        crate_dir,
        stem,
    }
}

/// Build the call graph over already-lexed, test-stripped files.
/// `files` must be sorted by path (the lint driver guarantees it).
pub fn build(files: &[(String, Vec<Tok>)]) -> Graph {
    let mut g = Graph::default();
    for (idx, (rel, toks)) in files.iter().enumerate() {
        g.files.push(file_info(rel));
        let mut items = parse_items(toks);
        for item in &mut items {
            item.file = idx;
        }
        g.fns.extend(items);
    }
    // Deterministic ids: files arrive sorted, items are in source order
    // within a file, so the flattened order is already (file, line, col).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, f) in g.fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(id);
    }
    let mut resolved = Vec::with_capacity(g.fns.len());
    for f in &g.fns {
        let calls: Vec<Vec<usize>> = f
            .calls
            .iter()
            .map(|c| {
                resolve(
                    &g,
                    &by_name,
                    f,
                    c.name.as_str(),
                    c.qual.as_deref(),
                    c.method,
                )
            })
            .collect();
        resolved.push(calls);
    }
    g.resolved = resolved;
    g
}

/// Resolve one call site to candidate function ids.
fn resolve(
    g: &Graph,
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: &FnItem,
    name: &str,
    qual: Option<&str>,
    method: bool,
) -> Vec<usize> {
    if STD_NAMES.contains(&name) {
        return Vec::new();
    }
    let Some(cands) = by_name.get(name) else {
        return Vec::new();
    };
    let caller_file = g.files.get(caller.file);
    if method {
        // `recv.name(...)`: any workspace method (has a `self` receiver,
        // lives in an impl/trait) with that name. Union over impls — the
        // passes decide how to combine.
        return cands
            .iter()
            .copied()
            .filter(|&id| g.fns[id].has_self && g.fns[id].impl_name.is_some())
            .collect();
    }
    if let Some(q) = qual {
        if q == "Self" {
            // `Self::name(...)`: same impl type in the same file.
            return cands
                .iter()
                .copied()
                .filter(|&id| {
                    g.fns[id].file == caller.file && g.fns[id].impl_name == caller.impl_name
                })
                .collect();
        }
        if q == "crate" || q == "super" || q == "self" {
            // `crate::name(...)` etc.: same crate.
            let caller_crate = caller_file.and_then(|fi| fi.crate_dir.as_deref());
            return cands
                .iter()
                .copied()
                .filter(|&id| {
                    g.file_of(id).and_then(|fi| fi.crate_dir.as_deref()) == caller_crate
                        && caller_crate.is_some()
                })
                .collect();
        }
        // `q::name(...)`: q must match the candidate's impl type, its
        // file stem (sibling-module call), its innermost module name, or
        // its crate identifier. No fallback: an unmatched qualifier means
        // an unresolved call, not "all functions named `name`".
        return cands
            .iter()
            .copied()
            .filter(|&id| {
                let f = &g.fns[id];
                let fi = g.file_of(id);
                f.impl_name.as_deref() == Some(q)
                    || fi.is_some_and(|fi| fi.stem == q)
                    || f.mod_path.rsplit("::").next() == Some(q).filter(|_| !f.mod_path.is_empty())
                    || fi.is_some_and(|fi| fi.crate_ident.as_deref() == Some(q))
            })
            .collect();
    }
    // Bare call: free functions only (an associated fn needs a qualified
    // path). Prefer same file, then same crate, then a globally unique
    // free fn; ambiguity resolves to nothing.
    let free: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&id| g.fns[id].impl_name.is_none())
        .collect();
    let same_file: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&id| g.fns[id].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let caller_crate = caller_file.and_then(|fi| fi.crate_dir.as_deref());
    let same_crate: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&id| {
            caller_crate.is_some()
                && g.file_of(id).and_then(|fi| fi.crate_dir.as_deref()) == caller_crate
        })
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    if free.len() == 1 {
        return free;
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        let lexed: Vec<(String, Vec<Tok>)> = files
            .iter()
            .map(|(rel, src)| ((*rel).to_owned(), lex(src).toks))
            .collect();
        build(&lexed)
    }

    fn callee_names(g: &Graph, caller: &str) -> Vec<String> {
        let id = g.fns.iter().position(|f| f.name == caller).unwrap();
        g.resolved[id]
            .iter()
            .flatten()
            .map(|&c| g.fns[c].display())
            .collect()
    }

    #[test]
    fn cross_file_qualified_resolution() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() { helper::go(); std::mem::forget(1); }",
            ),
            (
                "crates/a/src/helper.rs",
                "pub fn go() { local(); } fn local() {}",
            ),
        ]);
        assert_eq!(callee_names(&g, "entry"), vec!["go"]);
        assert_eq!(callee_names(&g, "go"), vec!["local"]);
    }

    #[test]
    fn std_methods_do_not_resolve() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "impl Thing { pub fn clone(&self) {} } fn f(t: Thing) { t.clone(); }",
        )]);
        assert!(callee_names(&g, "f").is_empty());
    }

    #[test]
    fn method_union_over_impls() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "impl A { fn probe(&self) {} } impl B { fn probe(&self) {} } fn f(x: A) { x.probe(); }",
        )]);
        assert_eq!(callee_names(&g, "f"), vec!["A::probe", "B::probe"]);
    }

    #[test]
    fn bare_call_prefers_same_file_then_same_crate() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "fn shared() {} pub fn f() { shared(); }",
            ),
            ("crates/b/src/lib.rs", "pub fn shared() {}"),
        ]);
        assert_eq!(callee_names(&g, "f"), vec!["shared"]);
        let id = g.fns.iter().position(|f| f.name == "f").unwrap();
        let cand = g.resolved[id][0][0];
        assert_eq!(g.fns[cand].file, g.fns[id].file);
    }

    #[test]
    fn unmatched_qualifier_resolves_to_nothing() {
        let g = graph_of(&[
            ("crates/a/src/lib.rs", "pub fn f() { elsewhere::go(); }"),
            ("crates/b/src/other.rs", "pub fn go() {}"),
        ]);
        assert!(callee_names(&g, "f").is_empty());
    }

    #[test]
    fn crate_ident_resolution() {
        let g = graph_of(&[
            ("crates/a/src/lib.rs", "pub fn f() { cdb_b::go(); }"),
            ("crates/b/src/lib.rs", "pub fn go() {}"),
        ]);
        assert_eq!(callee_names(&g, "f"), vec!["go"]);
    }
}
