//! Interprocedural reachability passes: panic surface (`panic-reach`) and
//! float/determinism taint (`float-taint`, `determinism-taint`).
//!
//! All three walk the call graph of [`crate::graph`]:
//!
//! * **panic-reach** propagates the rule-P panic sites backwards through
//!   callers and reports every *public* library function that can reach an
//!   unjustified panic site it does not itself contain — the per-file rule
//!   already reports direct sites. Allow-justified sites (a written
//!   invariant) do not propagate. Candidate sets combine by **union**:
//!   for a must-not-happen property the over-approximation is the safe
//!   direction.
//! * **float-taint** closes the laundering hole in rule F: a confined file
//!   that never names `f64` can still call a helper whose *signature*
//!   carries one (`let x = a.to_f64();`). Any call site in float-confined
//!   code whose candidates **all** have a float-carrying signature is
//!   reported. Unanimity, not union: when `recv.eval(…)` may be the exact
//!   `MPoly::eval` or the approximate `AnalyticFn::eval`, the exact
//!   candidate clears the call — taint wants precision over recall.
//! * **determinism-taint** extends rule D across crate boundaries: a
//!   function outside the determinism scope whose body uses
//!   `HashMap`/`Instant`/`Relaxed` taints its transitive callers (through
//!   out-of-scope code, unanimity again), and any call to a tainted
//!   function *from* determinism-scoped code is reported. A source can be
//!   sanctioned with `allow(determinism-taint)` on its definition (e.g.
//!   stats-only counters that never reach result bytes).

use crate::graph::Graph;
use crate::lexer::{Tok, TokKind};
use crate::rules;
use crate::{allowed_line, allowed_span, AllowDirective, Diagnostic, FileClass, Rule};
use std::collections::BTreeMap;

/// End line of a token range, falling back to `fallback` for empty ranges.
fn range_end_line(toks: &[Tok], range: (usize, usize), fallback: u32) -> u32 {
    toks.get(range.0..range.1)
        .and_then(|w| w.last())
        .map_or(fallback, |t| t.line)
}

/// Breadth-first search from `start` to the nearest function satisfying
/// `hit`, moving only through functions satisfying `keep`. Candidate order
/// is deterministic (ids ascend within each call, calls in source order).
fn nearest(
    g: &Graph,
    start: usize,
    hit: &dyn Fn(usize) -> bool,
    keep: &dyn Fn(usize) -> bool,
) -> Option<usize> {
    let mut visited = vec![false; g.fns.len()];
    let mut queue = vec![start];
    let mut qi = 0usize;
    if let Some(v) = visited.get_mut(start) {
        *v = true;
    }
    while qi < queue.len() {
        let cur = *queue.get(qi)?;
        qi += 1;
        for cands in g.resolved.get(cur)? {
            for &c in cands {
                if visited.get(c).copied().unwrap_or(true) {
                    continue;
                }
                if let Some(v) = visited.get_mut(c) {
                    *v = true;
                }
                if hit(c) {
                    return Some(c);
                }
                if keep(c) {
                    queue.push(c);
                }
            }
        }
    }
    None
}

/// The panic-reachability pass. Returns the diagnostics and the per-crate
/// public panic surface (public fns that can reach *any* panic site,
/// justified or not — the report's observability number).
pub(crate) fn panic_reach(
    g: &Graph,
    toks: &[Vec<Tok>],
    classes: &[FileClass],
    allows: &[Vec<AllowDirective>],
) -> (Vec<Diagnostic>, BTreeMap<String, usize>) {
    let nf = g.fns.len();
    let file_sites: Vec<Vec<rules::PanicSite>> =
        toks.iter().map(|t| rules::panic_sites(t)).collect();
    let mut direct_all = vec![false; nf];
    let mut direct_live = vec![false; nf]; // unjustified direct site
    let mut site_kind: Vec<Option<&'static str>> = vec![None; nf];
    for (fid, f) in g.fns.iter().enumerate() {
        if f.body.1 <= f.body.0 || !classes.get(f.file).is_some_and(|c| c.panic) {
            continue;
        }
        let (Some(sites), Some(fallows)) = (file_sites.get(f.file), allows.get(f.file)) else {
            continue;
        };
        for site in sites {
            if site.tok < f.body.0 || site.tok >= f.body.1 {
                continue;
            }
            if let Some(d) = direct_all.get_mut(fid) {
                *d = true;
            }
            if !allowed_line(fallows, Rule::Panic, site.line) {
                if let Some(d) = direct_live.get_mut(fid) {
                    *d = true;
                }
                if let Some(k) = site_kind.get_mut(fid) {
                    k.get_or_insert(site.what);
                }
            }
        }
    }
    let reach_live = propagate_union(g, &direct_live);
    let reach_all = propagate_union(g, &direct_all);

    let mut diags = Vec::new();
    let mut surface: BTreeMap<String, usize> = BTreeMap::new();
    for (fid, f) in g.fns.iter().enumerate() {
        if !f.is_pub || !classes.get(f.file).is_some_and(|c| c.panic) {
            continue;
        }
        if reach_all.get(fid).copied().unwrap_or(false) {
            let key = g
                .files
                .get(f.file)
                .and_then(|fi| fi.crate_dir.clone())
                .unwrap_or_else(|| "root".to_owned());
            *surface.entry(key).or_insert(0) += 1;
        }
        if direct_live.get(fid).copied().unwrap_or(false)
            || !reach_live.get(fid).copied().unwrap_or(false)
        {
            continue;
        }
        let seed = nearest(
            g,
            fid,
            &|c| direct_live.get(c).copied().unwrap_or(false),
            &|c| reach_live.get(c).copied().unwrap_or(false),
        );
        let Some(seed) = seed else { continue };
        let (Some(seed_fn), Some(seed_file)) = (g.fns.get(seed), g.file_of(seed)) else {
            continue;
        };
        let kind = site_kind.get(seed).and_then(|k| *k).unwrap_or("panic");
        let verb = match kind {
            "unwrap" | "expect" => format!("may `.{kind}()`"),
            "index" => "indexes with a constant subscript".to_owned(),
            bang => format!("may `{bang}`"),
        };
        diags.push(Diagnostic {
            file: g
                .files
                .get(f.file)
                .map(|fi| fi.rel.clone())
                .unwrap_or_default(),
            line: f.line,
            col: f.col,
            rule: "panic-reach",
            message: format!(
                "public fn `{}` can transitively reach a panic site: `{}` ({}) {}; \
                 surface a typed error on the path or justify the invariant with an allow",
                f.display(),
                seed_fn.display(),
                seed_file.rel,
                verb
            ),
        });
    }
    (diags, surface)
}

/// Union-propagate a seed predicate backwards over the call graph to a
/// fixpoint: a function holds if it seeds or any candidate of any of its
/// calls holds.
fn propagate_union(g: &Graph, seed: &[bool]) -> Vec<bool> {
    let mut reach = seed.to_vec();
    loop {
        let mut changed = false;
        for f in 0..g.fns.len() {
            if reach.get(f).copied().unwrap_or(false) {
                continue;
            }
            let hit = g.resolved.get(f).is_some_and(|calls| {
                calls.iter().any(|cands| {
                    cands
                        .iter()
                        .any(|&c| reach.get(c).copied().unwrap_or(false))
                })
            });
            if hit {
                if let Some(r) = reach.get_mut(f) {
                    *r = true;
                }
                changed = true;
            }
        }
        if !changed {
            return reach;
        }
    }
}

/// The float-taint pass: report calls from float-confined code whose
/// candidates all carry `f64`/`f32` in their signatures.
pub(crate) fn float_taint(
    g: &Graph,
    toks: &[Vec<Tok>],
    classes: &[FileClass],
    allows: &[Vec<AllowDirective>],
) -> Vec<Diagnostic> {
    let nf = g.fns.len();
    let mut sig_float = vec![false; nf];
    let mut tainted = vec![false; nf];
    for (fid, f) in g.fns.iter().enumerate() {
        let Some(ft) = toks.get(f.file) else { continue };
        let has = ft
            .get(f.sig.0..f.sig.1)
            .unwrap_or(&[])
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "f64" || s == "f32"));
        if let Some(s) = sig_float.get_mut(fid) {
            *s = has;
        }
        if has {
            let sanctioned = allows.get(f.file).is_some_and(|fa| {
                allowed_span(
                    fa,
                    Rule::FloatTaint,
                    f.line,
                    range_end_line(ft, f.sig, f.line),
                )
            });
            if let Some(t) = tainted.get_mut(fid) {
                *t = !sanctioned;
            }
        }
    }
    let mut diags = Vec::new();
    for (fid, f) in g.fns.iter().enumerate() {
        // Callers that themselves declare floats are rule F's business
        // (they carry an allow or are outside the confined zone). A file
        // under `allow-file(float)` is a declared float zone — laundering
        // a float *into* it is moot, so taint findings are skipped too.
        if !classes.get(f.file).is_some_and(|c| c.float)
            || sig_float.get(fid).copied().unwrap_or(false)
        {
            continue;
        }
        let file_is_float_zone = allows.get(f.file).is_some_and(|fa| {
            fa.iter().any(|a| {
                a.target_line.is_none() && a.rules.contains(&Rule::Float) && {
                    a.used.set(true);
                    true
                }
            })
        });
        if file_is_float_zone {
            continue;
        }
        let Some(calls) = g.resolved.get(fid) else {
            continue;
        };
        for (ci, cands) in calls.iter().enumerate() {
            if cands.is_empty()
                || !cands
                    .iter()
                    .all(|&c| tainted.get(c).copied().unwrap_or(false))
            {
                continue;
            }
            let Some(call) = f.calls.get(ci) else {
                continue;
            };
            let callee_file = cands
                .first()
                .and_then(|&c| g.file_of(c))
                .map(|fi| fi.rel.clone())
                .unwrap_or_default();
            diags.push(Diagnostic {
                file: g
                    .files
                    .get(f.file)
                    .map(|fi| fi.rel.clone())
                    .unwrap_or_default(),
                line: call.line,
                col: call.col,
                rule: "float-taint",
                message: format!(
                    "call to `{}` ({callee_file}) whose signature carries `f64`/`f32`: the \
                     result launders a float past the FIntv boundary (Thm 4.3); keep the \
                     value behind `FIntv`/`Rat`, or justify with an allow",
                    call.name
                ),
            });
        }
    }
    diags
}

/// The determinism-taint pass: report calls from determinism-scoped code
/// that can reach a nondeterminism site in out-of-scope code.
pub(crate) fn determinism_taint(
    g: &Graph,
    toks: &[Vec<Tok>],
    classes: &[FileClass],
    allows: &[Vec<AllowDirective>],
) -> Vec<Diagnostic> {
    let nf = g.fns.len();
    let file_sites: Vec<Vec<rules::DetSite>> =
        toks.iter().map(|t| rules::determinism_sites(t)).collect();
    let mut source = vec![false; nf];
    // A definition-site allow vouches for the fn's *result*: it clears the
    // fn as a source and blocks taint from flowing through it (barrier).
    let mut sanctioned = vec![false; nf];
    let mut what: Vec<Option<&'static str>> = vec![None; nf];
    for (fid, f) in g.fns.iter().enumerate() {
        // In-scope files are rule D's business (direct findings).
        if classes.get(f.file).is_some_and(|c| c.determinism) || f.body.1 <= f.body.0 {
            continue;
        }
        let (Some(sites), Some(ft)) = (file_sites.get(f.file), toks.get(f.file)) else {
            continue;
        };
        let in_body: Vec<&rules::DetSite> = sites
            .iter()
            .filter(|s| s.tok >= f.body.0 && s.tok < f.body.1)
            .collect();
        if in_body.is_empty() {
            continue;
        }
        if allows.get(f.file).is_some_and(|fa| {
            allowed_span(
                fa,
                Rule::DeterminismTaint,
                f.line,
                range_end_line(ft, f.body, f.line),
            )
        }) {
            if let Some(s) = sanctioned.get_mut(fid) {
                *s = true;
            }
            continue;
        }
        if let Some(s) = source.get_mut(fid) {
            *s = true;
        }
        if let (Some(w), Some(first)) = (what.get_mut(fid), in_body.first()) {
            w.get_or_insert(first.what);
        }
    }
    // Unanimity propagation through out-of-scope code.
    let mut tainted = source.clone();
    loop {
        let mut changed = false;
        for (fid, f) in g.fns.iter().enumerate() {
            if tainted.get(fid).copied().unwrap_or(false)
                || sanctioned.get(fid).copied().unwrap_or(false)
                || classes.get(f.file).is_some_and(|c| c.determinism)
            {
                continue;
            }
            let hit = g.resolved.get(fid).is_some_and(|calls| {
                calls.iter().any(|cands| {
                    !cands.is_empty()
                        && cands
                            .iter()
                            .all(|&c| tainted.get(c).copied().unwrap_or(false))
                })
            });
            if hit {
                if let Some(t) = tainted.get_mut(fid) {
                    *t = true;
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut diags = Vec::new();
    for (fid, f) in g.fns.iter().enumerate() {
        if !classes.get(f.file).is_some_and(|c| c.determinism) {
            continue;
        }
        let Some(calls) = g.resolved.get(fid) else {
            continue;
        };
        for (ci, cands) in calls.iter().enumerate() {
            if cands.is_empty()
                || !cands
                    .iter()
                    .all(|&c| tainted.get(c).copied().unwrap_or(false))
            {
                continue;
            }
            let Some(call) = f.calls.get(ci) else {
                continue;
            };
            let src = cands.first().and_then(|&c0| {
                if source.get(c0).copied().unwrap_or(false) {
                    Some(c0)
                } else {
                    nearest(g, c0, &|c| source.get(c).copied().unwrap_or(false), &|c| {
                        tainted.get(c).copied().unwrap_or(false)
                    })
                }
            });
            let (src_name, src_file, src_what) = match src {
                Some(s) => (
                    g.fns.get(s).map(|f| f.display()).unwrap_or_default(),
                    g.file_of(s).map(|fi| fi.rel.clone()).unwrap_or_default(),
                    what.get(s).and_then(|w| *w).unwrap_or("HashMap"),
                ),
                None => (call.name.clone(), String::new(), "HashMap"),
            };
            diags.push(Diagnostic {
                file: g
                    .files
                    .get(f.file)
                    .map(|fi| fi.rel.clone())
                    .unwrap_or_default(),
                line: call.line,
                col: call.col,
                rule: "determinism-taint",
                message: format!(
                    "call to `{}` can reach nondeterministic `{src_what}` in `{src_name}` \
                     ({src_file}): result-producing code must stay deterministic; use ordered \
                     containers/`SeqCst` there or justify with an allow",
                    call.name
                ),
            });
        }
    }
    diags
}
