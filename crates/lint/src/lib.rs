#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! `cdb-lint`: the workspace invariant checker.
//!
//! The QE pipeline's correctness story (`⊨_QE^F`, Thms 4.1–4.3) depends on
//! invariants that rustc cannot see: floats may enter only through the
//! outward-rounded `FIntv` boundary, result-producing modules must be
//! deterministic for every worker count, library crates must surface typed
//! errors instead of panicking, and lock acquisition must stay flat. This
//! crate tokenizes every non-test `.rs` file in the workspace (handwritten
//! lexer — no dependencies) and enforces four per-file rule families:
//!
//! | id            | family            | guards                               |
//! |---------------|-------------------|--------------------------------------|
//! | `float`       | float confinement | Thm 4.3 split-word boundary          |
//! | `determinism` | determinism       | byte-identical parallel merges       |
//! | `panic`       | panic surface     | typed-error robustness               |
//! | `lock`        | lock discipline   | deadlock-freedom of the fan-out      |
//!
//! On top of the per-file scan, a lightweight item parser ([`items`]) and a
//! symbol-resolved workspace call graph ([`graph`]) drive three
//! interprocedural passes (DESIGN.md §9):
//!
//! | id                  | pass              | guards                          |
//! |---------------------|-------------------|---------------------------------|
//! | `lock-order`        | lock-order cycles | global acquisition order        |
//! | `panic-reach`       | panic reach       | public API panic surface        |
//! | `float-taint`       | float taint       | laundering past the boundary    |
//! | `determinism-taint` | determinism taint | cross-crate nondeterminism      |
//!
//! Every rule has a machine-readable escape hatch:
//!
//! ```text
//! // cdb-lint: allow(<rule>) — <reason>        (this line or the next)
//! // cdb-lint: allow-file(<rule>) — <reason>   (whole file)
//! ```
//!
//! A directive without a written reason is itself a diagnostic, as is an
//! allow that suppresses nothing (`unused-allow`) — annotations cannot rot
//! silently in either direction. Accepted findings live in the committed
//! `lint_baseline.json` ratchet (see [`baseline`]): new findings fail CI,
//! stale baseline entries fail CI too.

pub mod baseline;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod locks;
mod reach;
pub mod rules;

use lexer::{lex, Comment, Tok, TokKind};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The rule families (plus directive hygiene, which is not suppressible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// F: float confinement to the `FIntv` boundary.
    Float,
    /// D: determinism of result-producing modules.
    Determinism,
    /// P: panic surface of library crates.
    Panic,
    /// L: lock discipline.
    Lock,
    /// Interprocedural: cycles in the lock-acquisition order.
    LockOrder,
    /// Interprocedural: public fns that can transitively panic.
    PanicReach,
    /// Interprocedural: confined code calling float-signature functions.
    FloatTaint,
    /// Interprocedural: determinism-scoped code reaching nondeterminism.
    DeterminismTaint,
}

impl Rule {
    /// Every rule family with its id and one-line summary — the single
    /// source of truth for [`Rule::from_id`], directive error text, and
    /// the CLI help.
    pub const ALL: &'static [(Rule, &'static str, &'static str)] = &[
        (
            Rule::Float,
            "float",
            "f64/f32 or float literals outside the FIntv boundary",
        ),
        (
            Rule::Determinism,
            "determinism",
            "HashMap/HashSet, Instant/SystemTime, Ordering::Relaxed in result-producing code",
        ),
        (
            Rule::Panic,
            "panic",
            "unwrap/expect/panic!-family/constant-subscript indexing in library code",
        ),
        (
            Rule::Lock,
            "lock",
            "nested .lock() in one statement; guards live across the parallel fan-out",
        ),
        (
            Rule::LockOrder,
            "lock-order",
            "cycle in the interprocedural lock-acquisition-order graph",
        ),
        (
            Rule::PanicReach,
            "panic-reach",
            "public fn can transitively reach an unjustified panic site",
        ),
        (
            Rule::FloatTaint,
            "float-taint",
            "float-confined code calls a fn whose signature carries f64/f32",
        ),
        (
            Rule::DeterminismTaint,
            "determinism-taint",
            "determinism-scoped code can reach a nondeterministic source",
        ),
    ];

    /// The machine-readable rule id used in directives and diagnostics.
    pub fn id(self) -> &'static str {
        Rule::ALL
            .iter()
            .find(|(r, _, _)| *r == self)
            .map(|(_, id, _)| *id)
            .unwrap_or("unknown")
    }

    /// Parse a rule id.
    pub fn from_id(s: &str) -> Option<Rule> {
        Rule::ALL
            .iter()
            .find(|(_, id, _)| *id == s)
            .map(|(r, _, _)| *r)
    }

    /// Comma-separated list of every rule id (for error messages and help).
    pub fn id_list() -> String {
        let ids: Vec<&str> = Rule::ALL.iter().map(|(_, id, _)| *id).collect();
        ids.join(", ")
    }
}

/// One finding, keyed by workspace-relative path and 1-based position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id (`float`, `lock-order`, …, `directive`, `unused-allow`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Which rule families apply to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy)]
pub struct FileClass {
    /// Rule F applies (everywhere except the FIntv boundary and `cdb-fp`).
    pub float: bool,
    /// Rule D applies (result-producing crates: qe, datalog, calcf, agg).
    pub determinism: bool,
    /// Rule P applies (library code; binaries may panic on startup).
    pub panic: bool,
    /// Rule L applies (everywhere).
    pub lock: bool,
}

/// Classify a workspace-relative path (`/`-separated).
pub fn classify(rel: &str) -> FileClass {
    let is_bin = rel.contains("/src/bin/") || rel.ends_with("/main.rs");
    FileClass {
        float: rel != "crates/num/src/fintv.rs" && !rel.starts_with("crates/fp/"),
        determinism: [
            "crates/qe/",
            "crates/datalog/",
            "crates/calcf/",
            "crates/agg/",
        ]
        .iter()
        .any(|p| rel.starts_with(p))
            // The modular-arithmetic substrate of the resultant kernels
            // (DESIGN.md §11) produces result bytes directly (CRT residues
            // become polynomial coefficients), so it answers to the same
            // determinism bar as the result-producing crates: u64 modular
            // arithmetic is fine, HashMap/Relaxed/wall-clocks are not.
            || rel == "crates/num/src/modp.rs"
            // The update path (DESIGN.md §12) decides *which* units re-run
            // and in what order from dependency sets; iteration order over
            // those sets becomes evaluation order, so both modules answer
            // to the determinism bar (BTree containers, no wall-clocks).
            || rel == "crates/core/src/deps.rs"
            || rel == "crates/core/src/update.rs"
            // The serving layer (DESIGN.md §13) promises byte-identical
            // results across batch compositions, worker counts, and
            // session interleavings; nothing order- or clock-dependent
            // may sit on its result paths, and the session loop must
            // never panic out from under a queued request.
            || rel.starts_with("crates/server/"),
        panic: !is_bin,
        lock: true,
    }
}

/// Directory names never scanned: build output, VCS, vendored dev shims,
/// test/bench/example code (rule families target library code; fixtures
/// under `tests/` are the linter's own corpus).
const SKIP_DIRS: &[&str] = &[
    "target", ".git", "devshim", "tests", "benches", "examples", "fixtures",
];

/// Path prefixes never scanned (bench code is an allowed float zone and is
/// not part of the library panic surface).
const SKIP_PREFIXES: &[&str] = &["crates/bench/"];

/// An allow directive parsed from a comment.
#[derive(Debug)]
pub(crate) struct AllowDirective {
    pub(crate) rules: Vec<Rule>,
    /// None = file scope.
    pub(crate) target_line: Option<u32>,
    /// Line the directive itself is on (for unused-allow reporting).
    pub(crate) at_line: u32,
    pub(crate) used: std::cell::Cell<bool>,
}

/// Whether an allow directive covers `rule` at exactly `line` (or the
/// whole file). Marks the directive used.
pub(crate) fn allowed_line(allows: &[AllowDirective], rule: Rule, line: u32) -> bool {
    allows.iter().any(|a| {
        a.rules.contains(&rule)
            && match a.target_line {
                None => true,
                Some(t) => t == line,
            }
            && {
                a.used.set(true);
                true
            }
    })
}

/// Whether an allow directive covers `rule` anywhere in `[lo, hi]` (or the
/// whole file) — used to sanction a *definition* (a fn signature or body
/// span) rather than a single call site. Marks the directive used.
pub(crate) fn allowed_span(allows: &[AllowDirective], rule: Rule, lo: u32, hi: u32) -> bool {
    allows.iter().any(|a| {
        a.rules.contains(&rule)
            && match a.target_line {
                None => true,
                Some(t) => t >= lo && t <= hi,
            }
            && {
                a.used.set(true);
                true
            }
    })
}

/// Per-file analysis state threaded into the interprocedural passes.
struct FileCtx {
    rel: String,
    class: FileClass,
    toks: Vec<Tok>,
    allows: Vec<AllowDirective>,
    diags: Vec<Diagnostic>,
}

/// Run the per-file stage on one file: lex, strip test scopes, parse
/// directives, evaluate the per-file rule families through the allows.
/// The unused-allow sweep runs later, after the interprocedural passes
/// have had their chance to use each directive.
fn file_stage(rel: &str, src: &str) -> FileCtx {
    let class = classify(rel);
    let lexed = lex(src);
    let (toks, skipped) = strip_test_scopes(&lexed.toks);

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut allows: Vec<AllowDirective> = Vec::new();
    for c in &lexed.comments {
        if skipped.iter().any(|&(lo, hi)| c.line >= lo && c.line <= hi) {
            continue;
        }
        parse_directive(rel, c, &toks, &mut allows, &mut diags);
    }

    let raw = rules::check(&toks, class);
    for d in raw {
        let suppressed = Rule::from_id(d.rule).is_some_and(|r| allowed_line(&allows, r, d.line));
        if !suppressed {
            diags.push(Diagnostic {
                file: rel.to_owned(),
                line: d.line,
                col: d.col,
                rule: d.rule,
                message: d.message,
            });
        }
    }

    FileCtx {
        rel: rel.to_owned(),
        class,
        toks,
        allows,
        diags,
    }
}

/// Lint a set of files as one unit: the per-file rule families plus the
/// call-graph passes (lock order, panic reachability, float/determinism
/// taint). `files` is `(workspace-relative path, source)`.
pub fn lint_files(files: &[(String, String)]) -> Report {
    let mut inputs: Vec<&(String, String)> = files.iter().collect();
    inputs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut ctxs: Vec<FileCtx> = inputs
        .iter()
        .map(|(rel, src)| file_stage(rel, src))
        .collect();

    // The call graph and the interprocedural passes see the same
    // test-stripped token streams the per-file rules saw, in the same
    // (path-sorted) file order, so file indices line up everywhere.
    let graph_files: Vec<(String, Vec<Tok>)> = ctxs
        .iter()
        .map(|c| (c.rel.clone(), c.toks.clone()))
        .collect();
    let g = graph::build(&graph_files);
    let toks: Vec<Vec<Tok>> = graph_files.into_iter().map(|(_, t)| t).collect();
    let classes: Vec<FileClass> = ctxs.iter().map(|c| c.class).collect();
    let allows: Vec<Vec<AllowDirective>> = ctxs
        .iter_mut()
        .map(|c| std::mem::take(&mut c.allows))
        .collect();

    let lock = locks::analyze(&g, &toks);
    let (pr_diags, panic_surface) = reach::panic_reach(&g, &toks, &classes, &allows);
    let ft_diags = reach::float_taint(&g, &toks, &classes, &allows);
    let dt_diags = reach::determinism_taint(&g, &toks, &classes, &allows);

    let file_index: BTreeMap<&str, usize> = ctxs
        .iter()
        .enumerate()
        .map(|(i, c)| (c.rel.as_str(), i))
        .collect();

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for c in &ctxs {
        diagnostics.extend(c.diags.iter().cloned());
    }
    for d in lock
        .diags
        .iter()
        .chain(pr_diags.iter())
        .chain(ft_diags.iter())
        .chain(dt_diags.iter())
    {
        let suppressed = Rule::from_id(d.rule).is_some_and(|r| {
            file_index
                .get(d.file.as_str())
                .and_then(|&i| allows.get(i))
                .is_some_and(|a| allowed_line(a, r, d.line))
        });
        if !suppressed {
            diagnostics.push(d.clone());
        }
    }
    for (c, file_allows) in ctxs.iter().zip(&allows) {
        for a in file_allows {
            if !a.used.get() {
                diagnostics.push(Diagnostic {
                    file: c.rel.clone(),
                    line: a.at_line,
                    col: 1,
                    rule: "unused-allow",
                    message: "allow directive suppresses nothing; remove it".to_owned(),
                });
            }
        }
    }
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });

    Report {
        diagnostics,
        files_scanned: ctxs.len(),
        functions: g.fns.len(),
        call_edges: g.edge_count(),
        lock_edges: lock.edges,
        panic_surface,
    }
}

/// Lint one file given its workspace-relative path and contents (a
/// single-file view of [`lint_files`]). Exposed for the fixture tests.
pub fn lint_file(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    lint_files(&[(rel_path.to_owned(), src.to_owned())]).diagnostics
}

/// Parse a `cdb-lint:` directive out of one comment, if present.
fn parse_directive(
    rel: &str,
    c: &Comment,
    toks: &[Tok],
    allows: &mut Vec<AllowDirective>,
    diags: &mut Vec<Diagnostic>,
) {
    let text = c.text.trim_start_matches(['/', '!']).trim();
    let Some(rest) = text.strip_prefix("cdb-lint:") else {
        return;
    };
    let rest = rest.trim();
    let mut bad = |msg: String| {
        diags.push(Diagnostic {
            file: rel.to_owned(),
            line: c.line,
            col: c.col,
            rule: "directive",
            message: msg,
        });
    };
    let (file_scope, body) = if let Some(b) = rest.strip_prefix("allow-file(") {
        (true, b)
    } else if let Some(b) = rest.strip_prefix("allow(") {
        (false, b)
    } else {
        bad(format!("unknown cdb-lint directive: `{rest}`"));
        return;
    };
    let Some(close) = body.find(')') else {
        bad("unterminated rule list in allow directive".to_owned());
        return;
    };
    let mut rules_list = Vec::new();
    for name in body[..close].split(',') {
        let name = name.trim();
        match Rule::from_id(name) {
            Some(r) => rules_list.push(r),
            None => {
                bad(format!(
                    "unknown rule `{name}` (expected one of: {})",
                    Rule::id_list()
                ));
                return;
            }
        }
    }
    if rules_list.is_empty() {
        bad("empty rule list in allow directive".to_owned());
        return;
    }
    // Reason: everything after the `)`, stripped of a dash separator.
    let reason = body[close + 1..]
        .trim()
        .trim_start_matches(['—', '–', '-'])
        .trim();
    if reason.is_empty() {
        bad("allow directive without a written reason (use `— <why>`)".to_owned());
        return;
    }
    let target_line = if file_scope {
        None
    } else if c.has_code_before {
        Some(c.line)
    } else {
        // The next line bearing a code token.
        toks.iter().map(|t| t.line).find(|&l| l > c.line)
    };
    if !file_scope && target_line.is_none() {
        bad("allow directive with no following code line".to_owned());
        return;
    }
    allows.push(AllowDirective {
        rules: rules_list,
        target_line,
        at_line: c.line,
        used: std::cell::Cell::new(false),
    });
}

/// Drop tokens inside `#[cfg(test)]` items and `mod tests { … }` blocks.
/// Returns the surviving tokens and the skipped line ranges (inclusive), so
/// directives inside test code are ignored too.
fn strip_test_scopes(toks: &[Tok]) -> (Vec<Tok>, Vec<(u32, u32)>) {
    let mut out = Vec::with_capacity(toks.len());
    let mut skipped = Vec::new();
    let mut i = 0usize;
    let n = toks.len();
    let ident =
        |t: Option<&Tok>, w: &str| matches!(t, Some(Tok { kind: TokKind::Ident(s), .. }) if s == w);
    let punct = |t: Option<&Tok>, c: char| matches!(t, Some(Tok { kind: TokKind::Punct(p), .. }) if *p == c);
    while i < n {
        // `#[...]` outer attribute: scan it; if it is a cfg(test)-style
        // attribute, skip the attributed item (including stacked attrs).
        if punct(toks.get(i), '#') && punct(toks.get(i + 1), '[') {
            let (attr_end, is_test) = scan_attr(toks, i);
            if is_test {
                let start_line = toks[i].line;
                let mut j = attr_end;
                // Skip any further attributes on the same item.
                while punct(toks.get(j), '#') && punct(toks.get(j + 1), '[') {
                    let (e, _) = scan_attr(toks, j);
                    j = e;
                }
                let end = skip_item(toks, j);
                let end_line = toks
                    .get(end.saturating_sub(1))
                    .map_or(start_line, |t| t.line);
                skipped.push((start_line, end_line));
                i = end;
                continue;
            }
            // Keep the attribute tokens.
            for t in toks.get(i..attr_end).unwrap_or(&[]) {
                out.push(t.clone());
            }
            i = attr_end;
            continue;
        }
        // `mod tests {` / `mod test {` without an attribute.
        if ident(toks.get(i), "mod")
            && (ident(toks.get(i + 1), "tests") || ident(toks.get(i + 1), "test"))
            && punct(toks.get(i + 2), '{')
        {
            let start_line = toks[i].line;
            let end = skip_item(toks, i);
            let end_line = toks
                .get(end.saturating_sub(1))
                .map_or(start_line, |t| t.line);
            skipped.push((start_line, end_line));
            i = end;
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    (out, skipped)
}

/// Scan the attribute starting at `i` (`#` `[` …). Returns the index one
/// past the closing `]` and whether the attribute mentions `cfg` + `test`
/// (covers `#[cfg(test)]` and `#[cfg(any(test, …))]`).
fn scan_attr(toks: &[Tok], i: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut j = i + 1;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, saw_cfg && saw_test && !saw_not);
                }
            }
            TokKind::Ident(s) if s == "cfg" => saw_cfg = true,
            TokKind::Ident(s) if s == "test" => saw_test = true,
            TokKind::Ident(s) if s == "not" => saw_not = true,
            _ => {}
        }
        j += 1;
    }
    (toks.len(), false)
}

/// Skip one item starting at `i`: to the `;` closing a bodyless item, or to
/// the `}` matching its first `{`.
fn skip_item(toks: &[Tok], i: usize) -> usize {
    let mut j = i;
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            TokKind::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// A whole-tree lint report.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `fn` items in the call graph.
    pub functions: usize,
    /// Number of resolved call edges (candidate pairs).
    pub call_edges: usize,
    /// The lock-acquisition-order edges (for the JSON report).
    pub lock_edges: Vec<locks::LockEdge>,
    /// Per-crate count of public fns that can reach any panic site.
    pub panic_surface: BTreeMap<String, usize>,
}

impl Report {
    /// Render the machine-readable JSON report. `baselined` marks, aligned
    /// with `diagnostics`, which findings the baseline accepts; `stale` is
    /// the list of baseline entries nothing matched. Output is
    /// byte-stable for a given tree (sorted maps, no timestamps).
    pub fn to_json(&self, baselined: &[bool], stale: &[baseline::Entry]) -> String {
        use baseline::escape;
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"functions\": {},\n", self.functions));
        out.push_str(&format!("  \"call_edges\": {},\n", self.call_edges));
        out.push_str("  \"lock_order_edges\": [\n");
        for (i, e) in self.lock_edges.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"from\": \"{}\", \"to\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"via\": \"{}\" }}{}\n",
                escape(&e.from),
                escape(&e.to),
                escape(&e.file),
                e.line,
                escape(&e.via),
                if i + 1 == self.lock_edges.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"panic_surface\": {");
        for (i, (k, v)) in self.panic_surface.iter().enumerate() {
            out.push_str(&format!(
                "{} \"{}\": {}",
                if i == 0 { "" } else { "," },
                escape(k),
                v
            ));
        }
        out.push_str(" },\n");
        out.push_str("  \"findings\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let b = baselined.get(i).copied().unwrap_or(false);
            out.push_str(&format!(
                "    {{ \"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
                 \"message\": \"{}\", \"baselined\": {} }}{}\n",
                escape(&d.file),
                d.line,
                d.col,
                escape(d.rule),
                escape(&d.message),
                b,
                if i + 1 == self.diagnostics.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"stale_baseline\": [\n");
        for (i, e) in stale.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"file\": \"{}\", \"rule\": \"{}\", \"message\": \"{}\" }}{}\n",
                escape(&e.file),
                escape(&e.rule),
                escape(&e.message),
                if i + 1 == stale.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        let matched = baselined.iter().filter(|&&b| b).count();
        out.push_str(&format!(
            "  \"summary\": {{ \"new\": {}, \"baselined\": {}, \"stale\": {} }}\n",
            self.diagnostics.len() - matched,
            matched,
            stale.len()
        ));
        out.push_str("}\n");
        out
    }

    /// The diagnostics as baseline entries (for ratcheting/writing).
    pub fn entries(&self) -> Vec<baseline::Entry> {
        self.diagnostics
            .iter()
            .map(|d| baseline::Entry {
                file: d.file.clone(),
                rule: d.rule.to_owned(),
                message: d.message.clone(),
            })
            .collect()
    }
}

/// Lint every non-test `.rs` file under `root`.
pub fn run_root(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut inputs: Vec<(String, String)> = Vec::with_capacity(files.len());
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .unwrap_or_default();
        inputs.push((rel_str, src));
    }
    Ok(lint_files(&inputs))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if SKIP_PREFIXES
                .iter()
                .any(|p| format!("{rel_str}/").starts_with(p))
            {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Find the enclosing workspace root: the nearest ancestor of `start`
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}
