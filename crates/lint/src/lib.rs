#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! `cdb-lint`: the workspace invariant checker.
//!
//! The QE pipeline's correctness story (`⊨_QE^F`, Thms 4.1–4.3) depends on
//! invariants that rustc cannot see: floats may enter only through the
//! outward-rounded `FIntv` boundary, result-producing modules must be
//! deterministic for every worker count, library crates must surface typed
//! errors instead of panicking, and lock acquisition must stay flat. This
//! crate tokenizes every non-test `.rs` file in the workspace (handwritten
//! lexer — no dependencies) and enforces four rule families:
//!
//! | id            | family            | guards                               |
//! |---------------|-------------------|--------------------------------------|
//! | `float`       | float confinement | Thm 4.3 split-word boundary          |
//! | `determinism` | determinism       | byte-identical parallel merges       |
//! | `panic`       | panic surface     | typed-error robustness               |
//! | `lock`        | lock discipline   | deadlock-freedom of the fan-out      |
//!
//! Every rule has a machine-readable escape hatch:
//!
//! ```text
//! // cdb-lint: allow(<rule>) — <reason>        (this line or the next)
//! // cdb-lint: allow-file(<rule>) — <reason>   (whole file)
//! ```
//!
//! A directive without a written reason is itself a diagnostic, as is an
//! allow that suppresses nothing (`unused-allow`) — annotations cannot rot
//! silently in either direction.

pub mod lexer;
pub mod rules;

use lexer::{lex, Comment, Tok, TokKind};
use std::fmt;
use std::path::{Path, PathBuf};

/// The four rule families (plus directive hygiene, which is not
/// suppressible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// F: float confinement to the `FIntv` boundary.
    Float,
    /// D: determinism of result-producing modules.
    Determinism,
    /// P: panic surface of library crates.
    Panic,
    /// L: lock discipline.
    Lock,
}

impl Rule {
    /// The machine-readable rule id used in directives and diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Float => "float",
            Rule::Determinism => "determinism",
            Rule::Panic => "panic",
            Rule::Lock => "lock",
        }
    }

    /// Parse a rule id.
    pub fn from_id(s: &str) -> Option<Rule> {
        match s {
            "float" => Some(Rule::Float),
            "determinism" => Some(Rule::Determinism),
            "panic" => Some(Rule::Panic),
            "lock" => Some(Rule::Lock),
            _ => None,
        }
    }
}

/// One finding, keyed by workspace-relative path and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`float`, `determinism`, `panic`, `lock`, `directive`,
    /// `unused-allow`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rule families apply to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy)]
pub struct FileClass {
    /// Rule F applies (everywhere except the FIntv boundary and `cdb-fp`).
    pub float: bool,
    /// Rule D applies (result-producing crates: qe, datalog, calcf, agg).
    pub determinism: bool,
    /// Rule P applies (library code; binaries may panic on startup).
    pub panic: bool,
    /// Rule L applies (everywhere).
    pub lock: bool,
}

/// Classify a workspace-relative path (`/`-separated).
pub fn classify(rel: &str) -> FileClass {
    let is_bin = rel.contains("/src/bin/") || rel.ends_with("/main.rs");
    FileClass {
        float: rel != "crates/num/src/fintv.rs" && !rel.starts_with("crates/fp/"),
        determinism: [
            "crates/qe/",
            "crates/datalog/",
            "crates/calcf/",
            "crates/agg/",
        ]
        .iter()
        .any(|p| rel.starts_with(p))
            // The modular-arithmetic substrate of the resultant kernels
            // (DESIGN.md §11) produces result bytes directly (CRT residues
            // become polynomial coefficients), so it answers to the same
            // determinism bar as the result-producing crates: u64 modular
            // arithmetic is fine, HashMap/Relaxed/wall-clocks are not.
            || rel == "crates/num/src/modp.rs"
            // The update path (DESIGN.md §12) decides *which* units re-run
            // and in what order from dependency sets; iteration order over
            // those sets becomes evaluation order, so both modules answer
            // to the determinism bar (BTree containers, no wall-clocks).
            || rel == "crates/core/src/deps.rs"
            || rel == "crates/core/src/update.rs"
            // The serving layer (DESIGN.md §13) promises byte-identical
            // results across batch compositions, worker counts, and
            // session interleavings; nothing order- or clock-dependent
            // may sit on its result paths, and the session loop must
            // never panic out from under a queued request.
            || rel.starts_with("crates/server/"),
        panic: !is_bin,
        lock: true,
    }
}

/// Directory names never scanned: build output, VCS, vendored dev shims,
/// test/bench/example code (rule families target library code; fixtures
/// under `tests/` are the linter's own corpus).
const SKIP_DIRS: &[&str] = &[
    "target", ".git", "devshim", "tests", "benches", "examples", "fixtures",
];

/// Path prefixes never scanned (bench code is an allowed float zone and is
/// not part of the library panic surface).
const SKIP_PREFIXES: &[&str] = &["crates/bench/"];

/// An allow directive parsed from a comment.
#[derive(Debug)]
struct AllowDirective {
    rules: Vec<Rule>,
    /// None = file scope.
    target_line: Option<u32>,
    /// Line the directive itself is on (for unused-allow reporting).
    at_line: u32,
    used: std::cell::Cell<bool>,
}

/// Result of linting one file.
fn lint_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let class = classify(rel);
    let lexed = lex(src);
    let (toks, skipped) = strip_test_scopes(&lexed.toks);

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut allows: Vec<AllowDirective> = Vec::new();
    for c in &lexed.comments {
        if skipped.iter().any(|&(lo, hi)| c.line >= lo && c.line <= hi) {
            continue;
        }
        parse_directive(rel, c, &toks, &mut allows, &mut diags);
    }

    let raw = rules::check(&toks, class);
    for d in raw {
        let rule = Rule::from_id(d.rule);
        let suppressed = rule.is_some_and(|r| {
            allows.iter().any(|a| {
                a.rules.contains(&r)
                    && match a.target_line {
                        None => true,
                        Some(t) => t == d.line,
                    }
                    && {
                        a.used.set(true);
                        true
                    }
            })
        });
        if !suppressed {
            diags.push(Diagnostic {
                file: rel.to_owned(),
                line: d.line,
                rule: d.rule,
                message: d.message,
            });
        }
    }

    for a in &allows {
        if !a.used.get() {
            diags.push(Diagnostic {
                file: rel.to_owned(),
                line: a.at_line,
                rule: "unused-allow",
                message: "allow directive suppresses nothing; remove it".to_owned(),
            });
        }
    }

    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

/// Parse a `cdb-lint:` directive out of one comment, if present.
fn parse_directive(
    rel: &str,
    c: &Comment,
    toks: &[Tok],
    allows: &mut Vec<AllowDirective>,
    diags: &mut Vec<Diagnostic>,
) {
    let text = c.text.trim_start_matches(['/', '!']).trim();
    let Some(rest) = text.strip_prefix("cdb-lint:") else {
        return;
    };
    let rest = rest.trim();
    let mut bad = |msg: String| {
        diags.push(Diagnostic {
            file: rel.to_owned(),
            line: c.line,
            rule: "directive",
            message: msg,
        });
    };
    let (file_scope, body) = if let Some(b) = rest.strip_prefix("allow-file(") {
        (true, b)
    } else if let Some(b) = rest.strip_prefix("allow(") {
        (false, b)
    } else {
        bad(format!("unknown cdb-lint directive: `{rest}`"));
        return;
    };
    let Some(close) = body.find(')') else {
        bad("unterminated rule list in allow directive".to_owned());
        return;
    };
    let mut rules_list = Vec::new();
    for name in body[..close].split(',') {
        let name = name.trim();
        match Rule::from_id(name) {
            Some(r) => rules_list.push(r),
            None => {
                bad(format!(
                    "unknown rule `{name}` (expected float, determinism, panic, or lock)"
                ));
                return;
            }
        }
    }
    if rules_list.is_empty() {
        bad("empty rule list in allow directive".to_owned());
        return;
    }
    // Reason: everything after the `)`, stripped of a dash separator.
    let reason = body[close + 1..]
        .trim()
        .trim_start_matches(['—', '–', '-'])
        .trim();
    if reason.is_empty() {
        bad("allow directive without a written reason (use `— <why>`)".to_owned());
        return;
    }
    let target_line = if file_scope {
        None
    } else if c.has_code_before {
        Some(c.line)
    } else {
        // The next line bearing a code token.
        toks.iter().map(|t| t.line).find(|&l| l > c.line)
    };
    if !file_scope && target_line.is_none() {
        bad("allow directive with no following code line".to_owned());
        return;
    }
    allows.push(AllowDirective {
        rules: rules_list,
        target_line,
        at_line: c.line,
        used: std::cell::Cell::new(false),
    });
}

/// Drop tokens inside `#[cfg(test)]` items and `mod tests { … }` blocks.
/// Returns the surviving tokens and the skipped line ranges (inclusive), so
/// directives inside test code are ignored too.
fn strip_test_scopes(toks: &[Tok]) -> (Vec<Tok>, Vec<(u32, u32)>) {
    let mut out = Vec::with_capacity(toks.len());
    let mut skipped = Vec::new();
    let mut i = 0usize;
    let n = toks.len();
    let ident =
        |t: Option<&Tok>, w: &str| matches!(t, Some(Tok { kind: TokKind::Ident(s), .. }) if s == w);
    let punct = |t: Option<&Tok>, c: char| matches!(t, Some(Tok { kind: TokKind::Punct(p), .. }) if *p == c);
    while i < n {
        // `#[...]` outer attribute: scan it; if it is a cfg(test)-style
        // attribute, skip the attributed item (including stacked attrs).
        if punct(toks.get(i), '#') && punct(toks.get(i + 1), '[') {
            let (attr_end, is_test) = scan_attr(toks, i);
            if is_test {
                let start_line = toks[i].line;
                let mut j = attr_end;
                // Skip any further attributes on the same item.
                while punct(toks.get(j), '#') && punct(toks.get(j + 1), '[') {
                    let (e, _) = scan_attr(toks, j);
                    j = e;
                }
                let end = skip_item(toks, j);
                let end_line = toks
                    .get(end.saturating_sub(1))
                    .map_or(start_line, |t| t.line);
                skipped.push((start_line, end_line));
                i = end;
                continue;
            }
            // Keep the attribute tokens.
            for t in toks.get(i..attr_end).unwrap_or(&[]) {
                out.push(t.clone());
            }
            i = attr_end;
            continue;
        }
        // `mod tests {` / `mod test {` without an attribute.
        if ident(toks.get(i), "mod")
            && (ident(toks.get(i + 1), "tests") || ident(toks.get(i + 1), "test"))
            && punct(toks.get(i + 2), '{')
        {
            let start_line = toks[i].line;
            let end = skip_item(toks, i);
            let end_line = toks
                .get(end.saturating_sub(1))
                .map_or(start_line, |t| t.line);
            skipped.push((start_line, end_line));
            i = end;
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    (out, skipped)
}

/// Scan the attribute starting at `i` (`#` `[` …). Returns the index one
/// past the closing `]` and whether the attribute mentions `cfg` + `test`
/// (covers `#[cfg(test)]` and `#[cfg(any(test, …))]`).
fn scan_attr(toks: &[Tok], i: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut j = i + 1;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, saw_cfg && saw_test && !saw_not);
                }
            }
            TokKind::Ident(s) if s == "cfg" => saw_cfg = true,
            TokKind::Ident(s) if s == "test" => saw_test = true,
            TokKind::Ident(s) if s == "not" => saw_not = true,
            _ => {}
        }
        j += 1;
    }
    (toks.len(), false)
}

/// Skip one item starting at `i`: to the `;` closing a bodyless item, or to
/// the `}` matching its first `{`.
fn skip_item(toks: &[Tok], i: usize) -> usize {
    let mut j = i;
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            TokKind::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Lint one file given its workspace-relative path and contents. Exposed
/// for the fixture tests.
pub fn lint_file(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    lint_source(rel_path, src)
}

/// A whole-tree lint report.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (file, line).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lint every non-test `.rs` file under `root`.
pub fn run_root(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .unwrap_or_default();
        diagnostics.extend(lint_source(&rel_str, &src));
    }
    Ok(Report {
        diagnostics,
        files_scanned,
    })
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if SKIP_PREFIXES
                .iter()
                .any(|p| format!("{rel_str}/").starts_with(p))
            {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Find the enclosing workspace root: the nearest ancestor of `start`
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}
