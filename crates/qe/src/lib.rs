#![warn(missing_docs)]

//! `cdb-qe`: quantifier elimination engines and the query-evaluation
//! pipeline of §2 / Appendix I.
//!
//! Three engines, matching the operator hierarchy of Proposition 4.6:
//!
//! * **Dense order** `FO(≤)` and **linear** `FO(≤, +)` — Fourier–Motzkin
//!   elimination ([`linear`]), exact and fast; the paper's Theorem 4.2 class
//!   where finite precision loses nothing.
//! * **Polynomial** `FO(≤, +, ×)` — cylindrical algebraic decomposition
//!   ([`cad`]): projection (coefficients + discriminants + pairwise
//!   resultants), base-phase root isolation, stack lifting with exact
//!   algebraic sample points, and Hong-style solution formula construction
//!   with derivative augmentation.
//!
//! The [`pipeline`] module wires the paper's steps together: INSTANTIATION →
//! QUANTIFIER ELIMINATION → NUMERICAL EVALUATION, with an optional bit-length
//! budget that realizes the finite-precision satisfaction relation `⊨_QE^F`
//! (exact arithmetic, undefined the moment any integer exceeds `k` bits).

pub mod cad;
pub mod linear;
pub mod pipeline;

pub use pipeline::{evaluate_query, numerical_evaluation, EvalOutput};

use std::cell::Cell;
use std::fmt;

/// Errors from quantifier elimination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QeError {
    /// Query references an unknown relation or has an arity mismatch.
    Schema(String),
    /// The finite-precision bit budget was exceeded — the query is
    /// *undefined* under `⊨_QE^F` (Theorem 4.1's partiality in action).
    PrecisionExceeded {
        /// The budget that was in force.
        budget_bits: u64,
        /// The bit length that tripped it.
        seen_bits: u64,
    },
    /// The linear engine was handed a nonlinear atom.
    NonLinear(String),
    /// CAD could not decide a sign at a degenerate sample point
    /// (documented limitation: repeated roots over multi-algebraic samples).
    IndeterminateSign(String),
    /// Solution formula construction failed even after augmentation.
    FormulaConstruction(String),
    /// Structural error (internal invariant broken or unsupported input).
    Unsupported(String),
}

impl fmt::Display for QeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QeError::Schema(m) => write!(f, "schema error: {m}"),
            QeError::PrecisionExceeded { budget_bits, seen_bits } => write!(
                f,
                "finite-precision semantics: undefined (needs {seen_bits} bits, budget {budget_bits})"
            ),
            QeError::NonLinear(m) => write!(f, "nonlinear atom in linear engine: {m}"),
            QeError::IndeterminateSign(m) => write!(f, "indeterminate sign: {m}"),
            QeError::FormulaConstruction(m) => {
                write!(f, "solution formula construction failed: {m}")
            }
            QeError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for QeError {}

/// Execution context: optional finite-precision budget plus statistics.
///
/// The budget realizes §4's `Z_k` context: every polynomial produced during
/// elimination is checked; exceeding `k` bits aborts the whole evaluation
/// with [`QeError::PrecisionExceeded`] ("the value of terms might be
/// undefined … caused by overflow").
#[derive(Debug, Default)]
pub struct QeContext {
    /// Maximum allowed integer bit length (`None` = exact semantics).
    pub budget_bits: Option<u64>,
    /// Largest coefficient bit length observed.
    pub max_bits_seen: Cell<u64>,
    /// Number of CAD cells constructed.
    pub cells_built: Cell<u64>,
    /// Number of polynomial sign evaluations.
    pub sign_evals: Cell<u64>,
}

impl QeContext {
    /// Exact (unbounded) context.
    #[must_use]
    pub fn exact() -> QeContext {
        QeContext::default()
    }

    /// Finite-precision context with bit budget `k`.
    #[must_use]
    pub fn with_budget(k: u64) -> QeContext {
        QeContext { budget_bits: Some(k), ..QeContext::default() }
    }

    /// Record an observed bit length; error if over budget.
    pub fn observe_bits(&self, bits: u64) -> Result<(), QeError> {
        if bits > self.max_bits_seen.get() {
            self.max_bits_seen.set(bits);
        }
        match self.budget_bits {
            Some(k) if bits > k => {
                Err(QeError::PrecisionExceeded { budget_bits: k, seen_bits: bits })
            }
            _ => Ok(()),
        }
    }

    /// Check a polynomial's coefficients against the budget.
    pub fn observe_poly(&self, p: &cdb_poly::MPoly) -> Result<(), QeError> {
        self.observe_bits(p.max_coeff_bits())
    }
}
