#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! `cdb-qe`: quantifier elimination engines and the query-evaluation
//! pipeline of §2 / Appendix I.
//!
//! Three engines, matching the operator hierarchy of Proposition 4.6:
//!
//! * **Dense order** `FO(≤)` and **linear** `FO(≤, +)` — Fourier–Motzkin
//!   elimination ([`linear`]), exact and fast; the paper's Theorem 4.2 class
//!   where finite precision loses nothing.
//! * **Polynomial** `FO(≤, +, ×)` — cylindrical algebraic decomposition
//!   ([`cad`]): projection (coefficients + discriminants + pairwise
//!   resultants), base-phase root isolation, stack lifting with exact
//!   algebraic sample points, and Hong-style solution formula construction
//!   with derivative augmentation.
//!
//! The [`pipeline`] module wires the paper's steps together: INSTANTIATION →
//! QUANTIFIER ELIMINATION → NUMERICAL EVALUATION, with an optional bit-length
//! budget that realizes the finite-precision satisfaction relation `⊨_QE^F`
//! (exact arithmetic, undefined the moment any integer exceeds `k` bits).

pub mod cache;
pub mod cad;
pub mod linear;
pub mod par;
pub mod pipeline;
pub mod plan;
pub mod quad1;

pub use cache::AlgebraicCache;
pub use par::par_map_result;
pub use pipeline::{evaluate_query, numerical_evaluation, EvalOutput};

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Errors from quantifier elimination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QeError {
    /// Query references an unknown relation or has an arity mismatch.
    Schema(String),
    /// The finite-precision bit budget was exceeded — the query is
    /// *undefined* under `⊨_QE^F` (Theorem 4.1's partiality in action).
    PrecisionExceeded {
        /// The budget that was in force.
        budget_bits: u64,
        /// The bit length that tripped it.
        seen_bits: u64,
    },
    /// The linear engine was handed a nonlinear atom.
    NonLinear(String),
    /// CAD could not decide a sign at a degenerate sample point
    /// (documented limitation: repeated roots over multi-algebraic samples).
    IndeterminateSign(String),
    /// Solution formula construction failed even after augmentation.
    FormulaConstruction(String),
    /// Structural error (internal invariant broken or unsupported input).
    Unsupported(String),
    /// A forced plan mode ([`PlanMode::ForceFM`] / [`PlanMode::ForceQuad`])
    /// was applied to a disjunct its eliminator cannot handle. Forced modes
    /// never fall back silently — differential tests rely on the strategy
    /// actually running — so the planner reports the mismatch instead.
    PlanUnsupported(String),
}

impl fmt::Display for QeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QeError::Schema(m) => write!(f, "schema error: {m}"),
            QeError::PrecisionExceeded { budget_bits, seen_bits } => write!(
                f,
                "finite-precision semantics: undefined (needs {seen_bits} bits, budget {budget_bits})"
            ),
            QeError::NonLinear(m) => write!(f, "nonlinear atom in linear engine: {m}"),
            QeError::IndeterminateSign(m) => write!(f, "indeterminate sign: {m}"),
            QeError::FormulaConstruction(m) => {
                write!(f, "solution formula construction failed: {m}")
            }
            QeError::Unsupported(m) => write!(f, "unsupported: {m}"),
            QeError::PlanUnsupported(m) => {
                write!(f, "forced plan mode cannot eliminate this disjunct: {m}")
            }
        }
    }
}

impl std::error::Error for QeError {}

/// A thread-safe statistic counter.
///
/// Keeps the `get`/`set` API the old `Cell<u64>` counters exposed, so
/// observers in other crates read it unchanged, while letting parallel
/// elimination workers update it through a shared `&QeContext`.
/// Sequentially consistent per the determinism rule (cdb-lint `determinism`):
/// counters feed budget decisions via [`QeContext::observe_bits`], so their
/// ordering must not depend on the memory model.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Overwrite the value (single-writer use only; racing writers should
    /// use [`Counter::add`] or [`Counter::record_max`]).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::SeqCst);
    }

    /// Atomically increment by `v`.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::SeqCst);
    }

    /// Atomically raise the value to at least `v`.
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::SeqCst);
    }
}

/// Execution context: optional finite-precision budget plus statistics,
/// worker-pool size, and the shared algebraic memo-cache.
///
/// The budget realizes §4's `Z_k` context: every polynomial produced during
/// elimination is checked; exceeding `k` bits aborts the whole evaluation
/// with [`QeError::PrecisionExceeded`] ("the value of terms might be
/// undefined … caused by overflow").
///
/// The context is `Sync`: one instance is shared by reference across all
/// workers of a parallel elimination.
#[derive(Debug)]
pub struct QeContext {
    /// Maximum allowed integer bit length (`None` = exact semantics).
    pub budget_bits: Option<u64>,
    /// Largest coefficient bit length observed.
    pub max_bits_seen: Counter,
    /// Number of CAD cells constructed.
    pub cells_built: Counter,
    /// Number of polynomial sign evaluations.
    pub sign_evals: Counter,
    /// Worker threads for disjunct/stack-level parallelism. `1` (or `0`)
    /// runs the original sequential code path; the default is
    /// [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Shared memo-cache for resultants, discriminants, and Sturm chains.
    pub cache: AlgebraicCache,
    /// Strategy policy for the per-disjunct planner (default [`PlanMode::Auto`]).
    pub plan_mode: PlanMode,
    /// Per-strategy planner counters (snapshot via [`QeContext::plan_stats`]).
    pub plan: PlanCounters,
    /// Baseline snapshot of the process-global float-filter `(hits,
    /// fallbacks)` counters (see [`cdb_num::fintv::filter_counters`]),
    /// taken at construction so [`QeContext::filter_hits`] /
    /// [`QeContext::filter_fallbacks`] report activity attributable to this
    /// context. Contexts running concurrently also observe each other's
    /// filter traffic — acceptable for instrumentation.
    filter_base: (u64, u64),
    /// Baseline snapshot of the process-global resultant-dispatcher
    /// counters `(prs, eval_interp, crt, fallbacks)` (see
    /// [`cdb_poly::resultant::strategy_counters`]), taken at construction —
    /// the same snapshot-and-delta idiom as `filter_base`, so
    /// [`QeContext::resultant_strategies`] reports kernel choices
    /// attributable to this context.
    resultant_base: (u64, u64, u64, u64),
}

/// Strategy selection policy for the per-disjunct planner ([`plan`]).
///
/// `Auto` is the production setting: every disjunct is classified into the
/// cheapest applicable eliminator. The `Force*` modes pin one strategy for
/// differential tests and benchmarks (mirroring the resultant dispatcher's
/// forced kernels, DESIGN.md §11); a forced strategy that does not apply to
/// a disjunct returns [`QeError::PlanUnsupported`] rather than falling back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlanMode {
    /// Cost-based: substitution → Fourier–Motzkin → quadratic → CAD.
    #[default]
    Auto,
    /// Fourier–Motzkin on every disjunct (error when nonlinear in the
    /// target variable).
    ForceFM,
    /// Whole-relation CAD, exactly the pre-planner pipeline path.
    ForceCAD,
    /// The quadratic one-variable shortcut on every disjunct (error when a
    /// disjunct exceeds degree 2 in the target variable).
    ForceQuad,
}

/// Live per-strategy counters for the disjunct planner, updated by
/// elimination workers through a shared `&QeContext`. Unlike the
/// resultant-dispatcher counters these are per-context (the planner always
/// holds a context, so no process-global is needed); [`QeContext::plan_stats`]
/// snapshots them.
#[derive(Debug, Default)]
pub struct PlanCounters {
    /// Disjunct-eliminations answered by linear-equality substitution.
    pub subst: Counter,
    /// Disjunct-eliminations answered by Fourier–Motzkin.
    pub fm: Counter,
    /// Disjunct-eliminations answered by the quadratic shortcut.
    pub quad: Counter,
    /// Disjunct-eliminations answered by the CAD fallback.
    pub cad: Counter,
    /// Wall-clock nanoseconds spent in substitution eliminations.
    pub subst_nanos: Counter,
    /// Wall-clock nanoseconds spent in Fourier–Motzkin eliminations.
    pub fm_nanos: Counter,
    /// Wall-clock nanoseconds spent in quadratic eliminations.
    pub quad_nanos: Counter,
    /// Wall-clock nanoseconds spent in CAD-fallback eliminations.
    pub cad_nanos: Counter,
}

/// Snapshot of the planner's per-strategy decisions for one context
/// (surfaced in E16/E23 JSON): how many disjunct-eliminations each strategy
/// answered and how much wall time each consumed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Disjuncts eliminated by linear-equality substitution.
    pub subst: u64,
    /// Disjuncts eliminated by Fourier–Motzkin.
    pub fm: u64,
    /// Disjuncts eliminated by the quadratic shortcut.
    pub quad: u64,
    /// Disjuncts eliminated by the CAD fallback.
    pub cad: u64,
    /// Nanoseconds spent in substitution eliminations (sum over workers).
    pub subst_nanos: u64,
    /// Nanoseconds spent in Fourier–Motzkin eliminations (sum over workers).
    pub fm_nanos: u64,
    /// Nanoseconds spent in quadratic eliminations (sum over workers).
    pub quad_nanos: u64,
    /// Nanoseconds spent in CAD-fallback eliminations (sum over workers).
    pub cad_nanos: u64,
}

/// Per-context view of the resultant dispatcher's decisions (DESIGN.md
/// §11): how many projection resultants/discriminants each kernel answered
/// since the context was created.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultantStrategies {
    /// Calls answered by the Bareiss fraction-free PRS (incl. fallbacks).
    pub prs: u64,
    /// Calls answered by rational evaluation–interpolation.
    pub eval_interp: u64,
    /// Calls answered by the modular CRT kernel.
    pub crt: u64,
    /// Fast-path attempts that fell back to PRS.
    pub fallbacks: u64,
}

impl Default for QeContext {
    fn default() -> QeContext {
        QeContext {
            budget_bits: None,
            max_bits_seen: Counter::default(),
            cells_built: Counter::default(),
            sign_evals: Counter::default(),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache: AlgebraicCache::new(),
            plan_mode: PlanMode::default(),
            plan: PlanCounters::default(),
            filter_base: cdb_num::fintv::filter_counters(),
            resultant_base: cdb_poly::resultant::strategy_counters(),
        }
    }
}

impl QeContext {
    /// Exact (unbounded) context.
    #[must_use]
    pub fn exact() -> QeContext {
        QeContext::default()
    }

    /// Finite-precision context with bit budget `k`.
    #[must_use]
    pub fn with_budget(k: u64) -> QeContext {
        QeContext {
            budget_bits: Some(k),
            ..QeContext::default()
        }
    }

    /// Same context with an explicit worker count (`1` = sequential).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> QeContext {
        self.workers = workers;
        self
    }

    /// Same context with a fresh memo-cache bounded at roughly `capacity`
    /// total entries (long-lived server contexts tune this; see
    /// [`AlgebraicCache::with_capacity`]).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> QeContext {
        self.cache = AlgebraicCache::with_capacity(capacity);
        self
    }

    /// Same context sharing `cache` (a cheap handle clone) instead of a
    /// fresh cold cache. A long-lived owner — the `constraintdb` facade's
    /// update path — threads one cache through every per-call context so
    /// memoized resultants/discriminants/Sturm chains survive across calls.
    #[must_use]
    pub fn with_cache(mut self, cache: &AlgebraicCache) -> QeContext {
        self.cache = cache.clone();
        self
    }

    /// Same context with an explicit planner strategy policy (the default
    /// is [`PlanMode::Auto`]; forced modes drive differential tests and the
    /// E23 forced-CAD baseline).
    #[must_use]
    pub fn with_plan_mode(mut self, mode: PlanMode) -> QeContext {
        self.plan_mode = mode;
        self
    }

    /// Snapshot of the per-disjunct planner's strategy counters for this
    /// context (reported next to the cache/filter/resultant counters in
    /// E16/E23).
    #[must_use]
    pub fn plan_stats(&self) -> PlanStats {
        PlanStats {
            subst: self.plan.subst.get(),
            fm: self.plan.fm.get(),
            quad: self.plan.quad.get(),
            cad: self.plan.cad.get(),
            subst_nanos: self.plan.subst_nanos.get(),
            fm_nanos: self.plan.fm_nanos.get(),
            quad_nanos: self.plan.quad_nanos.get(),
            cad_nanos: self.plan.cad_nanos.get(),
        }
    }

    /// Effective worker count: at least 1, at most the host's hardware
    /// parallelism. Oversubscribing a CPU-bound fan-out only adds
    /// scheduling overhead, and the determinism contract (byte-identical
    /// output for every worker count) makes the clamp unobservable in
    /// results — so fan-out call sites can branch on this to take their
    /// allocation-free sequential paths when threads cannot help.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.workers.max(1).min(hw)
    }

    /// Record an observed bit length; error if over budget.
    pub fn observe_bits(&self, bits: u64) -> Result<(), QeError> {
        self.max_bits_seen.record_max(bits);
        match self.budget_bits {
            Some(k) if bits > k => Err(QeError::PrecisionExceeded {
                budget_bits: k,
                seen_bits: bits,
            }),
            _ => Ok(()),
        }
    }

    /// Check a polynomial's coefficients against the budget.
    pub fn observe_poly(&self, p: &cdb_poly::MPoly) -> Result<(), QeError> {
        self.observe_bits(p.max_coeff_bits())
    }

    /// Float-filter hits (sign decisions settled by the split-word f64
    /// enclosure) since this context was created. Reported next to the
    /// cache hit/miss counters in E16/E18.
    #[must_use]
    pub fn filter_hits(&self) -> u64 {
        cdb_num::fintv::filter_counters()
            .0
            .saturating_sub(self.filter_base.0)
    }

    /// Float-filter fallbacks (straddles certified by exact arithmetic)
    /// since this context was created.
    #[must_use]
    pub fn filter_fallbacks(&self) -> u64 {
        cdb_num::fintv::filter_counters()
            .1
            .saturating_sub(self.filter_base.1)
    }

    /// Resultant-kernel dispatch decisions since this context was created
    /// (reported next to the cache and filter counters in E16/E20).
    #[must_use]
    pub fn resultant_strategies(&self) -> ResultantStrategies {
        let (prs, ev, crt, fb) = cdb_poly::resultant::strategy_counters();
        ResultantStrategies {
            prs: prs.saturating_sub(self.resultant_base.0),
            eval_interp: ev.saturating_sub(self.resultant_base.1),
            crt: crt.saturating_sub(self.resultant_base.2),
            fallbacks: fb.saturating_sub(self.resultant_base.3),
        }
    }
}
