//! Quadratic one-variable elimination — the planner's middle tier between
//! Fourier–Motzkin and full CAD (DESIGN.md §16).
//!
//! When the target variable `v` occurs at degree ≤ 2 in every atom of a
//! disjunct, with a *constant* leading coefficient and at most one atom of
//! degree exactly 2, `∃v` can be eliminated by explicit root-interval
//! formulas instead of a cylindrical decomposition. Write the quadratic
//! atom (normalized to `a > 0`) as
//!
//! ```text
//! a·v² + b·v + c  ⋈  0,        D = b² − 4ac,   r± = (−b ± √D) / (2a)
//! ```
//!
//! where `b`, `c` (hence `D`) are polynomials in the remaining variables.
//! For `⋈ ∈ {≤, <}` the atom means `v ∈ [r−, r+]` (resp. open), so the
//! roots join the linear bounds as one more lower/upper pair; for
//! `{≥, >}` it means `v ≤ r−  ∨  v ≥ r+  ∨` "no real roots"; for `=` it
//! pins `v` to one of the roots. Each comparison of a linear bound `t`
//! against a root reduces — because `a > 0` — to comparing
//! `A = 2a·t + b` against `±√D`, and those comparisons have quantifier-free
//! sign-condition forms (valid whenever `D ≥ 0`, which each branch
//! conjoins):
//!
//! ```text
//! A ≤ √D  ⇔ A ≤ 0 ∨ A² ≤ D        A < √D  ⇔ A < 0 ∨ A² < D
//! A ≤ −√D ⇔ A ≤ 0 ∧ A² ≥ D        A < −√D ⇔ A < 0 ∧ A² > D
//! √D ≤ B  ⇔ B ≥ 0 ∧ B² ≥ D        √D < B  ⇔ B > 0 ∧ B² > D
//! −√D ≤ B ⇔ B ≥ 0 ∨ B² ≤ D        −√D < B ⇔ B > 0 ∨ B² < D
//! ```
//!
//! (see DESIGN.md §16 for the derivations). Disjunctive forms split the
//! disjunct — the output stays DNF. Degenerate inputs degrade gracefully:
//! a disjunct with *no* degree-2 atom (the `a = 0` case) falls back to the
//! generalized Fourier–Motzkin pairing, and a linear equality atom pins `v`
//! by substitution. Everything is certified against `cad::eliminate` by the
//! differential tests in `tests/plan_differential.rs`.

use crate::plan;
use crate::{QeContext, QeError};
use cdb_constraints::{Atom, GeneralizedTuple, RelOp};
use cdb_num::{Rat, Sign};
use cdb_poly::MPoly;

/// True iff the quadratic shortcut can eliminate `∃ var` from this
/// disjunct: every atom using `var` has degree ≤ 2 in it with a constant
/// leading coefficient, and at most one atom has degree exactly 2.
/// (`≠` atoms are fine — they are split into `<` / `>` before elimination.)
#[must_use]
pub fn applicable(tuple: &GeneralizedTuple, var: usize) -> bool {
    let mut quads = 0usize;
    for atom in tuple.atoms() {
        match atom.poly.degree_in(var) {
            0 => {}
            1 | 2 => {
                if atom
                    .poly
                    .as_upoly_in(var)
                    .last()
                    .and_then(cdb_poly::MPoly::to_constant)
                    .is_none()
                {
                    return false;
                }
                if atom.poly.degree_in(var) == 2 {
                    quads += 1;
                }
            }
            _ => return false,
        }
    }
    quads <= 1
}

/// Append `atoms` to every branch (a conjunctive condition).
fn conj(branches: &mut [Vec<Atom>], atoms: &[Atom]) {
    for b in branches.iter_mut() {
        b.extend_from_slice(atoms);
    }
}

/// Split every branch over a two-way disjunction.
fn disj(branches: &mut Vec<Vec<Atom>>, alt1: &[Atom], alt2: &[Atom]) {
    let mut next = Vec::with_capacity(branches.len() * 2);
    for b in branches.drain(..) {
        let mut x = b.clone();
        x.extend_from_slice(alt1);
        next.push(x);
        let mut y = b;
        y.extend_from_slice(alt2);
        next.push(y);
    }
    *branches = next;
}

/// `X² − D`, budget-checked.
fn sq_minus_d(x: &MPoly, d: &MPoly, ctx: &QeContext) -> Result<MPoly, QeError> {
    let p = &(x * x) - d;
    ctx.observe_poly(&p)?;
    Ok(p)
}

/// `X ⋈ √D` (root `r+` as an upper bound for linear lower bound `X/2a`):
/// `X ≤ 0 ∨ X² ≤ D` (strict: `X < 0 ∨ X² < D`).
fn le_sqrt(
    branches: &mut Vec<Vec<Atom>>,
    x: &MPoly,
    d: &MPoly,
    strict: bool,
    ctx: &QeContext,
) -> Result<(), QeError> {
    let op = if strict { RelOp::Lt } else { RelOp::Le };
    let sq = sq_minus_d(x, d, ctx)?;
    disj(branches, &[Atom::new(x.clone(), op)], &[Atom::new(sq, op)]);
    Ok(())
}

/// `X ⋈ −√D` (root `r−` as an upper bound): `X ≤ 0 ∧ X² ≥ D`
/// (strict: `X < 0 ∧ X² > D`).
fn le_neg_sqrt(
    branches: &mut [Vec<Atom>],
    x: &MPoly,
    d: &MPoly,
    strict: bool,
    ctx: &QeContext,
) -> Result<(), QeError> {
    let (lo, hi) = if strict {
        (RelOp::Lt, RelOp::Gt)
    } else {
        (RelOp::Le, RelOp::Ge)
    };
    let sq = sq_minus_d(x, d, ctx)?;
    conj(branches, &[Atom::new(x.clone(), lo), Atom::new(sq, hi)]);
    Ok(())
}

/// `−√D ⋈ X` (root `r−` as a lower bound for linear upper bound `X/2a`):
/// `X ≥ 0 ∨ X² ≤ D` (strict: `X > 0 ∨ X² < D`).
fn neg_sqrt_le(
    branches: &mut Vec<Vec<Atom>>,
    x: &MPoly,
    d: &MPoly,
    strict: bool,
    ctx: &QeContext,
) -> Result<(), QeError> {
    let (lo, hi) = if strict {
        (RelOp::Gt, RelOp::Lt)
    } else {
        (RelOp::Ge, RelOp::Le)
    };
    let sq = sq_minus_d(x, d, ctx)?;
    disj(branches, &[Atom::new(x.clone(), lo)], &[Atom::new(sq, hi)]);
    Ok(())
}

/// `√D ⋈ X` (root `r+` as a lower bound): `X ≥ 0 ∧ X² ≥ D`
/// (strict: `X > 0 ∧ X² > D`).
fn sqrt_le(
    branches: &mut [Vec<Atom>],
    x: &MPoly,
    d: &MPoly,
    strict: bool,
    ctx: &QeContext,
) -> Result<(), QeError> {
    let op = if strict { RelOp::Gt } else { RelOp::Ge };
    let sq = sq_minus_d(x, d, ctx)?;
    conj(branches, &[Atom::new(x.clone(), op), Atom::new(sq, op)]);
    Ok(())
}

/// Eliminate `∃ var` from one disjunct via the root-interval formulas.
/// Requires [`applicable`]; `≠` atoms using `var` must be split beforehand
/// (the planner does both). The result is a small DNF (the branches of the
/// sign-condition disjunctions), each tuple free of `var`.
pub fn eliminate_tuple(
    tuple: &GeneralizedTuple,
    var: usize,
    ctx: &QeContext,
) -> Result<Vec<GeneralizedTuple>, QeError> {
    if !applicable(tuple, var) {
        return Err(QeError::PlanUnsupported(format!(
            "quadratic shortcut: disjunct exceeds degree 2 in x{var}, has a \
             symbolic leading coefficient, or has two distinct quadratic atoms"
        )));
    }
    let nvars = tuple.nvars();
    let mut passthrough: Vec<Atom> = Vec::new();
    let mut lowers: Vec<(MPoly, bool)> = Vec::new(); // (bound, strict)
    let mut uppers: Vec<(MPoly, bool)> = Vec::new();
    let mut has_linear_eq = false;
    let mut quad: Option<(Rat, MPoly, MPoly, RelOp)> = None; // a>0, b, c, op
    for atom in tuple.atoms() {
        let deg = atom.poly.degree_in(var);
        if deg == 0 {
            passthrough.push(atom.clone());
            continue;
        }
        if atom.op == RelOp::Ne {
            return Err(QeError::Unsupported(
                "quadratic shortcut: `≠` atom not split before elimination".into(),
            ));
        }
        let coeffs = atom.poly.as_upoly_in(var);
        let lead = coeffs
            .last()
            .and_then(cdb_poly::MPoly::to_constant)
            .ok_or_else(|| {
                QeError::Unsupported(format!(
                    "quadratic shortcut: symbolic leading coefficient in x{var}"
                ))
            })?;
        let mut rest = coeffs.into_iter();
        let c0 = rest.next().unwrap_or_else(|| MPoly::zero(nvars));
        let c1 = rest.next().unwrap_or_else(|| MPoly::zero(nvars));
        if deg == 1 {
            // lead·var + rest σ 0 ⇔ var σ' −rest/lead.
            let bound = c0.scale(&(-lead.recip()));
            ctx.observe_poly(&bound)?;
            let op = if lead.sign() == Sign::Neg {
                atom.op.flipped()
            } else {
                atom.op
            };
            match op {
                RelOp::Eq => has_linear_eq = true,
                RelOp::Lt => uppers.push((bound, true)),
                RelOp::Le => uppers.push((bound, false)),
                RelOp::Gt => lowers.push((bound, true)),
                RelOp::Ge => lowers.push((bound, false)),
                RelOp::Ne => {} // excluded above
            }
        } else {
            let mut a = lead;
            let mut b = c1;
            let mut c = c0;
            let mut op = atom.op;
            if a.sign() == Sign::Neg {
                let m1 = Rat::from(-1i64);
                a = -a;
                b = b.scale(&m1);
                c = c.scale(&m1);
                op = op.flipped();
            }
            quad = Some((a, b, c, op));
        }
    }
    // A linear equality pins `var`; substitution is exact, cheap, and also
    // covers the quadratic atom (evaluated at the pinned value).
    if has_linear_eq {
        return Ok(plan::subst_eliminate_tuple(tuple, var, ctx)?
            .into_iter()
            .collect());
    }
    let Some((a, b, c, qop)) = quad else {
        // Degenerate `a = 0` disjunct-wide: plain Fourier–Motzkin pairing.
        return Ok(plan::fm_eliminate_tuple(tuple, var, ctx)?
            .into_iter()
            .collect());
    };
    // D = b² − 4ac; for a linear bound t, A(t) = 2a·t + b compares against
    // ±√D exactly as t compares against r∓ (a > 0 keeps directions).
    let two_a = &a + &a;
    let four_a = &two_a + &two_a;
    let d_poly = &(&b * &b) - &c.scale(&four_a);
    ctx.observe_poly(&d_poly)?;
    let lin = |t: &MPoly| -> Result<MPoly, QeError> {
        let p = &t.scale(&two_a) + &b;
        ctx.observe_poly(&p)?;
        Ok(p)
    };
    // Bounds must still pair among themselves in every branch.
    let mut base = passthrough;
    for (l, ls) in &lowers {
        for (u, us) in &uppers {
            let d = l - u;
            ctx.observe_poly(&d)?;
            base.push(Atom::new(d, if *ls || *us { RelOp::Lt } else { RelOp::Le }));
        }
    }
    let with = |extra: Atom| -> Vec<Vec<Atom>> {
        let mut b0 = base.clone();
        b0.push(extra);
        vec![b0]
    };
    let qs = matches!(qop, RelOp::Lt | RelOp::Gt);
    let mut branches: Vec<Vec<Atom>> = Vec::new();
    match qop {
        RelOp::Le | RelOp::Lt => {
            // v ∈ [r−, r+] (open when strict): the roots join the bound
            // pairing — feasibility of r− ⋈ r+ is exactly D ≥ 0 (resp. > 0).
            let mut fam = with(Atom::new(
                d_poly.clone(),
                if qs { RelOp::Gt } else { RelOp::Ge },
            ));
            for (l, ls) in &lowers {
                le_sqrt(&mut fam, &lin(l)?, &d_poly, *ls || qs, ctx)?;
            }
            for (u, us) in &uppers {
                neg_sqrt_le(&mut fam, &lin(u)?, &d_poly, *us || qs, ctx)?;
            }
            branches.append(&mut fam);
        }
        RelOp::Ge | RelOp::Gt => {
            // Three overlapping families: no real roots (the parabola never
            // dips below zero), v ≤ r−, and v ≥ r+.
            let fam1 = with(Atom::new(
                d_poly.clone(),
                if qs { RelOp::Lt } else { RelOp::Le },
            ));
            branches.extend(fam1);
            let mut fam2 = with(Atom::new(d_poly.clone(), RelOp::Ge));
            for (l, ls) in &lowers {
                le_neg_sqrt(&mut fam2, &lin(l)?, &d_poly, *ls || qs, ctx)?;
            }
            branches.append(&mut fam2);
            let mut fam3 = with(Atom::new(d_poly.clone(), RelOp::Ge));
            for (u, us) in &uppers {
                sqrt_le(&mut fam3, &lin(u)?, &d_poly, *us || qs, ctx)?;
            }
            branches.append(&mut fam3);
        }
        RelOp::Eq => {
            // v = r− or v = r+ (both need D ≥ 0); linear bounds must hold
            // at the chosen root.
            let mut fam_m = with(Atom::new(d_poly.clone(), RelOp::Ge));
            for (l, ls) in &lowers {
                le_neg_sqrt(&mut fam_m, &lin(l)?, &d_poly, *ls, ctx)?;
            }
            for (u, us) in &uppers {
                neg_sqrt_le(&mut fam_m, &lin(u)?, &d_poly, *us, ctx)?;
            }
            branches.append(&mut fam_m);
            let mut fam_p = with(Atom::new(d_poly.clone(), RelOp::Ge));
            for (l, ls) in &lowers {
                le_sqrt(&mut fam_p, &lin(l)?, &d_poly, *ls, ctx)?;
            }
            for (u, us) in &uppers {
                sqrt_le(&mut fam_p, &lin(u)?, &d_poly, *us, ctx)?;
            }
            branches.append(&mut fam_p);
        }
        RelOp::Ne => {
            // Excluded above (and the planner splits `≠` beforehand).
            return Err(QeError::Unsupported(
                "quadratic shortcut: `≠` atom not split before elimination".into(),
            ));
        }
    }
    let mut out: Vec<GeneralizedTuple> = Vec::new();
    for atoms in branches {
        if let Some(t) = GeneralizedTuple::new(nvars, atoms).simplify() {
            if !out.contains(&t) {
                out.push(t);
            }
        }
    }
    Ok(out)
}
