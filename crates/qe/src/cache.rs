//! Shared algebraic memo-cache for the QE hot path.
//!
//! CAD projection and root isolation recompute the same resultants,
//! discriminants, and Sturm sequences many times: projection emits pairwise
//! resultants level by level, and every lifted stack re-derives minimal
//! polynomials by iterated resultants against the same coordinate moduli.
//! All three operations are *pure* functions of their (canonicalized)
//! polynomial arguments, so memoizing them cannot change any result — only
//! skip redundant work.
//!
//! # Cache key canonicalization
//!
//! [`MPoly`] and [`UPoly`] store polynomials canonically (sorted monomial
//! maps / trimmed coefficient vectors, no explicit zeros, normalized
//! rationals), so structural equality coincides with mathematical equality
//! and the polynomial itself serves as the key — no separate canonical form
//! is computed. Resultant keys are *ordered* pairs `(p, q, var)`:
//! `res(p, q)` and `res(q, p)` differ by sign, so the two orders are cached
//! independently rather than folded together.
//!
//! # Concurrency
//!
//! The table is sharded (`Arc<[Mutex<HashMap>]>`): the shard index is
//! derived from the key hash, so concurrent workers contend only when they
//! touch the same slice of the key space. Values are computed *outside* the
//! shard lock; two workers racing on the same missing key may both compute
//! it, but the functions are pure so either result is identical and the
//! insert is idempotent.
//!
//! # Eviction
//!
//! Each shard is bounded: once it reaches its per-shard capacity, inserting
//! a new key evicts the least-recently-used entry (recency is a global
//! atomic tick stamped on every hit and insert). This keeps long-lived
//! server contexts from growing without bound while preserving the working
//! set of a hot query mix; evictions are counted and reported next to
//! hits/misses (experiment E16 writes all three to `BENCH_qe.json`).
//!
//! # Sharing and invalidation
//!
//! The cache is a cheap-to-clone handle (`Arc` around the shard table):
//! cloning shares the entries and counters, so a long-lived owner — the
//! `constraintdb` facade's update path, a server session pool — can hand
//! the *same* cache to every per-call `QeContext` instead of rebuilding a
//! cold one per call. Entries are pure functions of their
//! polynomial keys and can never go stale; [`AlgebraicCache::invalidate`]
//! exists for the update path anyway, both as memory reclamation after
//! destructive updates (retractions/replacements strand entries whose
//! polynomials no longer occur in any extent) and as the hook the
//! no-stale-hits differential tests pivot on (E21).

use cdb_poly::resultant as resfn;
use cdb_poly::sturm::SturmChain;
use cdb_poly::{MPoly, UPoly};
use std::collections::hash_map::DefaultHasher;
#[allow(clippy::disallowed_types)]
// cdb-lint: allow(determinism) — bounded memo table: access is by key only,
// iteration happens solely to pick the LRU victim (recency ticks are unique,
// so the minimum is order-independent), and cached values are pure functions
// of the key, so cache contents can never alter a result.
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independent lock shards; a small power of two keeps the
/// modulo cheap while comfortably exceeding typical worker counts.
const SHARD_COUNT: usize = 16;

/// Default total entry capacity (spread across the shards). Each entry is a
/// polynomial or Sturm chain — tens of thousands comfortably fit in memory
/// while covering every workload in the test and bench suites without a
/// single eviction.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Memoized operation + canonicalized arguments.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    /// `res_var(p, q)` — ordered pair (resultant is antisymmetric up to sign).
    Resultant(MPoly, MPoly, usize),
    /// `disc_var(p)`.
    Discriminant(MPoly, usize),
    /// Sturm chain of a univariate polynomial.
    Sturm(UPoly),
}

#[derive(Clone)]
enum Value {
    Poly(MPoly),
    Sturm(Arc<SturmChain>),
}

/// A cached value plus its last-access tick (for LRU eviction).
struct Entry {
    value: Value,
    last_used: u64,
}

#[allow(clippy::disallowed_types)]
// cdb-lint: allow(determinism) — see the `use` above: keyed access only.
type Shard = Mutex<HashMap<Key, Entry>>;

/// Sharded, thread-safe, size-bounded memo-cache for resultants,
/// discriminants, and Sturm sequences. One instance lives on
/// [`crate::QeContext`] and is shared by every worker of a parallel
/// elimination; `clone()` is a shallow handle copy, so one instance can
/// also be shared *across* contexts (see the module docs).
#[derive(Clone)]
pub struct AlgebraicCache {
    inner: Arc<CacheInner>,
}

struct CacheInner {
    shards: Box<[Shard]>,
    /// Maximum entries *per shard*; reaching it evicts the shard's LRU entry.
    per_shard_capacity: usize,
    /// Global recency clock, stamped on every hit and insert.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Completed [`AlgebraicCache::invalidate`] calls.
    invalidations: AtomicU64,
}

impl Default for AlgebraicCache {
    fn default() -> AlgebraicCache {
        AlgebraicCache::new()
    }
}

impl std::fmt::Debug for AlgebraicCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgebraicCache")
            .field("entries", &self.len())
            .field("capacity", &self.capacity())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl AlgebraicCache {
    /// An empty cache with the default capacity ([`DEFAULT_CAPACITY`]).
    #[must_use]
    pub fn new() -> AlgebraicCache {
        AlgebraicCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache bounded at roughly `capacity` total entries (rounded
    /// up to a multiple of the shard count; at least one entry per shard).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> AlgebraicCache {
        let shards: Vec<Shard> = (0..SHARD_COUNT)
            .map(|_| {
                #[allow(clippy::disallowed_types)]
                // cdb-lint: allow(determinism) — see the `use` above: keyed access only.
                Mutex::new(HashMap::new())
            })
            .collect();
        AlgebraicCache {
            inner: Arc::new(CacheInner {
                shards: shards.into(),
                per_shard_capacity: capacity.div_ceil(SHARD_COUNT).max(1),
                tick: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                invalidations: AtomicU64::new(0),
            }),
        }
    }

    /// True iff `other` is a handle to this very cache (shares entries and
    /// counters) — the property the context-threading tests pin.
    #[must_use]
    pub fn shares_storage_with(&self, other: &AlgebraicCache) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Drop every memoized entry, returning how many were removed. Counted
    /// in [`AlgebraicCache::invalidations`]. Entries are pure functions of
    /// their keys, so this can never change a result — it reclaims memory
    /// after destructive updates (retract/replace) strand entries for
    /// polynomials that no longer occur in any extent, and gives the update
    /// path an explicit staleness firebreak to differential-test against.
    pub fn invalidate(&self) -> usize {
        let mut removed = 0usize;
        for shard in self.inner.shards.iter() {
            let mut guard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            removed += guard.len();
            guard.clear();
        }
        self.inner.invalidations.fetch_add(1, Ordering::SeqCst);
        removed
    }

    fn shard_of(&self, key: &Key) -> &Shard {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.inner.shards[(h.finish() as usize) % self.inner.shards.len()]
    }

    /// Look up `key`, or compute it with `f` (outside the shard lock) and
    /// insert, evicting the shard's least-recently-used entry when full.
    /// Pure `f` makes the compute-twice race benign. A poisoned shard holds
    /// a structurally valid map (std's `HashMap` never unwinds mid-rehash
    /// into an invalid state) of fully-constructed pure entries, so poison
    /// recovery is sound here.
    fn get_or_insert(&self, key: Key, f: impl FnOnce() -> Value) -> Value {
        let shard = self.shard_of(&key);
        if let Some(e) = shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get_mut(&key)
        {
            self.inner.hits.fetch_add(1, Ordering::SeqCst);
            e.last_used = self.inner.tick.fetch_add(1, Ordering::SeqCst);
            return e.value.clone();
        }
        self.inner.misses.fetch_add(1, Ordering::SeqCst);
        let v = f();
        let mut guard = shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !guard.contains_key(&key) && guard.len() >= self.inner.per_shard_capacity {
            // Evict the LRU entry (O(shard) scan — shards are small and
            // eviction is the rare path, so a scan beats an intrusive list).
            // Recency ticks are unique, so the minimum is iteration-order
            // independent.
            if let Some(victim) = guard
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                guard.remove(&victim);
                self.inner.evictions.fetch_add(1, Ordering::SeqCst);
            }
        }
        let last_used = self.inner.tick.fetch_add(1, Ordering::SeqCst);
        guard
            .entry(key)
            .or_insert(Entry {
                value: v,
                last_used,
            })
            .value
            .clone()
    }

    /// Memoized `res_var(p, q)`.
    #[must_use]
    pub fn resultant(&self, p: &MPoly, q: &MPoly, var: usize) -> MPoly {
        let v = self.get_or_insert(Key::Resultant(p.clone(), q.clone(), var), || {
            Value::Poly(resfn::resultant(p, q, var))
        });
        match v {
            Value::Poly(r) => r,
            // cdb-lint: allow(panic) — Key::Resultant is only ever inserted
            // with Value::Poly two lines above; the pairing is local to this
            // file and enforced by these three accessors.
            Value::Sturm(_) => unreachable!("resultant key holds a polynomial"),
        }
    }

    /// Memoized `disc_var(p)` (requires `degree_in(var) >= 1`, as the
    /// underlying [`cdb_poly::resultant::discriminant`] does).
    #[must_use]
    pub fn discriminant(&self, p: &MPoly, var: usize) -> MPoly {
        let v = self.get_or_insert(Key::Discriminant(p.clone(), var), || {
            Value::Poly(resfn::discriminant(p, var))
        });
        match v {
            Value::Poly(r) => r,
            // cdb-lint: allow(panic) — Key::Discriminant is only ever
            // inserted with Value::Poly (see `resultant` above).
            Value::Sturm(_) => unreachable!("discriminant key holds a polynomial"),
        }
    }

    /// Memoized Sturm chain of `p` (shared, so repeated isolations of roots
    /// of the same polynomial reuse one chain).
    #[must_use]
    pub fn sturm(&self, p: &UPoly) -> Arc<SturmChain> {
        let v = self.get_or_insert(Key::Sturm(p.clone()), || {
            Value::Sturm(Arc::new(SturmChain::new(p)))
        });
        match v {
            Value::Sturm(c) => c,
            // cdb-lint: allow(panic) — Key::Sturm is only ever inserted with
            // Value::Sturm (see `resultant` above).
            Value::Poly(_) => unreachable!("sturm key holds a chain"),
        }
    }

    /// Total lookups that found an entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::SeqCst)
    }

    /// Total lookups that had to compute.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::SeqCst)
    }

    /// Total entries displaced by the size bound.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.inner.evictions.load(Ordering::SeqCst)
    }

    /// Completed [`AlgebraicCache::invalidate`] calls over the cache's
    /// lifetime (shared by every handle).
    #[must_use]
    pub fn invalidations(&self) -> u64 {
        self.inner.invalidations.load(Ordering::SeqCst)
    }

    /// Total entry capacity across all shards.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.per_shard_capacity * self.inner.shards.len()
    }

    /// Current entry count of each shard (index = shard number).
    #[must_use]
    pub fn shard_entry_counts(&self) -> Vec<usize> {
        self.inner
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .collect()
    }

    /// Number of memoized entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shard_entry_counts().iter().sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_num::Rat;

    fn xy_poly() -> MPoly {
        // x² + y² − 1 in 2 vars.
        MPoly::from_terms(
            2,
            vec![
                (vec![2, 0], Rat::one()),
                (vec![0, 2], Rat::one()),
                (vec![0, 0], -Rat::one()),
            ],
        )
    }

    #[test]
    fn resultant_hits_on_repeat() {
        let cache = AlgebraicCache::new();
        let p = xy_poly();
        let q = &MPoly::var(0, 2) - &MPoly::var(1, 2);
        let r1 = cache.resultant(&p, &q, 1);
        let r2 = cache.resultant(&p, &q, 1);
        assert_eq!(r1, r2);
        assert_eq!(r1, resfn::resultant(&p, &q, 1));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn ordered_pair_keys_are_distinct() {
        let cache = AlgebraicCache::new();
        let p = xy_poly();
        let q = &MPoly::var(0, 2) - &MPoly::var(1, 2);
        let _ = cache.resultant(&p, &q, 1);
        let _ = cache.resultant(&q, &p, 1);
        assert_eq!(cache.misses(), 2, "res(p,q) and res(q,p) differ by sign");
    }

    #[test]
    fn discriminant_and_sturm_memoized() {
        let cache = AlgebraicCache::new();
        let p = xy_poly();
        let d1 = cache.discriminant(&p, 1);
        let d2 = cache.discriminant(&p, 1);
        assert_eq!(d1, d2);
        assert_eq!(d1, resfn::discriminant(&p, 1));

        let u = UPoly::from_ints(&[-2, 0, 1]); // x² − 2
        let c1 = cache.sturm(&u);
        let c2 = cache.sturm(&u);
        assert!(Arc::ptr_eq(&c1, &c2), "second lookup must share the chain");
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    /// Clones are handles onto one shared table: entries and counters
    /// inserted through one handle are visible through the other, and
    /// `invalidate` empties both while leaving results correct.
    #[test]
    fn clone_shares_storage_and_invalidate_clears() {
        let a = AlgebraicCache::new();
        let b = a.clone();
        assert!(a.shares_storage_with(&b));
        assert!(!a.shares_storage_with(&AlgebraicCache::new()));

        let p = xy_poly();
        let q = &MPoly::var(0, 2) - &MPoly::var(1, 2);
        let r1 = a.resultant(&p, &q, 1);
        let r2 = b.resultant(&p, &q, 1);
        assert_eq!(r1, r2);
        assert_eq!(b.hits(), 1, "clone must see the entry the original made");
        assert_eq!(b.len(), 1);

        let removed = b.invalidate();
        assert_eq!(removed, 1);
        assert!(a.is_empty(), "invalidate through one handle empties all");
        assert_eq!(a.invalidations(), 1);
        assert_eq!(b.invalidations(), 1);

        // Post-invalidation lookups recompute and still agree exactly.
        let r3 = a.resultant(&p, &q, 1);
        assert_eq!(r3, resfn::resultant(&p, &q, 1));
        assert_eq!(a.misses(), 2);
    }

    /// Long-lived-context bound: a stream of distinct keys far exceeding the
    /// configured capacity must leave the entry count at or below the cap,
    /// with the overflow reported as evictions.
    #[test]
    fn eviction_bounds_long_lived_context() {
        let cap = 32;
        let cache = AlgebraicCache::with_capacity(cap);
        assert_eq!(cache.capacity(), cap);
        for i in 0..10 * cap as i64 {
            // Distinct Sturm keys: x² − i has a distinct canonical form.
            let _ = cache.sturm(&UPoly::from_ints(&[-i, 0, 1]));
        }
        assert!(
            cache.len() <= cache.capacity(),
            "len {} exceeds capacity {}",
            cache.len(),
            cache.capacity()
        );
        assert!(cache.evictions() > 0, "overflow must evict");
        assert_eq!(cache.misses(), 10 * cap as u64);
        let per_shard = cache.capacity() / SHARD_COUNT;
        for (i, n) in cache.shard_entry_counts().iter().enumerate() {
            assert!(*n <= per_shard, "shard {i} holds {n} > {per_shard}");
        }
        // Evicted entries are recomputed on re-access and shared thereafter.
        let u = UPoly::from_ints(&[-1, 0, 1]);
        let c1 = cache.sturm(&u);
        let c2 = cache.sturm(&u);
        assert!(Arc::ptr_eq(&c1, &c2), "recomputed chain must be shared");
    }

    /// LRU keeps the hot entry: re-touching a key between cold inserts
    /// protects it, so across a long churn the hot key misses exactly once.
    #[test]
    fn lru_retains_recently_used() {
        let cache = AlgebraicCache::with_capacity(2 * SHARD_COUNT); // 2/shard
        let hot = UPoly::from_ints(&[-2, 0, 1]);
        let _ = cache.sturm(&hot); // miss #1 — the only hot miss allowed
        let cold = 190u64;
        for i in 10..(10 + cold as i64) {
            let _ = cache.sturm(&UPoly::from_ints(&[-i, 0, 1]));
            let _ = cache.sturm(&hot); // re-touch: hot is never the LRU
        }
        // Every miss is accounted for by the distinct cold keys + the first
        // hot access; any eviction of the hot entry would add to this.
        assert_eq!(cache.misses(), cold + 1, "hot entry was evicted");
        assert!(cache.evictions() > 0, "cold churn must evict");
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = AlgebraicCache::new();
        let p = xy_poly();
        let q = &MPoly::var(0, 2) - &MPoly::var(1, 2);
        let expect = resfn::resultant(&p, &q, 1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        assert_eq!(cache.resultant(&p, &q, 1), expect);
                    }
                });
            }
        });
        assert_eq!(cache.hits() + cache.misses(), 32);
        assert!(cache.misses() >= 1);
        assert_eq!(cache.len(), 1);
    }
}
