//! Shared algebraic memo-cache for the QE hot path.
//!
//! CAD projection and root isolation recompute the same resultants,
//! discriminants, and Sturm sequences many times: projection emits pairwise
//! resultants level by level, and every lifted stack re-derives minimal
//! polynomials by iterated resultants against the same coordinate moduli.
//! All three operations are *pure* functions of their (canonicalized)
//! polynomial arguments, so memoizing them cannot change any result — only
//! skip redundant work.
//!
//! # Cache key canonicalization
//!
//! [`MPoly`] and [`UPoly`] store polynomials canonically (sorted monomial
//! maps / trimmed coefficient vectors, no explicit zeros, normalized
//! rationals), so structural equality coincides with mathematical equality
//! and the polynomial itself serves as the key — no separate canonical form
//! is computed. Resultant keys are *ordered* pairs `(p, q, var)`:
//! `res(p, q)` and `res(q, p)` differ by sign, so the two orders are cached
//! independently rather than folded together.
//!
//! # Concurrency
//!
//! The table is sharded (`Arc<[Mutex<HashMap>]>`): the shard index is
//! derived from the key hash, so concurrent workers contend only when they
//! touch the same slice of the key space. Values are computed *outside* the
//! shard lock; two workers racing on the same missing key may both compute
//! it, but the functions are pure so either result is identical and the
//! insert is idempotent.

use cdb_poly::resultant as resfn;
use cdb_poly::sturm::SturmChain;
use cdb_poly::{MPoly, UPoly};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independent lock shards; a small power of two keeps the
/// modulo cheap while comfortably exceeding typical worker counts.
const SHARD_COUNT: usize = 16;

/// Memoized operation + canonicalized arguments.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    /// `res_var(p, q)` — ordered pair (resultant is antisymmetric up to sign).
    Resultant(MPoly, MPoly, usize),
    /// `disc_var(p)`.
    Discriminant(MPoly, usize),
    /// Sturm chain of a univariate polynomial.
    Sturm(UPoly),
}

#[derive(Clone)]
enum Value {
    Poly(MPoly),
    Sturm(Arc<SturmChain>),
}

type Shard = Mutex<HashMap<Key, Value>>;

/// Sharded, thread-safe memo-cache for resultants, discriminants, and Sturm
/// sequences. One instance lives on [`crate::QeContext`] and is shared by
/// every worker of a parallel elimination.
pub struct AlgebraicCache {
    shards: Arc<[Shard]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for AlgebraicCache {
    fn default() -> AlgebraicCache {
        AlgebraicCache::new()
    }
}

impl std::fmt::Debug for AlgebraicCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgebraicCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl AlgebraicCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> AlgebraicCache {
        let shards: Vec<Shard> = (0..SHARD_COUNT)
            .map(|_| Mutex::new(HashMap::new()))
            .collect();
        AlgebraicCache {
            shards: shards.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &Key) -> &Shard {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up `key`, or compute it with `f` (outside the shard lock) and
    /// insert. Pure `f` makes the compute-twice race benign.
    fn get_or_insert(&self, key: Key, f: impl FnOnce() -> Value) -> Value {
        let shard = self.shard_of(&key);
        if let Some(v) = shard.lock().expect("cache shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = f();
        shard
            .lock()
            .expect("cache shard poisoned")
            .entry(key)
            .or_insert(v)
            .clone()
    }

    /// Memoized `res_var(p, q)`.
    #[must_use]
    pub fn resultant(&self, p: &MPoly, q: &MPoly, var: usize) -> MPoly {
        let v = self.get_or_insert(Key::Resultant(p.clone(), q.clone(), var), || {
            Value::Poly(resfn::resultant(p, q, var))
        });
        match v {
            Value::Poly(r) => r,
            Value::Sturm(_) => unreachable!("resultant key holds a polynomial"),
        }
    }

    /// Memoized `disc_var(p)` (requires `degree_in(var) >= 1`, as the
    /// underlying [`cdb_poly::resultant::discriminant`] does).
    #[must_use]
    pub fn discriminant(&self, p: &MPoly, var: usize) -> MPoly {
        let v = self.get_or_insert(Key::Discriminant(p.clone(), var), || {
            Value::Poly(resfn::discriminant(p, var))
        });
        match v {
            Value::Poly(r) => r,
            Value::Sturm(_) => unreachable!("discriminant key holds a polynomial"),
        }
    }

    /// Memoized Sturm chain of `p` (shared, so repeated isolations of roots
    /// of the same polynomial reuse one chain).
    #[must_use]
    pub fn sturm(&self, p: &UPoly) -> Arc<SturmChain> {
        let v = self.get_or_insert(Key::Sturm(p.clone()), || {
            Value::Sturm(Arc::new(SturmChain::new(p)))
        });
        match v {
            Value::Sturm(c) => c,
            Value::Poly(_) => unreachable!("sturm key holds a chain"),
        }
    }

    /// Total lookups that found an entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that had to compute.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of memoized entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_num::Rat;

    fn xy_poly() -> MPoly {
        // x² + y² − 1 in 2 vars.
        MPoly::from_terms(
            2,
            vec![
                (vec![2, 0], Rat::one()),
                (vec![0, 2], Rat::one()),
                (vec![0, 0], -Rat::one()),
            ],
        )
    }

    #[test]
    fn resultant_hits_on_repeat() {
        let cache = AlgebraicCache::new();
        let p = xy_poly();
        let q = &MPoly::var(0, 2) - &MPoly::var(1, 2);
        let r1 = cache.resultant(&p, &q, 1);
        let r2 = cache.resultant(&p, &q, 1);
        assert_eq!(r1, r2);
        assert_eq!(r1, resfn::resultant(&p, &q, 1));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn ordered_pair_keys_are_distinct() {
        let cache = AlgebraicCache::new();
        let p = xy_poly();
        let q = &MPoly::var(0, 2) - &MPoly::var(1, 2);
        let _ = cache.resultant(&p, &q, 1);
        let _ = cache.resultant(&q, &p, 1);
        assert_eq!(cache.misses(), 2, "res(p,q) and res(q,p) differ by sign");
    }

    #[test]
    fn discriminant_and_sturm_memoized() {
        let cache = AlgebraicCache::new();
        let p = xy_poly();
        let d1 = cache.discriminant(&p, 1);
        let d2 = cache.discriminant(&p, 1);
        assert_eq!(d1, d2);
        assert_eq!(d1, resfn::discriminant(&p, 1));

        let u = UPoly::from_ints(&[-2, 0, 1]); // x² − 2
        let c1 = cache.sturm(&u);
        let c2 = cache.sturm(&u);
        assert!(Arc::ptr_eq(&c1, &c2), "second lookup must share the chain");
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = AlgebraicCache::new();
        let p = xy_poly();
        let q = &MPoly::var(0, 2) - &MPoly::var(1, 2);
        let expect = resfn::resultant(&p, &q, 1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        assert_eq!(cache.resultant(&p, &q, 1), expect);
                    }
                });
            }
        });
        assert_eq!(cache.hits() + cache.misses(), 32);
        assert!(cache.misses() >= 1);
        assert_eq!(cache.len(), 1);
    }
}
