//! The paper's query-evaluation pipeline (§2, Figure 1):
//!
//! 1. **INSTANTIATION** — replace relation symbols by their stored
//!    definitions (purely syntactic).
//! 2. **QUANTIFIER ELIMINATION** — routed through the per-disjunct planner
//!    ([`crate::plan`]): substitution / Fourier–Motzkin / quadratic
//!    shortcut / CAD, chosen per disjunct and variable; output is a
//!    quantifier-free DNF relation.
//! 3. **NUMERICAL EVALUATION** — when the answer is a finite set, extract
//!    ε-approximations of the solution points (Theorem 3.2).

use crate::cad;
use crate::plan;
use crate::{QeContext, QeError};
use cdb_constraints::formula::relation_to_formula;
use cdb_constraints::{ConstraintRelation, Database, Formula};
use cdb_num::Rat;

/// Result of evaluating a query.
#[derive(Debug, Clone)]
pub struct EvalOutput {
    /// Quantifier-free answer relation over the ambient ring (only the free
    /// variables are constrained).
    pub relation: ConstraintRelation,
    /// The query's free variables, ascending.
    pub free_vars: Vec<usize>,
}

/// Evaluate a relational-calculus query over a constraint database, in
/// closed form. `nvars` is the ambient ring arity (all variable indices in
/// `query` are below it).
pub fn evaluate_query(
    db: &Database,
    query: &Formula,
    nvars: usize,
    ctx: &QeContext,
) -> Result<EvalOutput, QeError> {
    // Step 1: INSTANTIATION.
    let pure = query.instantiate(db, nvars).map_err(QeError::Schema)?;
    let free_vars: Vec<usize> = pure.free_vars().into_iter().collect();
    // Normalize: NNF, then prenex.
    let nnf = pure.to_nnf();
    let (prefix, matrix) = nnf.to_prenex();
    // Step 2: QUANTIFIER ELIMINATION. The DNF is needed on every path, so
    // build it once, ahead of the prefix check; the per-disjunct planner is
    // the single entry point for the quantified cases.
    let matrix_rel = matrix
        .to_dnf(nvars)
        .map_err(QeError::Unsupported)?
        .simplify()
        .prune_empty_boxes();
    let relation = plan::eliminate_prefix(&matrix, matrix_rel, &prefix, &free_vars, nvars, ctx)?;
    Ok(EvalOutput {
        relation,
        free_vars,
    })
}

/// An ε-approximated solution point.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxPoint {
    /// One rational approximation per free variable (ascending var order).
    pub coords: Vec<Rat>,
    /// True when every coordinate is exact (not just approximate).
    pub exact: bool,
}

/// Step 3: NUMERICAL EVALUATION (Theorem 3.2). If the relation denotes a
/// finite set over `free_vars`, return ε-approximations of all solution
/// points (sorted lexicographically); `None` when the set is infinite.
pub fn numerical_evaluation(
    relation: &ConstraintRelation,
    free_vars: &[usize],
    eps: &Rat,
    ctx: &QeContext,
) -> Result<Option<Vec<ApproxPoint>>, QeError> {
    if relation.is_syntactically_empty() {
        return Ok(Some(Vec::new()));
    }
    if free_vars.is_empty() {
        return Ok(Some(Vec::new()));
    }
    // Fast path: explicit rational points.
    if let Some(points) = relation.as_finite_points() {
        let mut out: Vec<ApproxPoint> = points
            .into_iter()
            .map(|p| ApproxPoint {
                coords: free_vars.iter().map(|&v| p[v].clone()).collect(),
                exact: true,
            })
            .collect();
        out.sort_by(|a, b| a.coords.cmp(&b.coords));
        out.dedup();
        return Ok(Some(out));
    }
    // General path: CAD over the free variables; the set is finite iff all
    // true cells are zero-dimensional.
    let polys = relation.polynomials();
    let cad = cad::build_cad(&polys, free_vars, relation.nvars(), ctx)?;
    let matrix = relation_to_formula(relation);
    let cells = cad::true_cells(&cad, &matrix, ctx)?;
    let mut out = Vec::new();
    for cell in cells {
        if cell.dimension() > 0 {
            return Ok(None); // infinite set
        }
        let mut coords = Vec::with_capacity(cell.sample.len());
        let mut exact = true;
        for c in &cell.sample {
            match c {
                cad::sample::Coord::Rat(r) => coords.push(r.clone()),
                cad::sample::Coord::Alg(a) => match a.to_rat() {
                    Some(r) => coords.push(r),
                    None => {
                        exact = false;
                        coords.push(a.approx(eps));
                    }
                },
            }
        }
        out.push(ApproxPoint { coords, exact });
    }
    out.sort_by(|a, b| a.coords.cmp(&b.coords));
    out.dedup();
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_constraints::{Atom, GeneralizedTuple, RelOp};
    use cdb_poly::MPoly;

    fn c(v: i64, n: usize) -> MPoly {
        MPoly::constant(Rat::from(v), n)
    }

    fn paper_db() -> Database {
        // S(x, y) ≡ 4x² − y − 20x + 25 ≤ 0.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&(&c(4, 2) * &x.pow(2)) - &y) - &(&(&c(20, 2) * &x) - &c(25, 2));
        let mut db = Database::new();
        db.insert(
            "S",
            ConstraintRelation::new(
                2,
                vec![GeneralizedTuple::new(2, vec![Atom::new(p, RelOp::Le)])],
            ),
        );
        db
    }

    /// Full Figure 1: instantiate, eliminate, numerically evaluate → x = 2.5.
    #[test]
    fn figure1_full_pipeline() {
        let db = paper_db();
        let y = MPoly::var(1, 2);
        let query = Formula::exists(
            1,
            Formula::and(
                Formula::Rel("S".into(), vec![0, 1]),
                Formula::Atom(Atom::new(y, RelOp::Le)),
            ),
        );
        let ctx = QeContext::exact();
        let out = evaluate_query(&db, &query, 2, &ctx).unwrap();
        assert_eq!(out.free_vars, vec![0]);
        // QE result is semantically {x = 5/2}.
        assert!(out
            .relation
            .satisfied_at(&["5/2".parse().unwrap(), Rat::zero()]));
        assert!(!out.relation.satisfied_at(&[Rat::from(2i64), Rat::zero()]));
        // Numerical evaluation extracts the root.
        let pts = numerical_evaluation(
            &out.relation,
            &out.free_vars,
            &"1/1000000".parse().unwrap(),
            &ctx,
        )
        .unwrap()
        .expect("finite");
        assert_eq!(pts.len(), 1);
        let v = &pts[0].coords[0];
        assert!((v - &"5/2".parse().unwrap()).abs() < "1/1000000".parse().unwrap());
    }

    /// Membership query (quantifier-free): S(2.5, 0) true, S(0,0) false.
    #[test]
    fn membership_queries() {
        let db = paper_db();
        let ctx = QeContext::exact();
        let q = Formula::Rel("S".into(), vec![0, 1]);
        let out = evaluate_query(&db, &q, 2, &ctx).unwrap();
        assert!(out
            .relation
            .satisfied_at(&["5/2".parse().unwrap(), Rat::zero()]));
        assert!(!out.relation.satisfied_at(&[Rat::zero(), Rat::zero()]));
    }

    /// Linear query goes through FM: ∃y (x ≤ y ∧ y ≤ 10 ∧ x ≥ 0).
    #[test]
    fn linear_pipeline() {
        let n = 2;
        let x = MPoly::var(0, n);
        let y = MPoly::var(1, n);
        let db = Database::new();
        let query = Formula::exists(
            1,
            Formula::And(vec![
                Formula::Atom(Atom::cmp(x.clone(), RelOp::Le, y.clone())),
                Formula::Atom(Atom::cmp(y, RelOp::Le, c(10, n))),
                Formula::Atom(Atom::new(-&x, RelOp::Le)),
            ]),
        );
        let ctx = QeContext::exact();
        let out = evaluate_query(&db, &query, n, &ctx).unwrap();
        for (v, expect) in [("0", true), ("10", true), ("11", false), ("-1", false)] {
            assert_eq!(
                out.relation
                    .satisfied_at(&[v.parse().unwrap(), Rat::zero()]),
                expect,
                "x = {v}"
            );
        }
    }

    /// Numerical evaluation of an irrational finite set: x² = 2.
    #[test]
    fn numeric_eval_sqrt2() {
        let n = 1;
        let x = MPoly::var(0, n);
        let rel = ConstraintRelation::new(
            n,
            vec![GeneralizedTuple::new(
                n,
                vec![Atom::new(&x.pow(2) - &c(2, n), RelOp::Eq)],
            )],
        );
        let ctx = QeContext::exact();
        let eps: Rat = "1/100000000".parse().unwrap();
        let pts = numerical_evaluation(&rel, &[0], &eps, &ctx)
            .unwrap()
            .expect("finite");
        assert_eq!(pts.len(), 2);
        assert!(!pts[0].exact);
        assert!((pts[0].coords[0].to_f64() + std::f64::consts::SQRT_2).abs() < 1e-7);
        assert!((pts[1].coords[0].to_f64() - std::f64::consts::SQRT_2).abs() < 1e-7);
    }

    /// Numerical evaluation detects infinite answers.
    #[test]
    fn numeric_eval_infinite() {
        let n = 1;
        let x = MPoly::var(0, n);
        let rel = ConstraintRelation::new(
            n,
            vec![GeneralizedTuple::new(
                n,
                vec![Atom::new(&x.pow(2) - &c(2, n), RelOp::Le)],
            )],
        );
        let ctx = QeContext::exact();
        let res = numerical_evaluation(&rel, &[0], &"1/64".parse().unwrap(), &ctx).unwrap();
        assert!(res.is_none());
    }

    /// Finite-precision semantics: the same query succeeds exactly and is
    /// undefined under a tiny bit budget (Theorem 4.1's partiality).
    #[test]
    fn finite_precision_undefined() {
        let db = paper_db();
        let y = MPoly::var(1, 2);
        let query = Formula::exists(
            1,
            Formula::and(
                Formula::Rel("S".into(), vec![0, 1]),
                Formula::Atom(Atom::new(y, RelOp::Le)),
            ),
        );
        let tiny = QeContext::with_budget(3);
        let err = evaluate_query(&db, &query, 2, &tiny).unwrap_err();
        assert!(matches!(err, QeError::PrecisionExceeded { .. }));
        let roomy = QeContext::with_budget(64);
        assert!(evaluate_query(&db, &query, 2, &roomy).is_ok());
    }

    /// Sentence evaluation: ∃x S(x, 0) is… S(x,0) ⇔ (2x−5)² ≤ 0, true.
    #[test]
    fn sentence_through_pipeline() {
        let db = paper_db();
        let query = Formula::exists(
            0,
            Formula::exists(
                1,
                Formula::and(
                    Formula::Rel("S".into(), vec![0, 1]),
                    Formula::Atom(Atom::new(MPoly::var(1, 2), RelOp::Eq)),
                ),
            ),
        );
        let ctx = QeContext::exact();
        let out = evaluate_query(&db, &query, 2, &ctx).unwrap();
        // True sentence → full relation.
        assert!(out.relation.satisfied_at(&[Rat::zero(), Rat::zero()]));
    }
}
