//! The CAD projection operator `PROJ` (Appendix I).
//!
//! For a set of level-`i` polynomials, `PROJ` emits, in the eliminated
//! variable `v`:
//!
//! * **all coefficients** (handles leading-coefficient vanishing / degree
//!   drop — the Collins-style safety net over McCallum's projection),
//! * the **discriminant** of each polynomial of `v`-degree ≥ 2,
//! * the **pairwise resultants**.
//!
//! Every output is normalized to its primitive squarefree part; constants
//! are dropped. This is sound for well-oriented inputs (nullification over
//! positive-dimensional cells is detected during lifting and handled as
//! documented in DESIGN.md).

use crate::{QeContext, QeError};
use cdb_poly::{squarefree_part, MPoly};

/// Normalize a polynomial for membership in a CAD level set: primitive
/// squarefree part. `None` when (effectively) constant.
#[must_use]
pub fn normalize(p: &MPoly) -> Option<MPoly> {
    if p.is_constant() {
        return None;
    }
    let sf = squarefree_part(p);
    if sf.is_constant() {
        None
    } else {
        Some(sf)
    }
}

/// Registry of all projection polynomials across levels, keyed by identity
/// of the normalized form. Ids are stable for the lifetime of one CAD.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    polys: Vec<MPoly>,
}

impl Registry {
    /// Insert (if new) and return the id.
    pub fn insert(&mut self, p: MPoly) -> usize {
        if let Some(i) = self.find(&p) {
            return i;
        }
        self.polys.push(p);
        self.polys.len() - 1
    }

    /// Find the id of a normalized polynomial.
    #[must_use]
    pub fn find(&self, p: &MPoly) -> Option<usize> {
        self.polys.iter().position(|q| q == p)
    }

    /// Get by id.
    #[must_use]
    pub fn get(&self, id: usize) -> &MPoly {
        &self.polys[id]
    }

    /// Number of registered polynomials.
    #[must_use]
    pub fn len(&self) -> usize {
        self.polys.len()
    }

    /// True iff empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.polys.is_empty()
    }

    /// Iterate (id, poly).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &MPoly)> {
        self.polys.iter().enumerate()
    }
}

/// One projection step: eliminate variable `v` from `polys` (all of which
/// use `v`). Returns normalized output polynomials (not yet deduplicated
/// against other levels).
pub fn project(polys: &[MPoly], v: usize, ctx: &QeContext) -> Result<Vec<MPoly>, QeError> {
    let mut out: Vec<MPoly> = Vec::new();
    let mut push = |p: MPoly, ctx: &QeContext| -> Result<(), QeError> {
        ctx.observe_poly(&p)?;
        if let Some(n) = normalize(&p) {
            ctx.observe_poly(&n)?;
            if !out.contains(&n) {
                out.push(n);
            }
        }
        Ok(())
    };
    for p in polys {
        debug_assert!(p.uses_var(v), "projection input must use the variable");
        // All coefficients.
        for c in p.as_upoly_in(v) {
            push(c, ctx)?;
        }
        // Discriminant (memoized across repeated projections).
        if p.degree_in(v) >= 2 {
            push(ctx.cache.discriminant(p, v), ctx)?;
        }
    }
    // Pairwise resultants (memoized).
    for (i, p) in polys.iter().enumerate() {
        for q in &polys[i + 1..] {
            push(ctx.cache.resultant(p, q, v), ctx)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_num::Rat;

    fn c(v: i64, n: usize) -> MPoly {
        MPoly::constant(Rat::from(v), n)
    }

    #[test]
    fn registry_dedup() {
        let mut r = Registry::default();
        let x = MPoly::var(0, 1);
        let a = r.insert(x.clone());
        let b = r.insert(x.clone());
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
        let y = &x + &c(1, 1);
        assert_ne!(r.insert(y), a);
    }

    #[test]
    fn paper_example_projection() {
        // Project S's polynomial 4x² − y − 20x + 25, eliminating y: degree 1
        // in y, so only coefficients: −1 (constant, dropped) and the rest
        // 4x² − 20x + 25, whose squarefree part is 2x − 5.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&(&c(4, 2) * &x.pow(2)) - &y) - &(&(&c(20, 2) * &x) - &c(25, 2));
        let out = project(&[p], 1, &QeContext::exact()).unwrap();
        assert_eq!(out.len(), 1);
        // (2x−5)² normalizes to 2x−5.
        assert_eq!(out[0], &(&c(2, 2) * &x) - &c(5, 2));
    }

    #[test]
    fn circle_projection_gives_boundary() {
        // x² + y² − 1, eliminate y: coefficients 1 (dropped), 0, x² − 1;
        // discriminant 4 − 4x² → normalized x² − 1.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&x.pow(2) + &y.pow(2)) - &c(1, 2);
        let out = project(&[p], 1, &QeContext::exact()).unwrap();
        // x²−1 appears once after dedup/normalization.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], &x.pow(2) - &c(1, 2));
    }

    #[test]
    fn resultant_of_pair_included() {
        // p = y − x, q = y + x: res_y = ... vanishes iff x = 0 ⇒ output
        // includes x.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &y - &x;
        let q = &y + &x;
        let out = project(&[p, q], 1, &QeContext::exact()).unwrap();
        assert!(out.iter().any(|g| g == &MPoly::var(0, 2)));
    }

    #[test]
    fn budget_propagates() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let big = c(1 << 20, 2);
        let p = &(&y.pow(2) - &(&big * &x)) + &c(3, 2);
        let ctx = QeContext::with_budget(8);
        assert!(matches!(
            project(&[p], 1, &ctx),
            Err(QeError::PrecisionExceeded { .. })
        ));
    }
}
