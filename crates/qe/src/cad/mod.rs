//! Cylindrical algebraic decomposition and CAD-based quantifier
//! elimination — the `FO(≤, +, ×)` engine (Appendix I).
//!
//! A CAD of `R^n` w.r.t. the matrix polynomials is a tower of
//! decompositions `C₁, …, Cₙ`, each cell sign-invariant for every
//! projection polynomial. The fixed variable order required by the paper's
//! finite-precision semantics (§4: "the cylindrical algebraic decomposition
//! is always performed following this pre-established order") is: free
//! variables in ascending index order, then quantified variables from the
//! outermost quantifier inwards.

pub mod project;
pub mod sample;
pub mod solution;
pub mod stack;

use crate::{QeContext, QeError};
use cdb_constraints::{ConstraintRelation, Formula, Quantifier};
use cdb_num::{Rat, Sign};
use cdb_poly::MPoly;
use project::{normalize, Registry};
use sample::Coord;
use stack::{build_stack, sector_samples};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Hard cap on the number of cells, to fail fast instead of thrashing.
const MAX_CELLS: usize = 500_000;

/// A cell of the decomposition at some level `L`, with its sample point and
/// the signs of all projection polynomials of levels ≤ `L`.
#[derive(Clone, Debug)]
pub struct CadCell {
    /// Index of the parent cell at the previous level (`None` at level 1).
    pub parent: Option<usize>,
    /// Sample coordinates for levels 1..=L, in variable-order positions.
    pub sample: Vec<Coord>,
    /// Stack position per level (1-based; odd = sector, even = section).
    pub index: Vec<usize>,
    /// Sign of each projection polynomial (by registry id) at the sample.
    pub signs: BTreeMap<usize, Sign>,
}

impl CadCell {
    /// Cell dimension: number of sector (odd-index) levels.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.index.iter().filter(|&&i| i % 2 == 1).count()
    }
}

/// A completed cylindrical algebraic decomposition.
pub struct Cad {
    /// Ambient ring arity.
    pub nvars: usize,
    /// `order[l-1]` = ambient variable of level `l`.
    pub order: Vec<usize>,
    /// All projection polynomials.
    pub registry: Registry,
    /// Per level: registry ids of that level's polynomials.
    pub level_poly_ids: Vec<Vec<usize>>,
    /// Per level: the cells.
    pub levels: Vec<Vec<CadCell>>,
}

impl Cad {
    /// Total number of cells at the top (finest) level.
    #[must_use]
    pub fn top_cells(&self) -> usize {
        self.levels.last().map_or(0, Vec::len)
    }

    /// Level (1-based) of a normalized polynomial under the variable order:
    /// the position of its highest-order used variable.
    fn level_of(&self, p: &MPoly) -> usize {
        level_of(p, &self.order)
    }
}

fn level_of(p: &MPoly, order: &[usize]) -> usize {
    let mut lvl = 0;
    for (pos, &v) in order.iter().enumerate() {
        if p.uses_var(v) {
            lvl = lvl.max(pos + 1);
        }
    }
    assert!(lvl >= 1, "constant polynomial has no level");
    lvl
}

/// Build a CAD of `R^order.len()` sign-invariant for (the normal forms of)
/// `input_polys`.
pub fn build_cad(
    input_polys: &[MPoly],
    order: &[usize],
    nvars: usize,
    ctx: &QeContext,
) -> Result<Cad, QeError> {
    let n = order.len();
    assert!(n >= 1, "CAD needs at least one variable");
    let mut registry = Registry::default();
    let mut level_poly_ids: Vec<Vec<usize>> = vec![Vec::new(); n];
    let add = |p: MPoly,
               registry: &mut Registry,
               level_poly_ids: &mut Vec<Vec<usize>>|
     -> Result<(), QeError> {
        ctx.observe_poly(&p)?;
        if let Some(norm) = normalize(&p) {
            let lvl = level_of(&norm, order);
            let id = registry.insert(norm);
            if !level_poly_ids[lvl - 1].contains(&id) {
                level_poly_ids[lvl - 1].push(id);
            }
        }
        Ok(())
    };
    for p in input_polys {
        add(p.clone(), &mut registry, &mut level_poly_ids)?;
    }
    // Projection phase, top level downwards.
    for l in (2..=n).rev() {
        let polys: Vec<MPoly> = level_poly_ids[l - 1]
            .iter()
            .map(|&id| registry.get(id).clone())
            .collect();
        if polys.is_empty() {
            continue;
        }
        let out = project::project(&polys, order[l - 1], ctx)?;
        for p in out {
            add(p, &mut registry, &mut level_poly_ids)?;
        }
    }
    // Base phase + lifting.
    let mut cad = Cad {
        nvars,
        order: order.to_vec(),
        registry,
        level_poly_ids,
        levels: Vec::with_capacity(n),
    };
    for l in 1..=n {
        let cells = build_level(&cad, l, ctx)?;
        ctx.cells_built.add(cells.len() as u64);
        cad.levels.push(cells);
    }
    Ok(cad)
}

/// Build all cells of level `l` by lifting every cell of level `l−1`
/// (or the virtual root cell when `l == 1`).
fn build_level(cad: &Cad, l: usize, ctx: &QeContext) -> Result<Vec<CadCell>, QeError> {
    let yvar = cad.order[l - 1];
    let level_vars: Vec<usize> = cad.order[..l].to_vec();
    let parent_vars: Vec<usize> = cad.order[..l - 1].to_vec();
    let polys: Vec<(usize, MPoly)> = cad.level_poly_ids[l - 1]
        .iter()
        .map(|&id| (id, cad.registry.get(id).clone()))
        .collect();
    let root_cell = CadCell {
        parent: None,
        sample: Vec::new(),
        index: Vec::new(),
        signs: BTreeMap::new(),
    };
    let parents: &[CadCell] = if l == 1 {
        std::slice::from_ref(&root_cell)
    } else {
        &cad.levels[l - 2]
    };
    let workers = ctx.effective_workers();
    if workers <= 1 || parents.len() <= 1 {
        let mut out: Vec<CadCell> = Vec::new();
        for (pi, parent) in parents.iter().enumerate() {
            let cells = lift_parent(
                cad,
                l,
                pi,
                parent,
                &polys,
                &parent_vars,
                &level_vars,
                yvar,
                out.len(),
                ctx,
            )?;
            out.extend(cells);
        }
        return Ok(out);
    }
    // Parallel lifting: each parent's stack is independent of its siblings
    // (the stack depends only on the parent sample and the level
    // polynomials), so parents fan out across workers and the per-parent
    // cell runs are concatenated back in parent order — the exact sequence
    // the sequential loop produces. The cell-count guard uses a shared
    // running total so a runaway decomposition still fails fast.
    let total = AtomicUsize::new(0);
    let indexed: Vec<(usize, &CadCell)> = parents.iter().enumerate().collect();
    let per_parent = crate::par::par_map_result(&indexed, workers, |&(pi, parent)| {
        let base = total.load(Ordering::SeqCst);
        let cells = lift_parent(
            cad,
            l,
            pi,
            parent,
            &polys,
            &parent_vars,
            &level_vars,
            yvar,
            base,
            ctx,
        )?;
        total.fetch_add(cells.len(), Ordering::SeqCst);
        Ok(cells)
    })?;
    Ok(per_parent.into_iter().flatten().collect())
}

/// Lift one parent cell: build its stack over `yvar` and emit the
/// interleaved sector/section cells. `cells_so_far` seeds the `MAX_CELLS`
/// guard with the number of cells already built at this level.
#[allow(clippy::too_many_arguments)]
fn lift_parent(
    cad: &Cad,
    l: usize,
    pi: usize,
    parent: &CadCell,
    polys: &[(usize, MPoly)],
    parent_vars: &[usize],
    level_vars: &[usize],
    yvar: usize,
    cells_so_far: usize,
    ctx: &QeContext,
) -> Result<Vec<CadCell>, QeError> {
    let is_zero_lower = |p: &MPoly| -> Result<bool, QeError> {
        zeroness_at_parent(cad, parent, p, parent_vars, ctx)
    };
    let mut stack = build_stack(
        polys,
        parent_vars,
        &parent.sample,
        yvar,
        &is_zero_lower,
        ctx,
    )?;
    let sectors = sector_samples(&mut stack.sections);
    let parent_idx = if l == 1 { None } else { Some(pi) };
    let mut out: Vec<CadCell> = Vec::new();
    // Interleave: sector 1, section 2, sector 3, …
    for (k, sec_sample) in sectors.iter().enumerate() {
        // Sector k (1-based stack index 2k+1).
        out.push(make_cell(
            cad,
            parent,
            parent_idx,
            Coord::Rat(sec_sample.clone()),
            2 * k + 1,
            polys,
            &stack,
            None,
            level_vars,
            ctx,
        )?);
        if k < stack.sections.len() {
            let section = &stack.sections[k];
            out.push(make_cell(
                cad,
                parent,
                parent_idx,
                Coord::Alg(section.root.clone()),
                2 * (k + 1),
                polys,
                &stack,
                Some(k),
                level_vars,
                ctx,
            )?);
        }
        if cells_so_far + out.len() > MAX_CELLS {
            return Err(QeError::Unsupported(format!(
                "CAD exceeded {MAX_CELLS} cells"
            )));
        }
    }
    Ok(out)
}

/// Zero-test of a lower-level polynomial at a parent sample via the sign
/// vector, falling back to direct evaluation.
fn zeroness_at_parent(
    cad: &Cad,
    parent: &CadCell,
    p: &MPoly,
    parent_vars: &[usize],
    ctx: &QeContext,
) -> Result<bool, QeError> {
    if let Some(c) = p.to_constant() {
        return Ok(c.is_zero());
    }
    let Some(norm) = normalize(p) else {
        return Ok(false); // effectively a nonzero constant
    };
    if let Some(id) = cad.registry.find(&norm) {
        if let Some(s) = parent.signs.get(&id) {
            return Ok(*s == Sign::Zero);
        }
    }
    // Not in the projection set (shouldn't happen for coefficients/discs,
    // but stay safe): exact evaluation where possible.
    match sample::sign_at(p, parent_vars, &parent.sample, ctx) {
        Ok(s) => Ok(s == Sign::Zero),
        Err(e) => Err(e),
    }
}

#[allow(clippy::too_many_arguments)]
fn make_cell(
    _cad: &Cad,
    parent: &CadCell,
    parent_idx: Option<usize>,
    coord: Coord,
    stack_pos: usize,
    polys: &[(usize, MPoly)],
    stack: &stack::Stack,
    section_k: Option<usize>,
    level_vars: &[usize],
    ctx: &QeContext,
) -> Result<CadCell, QeError> {
    let mut sample = parent.sample.clone();
    sample.push(coord);
    let mut index = parent.index.clone();
    index.push(stack_pos);
    let mut signs = parent.signs.clone();
    for (id, p) in polys {
        let structurally_zero = stack.nullified.contains(id)
            || section_k.is_some_and(|k| stack.sections[k].vanish.contains(id));
        let s = if structurally_zero {
            Sign::Zero
        } else {
            // Known nonzero at this sample: refinement terminates.
            sample::sign_at(p, level_vars, &sample, ctx)?
        };
        signs.insert(*id, s);
    }
    Ok(CadCell {
        parent: parent_idx,
        sample,
        index,
        signs,
    })
}

/// Exact sign of an arbitrary polynomial at a cell's sample point, using
/// structural zero information from the cell's sign vector.
pub fn sign_of_poly_at_cell(
    cad: &Cad,
    cell: &CadCell,
    p: &MPoly,
    ctx: &QeContext,
) -> Result<Sign, QeError> {
    if let Some(c) = p.to_constant() {
        return Ok(c.sign());
    }
    let level = cell.sample.len();
    let vars: Vec<usize> = cad.order[..level].to_vec();
    if let Some(norm) = normalize(p) {
        if let Some(id) = cad.registry.find(&norm) {
            if let Some(s) = cell.signs.get(&id) {
                if *s == Sign::Zero {
                    return Ok(Sign::Zero);
                }
                // Nonzero: if p equals its normal form up to a scalar, the
                // stored sign determines the sign — negated when
                // primitive() flipped a negative lex-leading coefficient.
                if &p.primitive() == cad.registry.get(id) {
                    let lead_sign = p.terms().last().map_or(Sign::Zero, |(_, c)| c.sign());
                    return Ok(if lead_sign == Sign::Neg { s.neg() } else { *s });
                }
                // Otherwise p differs from its normal form by repeated
                // factors; evaluate directly (value is nonzero).
                return sample::sign_at(p, &vars, &cell.sample, ctx);
            }
        }
    }
    sample::sign_at(p, &vars, &cell.sample, ctx)
}

/// Evaluate a pure quantifier-free formula at a cell's sample point.
pub fn eval_formula_at_cell(
    cad: &Cad,
    cell: &CadCell,
    f: &Formula,
    ctx: &QeContext,
) -> Result<bool, QeError> {
    match f {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Atom(a) => {
            let s = sign_of_poly_at_cell(cad, cell, &a.poly, ctx)?;
            Ok(a.op.accepts(s))
        }
        Formula::Not(b) => Ok(!eval_formula_at_cell(cad, cell, b, ctx)?),
        Formula::And(fs) => {
            for g in fs {
                if !eval_formula_at_cell(cad, cell, g, ctx)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(fs) => {
            for g in fs {
                if eval_formula_at_cell(cad, cell, g, ctx)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Rel(name, _) => Err(QeError::Schema(format!(
            "uninstantiated relation {name} in CAD matrix"
        ))),
        Formula::Quant(..) => Err(QeError::Unsupported("quantifier inside CAD matrix".into())),
    }
}

/// CAD-based quantifier elimination.
///
/// `matrix` must be pure (no relation symbols) and quantifier-free, in NNF;
/// `prefix` is the quantifier block (outermost first); `free` lists the free
/// variables in ascending order. The output is a DNF relation over the free
/// variables, equivalent to `prefix. matrix` (and sign-invariant formula
/// construction is retried with derivative augmentation on collision).
pub fn eliminate(
    matrix: &Formula,
    prefix: &[(Quantifier, usize)],
    free: &[usize],
    nvars: usize,
    ctx: &QeContext,
) -> Result<ConstraintRelation, QeError> {
    let mut order: Vec<usize> = free.to_vec();
    order.extend(prefix.iter().map(|(_, v)| *v));
    assert!(!order.is_empty(), "eliminate with no variables");
    // Gather matrix polynomials.
    let mut polys: Vec<MPoly> = Vec::new();
    collect_polys(matrix, &mut polys)?;
    let mut augmented = polys.clone();
    for attempt in 0..3 {
        let cad = build_cad(&augmented, &order, nvars, ctx)?;
        let truth = solution::evaluate_truth(&cad, matrix, prefix, free.len(), ctx)?;
        match solution::construct_formula(&cad, &truth, free.len(), nvars, ctx) {
            Ok(rel) => return Ok(rel),
            Err(QeError::FormulaConstruction(_)) if attempt < 2 => {
                // Augment with derivatives of the level polynomials
                // (Hong-style) and retry with a finer decomposition.
                let mut extra = Vec::new();
                for (_, p) in cad.registry.iter() {
                    let lvl = cad.level_of(p);
                    let d = p.derivative(cad.order[lvl - 1]);
                    if !d.is_constant() {
                        extra.push(d);
                    }
                }
                augmented.extend(extra);
            }
            Err(e) => return Err(e),
        }
    }
    Err(QeError::FormulaConstruction(
        "sign vectors still collide after augmentation".into(),
    ))
}

fn collect_polys(f: &Formula, out: &mut Vec<MPoly>) -> Result<(), QeError> {
    match f {
        Formula::True | Formula::False => Ok(()),
        Formula::Atom(a) => {
            if !a.poly.is_constant() && !out.contains(&a.poly) {
                out.push(a.poly.clone());
            }
            Ok(())
        }
        Formula::Not(b) => collect_polys(b, out),
        Formula::And(fs) | Formula::Or(fs) => {
            for g in fs {
                collect_polys(g, out)?;
            }
            Ok(())
        }
        Formula::Rel(name, _) => Err(QeError::Schema(format!(
            "uninstantiated relation {name} in CAD input"
        ))),
        Formula::Quant(..) => Err(QeError::Unsupported(
            "quantified matrix in CAD input".into(),
        )),
    }
}

/// Decide a sentence (no free variables): CAD of the quantified space plus
/// truth propagation to the root.
pub fn decide_sentence(
    matrix: &Formula,
    prefix: &[(Quantifier, usize)],
    nvars: usize,
    ctx: &QeContext,
) -> Result<bool, QeError> {
    if prefix.is_empty() {
        // Variable-free matrix.
        return matrix.eval_at(&[]).map_err(QeError::Unsupported);
    }
    let order: Vec<usize> = prefix.iter().map(|(_, v)| *v).collect();
    let mut polys = Vec::new();
    collect_polys(matrix, &mut polys)?;
    let cad = build_cad(&polys, &order, nvars, ctx)?;
    let truth = solution::evaluate_truth(&cad, matrix, prefix, 0, ctx)?;
    // With no free levels, `truth` holds the single root verdict.
    Ok(truth.root_truth)
}

/// Convenience: sample points of the top-level cells where `matrix` holds
/// (used by aggregate modules for region scanning).
pub fn true_cells<'c>(
    cad: &'c Cad,
    matrix: &Formula,
    ctx: &QeContext,
) -> Result<Vec<&'c CadCell>, QeError> {
    let mut out = Vec::new();
    for cell in cad.levels.last().into_iter().flatten() {
        if eval_formula_at_cell(cad, cell, matrix, ctx)? {
            out.push(cell);
        }
    }
    Ok(out)
}

/// Pick a fresh rational sample between stack neighbours (re-exported for
/// aggregate integration).
#[must_use]
pub fn cell_rational_sample(cell: &CadCell) -> Option<Vec<Rat>> {
    cell.sample
        .iter()
        .map(|c| match c {
            Coord::Rat(r) => Some(r.clone()),
            Coord::Alg(a) => a.to_rat(),
        })
        .collect()
}
