//! Truth propagation through quantifier blocks and solution formula
//! construction (the final phase of Appendix I's QE procedure).
//!
//! "Since each cylinder is partitioned in a finite number of cells, the
//! universal (respectively existential) quantifiers can be replaced by
//! finite conjunctions (respectively disjunctions)." Truth is evaluated at
//! top-level cells and folded down the stacks; the defining formulas of the
//! true free-space cells are assembled from the sign vectors of the
//! projection polynomials (Hong-style construction; the caller retries with
//! derivative augmentation when two cells share a vector but disagree).

use super::{eval_formula_at_cell, Cad};
use crate::{QeContext, QeError};
use cdb_constraints::{Atom, ConstraintRelation, Formula, GeneralizedTuple, Quantifier, RelOp};
use cdb_num::Sign;
use std::collections::BTreeMap;

/// Truth assignment produced by quantifier folding.
pub struct TruthTable {
    /// Truth per cell of the free level (`cad.levels[free_levels-1]`);
    /// empty when `free_levels == 0`.
    pub free_cell_truth: Vec<bool>,
    /// Verdict for the sentence case (`free_levels == 0`).
    pub root_truth: bool,
}

/// Evaluate the matrix on every finest cell, then fold the quantifier
/// prefix down to the free level.
pub fn evaluate_truth(
    cad: &Cad,
    matrix: &Formula,
    prefix: &[(Quantifier, usize)],
    free_levels: usize,
    ctx: &QeContext,
) -> Result<TruthTable, QeError> {
    let n = cad.levels.len();
    debug_assert_eq!(free_levels + prefix.len(), n);
    let top = &cad.levels[n - 1];
    let mut truth: Vec<bool> = Vec::with_capacity(top.len());
    for cell in top {
        truth.push(eval_formula_at_cell(cad, cell, matrix, ctx)?);
    }
    // Fold levels n → free_levels+1.
    for l in (free_levels + 1..=n).rev() {
        let (q, _) = prefix[l - 1 - free_levels];
        let cells = &cad.levels[l - 1];
        if l == 1 {
            // Fold into the virtual root.
            let verdict = match q {
                Quantifier::Exists => truth.iter().any(|&t| t),
                Quantifier::Forall => truth.iter().all(|&t| t),
            };
            return Ok(TruthTable {
                free_cell_truth: Vec::new(),
                root_truth: verdict,
            });
        }
        let parent_count = cad.levels[l - 2].len();
        let mut folded = vec![
            match q {
                Quantifier::Exists => false,
                Quantifier::Forall => true,
            };
            parent_count
        ];
        for (cell, t) in cells.iter().zip(&truth) {
            let p = cell.parent.ok_or_else(|| {
                QeError::Unsupported("truth fold: non-base cell without a parent".to_owned())
            })?;
            match q {
                Quantifier::Exists => folded[p] = folded[p] || *t,
                Quantifier::Forall => folded[p] = folded[p] && *t,
            }
        }
        truth = folded;
    }
    Ok(TruthTable {
        free_cell_truth: truth,
        root_truth: false,
    })
}

/// A cell's sign signature over the free-space projection polynomials.
type Signature = Vec<(usize, Sign)>;

/// Build the quantifier-free defining formula of the true region from the
/// free-level cells. Errors with [`QeError::FormulaConstruction`] when two
/// cells share a signature but disagree on truth (caller augments).
pub fn construct_formula(
    cad: &Cad,
    truth: &TruthTable,
    free_levels: usize,
    nvars: usize,
    _ctx: &QeContext,
) -> Result<ConstraintRelation, QeError> {
    assert!(
        free_levels >= 1,
        "sentence case is handled by decide_sentence"
    );
    let cells = &cad.levels[free_levels - 1];
    debug_assert_eq!(cells.len(), truth.free_cell_truth.len());
    // Group signatures.
    let mut groups: BTreeMap<Signature, bool> = BTreeMap::new();
    for (cell, &t) in cells.iter().zip(&truth.free_cell_truth) {
        let sig: Signature = cell.signs.iter().map(|(&id, &s)| (id, s)).collect();
        match groups.get(&sig) {
            Some(&prev) if prev != t => {
                return Err(QeError::FormulaConstruction(format!(
                    "cells with identical sign vector disagree ({} polys)",
                    sig.len()
                )));
            }
            _ => {
                groups.insert(sig, t);
            }
        }
    }
    let false_sigs: Vec<&Signature> = groups.iter().filter(|(_, &t)| !t).map(|(s, _)| s).collect();
    let mut tuples: Vec<GeneralizedTuple> = Vec::new();
    for (sig, t) in &groups {
        if !*t {
            continue;
        }
        // Greedy pruning: drop conditions not needed to exclude every false
        // signature. (Sound because cells are sign-invariant: a point lies
        // in some cell, and its signature decides membership.)
        let mut kept: Vec<(usize, Sign)> = sig.clone();
        let mut i = 0;
        while i < kept.len() {
            let mut trial = kept.clone();
            trial.remove(i);
            let excludes_all = false_sigs.iter().all(|fs| {
                // A false signature escapes if it satisfies every remaining
                // condition.
                !trial
                    .iter()
                    .all(|(id, s)| fs.iter().any(|(fid, fsig)| fid == id && fsig == s))
            });
            if excludes_all {
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        let atoms: Vec<Atom> = kept
            .iter()
            .map(|(id, s)| {
                let poly = cad.registry.get(*id).clone();
                let op = match s {
                    Sign::Neg => RelOp::Lt,
                    Sign::Zero => RelOp::Eq,
                    Sign::Pos => RelOp::Gt,
                };
                Atom::new(poly, op)
            })
            .collect();
        let tuple = GeneralizedTuple::new(nvars, atoms);
        if !tuples.contains(&tuple) {
            tuples.push(tuple);
        }
    }
    Ok(ConstraintRelation::new(nvars, tuples).simplify())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cad::build_cad;
    use cdb_num::Rat;
    use cdb_poly::MPoly;

    fn c(v: i64, n: usize) -> MPoly {
        MPoly::constant(Rat::from(v), n)
    }

    /// The paper's Figure 1, end to end through the CAD engine:
    /// ∃y (4x² − y − 20x + 25 ≤ 0 ∧ y ≤ 0) ⇔ 4x² − 20x + 25 = 0.
    #[test]
    fn figure1_via_cad() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let s_poly = &(&(&c(4, 2) * &x.pow(2)) - &y) - &(&(&c(20, 2) * &x) - &c(25, 2));
        let matrix = Formula::and(
            Formula::Atom(Atom::new(s_poly, RelOp::Le)),
            Formula::Atom(Atom::new(y.clone(), RelOp::Le)),
        );
        let ctx = QeContext::exact();
        let rel =
            crate::cad::eliminate(&matrix, &[(Quantifier::Exists, 1)], &[0], 2, &ctx).unwrap();
        // The answer is exactly {x = 5/2}.
        assert!(rel.satisfied_at(&["5/2".parse().unwrap(), Rat::zero()]));
        for v in ["0", "2", "3", "-5", "249/100", "251/100"] {
            assert!(
                !rel.satisfied_at(&[v.parse().unwrap(), Rat::zero()]),
                "x = {v} should be outside"
            );
        }
        // And it is a finite point set.
        let pts = rel.as_finite_points();
        if let Some(pts) = pts {
            assert_eq!(pts.len(), 1);
        }
    }

    /// ∃y (x² + y² < 1) ⇔ −1 < x < 1.
    #[test]
    fn circle_shadow() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let circle = &(&x.pow(2) + &y.pow(2)) - &c(1, 2);
        let matrix = Formula::Atom(Atom::new(circle, RelOp::Lt));
        let ctx = QeContext::exact();
        let rel =
            crate::cad::eliminate(&matrix, &[(Quantifier::Exists, 1)], &[0], 2, &ctx).unwrap();
        for (v, expect) in [
            ("0", true),
            ("99/100", true),
            ("-99/100", true),
            ("1", false),
            ("-1", false),
            ("3/2", false),
            ("-2", false),
        ] {
            assert_eq!(
                rel.satisfied_at(&[v.parse().unwrap(), Rat::zero()]),
                expect,
                "x = {v}"
            );
        }
    }

    /// ∀y (y² ≥ x) ⇔ x ≤ 0.
    #[test]
    fn forall_parabola() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &y.pow(2) - &x;
        let matrix = Formula::Atom(Atom::new(p, RelOp::Ge));
        let ctx = QeContext::exact();
        let rel =
            crate::cad::eliminate(&matrix, &[(Quantifier::Forall, 1)], &[0], 2, &ctx).unwrap();
        for (v, expect) in [
            ("0", true),
            ("-1", true),
            ("-100", true),
            ("1/100", false),
            ("4", false),
        ] {
            assert_eq!(
                rel.satisfied_at(&[v.parse().unwrap(), Rat::zero()]),
                expect,
                "x = {v}"
            );
        }
    }

    /// Sentences: ∃x (x² = 2) is true; ∀x (x² ≠ 2) is false; ∀x (x² ≥ 0) is
    /// true.
    #[test]
    fn sentences() {
        let x = MPoly::var(0, 1);
        let p = &x.pow(2) - &c(2, 1);
        let ctx = QeContext::exact();
        assert!(crate::cad::decide_sentence(
            &Formula::Atom(Atom::new(p.clone(), RelOp::Eq)),
            &[(Quantifier::Exists, 0)],
            1,
            &ctx,
        )
        .unwrap());
        assert!(!crate::cad::decide_sentence(
            &Formula::Atom(Atom::new(p, RelOp::Ne)),
            &[(Quantifier::Forall, 0)],
            1,
            &ctx,
        )
        .unwrap());
        let sq = MPoly::var(0, 1).pow(2);
        assert!(crate::cad::decide_sentence(
            &Formula::Atom(Atom::new(sq, RelOp::Ge)),
            &[(Quantifier::Forall, 0)],
            1,
            &ctx,
        )
        .unwrap());
    }

    /// Two quantifiers: ∃x∃y (x² + y² = 0 ∧ x = y) is true (origin).
    #[test]
    fn nested_exists() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let matrix = Formula::and(
            Formula::Atom(Atom::new(&x.pow(2) + &y.pow(2), RelOp::Eq)),
            Formula::Atom(Atom::new(&x - &y, RelOp::Eq)),
        );
        let ctx = QeContext::exact();
        assert!(crate::cad::decide_sentence(
            &matrix,
            &[(Quantifier::Exists, 0), (Quantifier::Exists, 1)],
            2,
            &ctx,
        )
        .unwrap());
    }

    /// Free variables with algebraic cell boundaries: ∃y (y² = x ∧ y ≥ 1)
    /// ⇔ x ≥ 1.
    #[test]
    fn algebraic_boundary() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let matrix = Formula::and(
            Formula::Atom(Atom::new(&y.pow(2) - &x, RelOp::Eq)),
            Formula::Atom(Atom::new(&y - &c(1, 2), RelOp::Ge)),
        );
        let ctx = QeContext::exact();
        let rel =
            crate::cad::eliminate(&matrix, &[(Quantifier::Exists, 1)], &[0], 2, &ctx).unwrap();
        for (v, expect) in [("0", false), ("1/2", false), ("1", true), ("4", true)] {
            assert_eq!(
                rel.satisfied_at(&[v.parse().unwrap(), Rat::zero()]),
                expect,
                "x = {v}"
            );
        }
    }

    /// CAD of a single variable decomposes the line correctly.
    #[test]
    fn base_cad_structure() {
        let x = MPoly::var(0, 1);
        let p = &x.pow(2) - &c(4, 1); // roots ±2
        let ctx = QeContext::exact();
        let cad = build_cad(&[p], &[0], 1, &ctx).unwrap();
        assert_eq!(cad.levels.len(), 1);
        // 2 sections + 3 sectors.
        assert_eq!(cad.levels[0].len(), 5);
        let dims: Vec<usize> = cad.levels[0]
            .iter()
            .map(super::super::CadCell::dimension)
            .collect();
        assert_eq!(dims, vec![1, 0, 1, 0, 1]);
    }
}
