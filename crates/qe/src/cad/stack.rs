//! CAD stack construction: lifting a cell of `R^{L−1}` to a stack of
//! sections and sectors in `R^L` (Appendix I, third phase).
//!
//! Exactness strategy (DESIGN.md §5):
//!
//! * **All-rational sample** — substitute and isolate over `Q`.
//! * **One algebraic coordinate `α`** — exact Sturm sequences in `Q(α)[y]`
//!   ([`cdb_poly::algebraic::AlgUPoly`]); each root is then *promoted* to a
//!   plain `RealAlg` over `Q` via the resultant `R(y) = res_x(m_α(x), p)`,
//!   so downstream levels never see field towers.
//! * **Several algebraic coordinates** — candidate roots from iterated
//!   resultants against each coordinate's minimal polynomial; membership is
//!   decided by exact sign changes at rational separators (sound because
//!   the fiber polynomial is squarefree whenever the discriminant sign at
//!   the base sample — known from the projection set — is nonzero;
//!   otherwise a typed error is raised, never a guess).

use super::sample::{as_alg_coeff_poly, sign_at, substitute_rationals, Coord};
use crate::{QeContext, QeError};
use cdb_num::{Int, Rat, Sign};
use cdb_poly::algebraic::{AlgUPoly, NumberField};
use cdb_poly::roots::RootLocation;
use cdb_poly::sturm::SturmChain;
use cdb_poly::{MPoly, RealAlg, UPoly};
use std::collections::BTreeSet;

/// A section of a stack: a root of one or more level polynomials.
#[derive(Clone, Debug)]
pub struct StackSection {
    /// The root, as an algebraic number over `Q`.
    pub root: RealAlg,
    /// Global ids of the level polynomials vanishing at this section.
    pub vanish: BTreeSet<usize>,
}

/// Result of analysing one fiber.
pub struct Stack {
    /// Sections in ascending order.
    pub sections: Vec<StackSection>,
    /// Level polynomials that vanish identically on the whole fiber.
    pub nullified: BTreeSet<usize>,
}

/// Build the stack of level polynomials `polys` (global id, polynomial) over
/// the sample point `sample` (coordinates of ambient variables `vars`),
/// extending in variable `yvar`.
///
/// `is_zero_lower` decides exactly whether a *lower-level* polynomial
/// vanishes at the base sample (resolved from the parent cell's sign vector
/// over the projection set).
pub fn build_stack(
    polys: &[(usize, MPoly)],
    vars: &[usize],
    sample: &[Coord],
    yvar: usize,
    is_zero_lower: &dyn Fn(&MPoly) -> Result<bool, QeError>,
    ctx: &QeContext,
) -> Result<Stack, QeError> {
    let mut nullified = BTreeSet::new();
    let mut merged: Vec<StackSection> = Vec::new();
    for (id, p) in polys {
        let roots = roots_in_fiber(*id, p, vars, sample, yvar, is_zero_lower, ctx)?;
        match roots {
            FiberRoots::Nullified => {
                nullified.insert(*id);
            }
            FiberRoots::Roots(rs) => {
                for r in rs {
                    merge_root(&mut merged, r, *id);
                }
            }
        }
    }
    Ok(Stack {
        sections: merged,
        nullified,
    })
}

enum FiberRoots {
    /// The polynomial vanishes identically on the fiber.
    Nullified,
    /// Ascending distinct roots.
    Roots(Vec<RealAlg>),
}

fn merge_root(merged: &mut Vec<StackSection>, root: RealAlg, id: usize) {
    // Insert in order, merging with an equal existing root (exact compare).
    for (i, s) in merged.iter_mut().enumerate() {
        match root.cmp_alg(&s.root) {
            std::cmp::Ordering::Equal => {
                s.vanish.insert(id);
                return;
            }
            std::cmp::Ordering::Less => {
                merged.insert(
                    i,
                    StackSection {
                        root,
                        vanish: BTreeSet::from([id]),
                    },
                );
                return;
            }
            std::cmp::Ordering::Greater => {}
        }
    }
    merged.push(StackSection {
        root,
        vanish: BTreeSet::from([id]),
    });
}

/// Roots of `p` restricted to the fiber over `sample`.
fn roots_in_fiber(
    _id: usize,
    p: &MPoly,
    vars: &[usize],
    sample: &[Coord],
    yvar: usize,
    is_zero_lower: &dyn Fn(&MPoly) -> Result<bool, QeError>,
    ctx: &QeContext,
) -> Result<FiberRoots, QeError> {
    let (q, algs) = substitute_rationals(p, vars, sample);
    ctx.observe_poly(&q)?;
    match algs.as_slice() {
        [] => {
            // Purely rational fiber polynomial.
            let u = q.to_upoly_in(yvar).ok_or_else(|| {
                QeError::Unsupported(
                    "fiber polynomial kept variables besides the stack variable".into(),
                )
            })?;
            if u.is_zero() {
                return Ok(FiberRoots::Nullified);
            }
            if u.is_constant() {
                return Ok(FiberRoots::Roots(Vec::new()));
            }
            Ok(FiberRoots::Roots(RealAlg::roots_of(&u)))
        }
        [one] => {
            let (avar, alpha) = one.clone();
            if !q.uses_var(yvar) {
                // Fiber polynomial is a function of α only.
                let u = q.to_upoly_in(avar).ok_or_else(|| {
                    QeError::Unsupported("fiber polynomial kept variables besides alpha".into())
                })?;
                return Ok(if alpha.sign_of(&u) == Sign::Zero {
                    FiberRoots::Nullified
                } else {
                    FiberRoots::Roots(Vec::new())
                });
            }
            let coeffs = as_alg_coeff_poly(&q, avar, yvar)
                .ok_or_else(|| QeError::Unsupported("mixed variables in fiber".into()))?;
            let field = NumberField::new(alpha.clone());
            let ap = AlgUPoly::new(field, coeffs);
            if ap.is_zero() {
                return Ok(FiberRoots::Nullified);
            }
            if ap.degree() == Some(0) {
                return Ok(FiberRoots::Roots(Vec::new()));
            }
            // Minimal-polynomial candidates over Q via resultant.
            let m_emb = MPoly::from_upoly(alpha.poly(), avar, q.nvars());
            let r = ctx.cache.resultant(&q, &m_emb, avar);
            let ru = r
                .to_upoly_in(yvar)
                .ok_or_else(|| QeError::Unsupported("resultant kept variables".into()))?;
            if ru.is_zero() {
                return Err(QeError::Unsupported(
                    "iterated resultant vanished identically".into(),
                ));
            }
            let sf_r = ru.squarefree();
            let chain = ctx.cache.sturm(&sf_r);
            let mut out = Vec::new();
            for loc in ap.isolate_roots() {
                out.push(promote_root(&ap, &loc, &sf_r, &chain)?);
            }
            Ok(FiberRoots::Roots(out))
        }
        _ => roots_multi_alg(p, &q, &algs, yvar, is_zero_lower, ctx),
    }
}

/// Promote a root of a `Q(α)[y]` polynomial (held in a rational isolating
/// location) to a `RealAlg` over `Q` with defining polynomial `sf_r`.
fn promote_root(
    ap: &AlgUPoly,
    loc: &RootLocation,
    sf_r: &UPoly,
    chain: &SturmChain,
) -> Result<RealAlg, QeError> {
    if let RootLocation::Exact(r) = loc {
        return Ok(RealAlg::from_rat(r.clone()));
    }
    // Refine the interval until it isolates exactly one root of sf_r with
    // non-root endpoints; the enclosed q-root is a root of sf_r, so they
    // then coincide.
    let mut width = loc.interval().width();
    for _ in 0..256 {
        let iv = ap.refine(loc, &width);
        if iv.width().is_zero() {
            return Ok(RealAlg::from_rat(iv.midpoint()));
        }
        let lo_ok = sf_r.sign_at(iv.lo()) != Sign::Zero;
        let hi_ok = sf_r.sign_at(iv.hi()) != Sign::Zero;
        if lo_ok && hi_ok && chain.count_roots_half_open(iv.lo(), iv.hi()) == 1 {
            return Ok(RealAlg::new(sf_r.clone(), RootLocation::Isolated(iv)));
        }
        width = &width * &Rat::from_ints(1, 4);
    }
    Err(QeError::IndeterminateSign(
        "could not promote algebraic root to Q".into(),
    ))
}

/// Root detection over a sample with ≥2 algebraic coordinates.
fn roots_multi_alg(
    p: &MPoly,
    q: &MPoly,
    algs: &[(usize, RealAlg)],
    yvar: usize,
    is_zero_lower: &dyn Fn(&MPoly) -> Result<bool, QeError>,
    ctx: &QeContext,
) -> Result<FiberRoots, QeError> {
    // Effective degree via coefficient zero-tests at the base sample; the
    // coefficients are lower-level polynomials whose signs are known from
    // the projection set.
    let coeffs = p.as_upoly_in(yvar);
    let mut d_eff: Option<usize> = None;
    for (j, c) in coeffs.iter().enumerate().rev() {
        let zero = if let Some(v) = c.to_constant() {
            v.is_zero()
        } else {
            is_zero_lower(c)?
        };
        if !zero {
            d_eff = Some(j);
            break;
        }
    }
    let Some(d_eff) = d_eff else {
        return Ok(FiberRoots::Nullified);
    };
    if d_eff == 0 {
        return Ok(FiberRoots::Roots(Vec::new()));
    }
    if d_eff >= 2 {
        // Squarefree-ness of the fiber polynomial: decided by the sign of
        // the discriminant at the base sample (a projection polynomial).
        let disc = ctx.cache.discriminant(p, yvar);
        let disc_zero = if let Some(v) = disc.to_constant() {
            v.is_zero()
        } else {
            is_zero_lower(&disc)?
        };
        if disc_zero {
            return Err(QeError::IndeterminateSign(
                "repeated fiber root over multi-algebraic sample".into(),
            ));
        }
    }
    // Candidates: eliminate every algebraic coordinate by resultants with
    // its minimal polynomial.
    let mut r = q.clone();
    for (v, a) in algs {
        let m_emb = MPoly::from_upoly(a.poly(), *v, q.nvars());
        r = ctx.cache.resultant(&r, &m_emb, *v);
        ctx.observe_poly(&r)?;
    }
    let ru = r
        .to_upoly_in(yvar)
        .ok_or_else(|| QeError::Unsupported("resultant kept variables".into()))?;
    if ru.is_zero() {
        return Err(QeError::Unsupported(
            "iterated resultant vanished identically".into(),
        ));
    }
    if ru.is_constant() {
        return Ok(FiberRoots::Roots(Vec::new()));
    }
    let sf_r = ru.squarefree();
    let candidates = RealAlg::roots_of(&sf_r);
    if candidates.is_empty() {
        return Ok(FiberRoots::Roots(Vec::new()));
    }
    // Rational separators around every candidate.
    let seps = separators(&candidates);
    // Sign of q at each separator (nonzero by construction).
    let mut signs = Vec::with_capacity(seps.len());
    for s in &seps {
        let qs = q.substitute(yvar, s);
        let sg = sign_nonzero_at(&qs, algs, ctx)?;
        signs.push(sg);
    }
    let mut out = Vec::new();
    for (j, cand) in candidates.iter().enumerate() {
        if signs[j] != signs[j + 1] {
            out.push(cand.clone());
        }
    }
    Ok(FiberRoots::Roots(out))
}

/// Rational points strictly interleaving the candidates: `seps[j] < root_j <
/// seps[j+1]`, and no separator is a root of the candidates' polynomial.
fn separators(candidates: &[RealAlg]) -> Vec<Rat> {
    let (Some(first), Some(last)) = (candidates.first(), candidates.last()) else {
        return Vec::new(); // no roots → no separators needed
    };
    let mut seps = Vec::with_capacity(candidates.len() + 1);
    seps.push(&first.interval().lo().clone() - &Rat::one());
    for w in candidates.windows(2) {
        let [below, above] = w else { continue };
        let b = below.interval().hi().clone();
        let a = above.interval().lo().clone();
        if b == a {
            seps.push(b);
        } else {
            seps.push(Rat::midpoint(&b, &a));
        }
    }
    seps.push(&last.interval().hi().clone() + &Rat::one());
    seps
}

/// Exact nonzero sign of a polynomial in algebraic coordinates only.
fn sign_nonzero_at(q: &MPoly, algs: &[(usize, RealAlg)], ctx: &QeContext) -> Result<Sign, QeError> {
    if let Some(c) = q.to_constant() {
        return Ok(c.sign());
    }
    let used: Vec<&(usize, RealAlg)> = algs.iter().filter(|(v, _)| q.uses_var(*v)).collect();
    if let [(v, a)] = used.as_slice() {
        if let Some(u) = q.to_upoly_in(*v) {
            return Ok(a.sign_of(&u));
        }
        // Not univariate after all — fall through to interval refinement.
    }
    // Multi-variable refinement (value is nonzero, so this terminates).
    let coords: Vec<Coord> = algs.iter().map(|(_, a)| Coord::Alg(a.clone())).collect();
    let vars: Vec<usize> = algs.iter().map(|(v, _)| *v).collect();
    sign_at(q, &vars, &coords, ctx)
}

/// Pick rational sector sample points interleaving the sections: one below,
/// one between each adjacent pair, one above. For an empty stack the single
/// sector sample is 0.
pub fn sector_samples(sections: &mut [StackSection]) -> Vec<Rat> {
    separate(sections);
    let (Some(first), Some(last)) = (sections.first(), sections.last()) else {
        return vec![Rat::zero()];
    };
    let mut out = Vec::with_capacity(sections.len() + 1);
    out.push(Rat::from(first.root.interval().lo().floor()) - Rat::one());
    for w in sections.windows(2) {
        let [below, above] = w else { continue };
        let b = below.root.interval().hi().clone();
        let a = above.root.interval().lo().clone();
        out.push(Rat::midpoint(&b, &a));
    }
    out.push(Rat::from(last.root.interval().hi().ceil()) + Rat::one());
    out
}

/// Refine section roots until their intervals are strictly disjoint
/// (`hi_i < lo_{i+1}`), so midpoints are valid sector samples.
fn separate(sections: &mut [StackSection]) {
    loop {
        let mut ok = true;
        for i in 0..sections.len().saturating_sub(1) {
            let b = sections[i].root.interval();
            let a = sections[i + 1].root.interval();
            // Degenerate (exact) intervals satisfy this as soon as the
            // neighbor's interval has been pushed past the point.
            let strict = b.hi() < a.lo();
            if !strict {
                ok = false;
            }
        }
        if ok {
            return;
        }
        for s in sections.iter_mut() {
            let w = &s.root.interval().width() * &Rat::from_ints(1, 4);
            let w = if w.is_zero() {
                Rat::new(Int::one(), Int::pow2(16))
            } else {
                w
            };
            s.root = s.root.refined(&w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: i64, n: usize) -> MPoly {
        MPoly::constant(Rat::from(v), n)
    }

    fn no_lower(_: &MPoly) -> Result<bool, QeError> {
        panic!("no lower-level zero-tests expected in this test")
    }

    #[test]
    fn rational_base_stack() {
        // Level polys in (x, y): circle x²+y²−1 and line y−x, over x = 0.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let circle = &(&x.pow(2) + &y.pow(2)) - &c(1, 2);
        let line = &y - &x;
        let ctx = QeContext::exact();
        let stack = build_stack(
            &[(0, circle), (1, line)],
            &[0],
            &[Coord::Rat(Rat::zero())],
            1,
            &no_lower,
            &ctx,
        )
        .unwrap();
        // Roots over x=0: circle: y = ±1; line: y = 0. Three sections.
        assert_eq!(stack.sections.len(), 3);
        assert!(stack.nullified.is_empty());
        assert_eq!(stack.sections[0].vanish, BTreeSet::from([0]));
        assert_eq!(stack.sections[1].vanish, BTreeSet::from([1]));
        assert_eq!(stack.sections[2].vanish, BTreeSet::from([0]));
        // Sector samples: 4 of them, interleaved.
        let mut sections = stack.sections;
        let samples = sector_samples(&mut sections);
        assert_eq!(samples.len(), 4);
        for (i, s) in samples.iter().enumerate() {
            if i > 0 {
                assert_eq!(sections[i - 1].root.cmp_rat(s), std::cmp::Ordering::Less);
            }
            if i < sections.len() {
                assert_eq!(sections[i].root.cmp_rat(s), std::cmp::Ordering::Greater);
            }
        }
    }

    #[test]
    fn shared_root_merges() {
        // p = y² − 2 and q = y − x over x = √2: common root y = √2.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &y.pow(2) - &c(2, 2);
        let q = &y - &x;
        let sqrt2 = RealAlg::roots_of(&UPoly::from_ints(&[-2, 0, 1]))
            .pop()
            .unwrap();
        let ctx = QeContext::exact();
        let stack = build_stack(
            &[(0, p), (1, q)],
            &[0],
            &[Coord::Alg(sqrt2)],
            1,
            &no_lower,
            &ctx,
        )
        .unwrap();
        // Sections: −√2 (p only) and √2 (both).
        assert_eq!(stack.sections.len(), 2);
        assert_eq!(stack.sections[0].vanish, BTreeSet::from([0]));
        assert_eq!(stack.sections[1].vanish, BTreeSet::from([0, 1]));
    }

    #[test]
    fn nullified_detection_rational() {
        // p = x·y over x = 0: identically zero on the fiber.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &x * &y;
        let ctx = QeContext::exact();
        let stack = build_stack(
            &[(0, p)],
            &[0],
            &[Coord::Rat(Rat::zero())],
            1,
            &no_lower,
            &ctx,
        )
        .unwrap();
        assert!(stack.sections.is_empty());
        assert_eq!(stack.nullified, BTreeSet::from([0]));
    }

    #[test]
    fn algebraic_base_parabola() {
        // p = y − x² over x = √2: root y = 2 (rational!).
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &y - &x.pow(2);
        let sqrt2 = RealAlg::roots_of(&UPoly::from_ints(&[-2, 0, 1]))
            .pop()
            .unwrap();
        let ctx = QeContext::exact();
        let stack = build_stack(&[(7, p)], &[0], &[Coord::Alg(sqrt2)], 1, &no_lower, &ctx).unwrap();
        assert_eq!(stack.sections.len(), 1);
        let root = &stack.sections[0].root;
        assert_eq!(root.cmp_rat(&Rat::from(2i64)), std::cmp::Ordering::Equal);
    }

    #[test]
    fn empty_stack_sector_sample() {
        let mut sections: Vec<StackSection> = Vec::new();
        assert_eq!(sector_samples(&mut sections), vec![Rat::zero()]);
    }
}
