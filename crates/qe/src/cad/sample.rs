//! Sample points with rational and real algebraic coordinates, and exact
//! sign evaluation of polynomials at them.

use crate::{QeContext, QeError};
use cdb_num::{fintv, FIntv, Rat, RatInterval, Sign};
use cdb_poly::{MPoly, RealAlg, UPoly};
use std::fmt;

/// One coordinate of a CAD sample point. Every algebraic coordinate carries
/// its own minimal polynomial over `Q` (no field towers — see DESIGN.md).
#[derive(Clone)]
pub enum Coord {
    /// Exact rational.
    Rat(Rat),
    /// Real algebraic number over `Q`.
    Alg(RealAlg),
}

impl Coord {
    /// Rational value if rational.
    #[must_use]
    pub fn as_rat(&self) -> Option<&Rat> {
        match self {
            Coord::Rat(r) => Some(r),
            Coord::Alg(a) => {
                // RealAlg may be exactly rational.
                let _ = a;
                None
            }
        }
    }

    /// `f64` approximation (for reporting).
    #[must_use]
    // cdb-lint: allow(float) — display/reporting widening only: the value
    // feeds `Debug` output and CLI summaries, never a sign decision or a
    // stored relation (those go through `interval()` / exact arithmetic).
    pub fn to_f64(&self) -> f64 {
        match self {
            Coord::Rat(r) => r.to_f64(),
            Coord::Alg(a) => a.to_f64(),
        }
    }

    /// Enclosing interval.
    #[must_use]
    pub fn interval(&self) -> RatInterval {
        match self {
            Coord::Rat(r) => RatInterval::point(r.clone()),
            Coord::Alg(a) => a.interval(),
        }
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Coord::Rat(r) => write!(f, "{r}"),
            // cdb-lint: allow(float-taint) — Debug rendering only; the float
            // goes to the formatter, never into result bytes
            Coord::Alg(a) => write!(f, "≈{:.6}", a.to_f64()),
        }
    }
}

/// Substitute the rational coordinates of `sample` into `p`. `sample[i]`
/// corresponds to ambient variable `vars[i]`. Returns the reduced polynomial
/// and the ambient indices of the remaining (algebraic) coordinates.
#[must_use]
pub fn substitute_rationals(
    p: &MPoly,
    vars: &[usize],
    sample: &[Coord],
) -> (MPoly, Vec<(usize, RealAlg)>) {
    let mut q = p.clone();
    let mut algs = Vec::new();
    for (i, c) in sample.iter().enumerate() {
        match c {
            Coord::Rat(r) => q = q.substitute(vars[i], r),
            Coord::Alg(a) => {
                if let Some(r) = a.to_rat() {
                    q = q.substitute(vars[i], &r);
                } else {
                    algs.push((vars[i], a.clone()));
                }
            }
        }
    }
    // Only keep algebraic vars that still occur.
    algs.retain(|(v, _)| q.uses_var(*v));
    (q, algs)
}

/// Exact sign of `p` at the sample (coordinates for `vars`).
///
/// * All-rational: exact evaluation.
/// * One algebraic coordinate: exact via [`RealAlg::sign_of`] (zero decided
///   by gcd).
/// * Several algebraic coordinates: interval refinement, which can *refute*
///   but never prove zero — callers must only use this when the value is
///   known nonzero, or accept [`QeError::IndeterminateSign`].
pub fn sign_at(
    p: &MPoly,
    vars: &[usize],
    sample: &[Coord],
    ctx: &QeContext,
) -> Result<Sign, QeError> {
    ctx.sign_evals.add(1);
    let (q, algs) = substitute_rationals(p, vars, sample);
    if let Some(c) = q.to_constant() {
        return Ok(c.sign());
    }
    match algs.as_slice() {
        [] => Err(QeError::Unsupported(format!(
            "sign_at: nonconstant polynomial {q} with no remaining variables"
        ))),
        [(v, alpha)] => {
            let u = q.to_upoly_in(*v).ok_or_else(|| {
                QeError::Unsupported(format!(
                    "sign_at: {q} not univariate in its single remaining variable"
                ))
            })?;
            Ok(alpha.sign_of(&u))
        }
        _ => sign_by_refinement(&q, &algs),
    }
}

/// Interval-refinement sign determination for ≥2 algebraic coordinates.
///
/// Each round first evaluates over outward-rounded `f64` enclosures
/// ([`eval_fintv`]); the exact `RatInterval` evaluation only runs when the
/// float enclosure straddles zero. A definite float sign implies the exact
/// evaluation over the same enclosures is definite with the same sign
/// (float intervals contain the exact ones), so the refinement trajectory —
/// and therefore every downstream byte of output — is identical with the
/// filter on or off.
fn sign_by_refinement(q: &MPoly, algs: &[(usize, RealAlg)]) -> Result<Sign, QeError> {
    let mut current: Vec<(usize, RealAlg)> = algs.to_vec();
    for _ in 0..64 {
        if fintv::filter_enabled() {
            if let Some(s) = eval_fintv(q, &current).sign() {
                fintv::note_filter_hit();
                return Ok(s);
            }
            fintv::note_filter_fallback();
        }
        let iv = eval_interval(q, &current);
        if let Some(s) = iv.sign() {
            return Ok(s);
        }
        // Halve every enclosure.
        current = current
            .iter()
            .map(|(v, a)| {
                let w = &a.interval().width() * &Rat::from_ints(1, 4);
                let w = if w.is_zero() {
                    Rat::from_ints(1, 1024)
                } else {
                    w
                };
                (*v, a.refined(&w))
            })
            .collect();
    }
    Err(QeError::IndeterminateSign(format!(
        "interval refinement did not converge for {q}"
    )))
}

/// Split-word float evaluation of `q` over outward-rounded hulls of its
/// algebraic coordinates' isolating intervals. The result encloses the exact
/// [`eval_interval`] result over the same enclosures.
fn eval_fintv(q: &MPoly, algs: &[(usize, RealAlg)]) -> FIntv {
    let hulls: Vec<(usize, FIntv)> = algs
        .iter()
        .map(|(v, a)| {
            let iv = a.interval();
            (*v, FIntv::from_rat_endpoints(iv.lo(), iv.hi()))
        })
        .collect();
    let mut acc = FIntv::zero();
    for (mono, coeff) in q.terms() {
        let mut term = FIntv::from(coeff);
        for (i, e) in mono.exps().enumerate() {
            if e == 0 {
                continue;
            }
            let (_, h) = hulls
                .iter()
                .find(|(v, _)| *v == i)
                // cdb-lint: allow(panic) — a missing enclosure is an internal
                // invariant violation; treating the factor as 1 would return a
                // wrong *sign*, so failing loudly is the safe behaviour.
                .unwrap_or_else(|| panic!("variable {i} has no enclosure"));
            term = term.mul(&h.pow(e));
        }
        acc = acc.add(&term);
    }
    acc
}

/// Interval evaluation of `q` over enclosures of its algebraic coordinates.
fn eval_interval(q: &MPoly, algs: &[(usize, RealAlg)]) -> RatInterval {
    let mut acc = RatInterval::point(Rat::zero());
    for (mono, coeff) in q.terms() {
        let mut term = RatInterval::point(coeff.clone());
        for (i, e) in mono.exps().enumerate() {
            if e == 0 {
                continue;
            }
            // A missing enclosure is an internal invariant violation; in a
            // release build silently treating the factor as 1 would return
            // a *wrong sign*, so fail loudly instead.
            let (_, a) = algs
                .iter()
                .find(|(v, _)| *v == i)
                // cdb-lint: allow(panic) — same invariant as `eval_fintv`:
                // a silent fallback would yield a wrong sign, so fail loudly.
                .unwrap_or_else(|| panic!("variable {i} has no enclosure"));
            term = term.mul(&a.interval().pow(e));
        }
        acc = acc.add(&term);
    }
    acc
}

/// Reduce `q` (free of rational coordinates) to a polynomial in `Q[α][y]`:
/// coefficients of `y = yvar` as univariate polynomials in the single
/// algebraic coordinate `avar`.
#[must_use]
pub fn as_alg_coeff_poly(q: &MPoly, avar: usize, yvar: usize) -> Option<Vec<UPoly>> {
    let coeffs = q.as_upoly_in(yvar);
    coeffs.iter().map(|c| c.to_upoly_in(avar)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sqrt2() -> RealAlg {
        RealAlg::roots_of(&UPoly::from_ints(&[-2, 0, 1]))
            .pop()
            .unwrap()
    }

    fn sqrt3() -> RealAlg {
        RealAlg::roots_of(&UPoly::from_ints(&[-3, 0, 1]))
            .pop()
            .unwrap()
    }

    #[test]
    fn all_rational_sign() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&x * &y) - &MPoly::constant(Rat::from(2i64), 2);
        let ctx = QeContext::exact();
        let s = sign_at(
            &p,
            &[0, 1],
            &[Coord::Rat(Rat::from(1i64)), Coord::Rat(Rat::from(2i64))],
            &ctx,
        )
        .unwrap();
        assert_eq!(s, Sign::Zero);
        let s2 = sign_at(
            &p,
            &[0, 1],
            &[Coord::Rat(Rat::from(1i64)), Coord::Rat(Rat::from(3i64))],
            &ctx,
        )
        .unwrap();
        assert_eq!(s2, Sign::Pos);
    }

    #[test]
    fn one_algebraic_exact_zero() {
        // p = x² − 2 at x = √2 (exact zero), y irrelevant.
        let x = MPoly::var(0, 2);
        let p = &x.pow(2) - &MPoly::constant(Rat::from(2i64), 2);
        let ctx = QeContext::exact();
        let s = sign_at(
            &p,
            &[0, 1],
            &[Coord::Alg(sqrt2()), Coord::Rat(Rat::zero())],
            &ctx,
        )
        .unwrap();
        assert_eq!(s, Sign::Zero);
    }

    #[test]
    fn two_algebraic_refinement() {
        // √2·√3 − 2 > 0 (≈ 0.449); refinement must decide.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&x * &y) - &MPoly::constant(Rat::from(2i64), 2);
        let ctx = QeContext::exact();
        let s = sign_at(
            &p,
            &[0, 1],
            &[Coord::Alg(sqrt2()), Coord::Alg(sqrt3())],
            &ctx,
        )
        .unwrap();
        assert_eq!(s, Sign::Pos);
        // √2·√3 − 3 < 0 (≈ −0.551).
        let q = &(&x * &y) - &MPoly::constant(Rat::from(3i64), 2);
        let s2 = sign_at(
            &q,
            &[0, 1],
            &[Coord::Alg(sqrt2()), Coord::Alg(sqrt3())],
            &ctx,
        )
        .unwrap();
        assert_eq!(s2, Sign::Neg);
    }

    #[test]
    fn mixed_rational_algebraic() {
        // p = x·y − √2·3: at (√2, 3) → 3√2 − 3√2 = 0? Use p = x·y − 3x:
        // at (√2, 3): zero, detected exactly via the single-alg path.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&x * &y) - &x.scale(&Rat::from(3i64));
        let ctx = QeContext::exact();
        let s = sign_at(
            &p,
            &[0, 1],
            &[Coord::Alg(sqrt2()), Coord::Rat(Rat::from(3i64))],
            &ctx,
        )
        .unwrap();
        assert_eq!(s, Sign::Zero);
    }
}
