//! Deterministic scoped-thread fan-out for the QE pipeline.
//!
//! The build environment is offline (no `rayon`), so parallelism is plain
//! [`std::thread::scope`] over a shared atomic work queue. Determinism
//! contract: results are collected **in input order**, and the reported
//! error (if any) is the lowest-index error — the same one the sequential
//! loop would have hit first.
//!
//! Work is claimed in **chunks** of consecutive indices (one `fetch_add`
//! and one slot-mutex lock per chunk, not per item), so fan-outs over many
//! cheap jobs — the 96-disjunct linear FM workload of E16 — no longer pay
//! a SeqCst atomic plus a lock per job. Chunks are handed out in ascending
//! order and every claimed chunk is processed to completion (or to its own
//! first error), which is what keeps the lowest-index-error guarantee: the
//! first error the sequential loop would hit lives in a chunk at or below
//! any chunk whose error triggered the stop flag, and that chunk was
//! necessarily claimed earlier.

use crate::QeError;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A chunk's publication slot: `None` until the owning worker stores the
/// chunk's results (full-length, or ending at the chunk's first error).
type ChunkSlot<U> = Mutex<Option<Vec<Result<U, QeError>>>>;

/// Number of chunks each worker should get on average: small enough that
/// the claim traffic is negligible, large enough to rebalance when chunk
/// costs are skewed.
const CHUNKS_PER_WORKER: usize = 4;

/// Chunk length for `n` items over `workers` threads: `n / workers`
/// shrunk by an oversubscription factor so uneven chunks can still be
/// rebalanced, floored at 1 (heavyweight jobs keep per-item claiming).
fn chunk_len(n: usize, workers: usize) -> usize {
    (n / (workers * CHUNKS_PER_WORKER)).max(1)
}

/// Map `f` over `items` on up to `workers` scoped threads, preserving input
/// order. With `workers <= 1` (or at most one item) this degenerates to the
/// plain sequential iterator — no threads are spawned.
///
/// Shared export: the same fan-out drives disjunct-level parallelism inside
/// this crate, the per-rule QE jobs of the `cdb-datalog` semi-naive
/// fixpoint, and the batched query admission of `cdb-server`.
pub fn par_map_result<T: Sync, U: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(&T) -> Result<U, QeError> + Sync,
) -> Result<Vec<U>, QeError> {
    let n = items.len();
    // Never run more threads than the hardware can: oversubscribing a
    // CPU-bound fan-out only adds scheduling overhead, and the determinism
    // contract makes the worker count unobservable in the output (the
    // byte-identity property tests quantify over worker counts).
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let workers = workers.clamp(1, n.max(1)).min(hw);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    chunked_map(items, workers, f)
}

/// The threaded fan-out body: `workers >= 2` scoped threads (the caller's
/// thread is worker 0) over chunk-claimed slots. Private so the public
/// entry point can clamp to the hardware; unit tests call this directly to
/// exercise the threaded path regardless of the host's core count.
fn chunked_map<T: Sync, U: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(&T) -> Result<U, QeError> + Sync,
) -> Result<Vec<U>, QeError> {
    let n = items.len();
    let chunk = chunk_len(n, workers);
    let nchunks = n.div_ceil(chunk);
    // SeqCst per the determinism rule: claim order and the stop flag gate
    // which slots get filled, so their ordering must not be architecture-
    // dependent. A poisoned slot mutex means a worker panicked mid-store;
    // the stored value (if any) is a fully-written `Some(..)`, so
    // recovering the inner value is sound.
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    // One slot per *chunk*: each chunk is exclusively owned by the worker
    // that claimed it, so a single lock per chunk publishes all its
    // results. A stored vector is either full-length (all Ok) or ends at
    // the chunk's first error.
    let slots: Vec<ChunkSlot<U>> = (0..nchunks).map(|_| Mutex::new(None)).collect();
    let work = || loop {
        // The stop flag is consulted only *between* chunk claims; a
        // claimed chunk always runs to completion (or to its own first
        // error). Abandoning a chunk mid-way could leave a hole below
        // another worker's error, losing the lowest-index-error guarantee.
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let start = next.fetch_add(chunk, Ordering::SeqCst);
        if start >= n {
            break;
        }
        let end = (start + chunk).min(n);
        let mut results: Vec<Result<U, QeError>> = Vec::with_capacity(end - start);
        for item in &items[start..end] {
            let r = f(item);
            let is_err = r.is_err();
            results.push(r);
            if is_err {
                stop.store(true, Ordering::SeqCst);
                break;
            }
        }
        *slots[start / chunk]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(results);
    };
    std::thread::scope(|s| {
        // The calling thread is worker 0: only `workers - 1` threads are
        // spawned, keeping one spawn off the critical path (and letting
        // small fan-outs run mostly in-place on oversubscribed hosts).
        for _ in 1..workers {
            s.spawn(work);
        }
        work();
    });
    // Chunks are claimed contiguously from index 0, so unclaimed chunks
    // form a suffix; scanning in order meets the lowest-index error (if
    // any) before reaching it.
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            Some(results) => {
                for r in results {
                    out.push(r?);
                }
            }
            None => {
                return Err(QeError::Unsupported(
                    "parallel fan-out: unclaimed work chunk without a prior error".to_owned(),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map_result(&items, 8, |&x| Ok(x * x)).unwrap();
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        // Forced-thread variant: the same contract holds on the threaded
        // path even when the host has a single hardware thread.
        let out = chunked_map(&items, 8, |&x| Ok(x * x)).unwrap();
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_degenerate_case() {
        let items = [1u64, 2, 3];
        let out = par_map_result(&items, 1, |&x| Ok(x + 1)).unwrap();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn reports_lowest_index_error() {
        let items: Vec<u64> = (0..64).collect();
        let err = chunked_map(&items, 8, |&x| {
            if x >= 10 {
                Err(QeError::Unsupported(format!("item {x}")))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert_eq!(err, QeError::Unsupported("item 10".into()));
    }

    #[test]
    fn empty_input() {
        let items: [u64; 0] = [];
        let out = par_map_result(&items, 4, |&x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_len_scales_with_input() {
        // 96 cheap jobs over 2 workers: 12-item chunks (8 claims total)
        // instead of 96 single-item claims.
        assert_eq!(chunk_len(96, 2), 12);
        // Few heavyweight jobs: per-item claiming preserved.
        assert_eq!(chunk_len(6, 4), 1);
        assert_eq!(chunk_len(1, 2), 1);
    }

    /// Error in the middle of a chunk: everything below it is still
    /// collected deterministically and the chunk's own first error wins
    /// over later chunks' errors.
    #[test]
    fn mid_chunk_error_is_lowest_index() {
        let items: Vec<u64> = (0..97).collect(); // non-multiple of chunk len
        for workers in [2, 3, 8] {
            let err = chunked_map(&items, workers, |&x| {
                if x == 13 || x >= 40 {
                    Err(QeError::Unsupported(format!("item {x}")))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
            assert_eq!(err, QeError::Unsupported("item 13".into()));
        }
    }

    /// Same output for every worker count, including chunk-boundary sizes.
    #[test]
    fn worker_count_invariance() {
        for n in [1usize, 2, 7, 16, 95, 96, 97] {
            let items: Vec<u64> = (0..n as u64).collect();
            let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
            for workers in [1usize, 2, 3, 4, 9] {
                let out = par_map_result(&items, workers, |&x| Ok(x * 3 + 1)).unwrap();
                assert_eq!(out, expect, "n={n} workers={workers}");
                if workers > 1 && n > 1 {
                    let out = chunked_map(&items, workers.min(n), |&x| Ok(x * 3 + 1)).unwrap();
                    assert_eq!(out, expect, "forced threads, n={n} workers={workers}");
                }
            }
        }
    }
}
