//! Deterministic scoped-thread fan-out for the QE pipeline.
//!
//! The build environment is offline (no `rayon`), so parallelism is plain
//! [`std::thread::scope`] over a shared atomic work queue. Determinism
//! contract: results are collected **in input order**, and the reported
//! error (if any) is the lowest-index error — the same one the sequential
//! loop would have hit first. Indices are claimed monotonically, so every
//! index below the first stored error has completed successfully by the
//! time the scope joins.

use crate::QeError;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` on up to `workers` scoped threads, preserving input
/// order. With `workers <= 1` (or at most one item) this degenerates to the
/// plain sequential iterator — no threads are spawned.
///
/// Shared export: the same fan-out drives disjunct-level parallelism inside
/// this crate and the per-rule QE jobs of the `cdb-datalog` semi-naive
/// fixpoint.
pub fn par_map_result<T: Sync, U: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(&T) -> Result<U, QeError> + Sync,
) -> Result<Vec<U>, QeError> {
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    // SeqCst per the determinism rule: claim order and the stop flag gate
    // which slots get filled, so their ordering must not be architecture-
    // dependent. A poisoned slot mutex means a worker panicked mid-store;
    // the stored value (if any) is a fully-written `Some(r)`, so recovering
    // the inner value is sound.
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<U, QeError>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                if r.is_err() {
                    stop.store(true, Ordering::SeqCst);
                }
                *slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            // Unclaimed slots only exist past the first error, which the
            // scan above returns before reaching them.
            None => {
                return Err(QeError::Unsupported(
                    "parallel fan-out: unclaimed work slot without a prior error".to_owned(),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map_result(&items, 8, |&x| Ok(x * x)).unwrap();
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_degenerate_case() {
        let items = [1u64, 2, 3];
        let out = par_map_result(&items, 1, |&x| Ok(x + 1)).unwrap();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn reports_lowest_index_error() {
        let items: Vec<u64> = (0..64).collect();
        let err = par_map_result(&items, 8, |&x| {
            if x >= 10 {
                Err(QeError::Unsupported(format!("item {x}")))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert_eq!(err, QeError::Unsupported("item 10".into()));
    }

    #[test]
    fn empty_input() {
        let items: [u64; 0] = [];
        let out = par_map_result(&items, 4, |&x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }
}
