//! Per-disjunct cost-based planning for quantifier elimination
//! (DESIGN.md §16) — the single entry point the pipeline routes through.
//!
//! The paper's pipeline picks one engine for the *whole* matrix: FM if
//! every disjunct is linear, CAD otherwise — so a single curved atom drags
//! an otherwise-linear relation into the most expensive algorithm. But `∃`
//! distributes over the DNF disjuncts, so each disjunct can be classified
//! independently, per variable, into the cheapest applicable eliminator:
//!
//! | rank | strategy | applies when (per disjunct, target `v`) |
//! |------|----------|------------------------------------------|
//! | 0 | substitution | an `=` atom linear in `v` with constant coefficient |
//! | 1 | Fourier–Motzkin | every atom using `v` is linear in `v` (constant coefficient) |
//! | 2 | quadratic ([`crate::quad1`]) | degree ≤ 2 in `v`, constant lead, ≤ 1 quadratic atom |
//! | 3 | CAD fallback | everything else |
//!
//! Within a run of identical quantifiers (adjacent `∃∃` / `∀∀` commute) the
//! planner also picks the elimination *order*: cheapest strategy rank
//! first, fewest atom occurrences as the tie-break, innermost position
//! last — substituting a pinned variable first can collapse a disjunct
//! that would otherwise need CAD.
//!
//! Determinism: disjunct jobs fan through [`par_map_result`], which merges
//! results in input order; the cross-disjunct dedup therefore sees tuples
//! in exactly the sequential order, so output is byte-identical for every
//! worker count. `∀` runs go through `¬∃¬` when the relation is linear (or
//! when a forced mode demands it); nonlinear `∀` keeps the pre-planner
//! whole-relation CAD. [`crate::PlanMode::ForceCAD`] reproduces the old
//! pipeline exactly; `ForceFM` / `ForceQuad` never fall back — they return
//! [`QeError::PlanUnsupported`] on a disjunct outside their class.

use crate::cad;
use crate::linear;
use crate::par::par_map_result;
use crate::quad1;
use crate::{PlanMode, QeContext, QeError};
use cdb_constraints::formula::relation_to_formula;
use cdb_constraints::{Atom, ConstraintRelation, Formula, GeneralizedTuple, Quantifier, RelOp};
use cdb_num::Sign;
use cdb_poly::MPoly;
// cdb-lint: allow(determinism) — wall-clock readings feed only the
// per-strategy PlanStats diagnostics surfaced in E16/E23 JSON; no
// result-producing decision reads them.
use std::time::Instant;

/// The eliminator chosen for one (disjunct, variable) step, cheapest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Strategy {
    /// Linear-equality substitution — no case splits at all.
    Subst,
    /// Fourier–Motzkin bound pairing (atoms not using the variable pass
    /// through at any degree).
    Fm,
    /// Quadratic root-interval elimination ([`crate::quad1`]).
    Quad,
    /// Per-disjunct cylindrical algebraic decomposition.
    Cad,
}

fn rank(s: Strategy) -> u8 {
    match s {
        Strategy::Subst => 0,
        Strategy::Fm => 1,
        Strategy::Quad => 2,
        Strategy::Cad => 3,
    }
}

/// Index of an `=` atom linear in `var` with a constant (nonzero)
/// coefficient, if any — the substitution eliminator's anchor.
fn find_subst_atom(tuple: &GeneralizedTuple, var: usize) -> Option<usize> {
    tuple.atoms().iter().position(|a| {
        a.op == RelOp::Eq && a.poly.degree_in(var) == 1 && lead_constant(&a.poly, var).is_some()
    })
}

/// The leading coefficient of `p` viewed as univariate in `var`, when that
/// coefficient is a constant (the shape every non-CAD eliminator needs).
fn lead_constant(p: &MPoly, var: usize) -> Option<cdb_num::Rat> {
    p.as_upoly_in(var).last().and_then(MPoly::to_constant)
}

/// True iff Fourier–Motzkin can eliminate `var`: every atom *using* `var`
/// is linear in it with a constant coefficient. Atoms not using `var` pass
/// through regardless of their degree (the interval-intersection argument
/// never touches them), which is what lets FM handle disjuncts the
/// whole-matrix `is_linear` test would have sent to CAD.
fn fm_applicable(tuple: &GeneralizedTuple, var: usize) -> bool {
    tuple.atoms().iter().all(|a| {
        a.poly.degree_in(var) == 0
            || (a.poly.degree_in(var) == 1 && lead_constant(&a.poly, var).is_some())
    })
}

/// Classify one disjunct for eliminating `∃ var`: the cheapest applicable
/// strategy in the table above.
#[must_use]
pub fn classify(tuple: &GeneralizedTuple, var: usize) -> Strategy {
    if find_subst_atom(tuple, var).is_some() {
        Strategy::Subst
    } else if fm_applicable(tuple, var) {
        Strategy::Fm
    } else if quad1::applicable(tuple, var) {
        Strategy::Quad
    } else {
        Strategy::Cad
    }
}

/// Substitution eliminator: `c·v + r = 0` pins `v = −r/c`; Horner-evaluate
/// every other atom at the pinned value (sound at any degree — this is how
/// a linear equality rescues an otherwise-CAD disjunct). Returns `None`
/// when the result is contradictory.
pub(crate) fn subst_eliminate_tuple(
    tuple: &GeneralizedTuple,
    var: usize,
    ctx: &QeContext,
) -> Result<Option<GeneralizedTuple>, QeError> {
    let nvars = tuple.nvars();
    let (idx, c, rest) = find_subst_atom(tuple, var)
        .and_then(|i| {
            let coeffs = tuple.atoms().get(i)?.poly.as_upoly_in(var);
            let c = coeffs.last().and_then(MPoly::to_constant)?;
            Some((i, c, coeffs.into_iter().next()?))
        })
        .ok_or_else(|| {
            QeError::PlanUnsupported(format!("substitution: no linear equality atom in x{var}"))
        })?;
    let sub = rest.scale(&(-c.recip())); // v := −rest/c
    ctx.observe_poly(&sub)?;
    let mut atoms = Vec::with_capacity(tuple.atoms().len() - 1);
    for (i, atom) in tuple.atoms().iter().enumerate() {
        if i == idx {
            continue; // becomes 0 = 0
        }
        if !atom.poly.uses_var(var) {
            atoms.push(atom.clone());
            continue;
        }
        let cs = atom.poly.as_upoly_in(var);
        let mut acc = cs.last().cloned().unwrap_or_else(|| MPoly::zero(nvars));
        for lower in cs.iter().rev().skip(1) {
            acc = &(&acc * &sub) + lower;
        }
        ctx.observe_poly(&acc)?;
        atoms.push(Atom::new(acc, atom.op));
    }
    Ok(GeneralizedTuple::new(nvars, atoms).simplify())
}

/// Generalized Fourier–Motzkin on one disjunct (`≠` atoms using `var`
/// already split): isolate `var` in each atom using it, substitute
/// equalities, pair lower × upper bounds. Identical to the linear engine's
/// core step except that pass-through atoms may have any degree and bounds
/// are arbitrary polynomials in the other variables.
pub(crate) fn fm_eliminate_tuple(
    tuple: &GeneralizedTuple,
    var: usize,
    ctx: &QeContext,
) -> Result<Option<GeneralizedTuple>, QeError> {
    let nvars = tuple.nvars();
    let mut atoms: Vec<Atom> = Vec::new();
    let mut lowers: Vec<(MPoly, bool)> = Vec::new(); // (bound, strict)
    let mut uppers: Vec<(MPoly, bool)> = Vec::new();
    let mut equals: Vec<MPoly> = Vec::new();
    for atom in tuple.atoms() {
        if !atom.poly.uses_var(var) {
            atoms.push(atom.clone());
            continue;
        }
        if atom.poly.degree_in(var) != 1 {
            return Err(QeError::PlanUnsupported(format!(
                "Fourier–Motzkin: atom is nonlinear in x{var}"
            )));
        }
        let c = lead_constant(&atom.poly, var).ok_or_else(|| {
            QeError::PlanUnsupported(format!("Fourier–Motzkin: symbolic coefficient of x{var}"))
        })?;
        let rest = atom
            .poly
            .as_upoly_in(var)
            .into_iter()
            .next()
            .unwrap_or_else(|| MPoly::zero(nvars));
        let bound = rest.scale(&(-c.recip()));
        ctx.observe_poly(&bound)?;
        let op = if c.sign() == Sign::Neg {
            atom.op.flipped()
        } else {
            atom.op
        };
        match op {
            RelOp::Eq => equals.push(bound),
            RelOp::Lt => uppers.push((bound, true)),
            RelOp::Le => uppers.push((bound, false)),
            RelOp::Gt => lowers.push((bound, true)),
            RelOp::Ge => lowers.push((bound, false)),
            RelOp::Ne => {
                return Err(QeError::Unsupported(
                    "Fourier–Motzkin: `≠` atom not split before elimination".into(),
                ))
            }
        }
    }
    if let Some(e0) = equals.first() {
        for e in &equals[1..] {
            let d = e0 - e;
            ctx.observe_poly(&d)?;
            atoms.push(Atom::new(d, RelOp::Eq));
        }
        for (u, strict) in &uppers {
            let d = e0 - u; // var ≤ u ⇒ e0 − u ≤ 0
            ctx.observe_poly(&d)?;
            atoms.push(Atom::new(d, if *strict { RelOp::Lt } else { RelOp::Le }));
        }
        for (l, strict) in &lowers {
            let d = l - e0; // var ≥ l ⇒ l − e0 ≤ 0
            ctx.observe_poly(&d)?;
            atoms.push(Atom::new(d, if *strict { RelOp::Lt } else { RelOp::Le }));
        }
        return Ok(GeneralizedTuple::new(nvars, atoms).simplify());
    }
    for (l, ls) in &lowers {
        for (u, us) in &uppers {
            let d = l - u; // need l ⋈ u (density of the reals)
            ctx.observe_poly(&d)?;
            atoms.push(Atom::new(d, if *ls || *us { RelOp::Lt } else { RelOp::Le }));
        }
    }
    Ok(GeneralizedTuple::new(nvars, atoms).simplify())
}

/// CAD fallback for one disjunct: a decomposition over just the variables
/// this disjunct uses — the other disjuncts never pay for it.
fn cad_eliminate_tuple(
    tuple: &GeneralizedTuple,
    var: usize,
    nvars: usize,
    ctx: &QeContext,
) -> Result<Vec<GeneralizedTuple>, QeError> {
    let single = ConstraintRelation::new(nvars, vec![tuple.clone()]);
    let matrix = relation_to_formula(&single);
    let prefix = [(Quantifier::Exists, var)];
    let free: Vec<usize> = (0..nvars)
        .filter(|&v| v != var && tuple.uses_var(v))
        .collect();
    if free.is_empty() {
        // The disjunct is univariate in `var`: `∃ var` is a sentence.
        return Ok(if cad::decide_sentence(&matrix, &prefix, nvars, ctx)? {
            vec![GeneralizedTuple::top(nvars)]
        } else {
            Vec::new()
        });
    }
    let out = cad::eliminate(&matrix, &prefix, &free, nvars, ctx)?;
    Ok(out.tuples().to_vec())
}

/// Eliminate `∃ var` from one work tuple under the context's plan mode,
/// recording the per-strategy disjunct count and wall time.
fn eliminate_var_from_tuple(
    tuple: &GeneralizedTuple,
    var: usize,
    nvars: usize,
    ctx: &QeContext,
) -> Result<Vec<GeneralizedTuple>, QeError> {
    if !tuple.uses_var(var) {
        return Ok(vec![tuple.clone()]);
    }
    let strat = match ctx.plan_mode {
        PlanMode::Auto => classify(tuple, var),
        PlanMode::ForceFM => {
            if fm_applicable(tuple, var) {
                Strategy::Fm
            } else {
                return Err(QeError::PlanUnsupported(format!(
                    "ForceFM: disjunct is nonlinear in x{var}"
                )));
            }
        }
        PlanMode::ForceQuad => {
            if quad1::applicable(tuple, var) {
                Strategy::Quad
            } else {
                return Err(QeError::PlanUnsupported(format!(
                    "ForceQuad: disjunct exceeds degree 2 in x{var} (or has a \
                     symbolic leading coefficient)"
                )));
            }
        }
        // Whole-relation ForceCAD is handled in `eliminate_prefix`; reaching
        // here (relation-level entry) falls back to per-disjunct CAD.
        PlanMode::ForceCAD => Strategy::Cad,
    };
    // cdb-lint: allow(determinism) — stats-only timing (see module `use`).
    let t0 = Instant::now();
    let out = match strat {
        Strategy::Subst => subst_eliminate_tuple(tuple, var, ctx)?
            .into_iter()
            .collect(),
        Strategy::Fm => {
            let mut rs = Vec::new();
            for split in linear::split_ne(tuple, var) {
                if let Some(t) = fm_eliminate_tuple(&split, var, ctx)? {
                    rs.push(t);
                }
            }
            rs
        }
        Strategy::Quad => {
            let mut rs = Vec::new();
            for split in linear::split_ne(tuple, var) {
                rs.extend(quad1::eliminate_tuple(&split, var, ctx)?);
            }
            rs
        }
        Strategy::Cad => cad_eliminate_tuple(tuple, var, nvars, ctx)?,
    };
    let (count, nanos) = match strat {
        Strategy::Subst => (&ctx.plan.subst, &ctx.plan.subst_nanos),
        Strategy::Fm => (&ctx.plan.fm, &ctx.plan.fm_nanos),
        Strategy::Quad => (&ctx.plan.quad, &ctx.plan.quad_nanos),
        Strategy::Cad => (&ctx.plan.cad, &ctx.plan.cad_nanos),
    };
    count.add(1);
    nanos.add(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    Ok(out)
}

/// Pick the next variable to eliminate: cheapest worst-case strategy rank
/// over the current work set, then fewest atom occurrences, then innermost
/// position (`remaining` is kept innermost-first, so the lowest index wins
/// ties). Returns an index into `remaining`.
fn choose_var(work: &[GeneralizedTuple], remaining: &[usize]) -> usize {
    let mut best = 0usize;
    let mut best_key = (u8::MAX, usize::MAX, usize::MAX);
    for (i, &v) in remaining.iter().enumerate() {
        let mut worst_rank = 0u8;
        let mut occurrences = 0usize;
        for t in work {
            if !t.uses_var(v) {
                continue;
            }
            worst_rank = worst_rank.max(rank(classify(t, v)));
            occurrences += t.atoms().iter().filter(|a| a.poly.uses_var(v)).count();
        }
        let key = (worst_rank, occurrences, i);
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// Eliminate a run of existential variables (`run` innermost-first) from
/// one original disjunct. The work set grows only through splits (`≠`,
/// quadratic sign-condition branches, CAD output disjuncts), each of which
/// is planned independently at the next variable.
fn eliminate_run_from_tuple(
    tuple: &GeneralizedTuple,
    run: &[usize],
    nvars: usize,
    ctx: &QeContext,
) -> Result<Vec<GeneralizedTuple>, QeError> {
    let mut work = vec![tuple.clone()];
    let mut remaining: Vec<usize> = run.to_vec();
    while !remaining.is_empty() && !work.is_empty() {
        let var = remaining.remove(choose_var(&work, &remaining));
        let mut next: Vec<GeneralizedTuple> = Vec::new();
        for w in &work {
            for produced in eliminate_var_from_tuple(w, var, nvars, ctx)? {
                if let Some(t) = produced.simplify() {
                    if !next.contains(&t) {
                        next.push(t);
                    }
                }
            }
        }
        work = next;
    }
    Ok(work)
}

/// Eliminate a run of existential quantifiers (`run` innermost-first) from
/// a DNF relation, planning each disjunct independently. With
/// `ctx.workers > 1` the disjunct jobs fan out through [`par_map_result`]
/// and merge **in input order**, so the output is byte-identical to the
/// sequential path for every worker count.
pub fn eliminate_exists_run(
    rel: &ConstraintRelation,
    run: &[usize],
    ctx: &QeContext,
) -> Result<ConstraintRelation, QeError> {
    let nvars = rel.nvars();
    let tuples = rel.tuples();
    let mut out: Vec<GeneralizedTuple> = Vec::new();
    if ctx.effective_workers() <= 1 || tuples.len() <= 1 {
        for tuple in tuples {
            for t in eliminate_run_from_tuple(tuple, run, nvars, ctx)? {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
    } else {
        let per_tuple = par_map_result(tuples, ctx.effective_workers(), |tuple| {
            eliminate_run_from_tuple(tuple, run, nvars, ctx)
        })?;
        for results in per_tuple {
            for t in results {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
    }
    Ok(ConstraintRelation::new(nvars, out).simplify())
}

/// The pre-planner path: one CAD (or sentence decision) over everything
/// still quantified. Counts every disjunct of the incoming relation as a
/// CAD dispatch.
fn whole_cad(
    matrix: &Formula,
    rel: &ConstraintRelation,
    prefix: &[(Quantifier, usize)],
    free: &[usize],
    nvars: usize,
    ctx: &QeContext,
) -> Result<ConstraintRelation, QeError> {
    // cdb-lint: allow(determinism) — stats-only timing (see module `use`).
    let t0 = Instant::now();
    let out = if free.is_empty() {
        if cad::decide_sentence(matrix, prefix, nvars, ctx)? {
            ConstraintRelation::full(nvars)
        } else {
            ConstraintRelation::empty(nvars)
        }
    } else {
        cad::eliminate(matrix, prefix, free, nvars, ctx)?
    };
    ctx.plan.cad.add(rel.tuples().len().max(1) as u64);
    ctx.plan
        .cad_nanos
        .add(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    Ok(out)
}

/// Planner entry point: eliminate the whole quantifier prefix from a
/// prenex matrix. `matrix` is the original quantifier-free formula (NNF),
/// `matrix_rel` its DNF; `free` lists the query's free variables ascending.
///
/// Processes innermost runs of identical quantifiers: `∃` runs go through
/// the per-disjunct planner; `∀` runs go through `¬∃¬` when the relation is
/// linear (and under forced FM/quad modes), and keep the pre-planner
/// whole-relation CAD otherwise. [`PlanMode::ForceCAD`] short-circuits to
/// the whole-relation path on the *original* matrix, reproducing the old
/// pipeline byte-for-byte.
pub fn eliminate_prefix(
    matrix: &Formula,
    matrix_rel: ConstraintRelation,
    prefix: &[(Quantifier, usize)],
    free: &[usize],
    nvars: usize,
    ctx: &QeContext,
) -> Result<ConstraintRelation, QeError> {
    if prefix.is_empty() {
        return Ok(matrix_rel);
    }
    if ctx.plan_mode == PlanMode::ForceCAD {
        return whole_cad(matrix, &matrix_rel, prefix, free, nvars, ctx);
    }
    let mut rel = matrix_rel;
    let mut rest: Vec<(Quantifier, usize)> = prefix.to_vec();
    while let Some(&(q, _)) = rest.last() {
        // Innermost run of identical quantifiers (adjacent ∃∃/∀∀ commute,
        // so the planner may reorder within the run).
        let mut start = rest.len();
        while start > 0 && rest[start - 1].0 == q {
            start -= 1;
        }
        let run: Vec<usize> = rest[start..].iter().rev().map(|&(_, v)| v).collect();
        match q {
            Quantifier::Exists => {
                rel = eliminate_exists_run(&rel, &run, ctx)?;
            }
            Quantifier::Forall => {
                if ctx.plan_mode == PlanMode::Auto && !linear::is_linear(&rel) {
                    // Complementing a nonlinear DNF can blow up; keep the
                    // pre-planner behavior — one CAD over everything still
                    // quantified.
                    let f = relation_to_formula(&rel);
                    return whole_cad(&f, &rel, &rest, free, nvars, ctx);
                }
                let negated = rel.complement().simplify();
                let eliminated = eliminate_exists_run(&negated, &run, ctx)?;
                rel = eliminated.complement().simplify();
            }
        }
        rest.truncate(start);
    }
    Ok(rel)
}
