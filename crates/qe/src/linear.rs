//! Fourier–Motzkin elimination for linear constraints — the `FO(≤, +, 0, 1)`
//! engine, covering the dense-order fragment `FO(≤)` as a special case.
//!
//! Works on relations in DNF: for each generalized tuple, the variable is
//! isolated in every atom (`a·x σ rest`), equalities are substituted,
//! `≠` atoms are split into `<` / `>` disjuncts, and bound pairs are
//! combined. This is the engine behind Theorem 4.2: every number produced is
//! a sum/product of two input coefficients, so bit growth is linear in the
//! input bit length — finite precision with `c·k` bits loses nothing.

use crate::{QeContext, QeError};
use cdb_constraints::{Atom, ConstraintRelation, GeneralizedTuple, RelOp};
use cdb_num::{Rat, Sign};
use cdb_poly::MPoly;

/// True iff every atom of the relation is linear (total degree ≤ 1).
#[must_use]
pub fn is_linear(rel: &ConstraintRelation) -> bool {
    rel.tuples()
        .iter()
        .all(|t| t.atoms().iter().all(|a| a.poly.total_degree() <= 1))
}

/// Eliminate `∃ var` from a DNF relation of linear constraints.
///
/// `∃x` distributes over the union of generalized tuples, so each disjunct
/// is independent: with `ctx.workers > 1` they are fanned out over scoped
/// threads and the per-tuple results merged back **in input order** (the
/// cross-tuple dedup then sees elements in exactly the sequential order, so
/// the output is identical to `workers = 1`).
pub fn eliminate_exists(
    rel: &ConstraintRelation,
    var: usize,
    ctx: &QeContext,
) -> Result<ConstraintRelation, QeError> {
    let nvars = rel.nvars();
    let tuples = rel.tuples();
    let mut out_tuples: Vec<GeneralizedTuple> = Vec::new();
    if ctx.effective_workers() <= 1 || tuples.len() <= 1 {
        for tuple in tuples {
            for split in split_ne(tuple, var) {
                if let Some(t) = eliminate_from_tuple(&split, var, ctx)? {
                    if let Some(s) = t.simplify() {
                        if !out_tuples.contains(&s) {
                            out_tuples.push(s);
                        }
                    }
                }
            }
        }
    } else {
        let per_tuple = crate::par::par_map_result(tuples, ctx.effective_workers(), |tuple| {
            let mut results = Vec::new();
            for split in split_ne(tuple, var) {
                if let Some(t) = eliminate_from_tuple(&split, var, ctx)? {
                    if let Some(s) = t.simplify() {
                        results.push(s);
                    }
                }
            }
            Ok(results)
        })?;
        for results in per_tuple {
            for s in results {
                if !out_tuples.contains(&s) {
                    out_tuples.push(s);
                }
            }
        }
    }
    Ok(ConstraintRelation::new(nvars, out_tuples).simplify())
}

/// Split `p ≠ 0` atoms that involve `var` into `<` and `>` cases
/// (a disjunction, so the tuple multiplies). Shared with the per-disjunct
/// planner, which performs the same split before FM/quadratic elimination.
pub(crate) fn split_ne(tuple: &GeneralizedTuple, var: usize) -> Vec<GeneralizedTuple> {
    let mut result = vec![GeneralizedTuple::top(tuple.nvars())];
    for atom in tuple.atoms() {
        if atom.op == RelOp::Ne && atom.poly.uses_var(var) {
            let lt = Atom::new(atom.poly.clone(), RelOp::Lt);
            let gt = Atom::new(atom.poly.clone(), RelOp::Gt);
            let mut next = Vec::with_capacity(result.len() * 2);
            for t in result {
                let mut a = t.clone();
                a.push(lt.clone());
                next.push(a);
                let mut b = t;
                b.push(gt.clone());
                next.push(b);
            }
            result = next;
        } else {
            for t in &mut result {
                t.push(atom.clone());
            }
        }
    }
    result
}

/// A linear atom with `var` isolated: `coeff · var + rest σ 0`.
struct Isolated {
    /// Coefficient of `var` (nonzero rational).
    coeff: Rat,
    /// The rest (free of `var`).
    rest: MPoly,
    op: RelOp,
}

fn isolate(atom: &Atom, var: usize) -> Result<Option<Isolated>, QeError> {
    if atom.poly.total_degree() > 1 {
        return Err(QeError::NonLinear(atom.poly.to_string()));
    }
    if !atom.poly.uses_var(var) {
        return Ok(None);
    }
    let coeffs = atom.poly.as_upoly_in(var);
    // Degree ≤ 1 and `uses_var` hold above, so the coefficient vector is
    // exactly [rest, coeff]; anything else is a nonlinear atom.
    let [rest, lead] = coeffs.as_slice() else {
        return Err(QeError::NonLinear(atom.poly.to_string()));
    };
    let coeff = lead
        .to_constant()
        .ok_or_else(|| QeError::NonLinear(atom.poly.to_string()))?;
    Ok(Some(Isolated {
        coeff,
        rest: rest.clone(),
        op: atom.op,
    }))
}

/// Core FM step on one conjunction. Returns `None` when the tuple is
/// trivially unsatisfiable after elimination.
fn eliminate_from_tuple(
    tuple: &GeneralizedTuple,
    var: usize,
    ctx: &QeContext,
) -> Result<Option<GeneralizedTuple>, QeError> {
    let nvars = tuple.nvars();
    let mut passthrough: Vec<Atom> = Vec::new();
    // Normalized bounds on var: var σ bound where bound = −rest/coeff.
    // Lower bounds (var > / >= b), upper bounds (var < / <= b), equalities.
    let mut lowers: Vec<(MPoly, bool)> = Vec::new(); // (bound, strict)
    let mut uppers: Vec<(MPoly, bool)> = Vec::new();
    let mut equals: Vec<MPoly> = Vec::new();
    for atom in tuple.atoms() {
        match isolate(atom, var)? {
            None => passthrough.push(atom.clone()),
            Some(iso) => {
                // coeff·var + rest σ 0  ⇔  var σ' −rest/coeff,
                // with σ' flipped when coeff < 0.
                let bound = iso.rest.scale(&(-iso.coeff.recip()));
                ctx.observe_poly(&bound)?;
                let op = if iso.coeff.sign() == Sign::Neg {
                    iso.op.flipped()
                } else {
                    iso.op
                };
                match op {
                    RelOp::Eq => equals.push(bound),
                    RelOp::Lt => uppers.push((bound, true)),
                    RelOp::Le => uppers.push((bound, false)),
                    RelOp::Gt => lowers.push((bound, true)),
                    RelOp::Ge => lowers.push((bound, false)),
                    RelOp::Ne => {
                        return Err(QeError::Unsupported(
                            "Fourier–Motzkin: `≠` atom not split before elimination".into(),
                        ))
                    }
                }
            }
        }
    }
    let mut atoms = passthrough;
    if let Some(e0) = equals.first() {
        // Substitute var = e0 everywhere: each remaining constraint becomes
        // a constraint between bounds.
        for e in &equals[1..] {
            let d = e0 - e;
            ctx.observe_poly(&d)?;
            atoms.push(Atom::new(d, RelOp::Eq));
        }
        for (u, strict) in &uppers {
            let d = e0 - u; // var ≤ u ⇒ e0 − u ≤ 0
            ctx.observe_poly(&d)?;
            atoms.push(Atom::new(d, if *strict { RelOp::Lt } else { RelOp::Le }));
        }
        for (l, strict) in &lowers {
            let d = l - e0; // var ≥ l ⇒ l − e0 ≤ 0
            ctx.observe_poly(&d)?;
            atoms.push(Atom::new(d, if *strict { RelOp::Lt } else { RelOp::Le }));
        }
        return Ok(Some(GeneralizedTuple::new(nvars, atoms)));
    }
    // Pure inequality case: ∃var iff every lower bound is below every upper
    // bound (density of the reals — no integrality issues).
    for (l, ls) in &lowers {
        for (u, us) in &uppers {
            let d = l - u; // need l < u (or ≤ when both non-strict)
            ctx.observe_poly(&d)?;
            let strict = *ls || *us;
            atoms.push(Atom::new(d, if strict { RelOp::Lt } else { RelOp::Le }));
        }
    }
    // No lower or no upper bounds: var unbounded on that side — always
    // satisfiable, bounds impose nothing.
    Ok(Some(GeneralizedTuple::new(nvars, atoms)))
}

/// Eliminate `∀ var` via `¬∃¬` (the relation is complemented, which may
/// blow up; acceptable for the small DNFs the linear engine sees).
pub fn eliminate_forall(
    rel: &ConstraintRelation,
    var: usize,
    ctx: &QeContext,
) -> Result<ConstraintRelation, QeError> {
    let negated = rel.complement().simplify();
    let elim = eliminate_exists(&negated, var, ctx)?;
    Ok(elim.complement().simplify())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_constraints::GeneralizedTuple;

    fn var(i: usize, n: usize) -> MPoly {
        MPoly::var(i, n)
    }

    fn c(v: i64, n: usize) -> MPoly {
        MPoly::constant(Rat::from(v), n)
    }

    /// ∃y (x ≤ y ∧ y ≤ 5): expect x ≤ 5.
    #[test]
    fn simple_projection() {
        let x = var(0, 2);
        let y = var(1, 2);
        let t = GeneralizedTuple::new(
            2,
            vec![
                Atom::cmp(x.clone(), RelOp::Le, y.clone()),
                Atom::cmp(y, RelOp::Le, c(5, 2)),
            ],
        );
        let rel = ConstraintRelation::new(2, vec![t]);
        let ctx = QeContext::exact();
        let out = eliminate_exists(&rel, 1, &ctx).unwrap();
        assert!(out.satisfied_at(&[Rat::from(5i64), Rat::zero()]));
        assert!(out.satisfied_at(&[Rat::from(-100i64), Rat::zero()]));
        assert!(!out.satisfied_at(&[Rat::from(6i64), Rat::zero()]));
    }

    /// ∃y (y = 2x + 1 ∧ y ≥ 3 ∧ y ≤ 7): expect 1 ≤ x ≤ 3.
    #[test]
    fn equality_substitution() {
        let n = 2;
        let x = var(0, n);
        let y = var(1, n);
        let t = GeneralizedTuple::new(
            n,
            vec![
                Atom::cmp(y.clone(), RelOp::Eq, &x.scale(&Rat::from(2i64)) + &c(1, n)),
                Atom::cmp(y.clone(), RelOp::Ge, c(3, n)),
                Atom::cmp(y, RelOp::Le, c(7, n)),
            ],
        );
        let rel = ConstraintRelation::new(n, vec![t]);
        let out = eliminate_exists(&rel, 1, &QeContext::exact()).unwrap();
        for (v, expect) in [(0i64, false), (1, true), (2, true), (3, true), (4, false)] {
            assert_eq!(
                out.satisfied_at(&[Rat::from(v), Rat::zero()]),
                expect,
                "x = {v}"
            );
        }
    }

    /// ∃y (x < y ∧ y < x): empty.
    #[test]
    fn infeasible_bounds() {
        let n = 2;
        let x = var(0, n);
        let y = var(1, n);
        let t = GeneralizedTuple::new(
            n,
            vec![
                Atom::cmp(x.clone(), RelOp::Lt, y.clone()),
                Atom::cmp(y, RelOp::Lt, x),
            ],
        );
        let rel = ConstraintRelation::new(n, vec![t]);
        let out = eliminate_exists(&rel, 1, &QeContext::exact()).unwrap();
        assert!(!out.satisfied_at(&[Rat::zero(), Rat::zero()]));
        assert!(!out.satisfied_at(&[Rat::from(7i64), Rat::zero()]));
    }

    /// Unbounded side: ∃y (y ≥ x) is always true.
    #[test]
    fn unbounded_is_true() {
        let n = 2;
        let t = GeneralizedTuple::new(n, vec![Atom::cmp(var(1, n), RelOp::Ge, var(0, n))]);
        let rel = ConstraintRelation::new(n, vec![t]);
        let out = eliminate_exists(&rel, 1, &QeContext::exact()).unwrap();
        for v in [-10i64, 0, 10] {
            assert!(out.satisfied_at(&[Rat::from(v), Rat::zero()]));
        }
    }

    /// Dense order with ≠: ∃y (x ≤ y ∧ y ≤ x ∧ y ≠ 3) ⇔ x ≠ 3.
    #[test]
    fn ne_split() {
        let n = 2;
        let x = var(0, n);
        let y = var(1, n);
        let t = GeneralizedTuple::new(
            n,
            vec![
                Atom::cmp(x.clone(), RelOp::Le, y.clone()),
                Atom::cmp(y.clone(), RelOp::Le, x),
                Atom::cmp(y, RelOp::Ne, c(3, n)),
            ],
        );
        let rel = ConstraintRelation::new(n, vec![t]);
        let out = eliminate_exists(&rel, 1, &QeContext::exact()).unwrap();
        assert!(out.satisfied_at(&[Rat::from(2i64), Rat::zero()]));
        assert!(out.satisfied_at(&[Rat::from(4i64), Rat::zero()]));
        assert!(!out.satisfied_at(&[Rat::from(3i64), Rat::zero()]));
    }

    /// Forall: ∀y (y ≥ x ∨ y ≤ 5) ⇔ x ≤ 5.
    #[test]
    fn forall_via_complement() {
        let n = 2;
        let x = var(0, n);
        let y = var(1, n);
        let rel = ConstraintRelation::new(
            n,
            vec![
                GeneralizedTuple::new(n, vec![Atom::cmp(y.clone(), RelOp::Ge, x)]),
                GeneralizedTuple::new(n, vec![Atom::cmp(y, RelOp::Le, c(5, n))]),
            ],
        );
        let out = eliminate_forall(&rel, 1, &QeContext::exact()).unwrap();
        assert!(out.satisfied_at(&[Rat::from(5i64), Rat::zero()]));
        assert!(out.satisfied_at(&[Rat::from(-3i64), Rat::zero()]));
        assert!(!out.satisfied_at(&[Rat::from(6i64), Rat::zero()]));
    }

    /// Budget: coefficients double per elimination; a tiny budget trips.
    #[test]
    fn budget_trips() {
        let n = 2;
        let x = var(0, n);
        let y = var(1, n);
        // y = 1000003·x, y ≥ 999983 — products of ~20-bit numbers.
        let t = GeneralizedTuple::new(
            n,
            vec![
                Atom::cmp(y.clone(), RelOp::Eq, x.scale(&Rat::from(1_000_003i64))),
                Atom::cmp(y, RelOp::Ge, c(999_983, n)),
            ],
        );
        let rel = ConstraintRelation::new(n, vec![t]);
        let ctx = QeContext::with_budget(8);
        let err = eliminate_exists(&rel, 1, &ctx).unwrap_err();
        assert!(matches!(err, QeError::PrecisionExceeded { .. }));
        // Generous budget fine.
        let ctx2 = QeContext::with_budget(64);
        assert!(eliminate_exists(&rel, 1, &ctx2).is_ok());
    }

    /// Randomized soundness: eliminated formula agrees with a brute-force
    /// scan over sample witnesses.
    #[test]
    fn soundness_spot_check() {
        let n = 2;
        let x = var(0, n);
        let y = var(1, n);
        // ∃y (2y ≤ x + 4 ∧ −3y ≤ x − 1 ∧ y ≥ −10)
        let t = GeneralizedTuple::new(
            n,
            vec![
                Atom::cmp(y.scale(&Rat::from(2i64)), RelOp::Le, &x + &c(4, n)),
                Atom::cmp(y.scale(&Rat::from(-3i64)), RelOp::Le, &x - &c(1, n)),
                Atom::cmp(y.clone(), RelOp::Ge, c(-10, n)),
            ],
        );
        let rel = ConstraintRelation::new(n, vec![t]);
        let out = eliminate_exists(&rel, 1, &QeContext::exact()).unwrap();
        for xv in -15..=15i64 {
            let expect = (-1000..=1000)
                .map(|i| Rat::from_ints(i, 50))
                .any(|yv| rel.satisfied_at(&[Rat::from(xv), yv]));
            let got = out.satisfied_at(&[Rat::from(xv), Rat::zero()]);
            // The brute scan over a grid can only under-approximate ∃;
            // still, on this instance bounds are rational with small
            // denominators so the grid finds all witnesses.
            assert_eq!(got, expect, "x = {xv}");
        }
    }
}
