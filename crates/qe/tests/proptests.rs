//! Property tests for quantifier elimination.
//!
//! The key invariant is *pointwise soundness*: for every probe point of the
//! free variables, the eliminated formula holds iff a witness for the
//! quantified variable exists. Witnesses are searched on dense rational
//! grids (sound for the coefficient ranges generated here, where all
//! boundary values have small denominators).

use cdb_constraints::{Atom, ConstraintRelation, Database, Formula, GeneralizedTuple, RelOp};
use cdb_num::Rat;
use cdb_poly::MPoly;
use cdb_qe::{evaluate_query, linear, QeContext};
use proptest::prelude::*;

fn linear_atom(a: i64, b: i64, d: i64, op: u8) -> Atom {
    let n = 2;
    let poly = &(&MPoly::var(0, n).scale(&Rat::from(a)) + &MPoly::var(1, n).scale(&Rat::from(b)))
        + &MPoly::constant(Rat::from(d), n);
    let op = match op % 4 {
        0 => RelOp::Le,
        1 => RelOp::Lt,
        2 => RelOp::Ge,
        _ => RelOp::Eq,
    };
    Atom::new(poly, op)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FM elimination is pointwise sound against a witness grid.
    #[test]
    fn fm_exists_soundness(
        atoms in prop::collection::vec((-3i64..=3, -3i64..=3, -4i64..=4, 0u8..4), 1..=3),
    ) {
        let n = 2;
        let tuple = GeneralizedTuple::new(
            n,
            atoms.iter().map(|&(a, b, d, op)| linear_atom(a, b, d, op)).collect(),
        );
        let rel = ConstraintRelation::new(n, vec![tuple]);
        let ctx = QeContext::exact();
        let out = linear::eliminate_exists(&rel, 1, &ctx).unwrap();
        // Probe x on a half-integer grid; witnesses on a 1/12 grid (all
        // bounds here have denominators dividing 12).
        for xi in -8..=8 {
            let x = Rat::from_ints(xi, 2);
            let claimed = out.satisfied_at(&[x.clone(), Rat::zero()]);
            // Wide witness grid: equality constraints like y = 3x + d have
            // single-point witnesses up to |3·8·... | ≈ 30; scan to ±60.
            let witness = (-60 * 12..=60 * 12)
                .any(|yi| rel.satisfied_at(&[x.clone(), Rat::from_ints(yi, 12)]));
            if witness {
                prop_assert!(claimed, "missing witness at x = {x}");
            }
            if claimed && !witness {
                // The witness may be outside the grid span only when the
                // region is unbounded in y; verify by checking far probes.
                let far = rel.satisfied_at(&[x.clone(), Rat::from(100i64)])
                    || rel.satisfied_at(&[x.clone(), Rat::from(-100i64)]);
                prop_assert!(far, "claimed but no witness at x = {x}");
            }
        }
    }

    /// Forall is the dual of exists on the complement.
    #[test]
    fn fm_forall_duality(
        atoms in prop::collection::vec((-2i64..=2, -2i64..=2, -3i64..=3, 0u8..3), 1..=2),
    ) {
        let n = 2;
        let tuple = GeneralizedTuple::new(
            n,
            atoms.iter().map(|&(a, b, d, op)| linear_atom(a, b, d, op)).collect(),
        );
        let rel = ConstraintRelation::new(n, vec![tuple]);
        let ctx = QeContext::exact();
        let fa = linear::eliminate_forall(&rel, 1, &ctx).unwrap();
        let ex_not = linear::eliminate_exists(&rel.complement().simplify(), 1, &ctx).unwrap();
        for xi in -6..=6 {
            let x = Rat::from_ints(xi, 2);
            prop_assert_eq!(
                fa.satisfied_at(&[x.clone(), Rat::zero()]),
                !ex_not.satisfied_at(&[x.clone(), Rat::zero()]),
                "duality at x = {}", x
            );
        }
    }

    /// The pipeline agrees between its FM and CAD paths on linear input.
    #[test]
    fn pipeline_engines_agree(
        a in -3i64..=3, b in 1i64..=3, d in -4i64..=4,
        a2 in -3i64..=3, b2 in -3i64..=-1, d2 in -4i64..=4,
    ) {
        let n = 2;
        let atoms = vec![
            linear_atom(a, b, d, 0),
            linear_atom(a2, b2, d2, 0),
        ];
        let matrix = Formula::And(atoms.iter().cloned().map(Formula::Atom).collect());
        let ctx = QeContext::exact();
        let mut db = Database::new();
        db.insert(
            "R",
            ConstraintRelation::new(n, vec![GeneralizedTuple::new(n, atoms)]),
        );
        let q = Formula::exists(1, Formula::Rel("R".into(), vec![0, 1]));
        let fm = evaluate_query(&db, &q, n, &ctx).unwrap();
        let cad = cdb_qe::cad::eliminate(
            &matrix.to_nnf(),
            &[(cdb_constraints::Quantifier::Exists, 1)],
            &[0],
            n,
            &ctx,
        ).unwrap();
        for xi in -6..=6 {
            let x = Rat::from_ints(xi, 2);
            prop_assert_eq!(
                fm.relation.satisfied_at(&[x.clone(), Rat::zero()]),
                cad.satisfied_at(&[x.clone(), Rat::zero()]),
                "x = {}", x
            );
        }
    }

    /// The finite-precision budget is monotone: defined at k implies
    /// defined at every k' >= k, with the same answer.
    #[test]
    fn budget_monotonicity(
        atoms in prop::collection::vec((-3i64..=3, -3i64..=3, -4i64..=4, 0u8..3), 1..=2),
        k in 8u64..64,
    ) {
        let n = 2;
        let rel = ConstraintRelation::new(
            n,
            vec![GeneralizedTuple::new(
                n,
                atoms.iter().map(|&(a, b, d, op)| linear_atom(a, b, d, op)).collect(),
            )],
        );
        let mut db = Database::new();
        db.insert("R", rel);
        let q = Formula::exists(1, Formula::Rel("R".into(), vec![0, 1]));
        let at = |budget: u64| -> Option<ConstraintRelation> {
            let ctx = QeContext::with_budget(budget);
            evaluate_query(&db, &q, n, &ctx).ok().map(|o| o.relation)
        };
        if let Some(small) = at(k) {
            let big = at(4 * k).expect("larger budget must stay defined");
            for xi in -5..=5 {
                let x = Rat::from(xi as i64);
                prop_assert_eq!(
                    small.satisfied_at(&[x.clone(), Rat::zero()]),
                    big.satisfied_at(&[x.clone(), Rat::zero()])
                );
            }
        }
    }

    /// Disjunct-level parallelism is invisible: eliminating with one worker
    /// (the verbatim sequential path) and with many workers produces
    /// structurally identical relations, atom for atom, in the same order.
    #[test]
    fn fm_parallel_matches_sequential(
        disjuncts in prop::collection::vec(
            prop::collection::vec((-3i64..=3, -3i64..=3, -4i64..=4, 0u8..4), 1..=3),
            1..=6,
        ),
    ) {
        let n = 2;
        let tuples = disjuncts
            .iter()
            .map(|atoms| {
                GeneralizedTuple::new(
                    n,
                    atoms.iter().map(|&(a, b, d, op)| linear_atom(a, b, d, op)).collect(),
                )
            })
            .collect();
        let rel = ConstraintRelation::new(n, tuples);
        let seq = linear::eliminate_exists(&rel, 1, &QeContext::exact().with_workers(1)).unwrap();
        for workers in [2, 4, 8] {
            let par = linear::eliminate_exists(
                &rel,
                1,
                &QeContext::exact().with_workers(workers),
            )
            .unwrap();
            prop_assert_eq!(&seq, &par, "workers = {}", workers);
        }
    }

    /// CAD lifting parallelism is likewise invisible, and the shared
    /// memo-cache does not perturb results.
    #[test]
    fn cad_parallel_matches_sequential(
        a in -2i64..=2, b in -2i64..=2, c in -2i64..=2,
        a2 in -2i64..=2, b2 in -2i64..=2, c2 in -2i64..=2,
    ) {
        let n = 2;
        let conic = |a: i64, b: i64, c: i64| {
            let p = &(&(&MPoly::var(0, n).pow(2).scale(&Rat::from(a))
                + &MPoly::var(1, n).pow(2).scale(&Rat::from(b)))
                + &MPoly::var(0, n).scale(&Rat::from(c)))
                - &MPoly::constant(Rat::from(1i64), n);
            Atom::new(p, RelOp::Le)
        };
        let matrix = Formula::Or(vec![
            Formula::Atom(conic(a, b, c)),
            Formula::Atom(conic(a2, b2, c2)),
        ])
        .to_nnf();
        let run = |workers: usize| {
            cdb_qe::cad::eliminate(
                &matrix,
                &[(cdb_constraints::Quantifier::Exists, 1)],
                &[0],
                n,
                &QeContext::exact().with_workers(workers),
            )
        };
        // Degenerate conics can be rejected by CAD (e.g. identically
        // vanishing iterated resultants); the contract under test only
        // concerns inputs the sequential engine accepts.
        if let Ok(seq) = run(1) {
            for workers in [2, 4] {
                let par = run(workers).expect("parallel run failed where sequential succeeded");
                prop_assert_eq!(&seq, &par, "workers = {}", workers);
            }
        }
    }

    /// Relation algebra semantics: union/intersection/complement are
    /// pointwise boolean algebra.
    #[test]
    fn relation_algebra_pointwise(
        atoms_a in prop::collection::vec((-2i64..=2, -2i64..=2, -3i64..=3, 0u8..3), 1..=2),
        atoms_b in prop::collection::vec((-2i64..=2, -2i64..=2, -3i64..=3, 0u8..3), 1..=2),
        px in -5i64..=5, py in -5i64..=5,
    ) {
        let n = 2;
        let mk = |atoms: &[(i64, i64, i64, u8)]| {
            ConstraintRelation::new(
                n,
                vec![GeneralizedTuple::new(
                    n,
                    atoms.iter().map(|&(a, b, d, op)| linear_atom(a, b, d, op)).collect(),
                )],
            )
        };
        let ra = mk(&atoms_a);
        let rb = mk(&atoms_b);
        let p = [Rat::from(px), Rat::from(py)];
        prop_assert_eq!(
            ra.union(&rb).satisfied_at(&p),
            ra.satisfied_at(&p) || rb.satisfied_at(&p)
        );
        prop_assert_eq!(
            ra.intersection(&rb).satisfied_at(&p),
            ra.satisfied_at(&p) && rb.satisfied_at(&p)
        );
        prop_assert_eq!(ra.complement().satisfied_at(&p), !ra.satisfied_at(&p));
    }
}
