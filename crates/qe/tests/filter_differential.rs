//! Differential tests for the split-word float filter (DESIGN.md §8).
//!
//! The filter may only short-circuit sign decisions the exact path would
//! have confirmed, so with the filter ON every QE/CAD output must be
//! *byte-identical* (compared on the printed relation) to the exact
//! filter-OFF run — across worker counts 1 and 4. A final check confirms
//! the filter actually fires on these workloads, so the identity is not
//! vacuous.

use cdb_constraints::{Atom, Formula, Quantifier, RelOp};
use cdb_num::{fintv, Rat};
use cdb_poly::MPoly;
use cdb_qe::QeContext;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// The filter switch is process-global; serialize every test that toggles
/// it, and restore the enabled default even on panic.
static FILTER_LOCK: Mutex<()> = Mutex::new(());

struct FilterGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FilterGuard {
    fn lock() -> FilterGuard {
        FilterGuard(FILTER_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for FilterGuard {
    fn drop(&mut self) {
        fintv::set_filter_enabled(true);
    }
}

fn conic(a: i64, b: i64, c: i64) -> Formula {
    let n = 2;
    let p = &(&(&MPoly::var(0, n).pow(2).scale(&Rat::from(a))
        + &MPoly::var(1, n).pow(2).scale(&Rat::from(b)))
        + &MPoly::var(0, n).scale(&Rat::from(c)))
        - &MPoly::constant(Rat::from(1i64), n);
    Formula::Atom(Atom::new(p, RelOp::Le))
}

/// Eliminate ∃x₁ from a disjunction of conics; returns the printed output
/// relation (byte-level identity is the strongest observable equality).
fn run_conics(params: &[(i64, i64, i64)], workers: usize) -> Option<String> {
    let matrix = Formula::Or(params.iter().map(|&(a, b, c)| conic(a, b, c)).collect()).to_nnf();
    cdb_qe::cad::eliminate(
        &matrix,
        &[(Quantifier::Exists, 1)],
        &[0],
        2,
        &QeContext::exact().with_workers(workers),
    )
    .ok()
    .map(|rel| format!("{rel}"))
}

/// Fixed workload: filter on vs off is byte-identical for workers 1 and 4,
/// and the filter demonstrably fires when enabled.
#[test]
fn filter_on_off_byte_identical_fixed() {
    let _guard = FilterGuard::lock();
    let params = [(1, 1, 0), (2, 1, -1), (1, 2, 1), (-1, 2, 0)];
    for workers in [1usize, 4] {
        fintv::set_filter_enabled(false);
        let exact = run_conics(&params, workers);
        fintv::set_filter_enabled(true);
        let (h0, _) = fintv::filter_counters();
        let filtered = run_conics(&params, workers);
        let (h1, _) = fintv::filter_counters();
        assert_eq!(
            exact, filtered,
            "filter changed output (workers = {workers})"
        );
        assert!(exact.is_some(), "workload unexpectedly rejected by CAD");
        assert!(h1 > h0, "filter never fired (workers = {workers})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized conics: the filtered run reproduces the exact run byte
    /// for byte, for workers 1 and 4 (accept/reject decisions included).
    #[test]
    fn filter_on_off_byte_identical(
        a in -2i64..=2, b in -2i64..=2, c in -2i64..=2,
        a2 in -2i64..=2, b2 in -2i64..=2, c2 in -2i64..=2,
    ) {
        let _guard = FilterGuard::lock();
        let params = [(a, b, c), (a2, b2, c2)];
        for workers in [1usize, 4] {
            fintv::set_filter_enabled(false);
            let exact = run_conics(&params, workers);
            fintv::set_filter_enabled(true);
            let filtered = run_conics(&params, workers);
            prop_assert_eq!(
                &exact, &filtered,
                "filter changed output (workers = {})", workers
            );
        }
    }
}
