//! Differential tests for the per-disjunct QE planner (DESIGN.md §16).
//!
//! Three obligations:
//! 1. `Auto` output is byte-identical across worker counts (1 vs 4), and
//!    semantically equal to the `ForceCAD` output (which reproduces the
//!    pre-planner whole-relation path byte-for-byte, also across workers).
//! 2. The quadratic shortcut ([`cdb_qe::quad1`]) agrees with CAD on every
//!    degree-≤2 one-variable formula — including the degenerate `a = 0`
//!    (linear) case and double roots.
//! 3. Forced modes fail *typed* on inapplicable disjuncts
//!    ([`QeError::PlanUnsupported`]), never silently falling back.
//!
//! A fixed mixed corpus also pins that all four strategies are exercised
//! (`strategies_all_exercised`), and a reorder pin shows the cost-aware
//! variable order avoiding a CAD dispatch a naive order would pay for.

use cdb_constraints::{Atom, ConstraintRelation, Formula, GeneralizedTuple, Quantifier, RelOp};
use cdb_num::Rat;
use cdb_poly::MPoly;
use cdb_qe::{plan, PlanMode, QeContext, QeError};
use proptest::prelude::*;

fn c(v: i64, n: usize) -> MPoly {
    MPoly::constant(Rat::from(v), n)
}

/// Run the planner entry point on a prenex matrix and return the answer
/// relation (callers compare its printed form for byte identity, or probe
/// it for semantic equality).
fn run_planner(
    matrix: &Formula,
    prefix: &[(Quantifier, usize)],
    free: &[usize],
    nvars: usize,
    mode: PlanMode,
    workers: usize,
) -> Result<ConstraintRelation, QeError> {
    let ctx = QeContext::exact()
        .with_workers(workers)
        .with_plan_mode(mode);
    let rel = matrix
        .to_dnf(nvars)
        .map_err(QeError::Unsupported)?
        .simplify()
        .prune_empty_boxes();
    plan::eliminate_prefix(matrix, rel, prefix, free, nvars, &ctx)
}

/// One mixed-corpus disjunct over `(x, y)` (y is eliminated): `kind`
/// selects the planner class it should land in.
fn mixed_disjunct(kind: u8, a: i64, b: i64) -> Formula {
    let n = 2;
    let x = MPoly::var(0, n);
    let y = MPoly::var(1, n);
    let atoms = match kind {
        // Substitution: y pinned by a linear equality.
        0 => vec![
            Atom::new(&y - &c(a, n), RelOp::Eq),
            Atom::new(&(&x - &y) - &c(b, n), RelOp::Le),
        ],
        // Fourier–Motzkin: all-linear bounds on y.
        1 => vec![
            Atom::new(&y - &c(b.max(a), n), RelOp::Le),
            Atom::new(&c(a.min(b), n) - &y, RelOp::Le),
            Atom::new(&x - &y, RelOp::Le),
        ],
        // Quadratic shortcut: one degree-2 atom, constant lead.
        2 => vec![
            Atom::new(&(&y.pow(2) + &y.scale(&Rat::from(a))) + &c(b, n), RelOp::Le),
            Atom::new(&x - &y, RelOp::Le),
        ],
        // CAD fallback: cubic in y. ∃y (y³ ≥ x ∧ y ≤ a) ⇔ x ≤ a³.
        _ => vec![
            Atom::new(&x - &y.pow(3), RelOp::Le),
            Atom::new(&y - &c(a, n), RelOp::Le),
        ],
    };
    Formula::And(atoms.into_iter().map(Formula::Atom).collect())
}

fn mixed_matrix(spec: &[(u8, i64, i64)]) -> Formula {
    Formula::Or(
        spec.iter()
            .map(|&(k, a, b)| mixed_disjunct(k, a, b))
            .collect(),
    )
    .to_nnf()
}

/// Probe grid for semantic comparison of one-free-variable answers.
fn probe_points() -> Vec<Rat> {
    ["-4", "-2", "-1", "-1/2", "0", "1/2", "1", "2", "4", "27/8"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect()
}

/// Fixed mixed corpus: every strategy fires, and the planner's output
/// agrees with forced CAD — byte-identical across workers within each
/// mode, semantically equal across modes.
#[test]
fn strategies_all_exercised() {
    let spec = [(0u8, 2i64, 1i64), (1, -1, 2), (2, 1, -2), (3, 2, 0)];
    let matrix = mixed_matrix(&spec);
    let prefix = [(Quantifier::Exists, 1)];
    for workers in [1usize, 4] {
        let ctx = QeContext::exact()
            .with_workers(workers)
            .with_plan_mode(PlanMode::Auto);
        let rel = matrix.to_dnf(2).unwrap().simplify().prune_empty_boxes();
        plan::eliminate_prefix(&matrix, rel, &prefix, &[0], 2, &ctx).unwrap();
        let stats = ctx.plan_stats();
        assert!(stats.subst >= 1, "substitution never fired (w={workers})");
        assert!(stats.fm >= 1, "FM never fired (w={workers})");
        assert!(stats.quad >= 1, "quad shortcut never fired (w={workers})");
        assert!(stats.cad >= 1, "CAD fallback never fired (w={workers})");
    }
}

/// The fixed corpus again, as a full four-way differential.
#[test]
fn mixed_corpus_differential_fixed() {
    let spec = [(0u8, 2i64, 1i64), (1, -1, 2), (2, 1, -2), (3, 2, 0)];
    let matrix = mixed_matrix(&spec);
    let prefix = [(Quantifier::Exists, 1)];
    let auto1 = run_planner(&matrix, &prefix, &[0], 2, PlanMode::Auto, 1).unwrap();
    let auto4 = run_planner(&matrix, &prefix, &[0], 2, PlanMode::Auto, 4).unwrap();
    let cad1 = run_planner(&matrix, &prefix, &[0], 2, PlanMode::ForceCAD, 1).unwrap();
    let cad4 = run_planner(&matrix, &prefix, &[0], 2, PlanMode::ForceCAD, 4).unwrap();
    assert_eq!(
        format!("{auto1}"),
        format!("{auto4}"),
        "Auto not worker-deterministic"
    );
    assert_eq!(
        format!("{cad1}"),
        format!("{cad4}"),
        "ForceCAD not worker-deterministic"
    );
    for x in probe_points() {
        let point = [x.clone(), Rat::zero()];
        assert_eq!(
            auto1.satisfied_at(&point),
            cad1.satisfied_at(&point),
            "Auto and ForceCAD disagree at x = {x}"
        );
    }
}

/// Reorder pin (satellite 2): in ∃x∃y (x = 2 ∧ x·y² + y − 3 ≤ 0) the
/// quadratic's leading coefficient in y is *symbolic* (`x`), so naively
/// eliminating the innermost y first means a CAD dispatch. The cost-aware
/// order substitutes the pinned x first, which collapses the disjunct to
/// 2y² + y − 3 ≤ 0 — a quad-shortcut job. CAD must never fire.
#[test]
fn reorder_avoids_cad_dispatch() {
    let n = 2;
    let x = MPoly::var(0, n);
    let y = MPoly::var(1, n);
    let quad_atom = Atom::new(&(&(&x * &y.pow(2)) + &y) - &c(3, n), RelOp::Le);
    let tuple = GeneralizedTuple::new(
        n,
        vec![Atom::new(&x - &c(2, n), RelOp::Eq), quad_atom.clone()],
    );
    // Naive innermost-first would start at y, which classifies as CAD.
    assert_eq!(plan::classify(&tuple, 1), plan::Strategy::Cad);
    assert_eq!(plan::classify(&tuple, 0), plan::Strategy::Subst);
    let matrix = Formula::And(vec![
        Formula::Atom(Atom::new(&x - &c(2, n), RelOp::Eq)),
        Formula::Atom(quad_atom),
    ])
    .to_nnf();
    let prefix = [(Quantifier::Exists, 0), (Quantifier::Exists, 1)];
    let ctx = QeContext::exact().with_workers(1);
    let rel = matrix.to_dnf(n).unwrap().simplify().prune_empty_boxes();
    let out = plan::eliminate_prefix(&matrix, rel, &prefix, &[], n, &ctx).unwrap();
    // The sentence is true: y = 1 gives 2 + 1 − 3 ≤ 0.
    assert!(out.satisfied_at(&[Rat::zero(), Rat::zero()]));
    let stats = ctx.plan_stats();
    assert_eq!(stats.cad, 0, "cost-aware order should avoid CAD entirely");
    assert!(stats.subst >= 1, "x = 2 should be substituted");
    assert!(stats.quad >= 1, "the collapsed disjunct should go quad");
}

/// Satellite 6: forced modes return a typed error on inapplicable
/// disjuncts — no panic, no silent fallback.
#[test]
fn forced_modes_fail_typed() {
    let n = 1;
    let x = MPoly::var(0, n);
    let cubic = ConstraintRelation::new(
        n,
        vec![GeneralizedTuple::new(
            n,
            vec![Atom::new(&x.pow(3) - &c(2, n), RelOp::Le)],
        )],
    );
    let quad = ConstraintRelation::new(
        n,
        vec![GeneralizedTuple::new(
            n,
            vec![Atom::new(&x.pow(2) - &c(2, n), RelOp::Le)],
        )],
    );
    let fq = QeContext::exact().with_plan_mode(PlanMode::ForceQuad);
    let err = plan::eliminate_exists_run(&cubic, &[0], &fq).unwrap_err();
    assert!(
        matches!(err, QeError::PlanUnsupported(_)),
        "ForceQuad on a cubic must be PlanUnsupported, got: {err}"
    );
    let ffm = QeContext::exact().with_plan_mode(PlanMode::ForceFM);
    let err = plan::eliminate_exists_run(&quad, &[0], &ffm).unwrap_err();
    assert!(
        matches!(err, QeError::PlanUnsupported(_)),
        "ForceFM on a quadratic must be PlanUnsupported, got: {err}"
    );
    // The error also survives the full planner entry point.
    let matrix = cdb_constraints::formula::relation_to_formula(&cubic);
    let err = plan::eliminate_prefix(
        &matrix,
        cubic.clone(),
        &[(Quantifier::Exists, 0)],
        &[],
        n,
        &fq,
    )
    .unwrap_err();
    assert!(matches!(err, QeError::PlanUnsupported(_)), "{err}");
}

/// Quad-vs-CAD on hand-picked degenerate cases: double roots, empty
/// interiors, the linear `a = 0` delegation, and equality constraints.
#[test]
fn quad_shortcut_degenerate_cases() {
    // (q(x) atoms, extra linear bounds, expected sentence truth)
    let n = 1;
    let x = MPoly::var(0, n);
    let dbl = &(&x - &c(1, n)).pow(2); // (x−1)², double root at 1
    let cases: Vec<(Vec<Atom>, bool)> = vec![
        (vec![Atom::new(dbl.clone(), RelOp::Le)], true),
        (vec![Atom::new(dbl.clone(), RelOp::Lt)], false),
        (
            vec![
                Atom::new(dbl.clone(), RelOp::Le),
                Atom::new(&c(2, n) - &x, RelOp::Le), // x ≥ 2 excludes the root
            ],
            false,
        ),
        (
            vec![
                Atom::new(dbl.clone(), RelOp::Eq),
                Atom::new(-&x, RelOp::Le), // x ≥ 0 keeps it
            ],
            true,
        ),
        // a = 0: the "quadratic" is linear; quad1 delegates to FM.
        (
            vec![
                Atom::new(&x.scale(&Rat::from(2i64)) + &c(1, n), RelOp::Le),
                Atom::new(-&x, RelOp::Le), // x ≥ 0 ∧ 2x+1 ≤ 0: empty
            ],
            false,
        ),
        (
            vec![
                Atom::new(&x.pow(2) - &c(2, n), RelOp::Eq),
                Atom::new(&c(1, n) - &x, RelOp::Le), // x ≥ 1 keeps √2
            ],
            true,
        ),
    ];
    for (i, (atoms, expect)) in cases.into_iter().enumerate() {
        let matrix = Formula::And(atoms.into_iter().map(Formula::Atom).collect()).to_nnf();
        let prefix = [(Quantifier::Exists, 0)];
        for mode in [PlanMode::ForceQuad, PlanMode::ForceCAD, PlanMode::Auto] {
            let out = run_planner(&matrix, &prefix, &[], n, mode, 1).unwrap();
            assert_eq!(
                out.satisfied_at(&[Rat::zero()]),
                expect,
                "case {i} under {mode:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized mixed corpora: Auto is byte-identical across workers
    /// {1, 4}, ForceCAD likewise, and the two modes agree semantically on
    /// a probe grid.
    #[test]
    fn mixed_corpus_differential(
        spec in proptest::collection::vec((0u8..=3, -2i64..=2, -2i64..=2), 2..=3),
    ) {
        let matrix = mixed_matrix(&spec);
        let prefix = [(Quantifier::Exists, 1)];
        let auto1 = run_planner(&matrix, &prefix, &[0], 2, PlanMode::Auto, 1).unwrap();
        let auto4 = run_planner(&matrix, &prefix, &[0], 2, PlanMode::Auto, 4).unwrap();
        let cad1 = run_planner(&matrix, &prefix, &[0], 2, PlanMode::ForceCAD, 1).unwrap();
        let cad4 = run_planner(&matrix, &prefix, &[0], 2, PlanMode::ForceCAD, 4).unwrap();
        prop_assert_eq!(format!("{}", auto1), format!("{}", auto4));
        prop_assert_eq!(format!("{}", cad1), format!("{}", cad4));
        for x in probe_points() {
            let point = [x.clone(), Rat::zero()];
            prop_assert_eq!(
                auto1.satisfied_at(&point),
                cad1.satisfied_at(&point),
                "Auto and ForceCAD disagree at x = {}", x
            );
        }
    }

    /// Randomized degree-≤2 one-variable formulas (a = 0 included): the
    /// quad shortcut and CAD decide the same sentences.
    #[test]
    fn quad_shortcut_matches_cad(
        a in -2i64..=2, b in -3i64..=3, cc in -3i64..=3,
        op_idx in 0u8..=4,
        lo in -3i64..=1, hi in 0i64..=3,
        with_lo in any::<bool>(), with_hi in any::<bool>(),
    ) {
        let n = 1;
        let x = MPoly::var(0, n);
        let q = &(&x.pow(2).scale(&Rat::from(a)) + &x.scale(&Rat::from(b))) + &c(cc, n);
        let op = [RelOp::Le, RelOp::Lt, RelOp::Ge, RelOp::Gt, RelOp::Eq][usize::from(op_idx)];
        let mut atoms = vec![Atom::new(q, op)];
        if with_lo {
            atoms.push(Atom::new(&c(lo, n) - &x, RelOp::Le));
        }
        if with_hi {
            atoms.push(Atom::new(&x - &c(hi, n), RelOp::Le));
        }
        let matrix = Formula::And(atoms.into_iter().map(Formula::Atom).collect()).to_nnf();
        let prefix = [(Quantifier::Exists, 0)];
        let quad = run_planner(&matrix, &prefix, &[], n, PlanMode::ForceQuad, 1).unwrap();
        let cad = run_planner(&matrix, &prefix, &[], n, PlanMode::ForceCAD, 1).unwrap();
        prop_assert_eq!(
            quad.satisfied_at(&[Rat::zero()]),
            cad.satisfied_at(&[Rat::zero()]),
            "quad shortcut disagrees with CAD on a={} b={} c={} op={:?} lo={:?} hi={:?}",
            a, b, cc, op,
            with_lo.then_some(lo), with_hi.then_some(hi)
        );
    }
}
