//! Integration tests driving the CAD through its hardest paths:
//!
//! * three-level decompositions whose samples stack *two* algebraic
//!   coordinates (the iterated-resultant + rational-separator machinery of
//!   DESIGN.md §5),
//! * sentences mixing equations and inequalities at algebraic values,
//! * solution formula construction needing derivative augmentation.

use cdb_constraints::{Atom, Formula, Quantifier, RelOp};
use cdb_num::Rat;
use cdb_poly::MPoly;
use cdb_qe::cad::{build_cad, decide_sentence};
use cdb_qe::QeContext;

fn c(v: i64, n: usize) -> MPoly {
    MPoly::constant(Rat::from(v), n)
}

/// √2·√3 = √6 ≈ 2.449: deciding z ≥ q against it forces sign evaluation at
/// a sample with two algebraic coordinates.
#[test]
fn sentence_over_two_algebraic_coordinates() {
    let n = 3;
    let x = MPoly::var(0, n);
    let y = MPoly::var(1, n);
    let z = MPoly::var(2, n);
    let base = vec![
        Formula::Atom(Atom::new(&x.pow(2) - &c(2, n), RelOp::Eq)),
        Formula::Atom(Atom::new(&y.pow(2) - &c(3, n), RelOp::Eq)),
        Formula::Atom(Atom::new(&z - &(&x * &y), RelOp::Eq)),
    ];
    let prefix = [
        (Quantifier::Exists, 0),
        (Quantifier::Exists, 1),
        (Quantifier::Exists, 2),
    ];
    let ctx = QeContext::exact();
    // ∃x∃y∃z: x²=2 ∧ y²=3 ∧ z = x·y ∧ z ≥ 2.4 — true (z = √6 ≈ 2.4495).
    let mut sat = base.clone();
    sat.push(Formula::Atom(Atom::new(
        &c(12, n) - &z.scale(&Rat::from(5i64)),
        RelOp::Le,
    )));
    assert!(decide_sentence(&Formula::And(sat), &prefix, n, &ctx).unwrap());
    // …and z ≥ 2.45 ∧ z ≤ 2.5 — still true? √6 = 2.44948… < 2.45: false.
    let mut unsat = base.clone();
    unsat.push(Formula::Atom(Atom::new(
        &c(49, n) - &z.scale(&Rat::from(20i64)),
        RelOp::Le,
    )));
    unsat.push(Formula::Atom(Atom::new(&z - &c(3, n), RelOp::Le)));
    assert!(!decide_sentence(&Formula::And(unsat), &prefix, n, &ctx).unwrap());
}

/// Full three-level CAD: stacks over (√2, √3)-type samples are built with
/// the multi-algebraic candidate machinery; check the cell counts are sane
/// and every level-3 poly got a sign everywhere.
#[test]
fn three_level_cad_structure() {
    let n = 3;
    let x = MPoly::var(0, n);
    let y = MPoly::var(1, n);
    let z = MPoly::var(2, n);
    let polys = vec![&x.pow(2) - &c(2, n), &y.pow(2) - &c(3, n), &z - &(&x * &y)];
    let ctx = QeContext::exact();
    let cad = build_cad(&polys, &[0, 1, 2], n, &ctx).unwrap();
    assert_eq!(cad.levels.len(), 3);
    // Level 1: roots ±√2 plus 0 (the projection of z − x·y contributes the
    // coefficient x·y, whose own projection contributes x) → 7 cells.
    // Level 2: polys {y² − 3, x·y}: over the six cells with x ≠ 0 the fiber
    // roots are {−√3, 0, √3} → 7 cells; over the section x = 0 the poly
    // x·y is nullified → 5 cells. Total 6·7 + 5 = 47.
    // Level 3: z − x·y is a single section per fiber → 3 cells each.
    assert_eq!(cad.levels[0].len(), 7);
    assert_eq!(cad.levels[1].len(), 47);
    assert_eq!(cad.levels[2].len(), 141);
    // Every top cell has a sign recorded for every registered polynomial.
    let ids: Vec<usize> = cad.registry.iter().map(|(i, _)| i).collect();
    for cell in &cad.levels[2] {
        for id in &ids {
            assert!(
                cell.signs.contains_key(id),
                "missing sign for poly {id} at cell {:?}",
                cell.index
            );
        }
    }
}

/// z = x·y over x = √2, y = √3 has the (irrational) root √6: EVAL-style
/// numeric extraction through a 3-var finite system.
#[test]
fn numeric_evaluation_of_sqrt6() {
    let n = 3;
    let x = MPoly::var(0, n);
    let y = MPoly::var(1, n);
    let z = MPoly::var(2, n);
    let rel = cdb_constraints::ConstraintRelation::new(
        n,
        vec![cdb_constraints::GeneralizedTuple::new(
            n,
            vec![
                Atom::new(&x.pow(2) - &c(2, n), RelOp::Eq),
                Atom::new(x.clone(), RelOp::Ge),
                Atom::new(&y.pow(2) - &c(3, n), RelOp::Eq),
                Atom::new(y.clone(), RelOp::Ge),
                Atom::new(&z - &(&x * &y), RelOp::Eq),
            ],
        )],
    );
    let ctx = QeContext::exact();
    let eps: Rat = "1/1048576".parse().unwrap();
    let pts = cdb_qe::pipeline::numerical_evaluation(&rel, &[0, 1, 2], &eps, &ctx)
        .unwrap()
        .expect("finite");
    assert_eq!(pts.len(), 1);
    let p = &pts[0];
    assert!((p.coords[0].to_f64() - 2f64.sqrt()).abs() < 1e-5);
    assert!((p.coords[1].to_f64() - 3f64.sqrt()).abs() < 1e-5);
    assert!((p.coords[2].to_f64() - 6f64.sqrt()).abs() < 1e-5);
}

/// Formula construction where the initial projection signs collide:
/// ∃y (y² = x) ⇔ x ≥ 0, whose free-space polys (just x) distinguish the
/// cells directly; and a case needing augmentation: ∃y (y² = x²) is all of
/// R — solution formula must not fracture.
#[test]
fn solution_formula_edge_cases() {
    let n = 2;
    let x = MPoly::var(0, n);
    let y = MPoly::var(1, n);
    let ctx = QeContext::exact();
    let sqrt_region = cdb_qe::cad::eliminate(
        &Formula::Atom(Atom::new(&y.pow(2) - &x, RelOp::Eq)),
        &[(Quantifier::Exists, 1)],
        &[0],
        n,
        &ctx,
    )
    .unwrap();
    for (v, expect) in [("0", true), ("4", true), ("-1", false)] {
        assert_eq!(
            sqrt_region.satisfied_at(&[v.parse().unwrap(), Rat::zero()]),
            expect,
            "x = {v}"
        );
    }
    let all_reals = cdb_qe::cad::eliminate(
        &Formula::Atom(Atom::new(&y.pow(2) - &x.pow(2), RelOp::Eq)),
        &[(Quantifier::Exists, 1)],
        &[0],
        n,
        &ctx,
    )
    .unwrap();
    for v in ["-3", "0", "5/2"] {
        assert!(
            all_reals.satisfied_at(&[v.parse().unwrap(), Rat::zero()]),
            "x = {v}"
        );
    }
}
