//! Differential tests: the interned flat-term representation must agree
//! with the retained seed reference implementation (`cdb_poly::refimpl`) —
//! same values, byte-identical `Display` — on random inputs, for
//! `add`/`mul`/`div_exact`/`resultant`/Sturm chains, under 1 and 4 worker
//! threads, and with the interner enabled or disabled.

use cdb_num::Rat;
use cdb_poly::refimpl::{ref_resultant, ref_sturm_chain, RefPoly, RefUPoly};
use cdb_poly::resultant::resultant;
use cdb_poly::sturm::SturmChain;
use cdb_poly::{intern, MPoly, UPoly};
use proptest::prelude::*;

/// Build both representations from one term list.
fn both(nvars: usize, terms: &[(Vec<u32>, i64)]) -> (MPoly, RefPoly) {
    let pairs: Vec<(Vec<u32>, Rat)> = terms
        .iter()
        .map(|(m, c)| (m.clone(), Rat::from(*c)))
        .collect();
    (
        MPoly::from_terms(nvars, pairs.clone()),
        RefPoly::from_terms(nvars, pairs),
    )
}

fn terms2(raw: &[(u32, u32, i64)]) -> Vec<(Vec<u32>, i64)> {
    raw.iter().map(|&(e0, e1, c)| (vec![e0, e1], c)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ring operations agree with the seed representation, down to the
    /// rendered string.
    #[test]
    fn add_sub_mul_match_reference(
        ra in prop::collection::vec((0u32..=4, 0u32..=4, -9i64..=9), 0..=6),
        rb in prop::collection::vec((0u32..=4, 0u32..=4, -9i64..=9), 0..=6),
    ) {
        let (a, fa) = both(2, &terms2(&ra));
        let (b, fb) = both(2, &terms2(&rb));
        prop_assert_eq!((&a + &b).to_string(), (&fa + &fb).to_string());
        prop_assert_eq!((&a - &b).to_string(), (&fa - &fb).to_string());
        prop_assert_eq!((&a * &b).to_string(), (&fa * &fb).to_string());
        prop_assert_eq!((-&a).to_string(), (-&fa).to_string());
        // And the evaluation semantics agree.
        let pt = [Rat::from(3i64), Rat::from(-2i64)];
        prop_assert_eq!((&a * &b).eval(&pt), (&fa * &fb).eval(&pt));
    }

    /// Exact division of a constructed multiple agrees with the seed.
    #[test]
    fn div_exact_matches_reference(
        ra in prop::collection::vec((0u32..=3, 0u32..=3, -6i64..=6), 1..=4),
        rb in prop::collection::vec((0u32..=3, 0u32..=3, -6i64..=6), 1..=4),
    ) {
        let (a, fa) = both(2, &terms2(&ra));
        let (b, fb) = both(2, &terms2(&rb));
        prop_assume!(!a.is_zero() && !b.is_zero());
        let prod = &a * &b;
        let fprod = &fa * &fb;
        prop_assert_eq!(prod.div_exact(&a).to_string(), fprod.div_exact(&fa).to_string());
        prop_assert_eq!(prod.div_exact(&b).to_string(), fprod.div_exact(&fb).to_string());
    }

    /// Bareiss resultants agree with the seed algorithm byte-for-byte.
    #[test]
    fn resultant_matches_reference(
        ra in prop::collection::vec((0u32..=2, 0u32..=2, -5i64..=5), 1..=4),
        rb in prop::collection::vec((0u32..=2, 0u32..=2, -5i64..=5), 1..=4),
        var in 0usize..=1,
    ) {
        let (a, fa) = both(2, &terms2(&ra));
        let (b, fb) = both(2, &terms2(&rb));
        prop_assert_eq!(
            resultant(&a, &b, var).to_string(),
            ref_resultant(&fa, &fb, var).to_string()
        );
    }

    /// Sturm chains agree member-by-member with the seed algorithm.
    #[test]
    fn sturm_chain_matches_reference(coeffs in prop::collection::vec(-20i64..=20, 1..=7)) {
        let p = UPoly::from_ints(&coeffs);
        let rp = RefUPoly::from_coeffs(coeffs.iter().map(|&c| Rat::from(c)).collect());
        let chain = SturmChain::new(&p);
        let rchain = ref_sturm_chain(&rp);
        let got: Vec<String> = chain.sequence().iter().map(|q| q.to_string()).collect();
        let want: Vec<String> = rchain.iter().map(|q| q.to_string()).collect();
        prop_assert_eq!(got, want);
    }

    /// Eq/Hash invariants: equal content built along different construction
    /// paths yields equal handles and equal content-derived ids.
    #[test]
    fn eq_hash_id_consistent(
        ra in prop::collection::vec((0u32..=4, 0u32..=4, -9i64..=9), 0..=6),
    ) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let (a, fa) = both(2, &terms2(&ra));
        // Rebuild by summing single-term polynomials: same content.
        let mut b = MPoly::zero(2);
        for (m, c) in fa.to_mpoly().terms() {
            b = &b + &MPoly::from_terms(2, [(m.to_vec(), c.clone())]);
        }
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.id(), b.id());
        let h = |p: &MPoly| {
            let mut s = DefaultHasher::new();
            p.hash(&mut s);
            s.finish()
        };
        prop_assert_eq!(h(&a), h(&b));
    }
}

/// Deterministic splitmix-style generator for the thread matrix below.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn rand_terms(state: &mut u64, nterms: usize) -> Vec<(u32, u32, i64)> {
    (0..nterms)
        .map(|_| {
            (
                (next(state) % 4) as u32,
                (next(state) % 4) as u32,
                (next(state) % 15) as i64 - 7,
            )
        })
        .collect()
}

/// One work item: multiply, divide back, take a resultant; return the
/// rendered results.
fn work_item(seed: u64) -> Vec<String> {
    let mut st = seed;
    let (a, _) = both(2, &terms2(&rand_terms(&mut st, 4)));
    let (b, _) = both(2, &terms2(&rand_terms(&mut st, 4)));
    let prod = &a * &b;
    let mut out = vec![prod.to_string()];
    if !a.is_zero() {
        out.push(prod.div_exact(&a).to_string());
    }
    out.push(resultant(&a, &b, 1).to_string());
    out
}

fn reference_item(seed: u64) -> Vec<String> {
    let mut st = seed;
    let (_, fa) = both(2, &terms2(&rand_terms(&mut st, 4)));
    let (_, fb) = both(2, &terms2(&rand_terms(&mut st, 4)));
    let prod = &fa * &fb;
    let mut out = vec![prod.to_string()];
    if !fa.is_zero() {
        out.push(prod.div_exact(&fa).to_string());
    }
    out.push(ref_resultant(&fa, &fb, 1).to_string());
    out
}

/// The same work sharded over 1 and 4 worker threads produces byte-identical
/// output, equal to the seed reference — interning (a shared global
/// structure) must not make results depend on thread schedule.
#[test]
fn workers_1_and_4_byte_identical() {
    const TASKS: u64 = 24;
    let want: Vec<Vec<String>> = (0..TASKS).map(reference_item).collect();
    for workers in [1usize, 4] {
        let mut got: Vec<Option<Vec<String>>> = vec![None; TASKS as usize];
        let chunks: Vec<Vec<u64>> = (0..workers)
            .map(|w| {
                (0..TASKS)
                    .filter(|t| (*t as usize) % workers == w)
                    .collect()
            })
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|t| (t, work_item(t)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for (t, res) in h.join().expect("worker panicked") {
                    got[t as usize] = Some(res);
                }
            }
        });
        let got: Vec<Vec<String>> = got.into_iter().map(|r| r.expect("task ran")).collect();
        assert_eq!(got, want, "workers = {workers}");
    }
}

/// Disabling the interner changes sharing, never values: every rendered
/// result and every content-derived id is identical either way.
#[test]
fn interner_toggle_is_invisible() {
    let on: Vec<Vec<String>> = (100..112u64).map(work_item).collect();
    let ids_on: Vec<_> = (100..112u64)
        .map(|s| {
            let mut st = s;
            let (a, _) = both(2, &terms2(&rand_terms(&mut st, 4)));
            a.id()
        })
        .collect();
    intern::set_enabled(false);
    let off: Vec<Vec<String>> = (100..112u64).map(work_item).collect();
    let ids_off: Vec<_> = (100..112u64)
        .map(|s| {
            let mut st = s;
            let (a, _) = both(2, &terms2(&rand_terms(&mut st, 4)));
            a.id()
        })
        .collect();
    intern::set_enabled(true);
    assert_eq!(on, off);
    assert_eq!(ids_on, ids_off);
}

/// Spilled monomials (exponent > 255) and packed ones agree with the seed.
#[test]
fn spilled_monomials_match_reference() {
    let (a, fa) = both(2, &[(vec![300, 1], 3), (vec![2, 0], -1), (vec![0, 0], 7)]);
    let (b, fb) = both(2, &[(vec![260, 0], 2), (vec![0, 1], 5)]);
    assert_eq!((&a * &b).to_string(), (&fa * &fb).to_string());
    assert_eq!((&a + &b).to_string(), (&fa + &fb).to_string());
    assert_eq!(a.degree_in(0), fa.degree_in(0));
    let prod = &a * &b;
    assert_eq!(
        prod.div_exact(&a).to_string(),
        (&fa * &fb).div_exact(&fa).to_string()
    );
}
