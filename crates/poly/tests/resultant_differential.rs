//! Differential tests for the modular / evaluation–interpolation resultant
//! kernels (DESIGN.md §11): every strategy the dispatcher can pick must
//! agree with the retained seed reference implementation
//! (`cdb_poly::refimpl::ref_resultant`) byte-for-byte — on random inputs,
//! on the degenerate shapes the fast paths special-case (zero polynomials,
//! vanishing leading coefficients, shared factors, spilled >8-variable
//! monomials), under 1 and 4 worker threads, and with the interner enabled
//! or disabled. The kernels are enabled by default; nothing here toggles
//! them off except the test that checks the toggle itself.

use cdb_num::Rat;
use cdb_poly::refimpl::{ref_resultant, RefPoly};
use cdb_poly::resultant::{resultant, resultant_with_strategy, set_fast_enabled, Strategy};
use cdb_poly::{intern, MPoly};
use proptest::prelude::*;

/// Build both representations from one term list.
fn both(nvars: usize, terms: &[(Vec<u32>, i64)]) -> (MPoly, RefPoly) {
    let pairs: Vec<(Vec<u32>, Rat)> = terms
        .iter()
        .map(|(m, c)| (m.clone(), Rat::from(*c)))
        .collect();
    (
        MPoly::from_terms(nvars, pairs.clone()),
        RefPoly::from_terms(nvars, pairs),
    )
}

fn terms2(raw: &[(u32, u32, i64)]) -> Vec<(Vec<u32>, i64)> {
    raw.iter().map(|&(e0, e1, c)| (vec![e0, e1], c)).collect()
}

/// Assert the dispatcher *and* every applicable forced strategy agree with
/// the reference, byte-for-byte.
fn assert_all_strategies_match(a: &MPoly, fa: &RefPoly, b: &MPoly, fb: &RefPoly, var: usize) {
    let want = ref_resultant(fa, fb, var).to_string();
    assert_eq!(resultant(a, b, var).to_string(), want, "dispatcher");
    for strat in [Strategy::Prs, Strategy::EvalInterp, Strategy::Crt] {
        if let Some(r) = resultant_with_strategy(a, b, var, strat) {
            assert_eq!(r.to_string(), want, "{strat:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random bivariate inputs: all kernels ≡ the seed algorithm.
    #[test]
    fn random_bivariate_matches_reference(
        ra in prop::collection::vec((0u32..=3, 0u32..=3, -9i64..=9), 1..=6),
        rb in prop::collection::vec((0u32..=3, 0u32..=3, -9i64..=9), 1..=6),
        var in 0usize..=1,
    ) {
        let (a, fa) = both(2, &terms2(&ra));
        let (b, fb) = both(2, &terms2(&rb));
        assert_all_strategies_match(&a, &fa, &b, &fb, var);
    }

    /// Products with a constructed common factor: the resultant is zero and
    /// every kernel must detect it (no "lucky prime" can hide a common
    /// root, and interpolation of the zero function is zero).
    #[test]
    fn shared_factor_resultant_is_zero(
        rs in prop::collection::vec((0u32..=2, 0u32..=2, -5i64..=5), 1..=3),
        ra in prop::collection::vec((0u32..=2, 0u32..=2, -5i64..=5), 1..=3),
        rb in prop::collection::vec((0u32..=2, 0u32..=2, -5i64..=5), 1..=3),
    ) {
        let (s, fs) = both(2, &terms2(&rs));
        let (a, fa) = both(2, &terms2(&ra));
        let (b, fb) = both(2, &terms2(&rb));
        prop_assume!(!s.is_zero() && s.total_degree() > 0);
        let (p, fp) = (&s * &a, &fs * &fa);
        let (q, fq) = (&s * &b, &fs * &fb);
        for var in [0usize, 1] {
            // A common factor forces a zero resultant only when it has
            // positive degree in the eliminated variable.
            if s.degree_in(var) >= 1 && p.degree_in(var).min(q.degree_in(var)) >= 1 {
                let want = ref_resultant(&fp, &fq, var);
                assert!(want.to_mpoly().is_zero(), "reference must vanish");
                assert_all_strategies_match(&p, &fp, &q, &fq, var);
            }
        }
    }

    /// Spilled monomials: the same bivariate shapes embedded in an 11-variable
    /// ring, where `Mono` cannot pack inline (PACK_VARS = 8) and every
    /// monomial lives on the spill path.
    #[test]
    fn spilled_wide_ring_matches_reference(
        ra in prop::collection::vec((0u32..=3, 0u32..=3, -9i64..=9), 1..=5),
        rb in prop::collection::vec((0u32..=3, 0u32..=3, -9i64..=9), 1..=5),
    ) {
        const WIDE: usize = 11;
        let widen = |raw: &[(u32, u32, i64)]| -> Vec<(Vec<u32>, i64)> {
            raw.iter()
                .map(|&(e0, e1, c)| {
                    // Use the two outermost variables of the wide ring.
                    let mut exps = vec![0u32; WIDE];
                    exps[0] = e0;
                    exps[WIDE - 1] = e1;
                    (exps, c)
                })
                .collect()
        };
        let (a, fa) = both(WIDE, &widen(&ra));
        let (b, fb) = both(WIDE, &widen(&rb));
        for var in [0, WIDE - 1] {
            assert_all_strategies_match(&a, &fa, &b, &fb, var);
        }
    }
}

#[test]
fn zero_polynomial_inputs() {
    let (z, fz) = both(2, &[]);
    let (a, fa) = both(2, &terms2(&[(2, 1, 3), (0, 0, -1)]));
    assert_all_strategies_match(&z, &fz, &a, &fa, 0);
    assert_all_strategies_match(&a, &fa, &z, &fz, 0);
    assert_all_strategies_match(&z, &fz, &z, &fz, 1);
}

#[test]
fn vanishing_leading_coefficient_cases() {
    // lc_x(p) = y and lc_x(q) = y − 2: specializations at y = 0 and y = 2
    // drop degrees, so the evaluation kernels must skip those points; the
    // CRT kernel additionally sees the leading row reduce to a single
    // coefficient that stays nonzero mod every 62-bit prime.
    let (p, fp) = both(2, &terms2(&[(2, 1, 1), (1, 0, 1), (0, 0, 1)])); // y·x² + x + 1
    let (q, fq) = both(
        2,
        &terms2(&[(2, 1, 1), (2, 0, -2), (0, 2, 1), (0, 0, -3)]), // (y−2)x² + y² − 3
    );
    assert_all_strategies_match(&p, &fp, &q, &fq, 0);
    assert_all_strategies_match(&p, &fp, &q, &fq, 1);
}

/// One deterministic work item: a dispatcher resultant rendered to string.
fn work_item(seed: u64) -> String {
    let mut st = seed;
    let mut next = move || {
        st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = st;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut raw = |n: usize| -> Vec<(u32, u32, i64)> {
        (0..n)
            .map(|_| {
                (
                    (next() % 4) as u32,
                    (next() % 4) as u32,
                    (next() % 19) as i64 - 9,
                )
            })
            .collect()
    };
    let (a, _) = both(2, &terms2(&raw(5)));
    let (b, _) = both(2, &terms2(&raw(5)));
    resultant(&a, &b, 1).to_string()
}

fn reference_item(seed: u64) -> String {
    let mut st = seed;
    let mut next = move || {
        st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = st;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut raw = |n: usize| -> Vec<(u32, u32, i64)> {
        (0..n)
            .map(|_| {
                (
                    (next() % 4) as u32,
                    (next() % 4) as u32,
                    (next() % 19) as i64 - 9,
                )
            })
            .collect()
    };
    let (_, fa) = both(2, &terms2(&raw(5)));
    let (_, fb) = both(2, &terms2(&raw(5)));
    ref_resultant(&fa, &fb, 1).to_string()
}

/// The modular kernels share process-global state (strategy counters, the
/// interner, the prime table): sharding the same work over 1 and 4 threads
/// must stay byte-identical to the sequential seed reference.
#[test]
fn workers_1_and_4_byte_identical() {
    const TASKS: u64 = 24;
    let want: Vec<String> = (0..TASKS).map(reference_item).collect();
    for workers in [1usize, 4] {
        let mut got: Vec<Option<String>> = vec![None; TASKS as usize];
        let chunks: Vec<Vec<u64>> = (0..workers)
            .map(|w| {
                (0..TASKS)
                    .filter(|t| (*t as usize) % workers == w)
                    .collect()
            })
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|t| (t, work_item(t)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for (t, res) in h.join().expect("worker panicked") {
                    got[t as usize] = Some(res);
                }
            }
        });
        let got: Vec<String> = got.into_iter().map(|r| r.expect("task ran")).collect();
        assert_eq!(got, want, "workers = {workers}");
    }
}

/// Interner on/off changes sharing, never resultant values.
#[test]
fn interner_toggle_is_invisible_to_kernels() {
    let on: Vec<String> = (300..316u64).map(work_item).collect();
    intern::set_enabled(false);
    let off: Vec<String> = (300..316u64).map(work_item).collect();
    intern::set_enabled(true);
    assert_eq!(on, off);
}

/// The fast-kernel master switch changes speed, never bytes.
#[test]
fn fast_toggle_is_invisible() {
    let fast: Vec<String> = (700..712u64).map(work_item).collect();
    set_fast_enabled(false);
    let slow: Vec<String> = (700..712u64).map(work_item).collect();
    set_fast_enabled(true);
    assert_eq!(fast, slow);
}
