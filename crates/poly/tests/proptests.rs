//! Property-based tests: polynomial ring axioms, division/gcd identities,
//! Sturm counts vs brute-force sampling, root isolation invariants, and
//! resultant specialization.

use cdb_num::{Rat, Sign};
use cdb_poly::resultant::{discriminant, resultant};
use cdb_poly::sturm::SturmChain;
use cdb_poly::{isolate_real_roots, MPoly, RealAlg, RootLocation, UPoly};
use proptest::prelude::*;

fn arb_upoly(max_deg: usize, coeff: i64) -> impl Strategy<Value = UPoly> {
    prop::collection::vec(-coeff..=coeff, 1..=max_deg + 1).prop_map(|v| UPoly::from_ints(&v))
}

fn nonzero_upoly(max_deg: usize, coeff: i64) -> impl Strategy<Value = UPoly> {
    arb_upoly(max_deg, coeff).prop_filter("nonzero", |p| !p.is_zero())
}

/// Product of random small linear/quadratic factors: known real roots.
fn factored_poly() -> impl Strategy<Value = (UPoly, Vec<Rat>)> {
    prop::collection::vec((-8i64..=8, 1i64..=4), 1..=4).prop_map(|facs| {
        let mut p = UPoly::one();
        let mut roots: Vec<Rat> = Vec::new();
        for (num, den) in facs {
            let r = Rat::new(num.into(), den.into());
            // factor (den*x - num)
            p = &p * &UPoly::from_coeffs(vec![Rat::from(-num), Rat::from(den)]);
            roots.push(r);
        }
        roots.sort();
        roots.dedup();
        (p, roots)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn upoly_ring_axioms(a in arb_upoly(5, 10), b in arb_upoly(5, 10), c in arb_upoly(5, 10)) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn upoly_divrem_invariant(a in arb_upoly(6, 10), b in nonzero_upoly(4, 10)) {
        let (q, r) = a.divrem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a);
        prop_assert!(r.is_zero() || r.deg() < b.deg());
    }

    #[test]
    fn upoly_gcd_divides_both(a in nonzero_upoly(4, 6), b in nonzero_upoly(4, 6)) {
        let g = a.gcd(&b);
        prop_assert!(a.divrem(&g).1.is_zero());
        prop_assert!(b.divrem(&g).1.is_zero());
    }

    #[test]
    fn upoly_gcd_detects_common_factor(a in nonzero_upoly(3, 6), b in nonzero_upoly(3, 6), f in nonzero_upoly(2, 6)) {
        prop_assume!(!f.is_constant());
        let g = (&a * &f).gcd(&(&b * &f));
        // gcd is divisible by f (up to scalar).
        prop_assert!(g.divrem(&f.monic()).1.is_zero() || f.monic().divrem(&g).1.is_zero() || !g.is_constant());
        prop_assert!((&a * &f).divrem(&g).1.is_zero());
    }

    #[test]
    fn derivative_is_linear(a in arb_upoly(5, 10), b in arb_upoly(5, 10)) {
        prop_assert_eq!((&a + &b).derivative(), &a.derivative() + &b.derivative());
        // Product rule.
        let lhs = (&a * &b).derivative();
        let rhs = &(&a.derivative() * &b) + &(&a * &b.derivative());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn antiderivative_inverts_derivative(a in arb_upoly(5, 10)) {
        prop_assert_eq!(a.antiderivative().derivative(), a);
    }

    #[test]
    fn eval_is_ring_hom(a in arb_upoly(4, 8), b in arb_upoly(4, 8), x in -20i64..=20) {
        let p = Rat::from(x);
        prop_assert_eq!((&a + &b).eval(&p), &a.eval(&p) + &b.eval(&p));
        prop_assert_eq!((&a * &b).eval(&p), &a.eval(&p) * &b.eval(&p));
    }

    #[test]
    fn sturm_count_matches_known_roots((p, roots) in factored_poly()) {
        let chain = SturmChain::new(&p.squarefree());
        prop_assert_eq!(chain.count_real_roots(), roots.len());
    }

    #[test]
    fn isolation_finds_all_known_roots((p, roots) in factored_poly()) {
        let locs = isolate_real_roots(&p);
        prop_assert_eq!(locs.len(), roots.len());
        for (loc, expect) in locs.iter().zip(&roots) {
            match loc {
                RootLocation::Exact(r) => prop_assert_eq!(r, expect),
                RootLocation::Isolated(iv) => prop_assert!(iv.contains(expect)),
            }
        }
    }

    #[test]
    fn isolated_intervals_are_disjoint(p in nonzero_upoly(6, 12)) {
        prop_assume!(!p.is_constant());
        let locs = isolate_real_roots(&p);
        for w in locs.windows(2) {
            let hi_prev = match &w[0] {
                RootLocation::Exact(r) => r.clone(),
                RootLocation::Isolated(iv) => iv.hi().clone(),
            };
            let lo_next = match &w[1] {
                RootLocation::Exact(r) => r.clone(),
                RootLocation::Isolated(iv) => iv.lo().clone(),
            };
            prop_assert!(hi_prev <= lo_next);
        }
        // Each interval/point actually brackets a sign change or exact zero.
        let sf = p.squarefree();
        for loc in &locs {
            match loc {
                RootLocation::Exact(r) => prop_assert_eq!(sf.sign_at(r), Sign::Zero),
                RootLocation::Isolated(iv) => {
                    let sl = sf.sign_at(iv.lo());
                    let sh = sf.sign_at(iv.hi());
                    prop_assert!(sl != Sign::Zero && sh != Sign::Zero && sl != sh);
                }
            }
        }
    }

    #[test]
    fn refinement_preserves_root(p in nonzero_upoly(5, 10), bits in 4u32..20) {
        prop_assume!(!p.is_constant());
        let eps = Rat::new(1i64.into(), cdb_num::Int::pow2(u64::from(bits)));
        for loc in isolate_real_roots(&p) {
            let iv = cdb_poly::refine_to_width(&p, &loc, &eps);
            prop_assert!(iv.width() <= eps);
            // Sign change or zero still inside.
            let sf = p.squarefree();
            if iv.width().is_zero() {
                prop_assert_eq!(sf.sign_at(iv.lo()), Sign::Zero);
            } else {
                prop_assert!(sf.sign_at(iv.lo()) != sf.sign_at(iv.hi()));
            }
        }
    }

    #[test]
    fn resultant_specialization(ax in -4i64..=4, bx in -4i64..=4, cx in -4i64..=4, dx in -4i64..=4, at in -5i64..=5) {
        // p = x·y + ax·y² + bx, q = cx·y + dx (in vars x=0, y=1), random
        // specialization x = at must commute with res_y as long as leading
        // coefficients do not vanish under specialization.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let cst = |v: i64| MPoly::constant(Rat::from(v), 2);
        let p = &(&(&x * &y) + &(&cst(ax) * &y.pow(2))) + &cst(bx);
        let q = &(&cst(cx) * &y) + &cst(dx);
        prop_assume!(!p.is_zero() && !q.is_zero());
        let py = p.as_upoly_in(1);
        let qy = q.as_upoly_in(1);
        let a = Rat::from(at);
        prop_assume!(!py.last().unwrap().substitute(0, &a).is_zero());
        prop_assume!(!qy.last().unwrap().substitute(0, &a).is_zero());
        let r = resultant(&p, &q, 1);
        let ps = p.substitute(0, &a).to_upoly_in(1).unwrap();
        let qs = q.substitute(0, &a).to_upoly_in(1).unwrap();
        let direct = resultant(
            &MPoly::from_upoly(&ps, 0, 1),
            &MPoly::from_upoly(&qs, 0, 1),
            0,
        );
        prop_assert_eq!(
            r.substitute(0, &a).to_constant().unwrap(),
            direct.to_constant().unwrap()
        );
    }

    #[test]
    fn discriminant_zero_iff_multiple_root(r1 in -5i64..=5, r2 in -5i64..=5) {
        // (x − r1)(x − r2): discriminant zero iff r1 == r2.
        let x = MPoly::var(0, 1);
        let f1 = &x - &MPoly::constant(Rat::from(r1), 1);
        let f2 = &x - &MPoly::constant(Rat::from(r2), 1);
        let p = &f1 * &f2;
        let d = discriminant(&p, 0);
        prop_assert_eq!(d.is_zero(), r1 == r2);
    }

    #[test]
    fn realalg_sign_consistent_with_approx(c0 in -9i64..=9, c1 in -9i64..=9) {
        // α = roots of x² + c1 x + c0; check sign_of(x - m) against approx.
        let p = UPoly::from_ints(&[c0, c1, 1]);
        for alpha in RealAlg::roots_of(&p) {
            let a = alpha.approx(&"1/65536".parse().unwrap());
            for m in [-3i64, 0, 2] {
                let q = UPoly::from_coeffs(vec![Rat::from(-m), Rat::one()]);
                let s = alpha.sign_of(&q);
                let approx_val = &a - &Rat::from(m);
                if approx_val.abs() > "1/1024".parse::<Rat>().unwrap() {
                    prop_assert_eq!(s, approx_val.sign());
                }
            }
        }
    }

    #[test]
    fn mpoly_eval_substitute_agree(ax in -5i64..=5, by in -5i64..=5, c in -5i64..=5, px in -4i64..=4, py in -4i64..=4) {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&(&MPoly::constant(Rat::from(ax), 2) * &x.pow(2))
            + &(&MPoly::constant(Rat::from(by), 2) * &(&x * &y)))
            + &MPoly::constant(Rat::from(c), 2);
        let full = p.eval(&[Rat::from(px), Rat::from(py)]);
        let step = p
            .substitute(0, &Rat::from(px))
            .substitute(1, &Rat::from(py))
            .to_constant()
            .unwrap();
        prop_assert_eq!(full, step);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `squarefree_part` must preserve the zero set exactly — including
    /// content factors (the regression that dropped the `x = 0` component
    /// of `x·y`). Check products of random linear forms, where zeros are
    /// easy to enumerate.
    #[test]
    fn mpoly_squarefree_preserves_zero_set(
        factors in prop::collection::vec((-3i64..=3, -3i64..=3, -3i64..=3), 1..=3),
        e0 in 1u32..=2, px in -4i64..=4, py in -4i64..=4,
    ) {
        use cdb_poly::squarefree_part;
        let mk = |a: i64, b: i64, c: i64| {
            let x = MPoly::var(0, 2);
            let y = MPoly::var(1, 2);
            &(&x.scale(&Rat::from(a)) + &y.scale(&Rat::from(b)))
                + &MPoly::constant(Rat::from(c), 2)
        };
        let mut p = MPoly::constant(Rat::one(), 2);
        for (i, &(a, b, c)) in factors.iter().enumerate() {
            let f = mk(a, b, c);
            if f.is_zero() || f.is_constant() {
                continue;
            }
            let e = if i == 0 { e0 } else { 1 };
            p = &p * &f.pow(e);
        }
        prop_assume!(!p.is_zero() && !p.is_constant());
        let sf = squarefree_part(&p);
        let pt = [Rat::from(px), Rat::from(py)];
        prop_assert_eq!(
            p.eval(&pt).is_zero(),
            sf.eval(&pt).is_zero(),
            "zero sets differ at ({}, {}): p = {}, sf = {}", px, py, p, sf
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The float-filtered sign (`fsign_at`) always agrees with the exact
    /// sign: a definite split-word enclosure is trusted only when it cannot
    /// lie, and a straddle falls back to exact arithmetic.
    #[test]
    fn filtered_sign_agrees_with_exact(
        p in arb_upoly(7, 50),
        n in -200i64..=200,
        d in 1i64..=16,
    ) {
        let x = Rat::new(n.into(), d.into());
        prop_assert_eq!(p.fsign_at(&x), p.sign_at(&x));
    }

    /// A definite sign of the split-word Horner evaluation is the sign of
    /// the exact value (the enclosure property, at the polynomial level).
    #[test]
    fn fintv_horner_sign_is_exact(
        p in arb_upoly(7, 50),
        n in -200i64..=200,
        d in 1i64..=16,
    ) {
        let x = Rat::new(n.into(), d.into());
        if let Some(s) = p.eval_fintv(&cdb_num::FIntv::from(&x)).sign() {
            prop_assert_eq!(s, p.eval(&x).sign());
        }
    }

    /// Filtered Sturm variation counts equal the exact per-element counts,
    /// so root isolation takes identical branches with the filter on or off.
    #[test]
    fn filtered_sturm_variations_agree(
        p in nonzero_upoly(6, 30),
        n in -100i64..=100,
        d in 1i64..=8,
    ) {
        prop_assume!(!p.is_constant());
        let chain = SturmChain::new(&p);
        let x = Rat::new(n.into(), d.into());
        let exact = {
            let signs: Vec<Sign> = chain
                .sequence()
                .iter()
                .map(|q| q.sign_at(&x))
                .filter(|s| *s != Sign::Zero)
                .collect();
            signs.windows(2).filter(|w| w[0] != w[1]).count()
        };
        prop_assert_eq!(chain.variations_at(&x), exact);
    }
}
