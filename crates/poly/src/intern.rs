//! Hash-consing interner for canonical polynomial term vectors.
//!
//! Every [`crate::MPoly`] construction funnels its canonical
//! [`PolyData`](crate::mpoly::PolyData) through [`canonicalize`]: if a
//! structurally equal polynomial is already resident, the existing
//! `Arc` is handed back and the duplicate is dropped, so equal polynomials
//! share one allocation, `Clone` is a pointer bump, and `Eq` usually
//! short-circuits on pointer identity.
//!
//! Determinism: interning changes **sharing**, never **values**. Handles
//! carry a content hash computed from `(nvars, terms)` with the fixed-key
//! `DefaultHasher`, so ids ([`crate::PolyId`]) are a pure function of the
//! polynomial — independent of insertion order, eviction history, thread
//! schedule, or whether the interner is enabled at all. A lookup miss (or a
//! disabled interner) yields a fresh allocation whose observable behaviour
//! is identical.
//!
//! Concurrency: 16 shards, each a `Mutex` around a hash → bucket map
//! (the PR 1 `AlgebraicCache` pattern), poisoned locks recovered with
//! `PoisonError::into_inner` (the data is a grow-only map of immutable
//! entries — always valid). [`canonicalize`] takes exactly one lock, never
//! nested, and never calls back into polynomial code while holding it.
//! Memory is bounded by a per-shard watermark: when a shard grows past it,
//! entries no longer referenced outside the interner (`strong_count == 1`)
//! are swept. All metrics counters are `SeqCst`, per the PR 4 determinism
//! sweep.

use crate::mpoly::PolyData;
// Keyed lookups only — bucket iteration order never reaches any output, and
// `cdb_poly` is outside the determinism-rule scope anyway; results are
// content-addressed (the same contract as cdb-qe's memo shards).
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, OnceLock, PoisonError};

const SHARDS: usize = 16;

/// Per-shard GC watermark, measured in distinct content hashes (buckets are
/// almost always singletons, so this tracks entry count to within hash
/// collisions). 16 shards × 4096 ≈ 64k resident polynomials.
const SHARD_WATERMARK: usize = 4096;

/// hash → all resident polynomials with that content hash. Buckets guard
/// against hash collisions: a hit requires full structural equality.
/// Keyed lookups only (see the allow on the import above).
#[allow(clippy::disallowed_types)]
type ShardMap = HashMap<u64, Vec<Arc<PolyData>>>;

#[allow(clippy::disallowed_types)]
// cdb-lint: allow(determinism-taint) — the shard map is keyed lookup/insert
// only (content hash → bucket, hit requires structural equality); iteration
// order never reaches canonical ids or result bytes
fn pool() -> &'static Vec<Mutex<ShardMap>> {
    static POOL: OnceLock<Vec<Mutex<ShardMap>>> = OnceLock::new();
    POOL.get_or_init(|| (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect())
}

static ENABLED: AtomicBool = AtomicBool::new(true);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static ENTRIES: AtomicU64 = AtomicU64::new(0);
static PEAK_ENTRIES: AtomicU64 = AtomicU64::new(0);

/// Enable or disable hash-consing globally (stats/bench toggle, mirroring
/// `cdb_num::fintv::set_filter_enabled`). Disabling never changes results —
/// only sharing; used by E19's differential benchmark.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// True iff hash-consing is enabled (the default).
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Intern a canonical polynomial: return the resident `Arc` for a
/// structurally equal polynomial if one exists, else insert `data`.
pub(crate) fn canonicalize(data: PolyData) -> Arc<PolyData> {
    if !enabled() {
        return Arc::new(data);
    }
    let shards = pool();
    let idx = (data.hash as usize) & (SHARDS - 1);
    let mut map = shards[idx].lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(bucket) = map.get(&data.hash) {
        if let Some(found) = bucket
            .iter()
            .find(|c| c.nvars == data.nvars && c.terms == data.terms)
        {
            HITS.fetch_add(1, Ordering::SeqCst);
            return Arc::clone(found);
        }
    }
    MISSES.fetch_add(1, Ordering::SeqCst);
    if map.len() >= SHARD_WATERMARK {
        sweep(&mut map);
    }
    let arc = Arc::new(data);
    map.entry(arc.hash).or_default().push(Arc::clone(&arc));
    let now = ENTRIES.fetch_add(1, Ordering::SeqCst) + 1;
    PEAK_ENTRIES.fetch_max(now, Ordering::SeqCst);
    arc
}

/// Drop every entry no longer referenced outside the interner. Called with
/// the shard lock held; touches no other locks.
fn sweep(map: &mut ShardMap) {
    let mut removed = 0u64;
    map.retain(|_, bucket| {
        bucket.retain(|a| {
            if Arc::strong_count(a) > 1 {
                true
            } else {
                removed += 1;
                false
            }
        });
        !bucket.is_empty()
    });
    if removed > 0 {
        EVICTIONS.fetch_add(removed, Ordering::SeqCst);
        ENTRIES.fetch_sub(removed, Ordering::SeqCst);
    }
}

/// Interner occupancy and traffic counters (all `SeqCst` reads).
#[derive(Debug, Clone, Copy)]
pub struct InternStats {
    /// Resident canonical polynomials.
    pub entries: u64,
    /// High-water mark of `entries` since the last [`reset_metrics`].
    pub peak_entries: u64,
    /// Lookups answered by an already-resident polynomial.
    pub hits: u64,
    /// Lookups that inserted a new polynomial.
    pub misses: u64,
    /// Entries dropped by watermark sweeps.
    pub evictions: u64,
    /// Estimated bytes deduplicated: for each resident polynomial, its
    /// approximate heap size times the number of handles sharing it beyond
    /// the first (interner's own reference excluded).
    pub bytes_shared_estimate: u64,
}

impl InternStats {
    /// Hit fraction of all lookups (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> String {
        let total = self.hits + self.misses;
        if total == 0 {
            return "0.000".to_owned();
        }
        // Fixed-point rendering avoids floats (rule F) in this crate.
        let milli = self.hits * 1000 / total;
        format!("{}.{:03}", milli / 1000, milli % 1000)
    }
}

/// Approximate heap footprint of one canonical polynomial, in bytes.
fn approx_bytes(p: &PolyData) -> u64 {
    let mut total = 64u64; // struct + vec headers
    for (m, c) in &p.terms {
        // Packed monos are inline; spilled ones carry a u32 vector.
        let mono = 24
            + if m.len() > crate::mono::PACK_VARS {
                4 * m.len() as u64
            } else {
                0
            };
        total += mono + c.bit_length() / 4 + 16;
    }
    total + 4 * p.var_degrees.len() as u64
}

/// Snapshot the interner metrics. Walks every shard (one lock at a time) to
/// size the bytes-shared estimate.
#[must_use]
pub fn stats() -> InternStats {
    let mut bytes = 0u64;
    for shard in pool() {
        let map = shard.lock().unwrap_or_else(PoisonError::into_inner);
        for bucket in map.values() {
            for a in bucket {
                let extra_handles = (Arc::strong_count(a) as u64).saturating_sub(2);
                if extra_handles > 0 {
                    bytes += approx_bytes(a) * extra_handles;
                }
            }
        }
    }
    InternStats {
        entries: ENTRIES.load(Ordering::SeqCst),
        peak_entries: PEAK_ENTRIES.load(Ordering::SeqCst),
        hits: HITS.load(Ordering::SeqCst),
        misses: MISSES.load(Ordering::SeqCst),
        evictions: EVICTIONS.load(Ordering::SeqCst),
        bytes_shared_estimate: bytes,
    }
}

/// Drop every resident entry (bench workload isolation; outstanding handles
/// stay valid — they own their `Arc`s). Not intended to race live interning:
/// concurrent inserts between shard drains are counted correctly but may
/// survive the clear.
pub fn clear() {
    let mut removed = 0u64;
    for shard in pool() {
        let mut map = shard.lock().unwrap_or_else(PoisonError::into_inner);
        removed += map.values().map(|b| b.len() as u64).sum::<u64>();
        map.clear();
    }
    ENTRIES.fetch_sub(removed, Ordering::SeqCst);
}

/// Zero the traffic counters and re-seat the peak at current occupancy
/// (bench workload isolation).
pub fn reset_metrics() {
    HITS.store(0, Ordering::SeqCst);
    MISSES.store(0, Ordering::SeqCst);
    EVICTIONS.store(0, Ordering::SeqCst);
    PEAK_ENTRIES.store(ENTRIES.load(Ordering::SeqCst), Ordering::SeqCst);
}
