//! Dense univariate polynomials over `Q`.

use cdb_num::{fintv, FIntv, Int, Rat, RatInterval, Sign};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, Mul, Neg, Sub};
use std::sync::Arc;

/// A univariate polynomial with rational coefficients, dense representation,
/// normalized so the leading coefficient is nonzero (the zero polynomial has
/// an empty coefficient vector).
///
/// Coefficients live behind `Arc`, so `Clone` is a pointer bump (Sturm
/// chains clone polynomials freely), and the content hash is computed once
/// at construction so `Hash` is O(1) — `AlgebraicCache` keys no longer
/// re-hash every coefficient per probe.
#[derive(Clone)]
pub struct UPoly {
    /// `coeffs[i]` is the coefficient of `x^i`.
    coeffs: Arc<[Rat]>,
    /// Content hash of the coefficient list (fixed-key `DefaultHasher`).
    hash: u64,
}

impl PartialEq for UPoly {
    fn eq(&self, other: &UPoly) -> bool {
        Arc::ptr_eq(&self.coeffs, &other.coeffs)
            || (self.hash == other.hash && self.coeffs[..] == other.coeffs[..])
    }
}

impl Eq for UPoly {}

impl Hash for UPoly {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // O(1): equal coefficient lists always carry equal precomputed
        // hashes, so this is consistent with `Eq`.
        state.write_u64(self.hash);
    }
}

impl UPoly {
    /// The zero polynomial.
    #[must_use]
    pub fn zero() -> UPoly {
        UPoly::from_coeffs(Vec::new())
    }

    /// The constant polynomial 1.
    #[must_use]
    pub fn one() -> UPoly {
        UPoly::constant(Rat::one())
    }

    /// The monomial `x`.
    #[must_use]
    pub fn x() -> UPoly {
        UPoly::from_coeffs(vec![Rat::zero(), Rat::one()])
    }

    /// A constant polynomial.
    #[must_use]
    pub fn constant(c: Rat) -> UPoly {
        UPoly::from_coeffs(vec![c])
    }

    /// From low-to-high coefficients; trailing zeros removed.
    #[must_use]
    pub fn from_coeffs(mut coeffs: Vec<Rat>) -> UPoly {
        while coeffs.last().is_some_and(Rat::is_zero) {
            coeffs.pop();
        }
        // Content hash under the fixed-key `DefaultHasher` (deterministic
        // across threads and processes; the `AlgebraicCache` idiom).
        let mut h = std::collections::hash_map::DefaultHasher::new();
        h.write_usize(coeffs.len());
        coeffs.hash(&mut h);
        UPoly {
            coeffs: coeffs.into(),
            hash: h.finish(),
        }
    }

    /// From integer coefficients, low-to-high.
    #[must_use]
    pub fn from_ints(coeffs: &[i64]) -> UPoly {
        UPoly::from_coeffs(coeffs.iter().map(|&c| Rat::from(c)).collect())
    }

    /// Coefficients, low-to-high (empty for zero).
    #[must_use]
    pub fn coeffs(&self) -> &[Rat] {
        &self.coeffs
    }

    /// True iff the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// True iff a (possibly zero) constant.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.coeffs.len() <= 1
    }

    /// Degree; the zero polynomial has degree `None`.
    #[must_use]
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Degree with `deg 0 = 0` convention for the zero polynomial.
    #[must_use]
    pub fn deg(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Leading coefficient; zero for the zero polynomial.
    #[must_use]
    pub fn leading(&self) -> Rat {
        self.coeffs.last().cloned().unwrap_or_default()
    }

    /// Coefficient of `x^i` (zero beyond the degree).
    #[must_use]
    pub fn coeff(&self, i: usize) -> Rat {
        self.coeffs.get(i).cloned().unwrap_or_default()
    }

    /// Horner evaluation at a rational point.
    #[must_use]
    pub fn eval(&self, x: &Rat) -> Rat {
        let mut acc = Rat::zero();
        for c in self.coeffs.iter().rev() {
            acc = &(&acc * x) + c;
        }
        acc
    }

    /// Sign of the value at a rational point.
    #[must_use]
    pub fn sign_at(&self, x: &Rat) -> Sign {
        self.eval(x).sign()
    }

    /// Horner evaluation at an `f64` point (fast, approximate).
    #[must_use]
    // cdb-lint: allow(float) — approximate fast path for diagnostics/plotting;
    // every exact decision goes through `sign_at`/`eval_interval` instead
    pub fn eval_f64(&self, x: f64) -> f64 {
        let mut acc = 0.0; // cdb-lint: allow(float) — same approximate fast path
        for c in self.coeffs.iter().rev() {
            acc = acc * x + c.to_f64();
        }
        acc
    }

    /// Interval extension (Horner over exact rational intervals).
    #[must_use]
    pub fn eval_interval(&self, x: &RatInterval) -> RatInterval {
        let mut acc = RatInterval::point(Rat::zero());
        for c in self.coeffs.iter().rev() {
            acc = acc.mul(x).add(&RatInterval::point(c.clone()));
        }
        acc
    }

    /// Split-word interval extension: Horner over outward-rounded `f64`
    /// enclosures. The result is a guaranteed enclosure of the exact value
    /// of the polynomial over `x` (inclusion-monotone interval arithmetic
    /// with directed rounding), so a definite [`FIntv::sign`] of the result
    /// is the true sign everywhere on `x`.
    #[must_use]
    pub fn eval_fintv(&self, x: &FIntv) -> FIntv {
        match self.coeffs.last() {
            None => FIntv::zero(),
            Some(top) => {
                let mut acc = FIntv::from(top);
                for c in self.coeffs.iter().rev().skip(1) {
                    acc = acc.mul(x).add(&FIntv::from(c));
                }
                acc
            }
        }
    }

    /// Filtered sign at a rational point: try the cheap outward-rounded
    /// float enclosure first and certify with exact arithmetic only when
    /// the enclosure straddles zero. Always equal to [`UPoly::sign_at`].
    #[must_use]
    pub fn fsign_at(&self, x: &Rat) -> Sign {
        if fintv::filter_enabled() {
            if let Some(s) = self.eval_fintv(&FIntv::from(x)).sign() {
                fintv::note_filter_hit();
                return s;
            }
            fintv::note_filter_fallback();
        }
        self.sign_at(x)
    }

    /// Filtered sign at a pre-converted float enclosure of a rational
    /// point; `x` is the exact point, `fx` must enclose it. Used by hot
    /// loops (Sturm chains) that evaluate many polynomials at one point.
    #[must_use]
    pub fn fsign_at_enclosed(&self, x: &Rat, fx: &FIntv) -> Sign {
        if fintv::filter_enabled() {
            if let Some(s) = self.eval_fintv(fx).sign() {
                fintv::note_filter_hit();
                return s;
            }
            fintv::note_filter_fallback();
        }
        self.sign_at(x)
    }

    /// Formal derivative.
    #[must_use]
    pub fn derivative(&self) -> UPoly {
        if self.coeffs.len() <= 1 {
            return UPoly::zero();
        }
        UPoly::from_coeffs(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, c)| c * &Rat::from(i as i64))
                .collect(),
        )
    }

    /// A primitive (an antiderivative with zero constant term) — used by the
    /// SURFACE/VOLUME aggregate modules for exact integration of polynomial
    /// bounds (the paper's §2 example integrates `F(x) = 4/3 x³ − 10x² + 25x`).
    #[must_use]
    pub fn antiderivative(&self) -> UPoly {
        if self.is_zero() {
            return UPoly::zero();
        }
        let mut coeffs = Vec::with_capacity(self.coeffs.len() + 1);
        coeffs.push(Rat::zero());
        for (i, c) in self.coeffs.iter().enumerate() {
            coeffs.push(c / &Rat::from(i as i64 + 1));
        }
        UPoly::from_coeffs(coeffs)
    }

    /// Exact definite integral over `[a, b]`.
    #[must_use]
    pub fn integrate(&self, a: &Rat, b: &Rat) -> Rat {
        let f = self.antiderivative();
        &f.eval(b) - &f.eval(a)
    }

    /// Multiply by a scalar.
    #[must_use]
    pub fn scale(&self, c: &Rat) -> UPoly {
        if c.is_zero() {
            return UPoly::zero();
        }
        // Scaling by a nonzero rational keeps the leading coefficient
        // nonzero; `from_coeffs` recomputes the content hash.
        UPoly::from_coeffs(self.coeffs.iter().map(|a| a * c).collect())
    }

    /// Make monic (leading coefficient 1); panics on zero.
    #[must_use]
    pub fn monic(&self) -> UPoly {
        assert!(!self.is_zero());
        self.scale(&self.leading().recip())
    }

    /// Polynomial division with remainder: `self = q*div + r`, `deg r < deg div`.
    #[must_use]
    pub fn divrem(&self, div: &UPoly) -> (UPoly, UPoly) {
        assert!(!div.is_zero(), "polynomial division by zero");
        if self.deg() < div.deg() || self.is_zero() {
            return (UPoly::zero(), self.clone());
        }
        let mut rem = self.coeffs.to_vec();
        let dd = div.deg();
        let lead_inv = div.leading().recip();
        let mut q = vec![Rat::zero(); rem.len() - dd];
        for i in (dd..rem.len()).rev() {
            if rem[i].is_zero() {
                continue;
            }
            let f = &rem[i] * &lead_inv;
            for (j, dc) in div.coeffs.iter().enumerate() {
                let idx = i - dd + j;
                rem[idx] = &rem[idx] - &(&f * dc);
            }
            q[i - dd] = f;
        }
        (UPoly::from_coeffs(q), UPoly::from_coeffs(rem))
    }

    /// Exact division (panics in debug if not exact).
    #[must_use]
    pub fn div_exact(&self, div: &UPoly) -> UPoly {
        let (q, r) = self.divrem(div);
        debug_assert!(r.is_zero(), "UPoly::div_exact: nonzero remainder");
        q
    }

    /// Integer-primitive form: the unique positive-rational multiple of
    /// `self` with coprime integer coefficients and positive leading
    /// coefficient. Returns the polynomial and the (positive) scale `s` with
    /// `self = s^sign * ...`; we only need the polynomial.
    #[must_use]
    pub fn primitive(&self) -> UPoly {
        if self.is_zero() {
            return UPoly::zero();
        }
        // lcm of denominators.
        let mut l = Int::one();
        for c in self.coeffs.iter() {
            let d = c.denom();
            let g = l.gcd(d);
            l = &(&l / &g) * d;
        }
        let ints: Vec<Int> = self
            .coeffs
            .iter()
            .map(|c| (c * &Rat::from(l.clone())).numer().clone())
            .collect();
        let mut g = Int::zero();
        for v in &ints {
            g = g.gcd(v);
        }
        debug_assert!(!g.is_zero());
        let flip = self.leading().sign() == Sign::Neg;
        UPoly::from_coeffs(
            ints.iter()
                .map(|v| {
                    let q = Rat::from(v.div_exact(&g));
                    if flip {
                        -q
                    } else {
                        q
                    }
                })
                .collect(),
        )
    }

    /// Maximum bit length over all coefficient numerators/denominators —
    /// the "size" used by the finite-precision semantics.
    #[must_use]
    pub fn max_coeff_bits(&self) -> u64 {
        self.coeffs.iter().map(Rat::bit_length).max().unwrap_or(0)
    }

    /// GCD via primitive pseudo-remainder sequence (monic result).
    #[must_use]
    pub fn gcd(&self, other: &UPoly) -> UPoly {
        if self.is_zero() {
            return if other.is_zero() {
                UPoly::zero()
            } else {
                other.monic()
            };
        }
        if other.is_zero() {
            return self.monic();
        }
        let mut a = self.primitive();
        let mut b = other.primitive();
        if a.deg() < b.deg() {
            std::mem::swap(&mut a, &mut b);
        }
        while !b.is_zero() {
            let (_, r) = a.divrem(&b);
            a = b;
            b = if r.is_zero() {
                UPoly::zero()
            } else {
                r.primitive()
            };
        }
        if a.is_constant() {
            UPoly::one()
        } else {
            a.monic()
        }
    }

    /// Squarefree part `self / gcd(self, self')` (monic).
    #[must_use]
    pub fn squarefree(&self) -> UPoly {
        if self.is_constant() {
            return self.clone();
        }
        let g = self.gcd(&self.derivative());
        if g.is_constant() {
            self.monic()
        } else {
            self.div_exact(&g).monic()
        }
    }

    /// Yun's squarefree decomposition: returns `[(p1, 1), (p2, 2), ...]` with
    /// `self = lc * Π pi^i`, each `pi` squarefree, pairwise coprime, monic.
    #[must_use]
    pub fn squarefree_decomposition(&self) -> Vec<(UPoly, u32)> {
        assert!(!self.is_zero());
        let f = self.monic();
        if f.is_constant() {
            return Vec::new();
        }
        let df = f.derivative();
        let a0 = f.gcd(&df);
        if a0.is_constant() {
            return vec![(f, 1)];
        }
        let mut out = Vec::new();
        let mut b = f.div_exact(&a0);
        let mut c = df.div_exact(&a0);
        let mut i = 1u32;
        loop {
            let d = &c - &b.derivative();
            if d.is_zero() {
                if !b.is_constant() {
                    out.push((b.monic(), i));
                }
                break;
            }
            let p = b.gcd(&d);
            if !p.is_constant() {
                out.push((p.clone(), i));
            }
            b = b.div_exact(&p);
            c = d.div_exact(&p);
            i += 1;
            if b.is_constant() {
                break;
            }
        }
        out
    }

    /// Cauchy root bound: every real root has `|root| <= bound`.
    #[must_use]
    pub fn cauchy_bound(&self) -> Rat {
        assert!(!self.is_zero());
        let lead = self.leading().abs();
        let mut m = Rat::zero();
        for c in &self.coeffs[..self.coeffs.len() - 1] {
            let q = &c.abs() / &lead;
            if q > m {
                m = q;
            }
        }
        &m + &Rat::one()
    }

    /// Compose with a linear map: `self(a*x + b)`.
    #[must_use]
    pub fn compose_linear(&self, a: &Rat, b: &Rat) -> UPoly {
        let mut acc = UPoly::zero();
        let lin = UPoly::from_coeffs(vec![b.clone(), a.clone()]);
        for c in self.coeffs.iter().rev() {
            acc = &(&acc * &lin) + &UPoly::constant(c.clone());
        }
        acc
    }

    /// Substitute another polynomial: `self(g(x))`.
    #[must_use]
    pub fn compose(&self, g: &UPoly) -> UPoly {
        let mut acc = UPoly::zero();
        for c in self.coeffs.iter().rev() {
            acc = &(&acc * g) + &UPoly::constant(c.clone());
        }
        acc
    }

    /// `self^n`.
    #[must_use]
    pub fn pow(&self, mut n: u32) -> UPoly {
        // Binary exponentiation: O(log n) polynomial multiplications.
        let mut acc = UPoly::one();
        let mut base = self.clone();
        while n > 0 {
            if n & 1 == 1 {
                acc = &acc * &base;
            }
            n >>= 1;
            if n > 0 {
                base = &base * &base;
            }
        }
        acc
    }
}

impl fmt::Display for UPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate().rev() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " {} ", if c.sign() == Sign::Neg { "-" } else { "+" })?;
            } else if c.sign() == Sign::Neg {
                write!(f, "-")?;
            }
            let a = c.abs();
            match i {
                0 => write!(f, "{a}")?,
                1 => {
                    if a == Rat::one() {
                        write!(f, "x")?;
                    } else {
                        write!(f, "{a}*x")?;
                    }
                }
                _ => {
                    if a == Rat::one() {
                        write!(f, "x^{i}")?;
                    } else {
                        write!(f, "{a}*x^{i}")?;
                    }
                }
            }
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for UPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPoly({self})")
    }
}

impl Add for &UPoly {
    type Output = UPoly;
    fn add(self, rhs: &UPoly) -> UPoly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(&self.coeff(i) + &rhs.coeff(i));
        }
        UPoly::from_coeffs(out)
    }
}

impl Sub for &UPoly {
    type Output = UPoly;
    fn sub(self, rhs: &UPoly) -> UPoly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(&self.coeff(i) - &rhs.coeff(i));
        }
        UPoly::from_coeffs(out)
    }
}

impl Mul for &UPoly {
    type Output = UPoly;
    fn mul(self, rhs: &UPoly) -> UPoly {
        if self.is_zero() || rhs.is_zero() {
            return UPoly::zero();
        }
        UPoly::from_coeffs(mul_dispatch(&self.coeffs, &rhs.coeffs))
    }
}

/// Coefficient-slice length at which `Mul` switches from schoolbook to
/// Karatsuba. Exact `Rat` additions are not free (each one renormalizes
/// through a gcd), so the crossover sits well above the textbook value;
/// below it the three-way recursion costs more than the saved products.
const KARATSUBA_THRESHOLD: usize = 24;

/// Threshold dispatch: schoolbook below [`KARATSUBA_THRESHOLD`], Karatsuba
/// above. Both operands are non-empty and untrimmed-free.
fn mul_dispatch(a: &[Rat], b: &[Rat]) -> Vec<Rat> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        mul_school(a, b)
    } else {
        mul_karatsuba(a, b)
    }
}

/// Schoolbook product of coefficient slices (quadratic, cache-friendly).
fn mul_school(a: &[Rat], b: &[Rat]) -> Vec<Rat> {
    let mut out = vec![Rat::zero(); a.len() + b.len() - 1];
    for (i, x) in a.iter().enumerate() {
        if x.is_zero() {
            continue;
        }
        for (j, y) in b.iter().enumerate() {
            out[i + j] = &out[i + j] + &(x * y);
        }
    }
    out
}

/// Karatsuba product: splits both operands at `half`, trading one of the
/// four half-size products for a handful of additions:
/// `(a0 + a1·x^h)(b0 + b1·x^h) = z0 + ((a0+a1)(b0+b1) − z0 − z2)·x^h + z2·x^{2h}`.
/// Recursion falls back to schoolbook through [`mul_dispatch`] once the
/// halves shrink below the threshold, so the result is identical to the
/// schoolbook product (exact field arithmetic, same canonical trim).
fn mul_karatsuba(a: &[Rat], b: &[Rat]) -> Vec<Rat> {
    let half = a.len().max(b.len()).div_ceil(2);
    let (a0, a1) = a.split_at(half.min(a.len()));
    let (b0, b1) = b.split_at(half.min(b.len()));
    let z0 = mul_dispatch(a0, b0);
    let z2 = if a1.is_empty() || b1.is_empty() {
        Vec::new()
    } else {
        mul_dispatch(a1, b1)
    };
    let z1 = {
        let sa = add_slices(a0, a1);
        let sb = add_slices(b0, b1);
        let mut mid = mul_dispatch(&sa, &sb);
        for (i, c) in z0.iter().enumerate() {
            mid[i] = &mid[i] - c;
        }
        for (i, c) in z2.iter().enumerate() {
            mid[i] = &mid[i] - c;
        }
        // With an unbalanced split (b1 empty, say) the subtraction cancels
        // the top entries exactly; trim them so the x^half placement below
        // stays inside the product's coefficient range.
        while mid.last().is_some_and(Rat::is_zero) {
            mid.pop();
        }
        mid
    };
    let mut out = vec![Rat::zero(); a.len() + b.len() - 1];
    for (i, c) in z0.into_iter().enumerate() {
        out[i] = &out[i] + &c;
    }
    for (i, c) in z1.into_iter().enumerate() {
        out[half + i] = &out[half + i] + &c;
    }
    for (i, c) in z2.into_iter().enumerate() {
        out[2 * half + i] = &out[2 * half + i] + &c;
    }
    out
}

/// Element-wise sum of two coefficient slices (length = max of the two).
fn add_slices(a: &[Rat], b: &[Rat]) -> Vec<Rat> {
    let n = a.len().max(b.len());
    (0..n)
        .map(|i| match (a.get(i), b.get(i)) {
            (Some(x), Some(y)) => x + y,
            (Some(x), None) => x.clone(),
            (None, Some(y)) => y.clone(),
            (None, None) => Rat::zero(),
        })
        .collect()
}

impl Neg for &UPoly {
    type Output = UPoly;
    fn neg(self) -> UPoly {
        UPoly::from_coeffs(self.coeffs.iter().map(|c| -c.clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coeffs: &[i64]) -> UPoly {
        UPoly::from_ints(coeffs)
    }

    #[test]
    fn construction_normalizes() {
        assert!(p(&[0, 0]).is_zero());
        assert_eq!(p(&[1, 2, 0]).deg(), 1);
        assert_eq!(UPoly::x().deg(), 1);
    }

    /// Deterministic pseudo-random rational, splitmix-style.
    fn mix(state: &mut u64) -> Rat {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let num = ((*state >> 16) as i64 % 2001) - 1000;
        let den = 1 + ((*state >> 40) as i64 % 17);
        Rat::from_ints(num, den)
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Degrees straddling the threshold, including unbalanced operands
        // and lengths that split unevenly.
        let mut state = 0x9E3779B97F4A7C15u64;
        for (da, db) in [(23, 23), (24, 24), (25, 47), (60, 61), (24, 7), (64, 24)] {
            let a: Vec<Rat> = (0..=da).map(|_| mix(&mut state)).collect();
            let b: Vec<Rat> = (0..=db).map(|_| mix(&mut state)).collect();
            assert_eq!(
                mul_karatsuba(&a, &b),
                mul_school(&a, &b),
                "degrees ({da}, {db})"
            );
        }
    }

    #[test]
    fn karatsuba_tier_engages_and_evaluates_consistently() {
        // Above-threshold product through the public Mul, cross-checked by
        // evaluation (a·b)(x) = a(x)·b(x) at a rational point.
        let mut state = 42u64;
        let a = UPoly::from_coeffs((0..40).map(|_| mix(&mut state)).collect());
        let b = UPoly::from_coeffs((0..40).map(|_| mix(&mut state)).collect());
        let prod = &a * &b;
        assert_eq!(prod.deg(), a.deg() + b.deg());
        let x = Rat::from_ints(3, 7);
        assert_eq!(prod.eval(&x), &a.eval(&x) * &b.eval(&x));
    }

    #[test]
    fn evaluation() {
        // 4x^2 - 20x + 25 at 2.5 = 0 (the paper's Figure 1 output poly).
        let q = p(&[25, -20, 4]);
        assert!(q.eval(&"5/2".parse().unwrap()).is_zero());
        assert_eq!(q.eval(&Rat::zero()), Rat::from(25i64));
        assert_eq!(q.sign_at(&Rat::from(10i64)), Sign::Pos);
    }

    #[test]
    fn arithmetic() {
        let a = p(&[1, 1]); // 1 + x
        let b = p(&[-1, 1]); // -1 + x
        assert_eq!(&a * &b, p(&[-1, 0, 1]));
        assert_eq!(&a + &b, p(&[0, 2]));
        assert_eq!(&a - &b, p(&[2]));
    }

    #[test]
    fn division() {
        let f = p(&[-1, 0, 0, 1]); // x^3 - 1
        let g = p(&[-1, 1]); // x - 1
        let (q, r) = f.divrem(&g);
        assert_eq!(q, p(&[1, 1, 1]));
        assert!(r.is_zero());
        let (q2, r2) = p(&[1, 0, 1]).divrem(&p(&[1, 1]));
        assert_eq!(q2, p(&[-1, 1]));
        assert_eq!(r2, p(&[2]));
    }

    #[test]
    fn derivative_and_integral() {
        let f = p(&[25, -20, 4]);
        assert_eq!(f.derivative(), p(&[-20, 8]));
        // ∫_1^4 (-4x² + 20x − 25) dx = -9 (the paper's surface computation
        // inner integral: 27 - 18 = 9 with opposite sign conventions).
        let g = p(&[-25, 20, -4]);
        assert_eq!(g.integrate(&Rat::one(), &Rat::from(4i64)), Rat::from(-9i64));
    }

    #[test]
    fn gcd_and_squarefree() {
        let f = &p(&[-1, 1]) * &p(&[-1, 1]); // (x-1)^2
        let g = &p(&[-1, 1]) * &p(&[2, 1]); // (x-1)(x+2)
        assert_eq!(f.gcd(&g), p(&[-1, 1]));
        let h = &f * &p(&[3, 1]);
        assert_eq!(h.squarefree(), (&p(&[-1, 1]) * &p(&[3, 1])).monic());
    }

    #[test]
    fn squarefree_decomposition() {
        // (x-1)(x-2)^2(x-3)^3
        let f =
            &(&p(&[-1, 1]) * &p(&[2, -1]).pow(0)) * &(&p(&[-2, 1]).pow(2) * &p(&[-3, 1]).pow(3));
        let dec = f.squarefree_decomposition();
        assert_eq!(dec.len(), 3);
        assert_eq!(dec[0], (p(&[-1, 1]), 1));
        assert_eq!(dec[1], (p(&[-2, 1]), 2));
        assert_eq!(dec[2], (p(&[-3, 1]), 3));
    }

    #[test]
    fn primitive_form() {
        let f = UPoly::from_coeffs(vec!["1/2".parse().unwrap(), "3/4".parse().unwrap()]);
        assert_eq!(f.primitive(), p(&[2, 3]));
        let g = p(&[-4, -6]);
        assert_eq!(g.primitive(), p(&[2, 3])); // sign normalized positive lead
    }

    #[test]
    fn cauchy_bound_contains_roots() {
        let f = p(&[-6, 11, -6, 1]); // roots 1, 2, 3
        let b = f.cauchy_bound();
        assert!(b >= Rat::from(3i64));
    }

    #[test]
    fn composition() {
        let f = p(&[0, 0, 1]); // x^2
        let g = f.compose_linear(&Rat::from(2i64), &Rat::one()); // (2x+1)^2
        assert_eq!(g, p(&[1, 4, 4]));
        let h = f.compose(&p(&[1, 1, 1]));
        assert_eq!(h, &p(&[1, 1, 1]) * &p(&[1, 1, 1]));
    }

    #[test]
    fn interval_evaluation_encloses() {
        let f = p(&[25, -20, 4]);
        let iv = RatInterval::new(Rat::from(2i64), Rat::from(3i64));
        let out = f.eval_interval(&iv);
        for x in ["2", "5/2", "3"] {
            let v = f.eval(&x.parse().unwrap());
            assert!(out.contains(&v));
        }
    }

    #[test]
    fn display() {
        assert_eq!(p(&[25, -20, 4]).to_string(), "4*x^2 - 20*x + 25");
        assert_eq!(p(&[0, 1]).to_string(), "x");
        assert_eq!(UPoly::zero().to_string(), "0");
    }
}
