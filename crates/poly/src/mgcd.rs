//! Multivariate GCD (primitive PRS) and squarefree parts.
//!
//! CAD requires a squarefree basis: the discriminant of a polynomial with a
//! repeated factor vanishes identically, destroying the projection's
//! delineability information. Every polynomial entering a CAD level is first
//! replaced by its primitive squarefree part (same real variety, honest
//! discriminants).

use crate::mpoly::MPoly;
use cdb_num::Rat;

/// Greatest common divisor in `Q[x₀, …]`, in primitive normal form
/// (positive lex-leading coefficient). `gcd(0, q) = primitive(q)`.
#[must_use]
pub fn mgcd(p: &MPoly, q: &MPoly) -> MPoly {
    assert_eq!(p.nvars(), q.nvars());
    if p.is_zero() {
        return if q.is_zero() {
            q.clone()
        } else {
            q.primitive()
        };
    }
    if q.is_zero() {
        return p.primitive();
    }
    if p.is_constant() || q.is_constant() {
        return MPoly::constant(Rat::one(), p.nvars());
    }
    // Main variable: highest-index variable used by either.
    let Some(v) = (0..p.nvars())
        .rev()
        .find(|&i| p.uses_var(i) || q.uses_var(i))
    else {
        // Unreachable: both were checked nonconstant above, and a
        // nonconstant polynomial uses some variable. Constant gcd is inert.
        return MPoly::constant(Rat::one(), p.nvars());
    };
    if !p.uses_var(v) || !q.uses_var(v) {
        // One of them is free of v: gcd divides the content of the other.
        let (with_v, without) = if p.uses_var(v) { (p, q) } else { (q, p) };
        let c = content_wrt(with_v, v);
        return mgcd(&c, without);
    }
    let cp = content_wrt(p, v);
    let cq = content_wrt(q, v);
    let pp = p.div_exact(&cp);
    let qq = q.div_exact(&cq);
    // Primitive PRS in v.
    let (mut a, mut b) = if pp.degree_in(v) >= qq.degree_in(v) {
        (pp, qq)
    } else {
        (qq, pp)
    };
    loop {
        let r = pseudo_rem(&a, &b, v);
        if r.is_zero() {
            break;
        }
        if r.degree_in(v) == 0 {
            // Nonzero remainder free of v: the primitive parts are coprime,
            // so the gcd is the gcd of the contents.
            return mgcd(&cp, &cq);
        }
        let c = content_wrt(&r, v);
        a = b;
        b = r.div_exact(&c);
    }
    let g = b.primitive();
    &mgcd(&cp, &cq) * &g
}

/// Content of `p` with respect to variable `v`: the gcd of its coefficients
/// (polynomials in the remaining variables).
#[must_use]
pub fn content_wrt(p: &MPoly, v: usize) -> MPoly {
    let coeffs = p.as_upoly_in(v);
    let mut g = MPoly::zero(p.nvars());
    for c in coeffs {
        if c.is_zero() {
            continue;
        }
        g = mgcd(&g, &c);
        if g.to_constant().is_some_and(|x| x == Rat::one()) {
            return g;
        }
    }
    g
}

/// Pseudo-remainder of `a` by `b` in variable `v`:
/// `lc(b)^(deg a − deg b + 1) · a ≡ q·b + prem`.
#[must_use]
pub fn pseudo_rem(a: &MPoly, b: &MPoly, v: usize) -> MPoly {
    let db = b.degree_in(v) as usize;
    let bc = b.as_upoly_in(v);
    let lc_b = bc[db].clone();
    let mut rc = a.as_upoly_in(v);
    let nvars = a.nvars();
    while rc.len() > db && rc.len() > 1 {
        let dr = rc.len() - 1;
        let lead = rc[dr].clone();
        if lead.is_zero() {
            rc.pop();
            continue;
        }
        // r := lc_b * r − lead * x^{dr−db} * b
        for item in rc.iter_mut() {
            *item = &*item * &lc_b;
        }
        for (j, bcj) in bc.iter().enumerate() {
            let idx = dr - db + j;
            rc[idx] = &rc[idx] - &(&lead * bcj);
        }
        debug_assert!(rc[dr].is_zero());
        rc.pop();
        while rc.last().is_some_and(MPoly::is_zero) && rc.len() > 1 {
            rc.pop();
        }
    }
    if rc.iter().all(MPoly::is_zero) {
        return MPoly::zero(nvars);
    }
    MPoly::from_upoly_in(v, &rc, nvars)
}

/// Squarefree part of `p`, in primitive normal form: the product of the
/// distinct irreducible factors, so the real variety is unchanged and
/// discriminants are honest.
///
/// The content with respect to the main variable must be handled
/// *recursively*: `gcd(p, ∂p/∂v)` contains the whole content (it divides
/// both), so the naive `p / gcd(p, ∂p/∂v)` would silently drop factors
/// free of `v` — e.g. it would reduce `x·y` to `y`, losing the `x = 0`
/// component of the variety (a CAD soundness bug caught by the
/// `three_level_cad_structure` test).
#[must_use]
pub fn squarefree_part(p: &MPoly) -> MPoly {
    if p.is_zero() || p.is_constant() {
        return p.clone();
    }
    let Some(v) = (0..p.nvars()).rev().find(|&i| p.uses_var(i)) else {
        // Unreachable: `p` was checked nonconstant above.
        return p.clone();
    };
    let cont = content_wrt(p, v);
    let pp = p.div_exact(&cont);
    let sf_cont = squarefree_part(&cont);
    let dpp = pp.derivative(v);
    let sf_pp = if dpp.is_zero() {
        pp
    } else {
        let g = mgcd(&pp, &dpp);
        if g.is_constant() {
            pp
        } else {
            pp.div_exact(&g)
        }
    };
    (&sf_cont * &sf_pp).primitive()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy() -> (MPoly, MPoly) {
        (MPoly::var(0, 2), MPoly::var(1, 2))
    }

    #[test]
    fn gcd_univariate_embedded() {
        let (x, _) = xy();
        let c = |v: i64| MPoly::constant(Rat::from(v), 2);
        let p = &(&x - &c(1)) * &(&x - &c(2));
        let q = &(&x - &c(1)) * &(&x - &c(3));
        assert_eq!(mgcd(&p, &q), &x - &c(1));
    }

    #[test]
    fn gcd_bivariate_common_factor() {
        let (x, y) = xy();
        let f = &x - &y; // common factor
        let p = &f * &(&x + &y);
        let q = &f * &(&x + &MPoly::constant(Rat::one(), 2));
        let g = mgcd(&p, &q);
        assert_eq!(g, f.primitive());
    }

    #[test]
    fn gcd_coprime_is_one() {
        let (x, y) = xy();
        let g = mgcd(&(&x + &y), &(&x - &y));
        assert_eq!(g.to_constant(), Some(Rat::one()));
    }

    #[test]
    fn content_extraction() {
        let (x, y) = xy();
        // p = y·x² + y² x = y·x·(x + y): content wrt x is y.
        let p = &(&y * &x.pow(2)) + &(&y.pow(2) * &x);
        let c = content_wrt(&p, 0);
        assert_eq!(c, y.primitive());
    }

    #[test]
    fn squarefree_strips_squares() {
        let (x, y) = xy();
        let f = &x - &y;
        let p = &f * &f;
        assert_eq!(squarefree_part(&p), f.primitive());
        // Mixed: (x−y)²(x+y) → (x−y)(x+y).
        let q = &p * &(&x + &y);
        let sf = squarefree_part(&q);
        assert_eq!(sf, (&f * &(&x + &y)).primitive());
    }

    #[test]
    fn squarefree_of_squarefree_is_identity() {
        let (x, y) = xy();
        let p = &(&x.pow(2) + &y.pow(2)) - &MPoly::constant(Rat::one(), 2);
        assert_eq!(squarefree_part(&p), p.primitive());
    }

    #[test]
    fn pseudo_rem_degree_drops() {
        let (x, y) = xy();
        let a = &x.pow(3) + &y;
        let b = &x.pow(2) - &y;
        let r = pseudo_rem(&a, &b, 0);
        assert!(r.degree_in(0) < 2);
        // prem(a, b) = lc^? a mod b: x³ + y mod (x² − y) = x·y + y.
        assert_eq!(r, &(&x * &y) + &y);
    }

    #[test]
    fn gcd_with_content_interaction() {
        let (x, y) = xy();
        // p = y²·(x−1), q = y·(x−1)(x+2): gcd = y(x−1).
        let c = |v: i64| MPoly::constant(Rat::from(v), 2);
        let p = &y.pow(2) * &(&x - &c(1));
        let q = &(&y * &(&x - &c(1))) * &(&x + &c(2));
        let g = mgcd(&p, &q);
        assert_eq!(g, (&y * &(&x - &c(1))).primitive());
    }
}
