//! Sparse multivariate polynomials over `Q`.
//!
//! Generalized tuples constrain points of `R^k` with polynomials in `k`
//! variables; the CAD projection phase manipulates them as univariate
//! polynomials in the eliminated variable with multivariate coefficients
//! ([`MPoly::as_upoly_in`]).
//!
//! Monomials are exponent vectors ordered lexicographically (the `BTreeMap`
//! key order), which is a valid monomial order; exact division
//! ([`MPoly::div_exact`]) uses it for leading-term reduction.

use crate::upoly::UPoly;
use cdb_num::{Rat, Sign};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Exponent vector; `mono[i]` is the exponent of variable `i`.
pub type Monomial = Vec<u32>;

/// A sparse multivariate polynomial in a fixed number of variables.
///
/// The representation is canonical: no zero coefficients are stored and the
/// term map is keyed by exponent vector, so structurally equal polynomials
/// hash equal — which makes `MPoly` usable directly as a memo-cache key.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct MPoly {
    nvars: usize,
    /// Nonzero terms only.
    terms: BTreeMap<Monomial, Rat>,
}

impl MPoly {
    /// The zero polynomial in `nvars` variables.
    #[must_use]
    pub fn zero(nvars: usize) -> MPoly {
        MPoly {
            nvars,
            terms: BTreeMap::new(),
        }
    }

    /// A constant polynomial.
    #[must_use]
    pub fn constant(c: Rat, nvars: usize) -> MPoly {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(vec![0; nvars], c);
        }
        MPoly { nvars, terms }
    }

    /// The variable `x_i`.
    #[must_use]
    pub fn var(i: usize, nvars: usize) -> MPoly {
        assert!(i < nvars);
        let mut mono = vec![0; nvars];
        mono[i] = 1;
        let mut terms = BTreeMap::new();
        terms.insert(mono, Rat::one());
        MPoly { nvars, terms }
    }

    /// Build from `(monomial, coefficient)` pairs (summing duplicates).
    #[must_use]
    pub fn from_terms(nvars: usize, pairs: impl IntoIterator<Item = (Monomial, Rat)>) -> MPoly {
        let mut terms: BTreeMap<Monomial, Rat> = BTreeMap::new();
        for (m, c) in pairs {
            assert_eq!(m.len(), nvars, "monomial arity mismatch");
            let e = terms.entry(m).or_default();
            *e = &*e + &c;
        }
        terms.retain(|_, c| !c.is_zero());
        MPoly { nvars, terms }
    }

    /// Number of variables of the ambient ring.
    #[must_use]
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Nonzero terms (lexicographic monomial order, ascending).
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, &Rat)> {
        self.terms.iter()
    }

    /// Number of nonzero terms.
    #[must_use]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// True iff the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// True iff constant (possibly zero).
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.terms.keys().all(|m| m.iter().all(|&e| e == 0))
    }

    /// The constant value, if constant.
    #[must_use]
    pub fn to_constant(&self) -> Option<Rat> {
        if self.is_zero() {
            return Some(Rat::zero());
        }
        if self.is_constant() {
            return self.terms.values().next().cloned();
        }
        None
    }

    /// Degree in variable `i` (0 for the zero polynomial).
    #[must_use]
    pub fn degree_in(&self, i: usize) -> u32 {
        self.terms.keys().map(|m| m[i]).max().unwrap_or(0)
    }

    /// Total degree (0 for the zero polynomial).
    #[must_use]
    pub fn total_degree(&self) -> u32 {
        self.terms
            .keys()
            .map(|m| m.iter().sum::<u32>())
            .max()
            .unwrap_or(0)
    }

    /// True iff variable `i` occurs.
    #[must_use]
    pub fn uses_var(&self, i: usize) -> bool {
        self.terms.keys().any(|m| m[i] > 0)
    }

    /// Leading term under lex order.
    fn leading_term(&self) -> Option<(&Monomial, &Rat)> {
        self.terms.last_key_value()
    }

    /// Multiply by a scalar.
    #[must_use]
    pub fn scale(&self, c: &Rat) -> MPoly {
        if c.is_zero() {
            return MPoly::zero(self.nvars);
        }
        MPoly {
            nvars: self.nvars,
            terms: self.terms.iter().map(|(m, a)| (m.clone(), a * c)).collect(),
        }
    }

    /// Multiply by a single term.
    #[must_use]
    fn mul_term(&self, mono: &Monomial, c: &Rat) -> MPoly {
        if c.is_zero() {
            return MPoly::zero(self.nvars);
        }
        MPoly {
            nvars: self.nvars,
            terms: self
                .terms
                .iter()
                .map(|(m, a)| {
                    let mut nm = m.clone();
                    for (e, me) in nm.iter_mut().zip(mono) {
                        *e += me;
                    }
                    (nm, a * c)
                })
                .collect(),
        }
    }

    /// `self^n`.
    #[must_use]
    pub fn pow(&self, mut n: u32) -> MPoly {
        // Binary exponentiation: O(log n) polynomial multiplications instead
        // of n (the resultant base cases raise constants to degree-sized n).
        let mut acc = MPoly::constant(Rat::one(), self.nvars);
        let mut base = self.clone();
        while n > 0 {
            if n & 1 == 1 {
                acc = &acc * &base;
            }
            n >>= 1;
            if n > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Full evaluation at a rational point.
    #[must_use]
    pub fn eval(&self, point: &[Rat]) -> Rat {
        assert_eq!(point.len(), self.nvars);
        // Per-variable power tables: each `point[i]^e` is computed once per
        // call instead of once per term mentioning `x_i^e`.
        let mut max_exp = vec![0u32; self.nvars];
        for m in self.terms.keys() {
            for (me, &e) in max_exp.iter_mut().zip(m.iter()) {
                *me = (*me).max(e);
            }
        }
        let powers: Vec<Vec<Rat>> = point
            .iter()
            .zip(&max_exp)
            .map(|(x, &me)| {
                let mut tab = Vec::with_capacity(me as usize + 1);
                let mut pw = Rat::one();
                for _ in 0..me {
                    tab.push(pw.clone());
                    pw = &pw * x;
                }
                tab.push(pw);
                tab
            })
            .collect();
        let mut acc = Rat::zero();
        for (m, c) in &self.terms {
            let mut t = c.clone();
            for (i, &e) in m.iter().enumerate() {
                if e > 0 {
                    t = &t * &powers[i][e as usize];
                }
            }
            acc = &acc + &t;
        }
        acc
    }

    /// Substitute a rational value for variable `i` (result keeps the same
    /// ambient arity; variable `i` no longer occurs).
    #[must_use]
    pub fn substitute(&self, i: usize, v: &Rat) -> MPoly {
        assert!(i < self.nvars);
        let pairs = self.terms.iter().map(|(m, c)| {
            let mut nm = m.clone();
            let e = nm[i];
            nm[i] = 0;
            (nm, c * &v.pow(e as i32))
        });
        MPoly::from_terms(self.nvars, pairs)
    }

    /// Partial derivative with respect to variable `i`.
    #[must_use]
    pub fn derivative(&self, i: usize) -> MPoly {
        let pairs = self.terms.iter().filter_map(|(m, c)| {
            if m[i] == 0 {
                return None;
            }
            let mut nm = m.clone();
            nm[i] -= 1;
            Some((nm, c * &Rat::from(i64::from(m[i]))))
        });
        MPoly::from_terms(self.nvars, pairs)
    }

    /// View as a univariate polynomial in variable `i`: coefficients (in the
    /// other variables) by ascending power of `x_i`.
    #[must_use]
    pub fn as_upoly_in(&self, i: usize) -> Vec<MPoly> {
        let d = self.degree_in(i) as usize;
        let mut coeffs = vec![MPoly::zero(self.nvars); d + 1];
        for (m, c) in &self.terms {
            let e = m[i] as usize;
            let mut nm = m.clone();
            nm[i] = 0;
            let entry = coeffs[e].terms.entry(nm).or_default();
            *entry = &*entry + c;
        }
        for p in &mut coeffs {
            p.terms.retain(|_, c| !c.is_zero());
        }
        coeffs
    }

    /// Inverse of [`MPoly::as_upoly_in`].
    #[must_use]
    pub fn from_upoly_in(i: usize, coeffs: &[MPoly], nvars: usize) -> MPoly {
        let mut out = MPoly::zero(nvars);
        for (e, c) in coeffs.iter().enumerate() {
            assert_eq!(c.nvars, nvars);
            assert!(!c.uses_var(i), "coefficient uses the main variable");
            let mut mono = vec![0; nvars];
            mono[i] = e as u32;
            out = &out + &c.mul_term(&mono, &Rat::one());
        }
        out
    }

    /// Convert to [`UPoly`] if only variable `i` occurs.
    #[must_use]
    pub fn to_upoly_in(&self, i: usize) -> Option<UPoly> {
        let mut coeffs = vec![Rat::zero(); self.degree_in(i) as usize + 1];
        for (m, c) in &self.terms {
            for (j, &e) in m.iter().enumerate() {
                if j != i && e > 0 {
                    return None;
                }
            }
            coeffs[m[i] as usize] = c.clone();
        }
        Some(UPoly::from_coeffs(coeffs))
    }

    /// Lift a univariate polynomial into variable `i` of an `nvars`-ring.
    #[must_use]
    pub fn from_upoly(p: &UPoly, i: usize, nvars: usize) -> MPoly {
        let pairs = p.coeffs().iter().enumerate().map(|(e, c)| {
            let mut mono = vec![0; nvars];
            mono[i] = e as u32;
            (mono, c.clone())
        });
        MPoly::from_terms(nvars, pairs)
    }

    /// Rename variables: variable `i` becomes `map[i]` in a ring of
    /// `new_nvars` variables. Used when a stored relation `R(x0, x1)` is
    /// instantiated as `R(u, w)` inside a query (INSTANTIATION step).
    #[must_use]
    pub fn remap_vars(&self, map: &[usize], new_nvars: usize) -> MPoly {
        assert_eq!(map.len(), self.nvars);
        assert!(map.iter().all(|&m| m < new_nvars));
        let pairs = self.terms.iter().map(|(m, c)| {
            // Mapping two sources onto one target is legal (diagonals like
            // R(x, x)); exponents add up.
            let mut nm = vec![0u32; new_nvars];
            for (i, &e) in m.iter().enumerate() {
                nm[map[i]] += e;
            }
            (nm, c.clone())
        });
        MPoly::from_terms(new_nvars, pairs)
    }

    /// Exact division: `self / div`; panics if not exact (callers guarantee
    /// divisibility — Bareiss elimination and discriminant-by-lc division).
    #[must_use]
    pub fn div_exact(&self, div: &MPoly) -> MPoly {
        assert!(!div.is_zero(), "MPoly division by zero");
        assert_eq!(self.nvars, div.nvars);
        if self.is_zero() {
            return MPoly::zero(self.nvars);
        }
        if let Some(c) = div.to_constant() {
            return self.scale(&c.recip());
        }
        let mut rem = self.clone();
        let mut quot = MPoly::zero(self.nvars);
        let Some((dm, dc)) = div.leading_term().map(|(m, c)| (m.clone(), c.clone())) else {
            // Unreachable after the zero checks above; a zero divisor is
            // already rejected by the assert, so an empty quotient is inert.
            return quot;
        };
        while let Some((rm, rc)) = rem.leading_term().map(|(m, c)| (m.clone(), c.clone())) {
            let mut qm = rm.clone();
            let mut divisible = true;
            for (q, d) in qm.iter_mut().zip(&dm) {
                if *q < *d {
                    divisible = false;
                    break;
                }
                *q -= d;
            }
            assert!(divisible, "MPoly::div_exact: not divisible");
            let qc = &rc / &dc;
            let t = div.mul_term(&qm, &qc);
            rem = &rem - &t;
            quot = &quot + &MPoly::from_terms(self.nvars, [(qm, qc)]);
        }
        quot
    }

    /// Integer-primitive normal form with positive lex-leading coefficient
    /// (used to deduplicate CAD projection sets).
    #[must_use]
    pub fn primitive(&self) -> MPoly {
        if self.is_zero() {
            return self.clone();
        }
        // Scale by lcm of denominators / gcd of numerators.
        let mut l = cdb_num::Int::one();
        for c in self.terms.values() {
            let d = c.denom();
            let g = l.gcd(d);
            l = &(&l / &g) * d;
        }
        let lr = Rat::from(l);
        let mut g = cdb_num::Int::zero();
        for c in self.terms.values() {
            g = g.gcd((c * &lr).numer());
        }
        let scale = &lr / &Rat::from(g);
        let lead_sign = self.leading_term().map_or(Sign::Zero, |(_, c)| c.sign());
        let scale = if lead_sign == Sign::Neg {
            -scale
        } else {
            scale
        };
        self.scale(&scale)
    }

    /// Maximum bit length over coefficients.
    #[must_use]
    pub fn max_coeff_bits(&self) -> u64 {
        self.terms.values().map(Rat::bit_length).max().unwrap_or(0)
    }

    /// Render with the given variable names.
    #[must_use]
    pub fn display_with(&self, names: &[&str]) -> String {
        assert!(names.len() >= self.nvars);
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut out = String::new();
        // Highest terms first for readability.
        for (m, c) in self.terms.iter().rev() {
            let neg = c.sign() == Sign::Neg;
            if out.is_empty() {
                if neg {
                    out.push('-');
                }
            } else {
                out.push_str(if neg { " - " } else { " + " });
            }
            let a = c.abs();
            let is_const_mono = m.iter().all(|&e| e == 0);
            if a != Rat::one() || is_const_mono {
                out.push_str(&a.to_string());
                if !is_const_mono {
                    out.push('*');
                }
            }
            let mut first = true;
            for (i, &e) in m.iter().enumerate() {
                if e == 0 {
                    continue;
                }
                if !first {
                    out.push('*');
                }
                out.push_str(names[i]);
                if e > 1 {
                    out.push_str(&format!("^{e}"));
                }
                first = false;
            }
        }
        out
    }
}

impl fmt::Display for MPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.nvars).map(|i| format!("x{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        write!(f, "{}", self.display_with(&refs))
    }
}

impl fmt::Debug for MPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MPoly({self})")
    }
}

impl Add for &MPoly {
    type Output = MPoly;
    fn add(self, rhs: &MPoly) -> MPoly {
        assert_eq!(self.nvars, rhs.nvars);
        let mut terms = self.terms.clone();
        for (m, c) in &rhs.terms {
            let e = terms.entry(m.clone()).or_default();
            *e = &*e + c;
        }
        terms.retain(|_, c| !c.is_zero());
        MPoly {
            nvars: self.nvars,
            terms,
        }
    }
}

impl Sub for &MPoly {
    type Output = MPoly;
    fn sub(self, rhs: &MPoly) -> MPoly {
        self + &(-rhs)
    }
}

impl Neg for &MPoly {
    type Output = MPoly;
    fn neg(self) -> MPoly {
        MPoly {
            nvars: self.nvars,
            terms: self
                .terms
                .iter()
                .map(|(m, c)| (m.clone(), -c.clone()))
                .collect(),
        }
    }
}

impl Mul for &MPoly {
    type Output = MPoly;
    fn mul(self, rhs: &MPoly) -> MPoly {
        assert_eq!(self.nvars, rhs.nvars);
        let mut terms: BTreeMap<Monomial, Rat> = BTreeMap::new();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &rhs.terms {
                let mono: Monomial = ma.iter().zip(mb).map(|(a, b)| a + b).collect();
                let e = terms.entry(mono).or_default();
                *e = &*e + &(ca * cb);
            }
        }
        terms.retain(|_, c| !c.is_zero());
        MPoly {
            nvars: self.nvars,
            terms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example: S(x, y) uses 4x² − y − 20x + 25.
    fn paper_poly() -> MPoly {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let c = |v: i64| MPoly::constant(Rat::from(v), 2);
        &(&(&c(4) * &x.pow(2)) - &y) - &(&(&c(20) * &x) - &c(25))
    }

    #[test]
    fn construction_and_eval() {
        let p = paper_poly();
        assert_eq!(p.nvars(), 2);
        assert_eq!(p.degree_in(0), 2);
        assert_eq!(p.degree_in(1), 1);
        assert_eq!(p.total_degree(), 2);
        // At (2.5, 0) the polynomial vanishes.
        assert!(p.eval(&["5/2".parse().unwrap(), Rat::zero()]).is_zero());
        assert_eq!(p.eval(&[Rat::zero(), Rat::zero()]), Rat::from(25i64));
    }

    #[test]
    fn arithmetic_ring_identities() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let a = &x + &y;
        let b = &x - &y;
        // (x+y)(x-y) = x² − y²
        assert_eq!(&a * &b, &x.pow(2) - &y.pow(2));
        assert!((&a - &a).is_zero());
    }

    #[test]
    fn substitution_and_to_upoly() {
        let p = paper_poly();
        // Substitute y = 9: 4x² − 20x + 16.
        let q = p.substitute(1, &Rat::from(9i64));
        let u = q.to_upoly_in(0).unwrap();
        assert_eq!(u, UPoly::from_ints(&[16, -20, 4]));
        // Substituting x leaves y.
        let r = p.substitute(0, &Rat::zero());
        assert_eq!(r.to_upoly_in(1).unwrap(), UPoly::from_ints(&[25, -1]));
        assert!(p.to_upoly_in(0).is_none());
    }

    #[test]
    fn upoly_view_roundtrip() {
        let p = paper_poly();
        let coeffs = p.as_upoly_in(1);
        assert_eq!(coeffs.len(), 2);
        assert_eq!(coeffs[1], MPoly::constant(Rat::from(-1i64), 2));
        let back = MPoly::from_upoly_in(1, &coeffs, 2);
        assert_eq!(back, p);
    }

    #[test]
    fn derivative() {
        let p = paper_poly();
        let dx = p.derivative(0); // 8x − 20
        assert_eq!(dx.to_upoly_in(0).unwrap(), UPoly::from_ints(&[-20, 8]));
        let dy = p.derivative(1);
        assert_eq!(dy.to_constant(), Some(Rat::from(-1i64)));
    }

    #[test]
    fn exact_division() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let a = &x + &y;
        let b = &x - &y;
        let prod = &a * &b;
        assert_eq!(prod.div_exact(&a), b);
        assert_eq!(prod.div_exact(&b), a);
        let sq = a.pow(3);
        assert_eq!(sq.div_exact(&a.pow(2)), a);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn division_not_exact_panics() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let _ = (&x + &MPoly::constant(Rat::one(), 2)).div_exact(&y);
    }

    #[test]
    fn primitive_normalization() {
        let x = MPoly::var(0, 1);
        let p = &x.scale(&"2/3".parse().unwrap()) + &MPoly::constant("4/3".parse().unwrap(), 1);
        let prim = p.primitive();
        // (2/3)x + 4/3 → x + 2
        assert_eq!(prim, &x + &MPoly::constant(Rat::from(2i64), 1));
        // Negative lead flips.
        let q = (&p).neg().primitive();
        assert_eq!(q, prim);
    }

    #[test]
    fn display_human_readable() {
        let p = paper_poly();
        assert_eq!(p.display_with(&["x", "y"]), "4*x^2 - 20*x - y + 25");
    }
}
