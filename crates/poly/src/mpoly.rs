//! Sparse multivariate polynomials over `Q`, hash-consed.
//!
//! Generalized tuples constrain points of `R^k` with polynomials in `k`
//! variables; the CAD projection phase manipulates them as univariate
//! polynomials in the eliminated variable with multivariate coefficients
//! ([`MPoly::as_upoly_in`]).
//!
//! Representation: a canonical **sorted flat `Vec<(Mono, Rat)>`** (ascending
//! lexicographic monomial order, no zero coefficients, no duplicate
//! monomials) stored once behind `Arc` in the [`crate::intern`] shards.
//! An `MPoly` is a handle: `Clone` is a pointer bump, `Hash` writes one
//! precomputed content hash, and `Eq` short-circuits on pointer identity
//! before falling back to a hash-guarded structural compare — so `MPoly`
//! stays usable directly as a memo-cache key, now at O(1) per probe.
//! Total degree and per-variable degrees are computed once at construction
//! ([`MPoly::total_degree`]/[`MPoly::degree_in`] are O(1) reads).
//!
//! Lexicographic order is a valid monomial order; exact division
//! ([`MPoly::div_exact`]) uses it for leading-term reduction.

use crate::intern;
use crate::mono::Mono;
use crate::upoly::UPoly;
use cdb_num::{Rat, Sign};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, Mul, Neg, Sub};
use std::sync::Arc;

/// Exponent vector as a plain vector; `mono[i]` is the exponent of variable
/// `i`. Retained as the [`MPoly::from_terms`] input currency; internal
/// storage uses the packed [`Mono`].
pub type Monomial = Vec<u32>;

/// Deterministic identity of a canonical polynomial: the content hash of
/// `(nvars, terms)` under the fixed-key `DefaultHasher`. Equal polynomials
/// always carry equal ids, across threads, runs, and interner states
/// (ids derive from content, not insertion order). Distinct polynomials
/// collide only with `DefaultHasher` probability, so ids are for
/// diagnostics and hash-keying — `Eq` still verifies structure.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PolyId(u64);

impl PolyId {
    /// The raw 64-bit id.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// The interned payload: canonical terms plus caches computed once at
/// construction. Immutable after interning.
pub(crate) struct PolyData {
    pub(crate) nvars: usize,
    /// Nonzero terms, ascending lex monomial order, duplicates merged.
    pub(crate) terms: Vec<(Mono, Rat)>,
    /// Content hash of `(nvars, terms)` (fixed-key `DefaultHasher`).
    pub(crate) hash: u64,
    /// Max total degree over terms (0 for the zero polynomial).
    pub(crate) total_degree: u32,
    /// `var_degrees[i]` = max exponent of variable `i` (0 if absent).
    pub(crate) var_degrees: Vec<u32>,
}

/// A sparse multivariate polynomial in a fixed number of variables.
///
/// The representation is canonical and hash-consed: no zero coefficients
/// are stored, terms are sorted by exponent vector, and equal polynomials
/// usually share one allocation — so structurally equal polynomials hash
/// equal (in O(1)), which makes `MPoly` usable directly as a memo-cache key.
#[derive(Clone)]
pub struct MPoly {
    data: Arc<PolyData>,
}

impl PartialEq for MPoly {
    fn eq(&self, other: &MPoly) -> bool {
        // Interned handles to equal polynomials are usually the same Arc.
        Arc::ptr_eq(&self.data, &other.data)
            || (self.data.hash == other.data.hash
                && self.data.nvars == other.data.nvars
                && self.data.terms == other.data.terms)
    }
}

impl Eq for MPoly {}

impl Hash for MPoly {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // O(1): the content hash was computed once at construction.
        state.write_u64(self.data.hash);
    }
}

/// Content hash of canonical `(nvars, terms)` under the fixed-key
/// `DefaultHasher` (deterministic across processes; same idiom as the
/// `AlgebraicCache` shard router).
fn content_hash(nvars: usize, terms: &[(Mono, Rat)]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    h.write_usize(nvars);
    terms.hash(&mut h);
    h.finish()
}

impl MPoly {
    /// Seal a vector that is already canonical (sorted, distinct monomials,
    /// no zero coefficients): compute caches and intern.
    fn from_canonical(nvars: usize, terms: Vec<(Mono, Rat)>) -> MPoly {
        debug_assert!(
            terms
                .iter()
                .zip(terms.iter().skip(1))
                .all(|(a, b)| a.0 < b.0),
            "terms not sorted"
        );
        debug_assert!(terms.iter().all(|(_, c)| !c.is_zero()), "zero coefficient");
        let mut total_degree = 0u32;
        let mut var_degrees = vec![0u32; nvars];
        for (m, _) in &terms {
            total_degree = total_degree.max(m.total_degree());
            for (d, e) in var_degrees.iter_mut().zip(m.exps()) {
                *d = (*d).max(e);
            }
        }
        let hash = content_hash(nvars, &terms);
        MPoly {
            data: intern::canonicalize(PolyData {
                nvars,
                terms,
                hash,
                total_degree,
                var_degrees,
            }),
        }
    }

    /// Canonicalize an arbitrary term list: sort, merge duplicate monomials,
    /// drop zero coefficients, then intern.
    fn canonical(nvars: usize, mut pairs: Vec<(Mono, Rat)>) -> MPoly {
        pairs.retain(|(_, c)| !c.is_zero());
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut terms: Vec<(Mono, Rat)> = Vec::with_capacity(pairs.len());
        for (m, c) in pairs {
            match terms.last_mut() {
                Some(last) if last.0 == m => last.1 = &last.1 + &c,
                _ => terms.push((m, c)),
            }
        }
        terms.retain(|(_, c)| !c.is_zero());
        MPoly::from_canonical(nvars, terms)
    }

    /// The zero polynomial in `nvars` variables.
    #[must_use]
    pub fn zero(nvars: usize) -> MPoly {
        MPoly::from_canonical(nvars, Vec::new())
    }

    /// A constant polynomial.
    #[must_use]
    pub fn constant(c: Rat, nvars: usize) -> MPoly {
        if c.is_zero() {
            return MPoly::zero(nvars);
        }
        MPoly::from_canonical(nvars, vec![(Mono::zero(nvars), c)])
    }

    /// The variable `x_i`.
    #[must_use]
    pub fn var(i: usize, nvars: usize) -> MPoly {
        assert!(i < nvars);
        MPoly::from_canonical(nvars, vec![(Mono::zero(nvars).with_exp(i, 1), Rat::one())])
    }

    /// Build from `(monomial, coefficient)` pairs (summing duplicates).
    #[must_use]
    pub fn from_terms(nvars: usize, pairs: impl IntoIterator<Item = (Monomial, Rat)>) -> MPoly {
        let pairs: Vec<(Mono, Rat)> = pairs
            .into_iter()
            .map(|(m, c)| {
                assert_eq!(m.len(), nvars, "monomial arity mismatch");
                (Mono::from_vec(m), c)
            })
            .collect();
        MPoly::canonical(nvars, pairs)
    }

    /// Deterministic content-derived identity (see [`PolyId`]).
    #[must_use]
    pub fn id(&self) -> PolyId {
        PolyId(self.data.hash)
    }

    /// Number of variables of the ambient ring.
    #[must_use]
    pub fn nvars(&self) -> usize {
        self.data.nvars
    }

    /// Nonzero terms (lexicographic monomial order, ascending).
    pub fn terms(&self) -> impl DoubleEndedIterator<Item = (&Mono, &Rat)> {
        self.data.terms.iter().map(|(m, c)| (m, c))
    }

    /// Number of nonzero terms.
    #[must_use]
    pub fn num_terms(&self) -> usize {
        self.data.terms.len()
    }

    /// True iff the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.data.terms.is_empty()
    }

    /// True iff constant (possibly zero). O(1) via the degree cache.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.data.total_degree == 0
    }

    /// The constant value, if constant.
    #[must_use]
    pub fn to_constant(&self) -> Option<Rat> {
        if self.is_zero() {
            return Some(Rat::zero());
        }
        if self.is_constant() {
            return self.data.terms.first().map(|(_, c)| c.clone());
        }
        None
    }

    /// Degree in variable `i` (0 for the zero polynomial). O(1): cached at
    /// construction.
    #[must_use]
    pub fn degree_in(&self, i: usize) -> u32 {
        self.data.var_degrees.get(i).copied().unwrap_or(0)
    }

    /// Total degree (0 for the zero polynomial). O(1): cached at
    /// construction.
    #[must_use]
    pub fn total_degree(&self) -> u32 {
        self.data.total_degree
    }

    /// True iff variable `i` occurs. O(1) via the degree cache.
    #[must_use]
    pub fn uses_var(&self, i: usize) -> bool {
        self.degree_in(i) > 0
    }

    /// Leading term under lex order.
    fn leading_term(&self) -> Option<(&Mono, &Rat)> {
        self.data.terms.last().map(|(m, c)| (m, c))
    }

    /// Multiply by a scalar.
    #[must_use]
    pub fn scale(&self, c: &Rat) -> MPoly {
        if c.is_zero() {
            return MPoly::zero(self.data.nvars);
        }
        // Scaling by a nonzero rational preserves order and nonzeroness.
        MPoly::from_canonical(
            self.data.nvars,
            self.data
                .terms
                .iter()
                .map(|(m, a)| (m.clone(), a * c))
                .collect(),
        )
    }

    /// Multiply by a single term.
    fn mul_term(&self, mono: &Mono, c: &Rat) -> MPoly {
        if c.is_zero() {
            return MPoly::zero(self.data.nvars);
        }
        // Adding a fixed exponent vector is strictly monotone in lex order,
        // so the result is canonical without re-sorting.
        MPoly::from_canonical(
            self.data.nvars,
            self.data
                .terms
                .iter()
                .map(|(m, a)| (m.mul(mono), a * c))
                .collect(),
        )
    }

    /// `self^n`.
    #[must_use]
    pub fn pow(&self, mut n: u32) -> MPoly {
        // Binary exponentiation: O(log n) polynomial multiplications instead
        // of n (the resultant base cases raise constants to degree-sized n).
        let mut acc = MPoly::constant(Rat::one(), self.data.nvars);
        let mut base = self.clone();
        while n > 0 {
            if n & 1 == 1 {
                acc = &acc * &base;
            }
            n >>= 1;
            if n > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Full evaluation at a rational point.
    #[must_use]
    pub fn eval(&self, point: &[Rat]) -> Rat {
        assert_eq!(point.len(), self.data.nvars);
        // Per-variable power tables: each `point[i]^e` is computed once per
        // call instead of once per term mentioning `x_i^e`; table sizes come
        // straight from the cached per-variable degrees.
        let powers: Vec<Vec<Rat>> = point
            .iter()
            .zip(&self.data.var_degrees)
            .map(|(x, &me)| {
                let mut tab = Vec::with_capacity(me as usize + 1);
                let mut pw = Rat::one();
                for _ in 0..me {
                    tab.push(pw.clone());
                    pw = &pw * x;
                }
                tab.push(pw);
                tab
            })
            .collect();
        let mut acc = Rat::zero();
        for (m, c) in &self.data.terms {
            let mut t = c.clone();
            for (i, e) in m.exps().enumerate() {
                if e > 0 {
                    t = &t * &powers[i][e as usize];
                }
            }
            acc = &acc + &t;
        }
        acc
    }

    /// Substitute a rational value for variable `i` (result keeps the same
    /// ambient arity; variable `i` no longer occurs).
    #[must_use]
    pub fn substitute(&self, i: usize, v: &Rat) -> MPoly {
        assert!(i < self.data.nvars);
        let pairs = self
            .data
            .terms
            .iter()
            .map(|(m, c)| {
                let e = m.get(i);
                (m.zeroed(i), c * &v.pow(e as i32))
            })
            .collect();
        MPoly::canonical(self.data.nvars, pairs)
    }

    /// Partial derivative with respect to variable `i`.
    #[must_use]
    pub fn derivative(&self, i: usize) -> MPoly {
        // Decrementing one coordinate on every surviving term preserves both
        // lex order and distinctness, so the result is canonical as built.
        let terms = self
            .data
            .terms
            .iter()
            .filter_map(|(m, c)| {
                let e = m.get(i);
                if e == 0 {
                    return None;
                }
                Some((m.with_exp(i, e - 1), c * &Rat::from(i64::from(e))))
            })
            .collect();
        MPoly::from_canonical(self.data.nvars, terms)
    }

    /// View as a univariate polynomial in variable `i`: coefficients (in the
    /// other variables) by ascending power of `x_i`.
    #[must_use]
    pub fn as_upoly_in(&self, i: usize) -> Vec<MPoly> {
        let d = self.degree_in(i) as usize;
        let mut buckets: Vec<Vec<(Mono, Rat)>> = vec![Vec::new(); d + 1];
        for (m, c) in &self.data.terms {
            // Terms sharing an `x_i` power keep their relative lex order and
            // distinctness after zeroing coordinate `i`, so each bucket is
            // canonical as collected.
            buckets[m.get(i) as usize].push((m.zeroed(i), c.clone()));
        }
        buckets
            .into_iter()
            .map(|b| MPoly::from_canonical(self.data.nvars, b))
            .collect()
    }

    /// Inverse of [`MPoly::as_upoly_in`].
    #[must_use]
    pub fn from_upoly_in(i: usize, coeffs: &[MPoly], nvars: usize) -> MPoly {
        let mut pairs = Vec::new();
        for (e, c) in coeffs.iter().enumerate() {
            assert_eq!(c.data.nvars, nvars);
            assert!(!c.uses_var(i), "coefficient uses the main variable");
            for (m, a) in &c.data.terms {
                pairs.push((m.with_exp(i, e as u32), a.clone()));
            }
        }
        MPoly::canonical(nvars, pairs)
    }

    /// Convert to [`UPoly`] if only variable `i` occurs.
    #[must_use]
    pub fn to_upoly_in(&self, i: usize) -> Option<UPoly> {
        let mut coeffs = vec![Rat::zero(); self.degree_in(i) as usize + 1];
        for (m, c) in &self.data.terms {
            for (j, e) in m.exps().enumerate() {
                if j != i && e > 0 {
                    return None;
                }
            }
            coeffs[m.get(i) as usize] = c.clone();
        }
        Some(UPoly::from_coeffs(coeffs))
    }

    /// Lift a univariate polynomial into variable `i` of an `nvars`-ring.
    #[must_use]
    pub fn from_upoly(p: &UPoly, i: usize, nvars: usize) -> MPoly {
        let base = Mono::zero(nvars);
        let pairs = p
            .coeffs()
            .iter()
            .enumerate()
            .map(|(e, c)| (base.with_exp(i, e as u32), c.clone()))
            .collect();
        MPoly::canonical(nvars, pairs)
    }

    /// Rename variables: variable `i` becomes `map[i]` in a ring of
    /// `new_nvars` variables. Used when a stored relation `R(x0, x1)` is
    /// instantiated as `R(u, w)` inside a query (INSTANTIATION step).
    #[must_use]
    pub fn remap_vars(&self, map: &[usize], new_nvars: usize) -> MPoly {
        assert_eq!(map.len(), self.data.nvars);
        assert!(map.iter().all(|&m| m < new_nvars));
        let pairs = self
            .data
            .terms
            .iter()
            .map(|(m, c)| {
                // Mapping two sources onto one target is legal (diagonals like
                // R(x, x)); exponents add up.
                let mut nm = vec![0u32; new_nvars];
                for (i, e) in m.exps().enumerate() {
                    nm[map[i]] += e;
                }
                (Mono::from_vec(nm), c.clone())
            })
            .collect();
        MPoly::canonical(new_nvars, pairs)
    }

    /// Exact division: `self / div`; panics if not exact (callers guarantee
    /// divisibility — Bareiss elimination and discriminant-by-lc division).
    #[must_use]
    pub fn div_exact(&self, div: &MPoly) -> MPoly {
        assert!(!div.is_zero(), "MPoly division by zero");
        assert_eq!(self.data.nvars, div.data.nvars);
        if self.is_zero() {
            return MPoly::zero(self.data.nvars);
        }
        if let Some(c) = div.to_constant() {
            return self.scale(&c.recip());
        }
        let mut rem = self.clone();
        let mut quot = MPoly::zero(self.data.nvars);
        let Some((dm, dc)) = div.leading_term().map(|(m, c)| (m.clone(), c.clone())) else {
            // Unreachable after the zero checks above; a zero divisor is
            // already rejected by the assert, so an empty quotient is inert.
            return quot;
        };
        while let Some((rm, rc)) = rem.leading_term().map(|(m, c)| (m.clone(), c.clone())) {
            let step = rm.try_div(&dm);
            assert!(step.is_some(), "MPoly::div_exact: not divisible");
            let Some(qm) = step else {
                // Unreachable: the assert above fired first.
                return quot;
            };
            let qc = &rc / &dc;
            let t = div.mul_term(&qm, &qc);
            rem = &rem - &t;
            quot = &quot + &MPoly::from_canonical(self.data.nvars, vec![(qm, qc)]);
        }
        quot
    }

    /// Integer-primitive normal form with positive lex-leading coefficient
    /// (used to deduplicate CAD projection sets).
    #[must_use]
    pub fn primitive(&self) -> MPoly {
        if self.is_zero() {
            return self.clone();
        }
        // Scale by lcm of denominators / gcd of numerators.
        let mut l = cdb_num::Int::one();
        for (_, c) in &self.data.terms {
            let d = c.denom();
            let g = l.gcd(d);
            l = &(&l / &g) * d;
        }
        let lr = Rat::from(l);
        let mut g = cdb_num::Int::zero();
        for (_, c) in &self.data.terms {
            g = g.gcd((c * &lr).numer());
        }
        let scale = &lr / &Rat::from(g);
        let lead_sign = self.leading_term().map_or(Sign::Zero, |(_, c)| c.sign());
        let scale = if lead_sign == Sign::Neg {
            -scale
        } else {
            scale
        };
        self.scale(&scale)
    }

    /// Maximum bit length over coefficients.
    #[must_use]
    pub fn max_coeff_bits(&self) -> u64 {
        self.data
            .terms
            .iter()
            .map(|(_, c)| c.bit_length())
            .max()
            .unwrap_or(0)
    }

    /// Render with the given variable names.
    #[must_use]
    pub fn display_with(&self, names: &[&str]) -> String {
        assert!(names.len() >= self.data.nvars);
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut out = String::new();
        // Highest terms first for readability.
        for (m, c) in self.data.terms.iter().rev() {
            let neg = c.sign() == Sign::Neg;
            if out.is_empty() {
                if neg {
                    out.push('-');
                }
            } else {
                out.push_str(if neg { " - " } else { " + " });
            }
            let a = c.abs();
            let is_const_mono = m.is_constant();
            if a != Rat::one() || is_const_mono {
                out.push_str(&a.to_string());
                if !is_const_mono {
                    out.push('*');
                }
            }
            let mut first = true;
            for (i, e) in m.exps().enumerate() {
                if e == 0 {
                    continue;
                }
                if !first {
                    out.push('*');
                }
                out.push_str(names[i]);
                if e > 1 {
                    out.push_str(&format!("^{e}"));
                }
                first = false;
            }
        }
        out
    }
}

impl fmt::Display for MPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.data.nvars).map(|i| format!("x{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        write!(f, "{}", self.display_with(&refs))
    }
}

impl fmt::Debug for MPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MPoly({self})")
    }
}

impl Add for &MPoly {
    type Output = MPoly;
    fn add(self, rhs: &MPoly) -> MPoly {
        assert_eq!(self.data.nvars, rhs.data.nvars);
        MPoly::from_canonical(
            self.data.nvars,
            merge(&self.data.terms, &rhs.data.terms, false),
        )
    }
}

impl Sub for &MPoly {
    type Output = MPoly;
    fn sub(self, rhs: &MPoly) -> MPoly {
        assert_eq!(self.data.nvars, rhs.data.nvars);
        MPoly::from_canonical(
            self.data.nvars,
            merge(&self.data.terms, &rhs.data.terms, true),
        )
    }
}

/// Merge two canonical term vectors (`a ± b`): one linear pass, output
/// canonical by construction.
fn merge(a: &[(Mono, Rat)], b: &[(Mono, Rat)], negate_b: bool) -> Vec<(Mono, Rat)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = 0usize;
    let mut ib = 0usize;
    let bc = |c: &Rat| if negate_b { -c.clone() } else { c.clone() };
    while ia < a.len() && ib < b.len() {
        match a[ia].0.cmp(&b[ib].0) {
            std::cmp::Ordering::Less => {
                out.push(a[ia].clone());
                ia += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push((b[ib].0.clone(), bc(&b[ib].1)));
                ib += 1;
            }
            std::cmp::Ordering::Equal => {
                let c = if negate_b {
                    &a[ia].1 - &b[ib].1
                } else {
                    &a[ia].1 + &b[ib].1
                };
                if !c.is_zero() {
                    out.push((a[ia].0.clone(), c));
                }
                ia += 1;
                ib += 1;
            }
        }
    }
    out.extend(a[ia..].iter().cloned());
    out.extend(b[ib..].iter().map(|(m, c)| (m.clone(), bc(c))));
    out
}

impl Neg for &MPoly {
    type Output = MPoly;
    fn neg(self) -> MPoly {
        MPoly::from_canonical(
            self.data.nvars,
            self.data
                .terms
                .iter()
                .map(|(m, c)| (m.clone(), -c.clone()))
                .collect(),
        )
    }
}

impl Mul for &MPoly {
    type Output = MPoly;
    fn mul(self, rhs: &MPoly) -> MPoly {
        assert_eq!(self.data.nvars, rhs.data.nvars);
        let mut pairs = Vec::with_capacity(self.data.terms.len() * rhs.data.terms.len());
        for (ma, ca) in &self.data.terms {
            for (mb, cb) in &rhs.data.terms {
                pairs.push((ma.mul(mb), ca * cb));
            }
        }
        MPoly::canonical(self.data.nvars, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example: S(x, y) uses 4x² − y − 20x + 25.
    fn paper_poly() -> MPoly {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let c = |v: i64| MPoly::constant(Rat::from(v), 2);
        &(&(&c(4) * &x.pow(2)) - &y) - &(&(&c(20) * &x) - &c(25))
    }

    #[test]
    fn construction_and_eval() {
        let p = paper_poly();
        assert_eq!(p.nvars(), 2);
        assert_eq!(p.degree_in(0), 2);
        assert_eq!(p.degree_in(1), 1);
        assert_eq!(p.total_degree(), 2);
        // At (2.5, 0) the polynomial vanishes.
        assert!(p.eval(&["5/2".parse().unwrap(), Rat::zero()]).is_zero());
        assert_eq!(p.eval(&[Rat::zero(), Rat::zero()]), Rat::from(25i64));
    }

    #[test]
    fn arithmetic_ring_identities() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let a = &x + &y;
        let b = &x - &y;
        // (x+y)(x-y) = x² − y²
        assert_eq!(&a * &b, &x.pow(2) - &y.pow(2));
        assert!((&a - &a).is_zero());
    }

    #[test]
    fn substitution_and_to_upoly() {
        let p = paper_poly();
        // Substitute y = 9: 4x² − 20x + 16.
        let q = p.substitute(1, &Rat::from(9i64));
        let u = q.to_upoly_in(0).unwrap();
        assert_eq!(u, UPoly::from_ints(&[16, -20, 4]));
        // Substituting x leaves y.
        let r = p.substitute(0, &Rat::zero());
        assert_eq!(r.to_upoly_in(1).unwrap(), UPoly::from_ints(&[25, -1]));
        assert!(p.to_upoly_in(0).is_none());
    }

    #[test]
    fn upoly_view_roundtrip() {
        let p = paper_poly();
        let coeffs = p.as_upoly_in(1);
        assert_eq!(coeffs.len(), 2);
        assert_eq!(coeffs[1], MPoly::constant(Rat::from(-1i64), 2));
        let back = MPoly::from_upoly_in(1, &coeffs, 2);
        assert_eq!(back, p);
    }

    #[test]
    fn derivative() {
        let p = paper_poly();
        let dx = p.derivative(0); // 8x − 20
        assert_eq!(dx.to_upoly_in(0).unwrap(), UPoly::from_ints(&[-20, 8]));
        let dy = p.derivative(1);
        assert_eq!(dy.to_constant(), Some(Rat::from(-1i64)));
    }

    #[test]
    fn exact_division() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let a = &x + &y;
        let b = &x - &y;
        let prod = &a * &b;
        assert_eq!(prod.div_exact(&a), b);
        assert_eq!(prod.div_exact(&b), a);
        let sq = a.pow(3);
        assert_eq!(sq.div_exact(&a.pow(2)), a);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn division_not_exact_panics() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let _ = (&x + &MPoly::constant(Rat::one(), 2)).div_exact(&y);
    }

    #[test]
    fn primitive_normalization() {
        let x = MPoly::var(0, 1);
        let p = &x.scale(&"2/3".parse().unwrap()) + &MPoly::constant("4/3".parse().unwrap(), 1);
        let prim = p.primitive();
        // (2/3)x + 4/3 → x + 2
        assert_eq!(prim, &x + &MPoly::constant(Rat::from(2i64), 1));
        // Negative lead flips.
        let q = (&p).neg().primitive();
        assert_eq!(q, prim);
    }

    #[test]
    fn display_human_readable() {
        let p = paper_poly();
        assert_eq!(p.display_with(&["x", "y"]), "4*x^2 - 20*x - y + 25");
    }

    #[test]
    fn interning_shares_and_ids_are_content_derived() {
        let p = paper_poly();
        let q = paper_poly();
        // Equal content → equal id, equal handle.
        assert_eq!(p, q);
        assert_eq!(p.id(), q.id());
        // And (with the interner enabled by default) one shared allocation.
        if crate::intern::enabled() {
            assert!(Arc::ptr_eq(&p.data, &q.data));
        }
        // Clones are pointer bumps.
        let r = p.clone();
        assert!(Arc::ptr_eq(&p.data, &r.data));
        // Different content → different id (hash collision aside).
        assert_ne!(p.id(), MPoly::var(0, 2).id());
    }

    #[test]
    fn hash_is_content_hash() {
        use std::collections::hash_map::DefaultHasher;
        let p = paper_poly();
        let q = paper_poly();
        let h = |x: &MPoly| {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&p), h(&q));
    }
}
