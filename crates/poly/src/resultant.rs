//! Resultants and discriminants via fraction-free (Bareiss) elimination on
//! the Sylvester matrix.
//!
//! These are the workhorses of the CAD projection operator `PROJ` (Appendix
//! I: "Polynomials of PROJ(P_i) are formed by addition, subtraction, and
//! multiplication of the coefficients … with the technique of
//! subresultants"). Bareiss elimination keeps every intermediate entry a
//! polynomial (divisions are exact), avoiding rational-function blowup.

use crate::mpoly::MPoly;
use cdb_num::Rat;

/// Resultant of `p` and `q` with respect to variable `var`.
///
/// Conventions: if either polynomial is zero, the resultant is zero. If both
/// have degree 0 in `var`, the resultant is 1 (empty Sylvester matrix).
#[must_use]
pub fn resultant(p: &MPoly, q: &MPoly, var: usize) -> MPoly {
    assert_eq!(p.nvars(), q.nvars());
    let nvars = p.nvars();
    if p.is_zero() || q.is_zero() {
        return MPoly::zero(nvars);
    }
    let pc = p.as_upoly_in(var);
    let qc = q.as_upoly_in(var);
    let m = pc.len() - 1; // deg p
    let n = qc.len() - 1; // deg q
    if m == 0 && n == 0 {
        return MPoly::constant(Rat::one(), nvars);
    }
    // res(c, q) = c^deg(q) — binary exponentiation via MPoly::pow.
    if let [c] = pc.as_slice() {
        return c.pow(n as u32);
    }
    if let [c] = qc.as_slice() {
        return c.pow(m as u32);
    }
    // Sylvester matrix: n rows of p's coefficients, m rows of q's, each row
    // listing coefficients from the highest power.
    let size = m + n;
    let mut mat = vec![vec![MPoly::zero(nvars); size]; size];
    for (row, mrow) in mat.iter_mut().enumerate().take(n) {
        for (j, c) in pc.iter().rev().enumerate() {
            mrow[row + j] = c.clone();
        }
    }
    for row in 0..m {
        for (j, c) in qc.iter().rev().enumerate() {
            mat[n + row][row + j] = c.clone();
        }
    }
    bareiss_determinant(mat)
}

/// Discriminant of `p` with respect to `var`:
/// `disc = (−1)^{d(d−1)/2} · res(p, ∂p/∂var) / lc(p)`.
#[must_use]
pub fn discriminant(p: &MPoly, var: usize) -> MPoly {
    let d = p.degree_in(var);
    assert!(d >= 1, "discriminant needs degree >= 1 in the variable");
    let dp = p.derivative(var);
    let res = resultant(p, &dp, var);
    // cdb-lint: allow(panic) — `d >= 1` is asserted above, so the coefficient
    // list has at least two entries and `pop` cannot fail.
    let lc = p.as_upoly_in(var).pop().expect("nonzero degree");
    let q = res.div_exact(&lc);
    if (u64::from(d) * (u64::from(d) - 1) / 2) % 2 == 1 {
        -&q
    } else {
        q
    }
}

/// Determinant via Bareiss fraction-free elimination. Consumes the matrix.
/// Entries stay polynomial throughout; all divisions are exact.
#[must_use]
pub fn bareiss_determinant(mut m: Vec<Vec<MPoly>>) -> MPoly {
    let n = m.len();
    assert!(
        n > 0 && m.iter().all(|r| r.len() == n),
        "square matrix required"
    );
    let nvars = m[0][0].nvars(); // cdb-lint: allow(panic) — square + nonempty asserted above
    if n == 1 {
        return m[0][0].clone(); // cdb-lint: allow(panic) — square + nonempty asserted above
    }
    let mut sign_flip = false;
    let mut prev = MPoly::constant(Rat::one(), nvars);
    for k in 0..n - 1 {
        if m[k][k].is_zero() {
            // Pivot search.
            let Some(swap) = (k + 1..n).find(|&r| !m[r][k].is_zero()) else {
                return MPoly::zero(nvars);
            };
            m.swap(k, swap);
            sign_flip = !sign_flip;
        }
        for i in k + 1..n {
            for j in k + 1..n {
                let num = &(&m[k][k] * &m[i][j]) - &(&m[i][k] * &m[k][j]);
                m[i][j] = num.div_exact(&prev);
            }
            m[i][k] = MPoly::zero(nvars);
        }
        prev = m[k][k].clone();
    }
    let det = m[n - 1][n - 1].clone();
    if sign_flip {
        -&det
    } else {
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: i64, nvars: usize) -> MPoly {
        MPoly::constant(Rat::from(v), nvars)
    }

    #[test]
    fn univariate_resultant_of_coprime() {
        // res(p, q) = lc(p)^n · Π q(α_i): res(x−1, x−2) = q(1) = −1.
        let x = MPoly::var(0, 1);
        let p = &x - &c(1, 1);
        let q = &x - &c(2, 1);
        let r = resultant(&p, &q, 0);
        assert_eq!(r.to_constant().unwrap(), Rat::from(-1i64));
        // Symmetry up to (−1)^{mn}.
        assert_eq!(resultant(&q, &p, 0).to_constant().unwrap(), Rat::one());
    }

    #[test]
    fn resultant_zero_iff_common_root() {
        let x = MPoly::var(0, 1);
        let p = &(&x - &c(1, 1)) * &(&x - &c(3, 1));
        let q = &(&x - &c(1, 1)) * &(&x - &c(5, 1));
        assert!(resultant(&p, &q, 0).is_zero());
        let q2 = &(&x - &c(2, 1)) * &(&x - &c(5, 1));
        assert!(!resultant(&p, &q2, 0).is_zero());
    }

    #[test]
    fn discriminant_of_quadratic() {
        // disc(ax² + bx + c) = b² − 4ac: check on 4x² − 20x + 25 → 0 (the
        // paper's double root) and on x² − 2 → 8.
        let x = MPoly::var(0, 1);
        let p = &(&c(4, 1) * &x.pow(2)) + &(&c(-20, 1) * &x).add_c(25);
        assert!(discriminant(&p, 0).is_zero());
        let q = &x.pow(2) - &c(2, 1);
        assert_eq!(discriminant(&q, 0).to_constant().unwrap(), Rat::from(8i64));
    }

    // Small helper: p + constant.
    trait AddC {
        fn add_c(&self, v: i64) -> MPoly;
    }
    impl AddC for MPoly {
        fn add_c(&self, v: i64) -> MPoly {
            self + &c(v, self.nvars())
        }
    }

    #[test]
    fn bivariate_projection_resultant() {
        // p = 4x² − y − 20x + 25 viewed in y has degree 1, so
        // res_y(p, ∂p/∂y) degenerates; instead project the circle:
        // p = x² + y² − 1, disc_y = −4(x² − 1) up to the convention:
        // disc(y² + (x²−1)) = 0² − 4·1·(x²−1) = 4 − 4x².
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let circle = &(&x.pow(2) + &y.pow(2)) - &c(1, 2);
        let d = discriminant(&circle, 1);
        let expect = &c(4, 2) - &(&c(4, 2) * &x.pow(2));
        assert_eq!(d, expect);
    }

    #[test]
    fn resultant_eliminates_variable() {
        // Common solutions of x² + y² − 2 = 0 and x − y = 0 are x = ±1.
        // res_y gives a polynomial in x vanishing exactly there.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&x.pow(2) + &y.pow(2)) - &c(2, 2);
        let q = &x - &y;
        let r = resultant(&p, &q, 1);
        let u = r.to_upoly_in(0).unwrap();
        // 2x² − 2 (up to sign/scale): roots ±1.
        let roots = crate::roots::real_roots_approx(&u, &"1/1000000".parse().unwrap());
        assert_eq!(roots.len(), 2);
        assert!((roots[0].to_f64() + 1.0).abs() < 1e-5);
        assert!((roots[1].to_f64() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn bareiss_matches_known_determinant() {
        // |1 2; 3 4| = −2 over constants.
        let m = vec![vec![c(1, 1), c(2, 1)], vec![c(3, 1), c(4, 1)]];
        assert_eq!(
            bareiss_determinant(m).to_constant().unwrap(),
            Rat::from(-2i64)
        );
        // Singular matrix.
        let s = vec![vec![c(1, 1), c(2, 1)], vec![c(2, 1), c(4, 1)]];
        assert!(bareiss_determinant(s).is_zero());
    }

    #[test]
    fn bareiss_with_polynomial_entries() {
        // det |x 1; 1 x| = x² − 1.
        let x = MPoly::var(0, 1);
        let m = vec![vec![x.clone(), c(1, 1)], vec![c(1, 1), x.clone()]];
        let d = bareiss_determinant(m);
        assert_eq!(d, &x.pow(2) - &c(1, 1));
    }

    #[test]
    fn resultant_agrees_with_eval_specialization() {
        // res commutes with specialization when the leading coefficient does
        // not vanish: spot-check res_y(p, q)(a) == res(p(a,·), q(a,·)).
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&x.pow(2) + &(&y.pow(2) * &x)) + &c(3, 2); // x²+x·y²+3
        let q = &(&y * &x) - &c(1, 2); // x·y − 1
        let r = resultant(&p, &q, 1);
        for a in [1i64, 2, -3] {
            let ar = Rat::from(a);
            let pu = p.substitute(0, &ar).to_upoly_in(1).unwrap();
            let qu = q.substitute(0, &ar).to_upoly_in(1).unwrap();
            let pm = MPoly::from_upoly(&pu, 0, 1);
            let qm = MPoly::from_upoly(&qu, 0, 1);
            let direct = resultant(&pm, &qm, 0).to_constant().unwrap();
            assert_eq!(
                r.substitute(0, &ar).to_constant().unwrap(),
                direct,
                "at x={a}"
            );
        }
    }
}
