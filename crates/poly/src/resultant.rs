//! Resultants and discriminants: modular / evaluation–interpolation kernels
//! with a fraction-free (Bareiss) fallback.
//!
//! These are the workhorses of the CAD projection operator `PROJ` (Appendix
//! I: "Polynomials of PROJ(P_i) are formed by addition, subtraction, and
//! multiplication of the coefficients … with the technique of
//! subresultants"). Three strategies compute the *same* mathematical object
//! — the determinant of the Sylvester matrix — so their outputs are
//! byte-identical, and a per-call dispatcher picks the cheapest one
//! (DESIGN.md §11):
//!
//! * **PRS** ([`Strategy::Prs`]) — Bareiss fraction-free elimination on the
//!   Sylvester matrix over `MPoly`. Fully general (any number of
//!   variables); every intermediate is polynomial, divisions exact. This is
//!   the seed algorithm and the guaranteed fallback.
//! * **Evaluation–interpolation** ([`Strategy::EvalInterp`]) — for inputs
//!   that are (at most) bivariate `{var, y}`: specialize `y` at enough
//!   rational points (Brown's bound `deg_y(res) ≤ deg_y(p)·deg_x(q) +
//!   deg_y(q)·deg_x(p)`), take univariate resultants over `Q` via the
//!   Euclidean product formula, and Newton-interpolate the coefficients.
//! * **Modular CRT** ([`Strategy::Crt`]) — content-extract to primitive
//!   integer polynomials, map into `Z_p` for word-size primes
//!   ([`cdb_num::modp`]), run the whole evaluation–interpolation kernel in
//!   `u64` arithmetic, and Chinese-remainder the integer coefficients back
//!   against a Hadamard-style bound. Bad primes (leading coefficient
//!   vanishing mod `p`) are detected and skipped; exhausting the prime
//!   table falls back to PRS.
//!
//! Strategy decisions are counted in process-global counters
//! ([`strategy_counters`]) that `cdb_qe::QeContext` snapshots the same way
//! it snapshots the PR 3 float-filter stats.

use crate::mpoly::MPoly;
use crate::upoly::UPoly;
use cdb_num::modp::{Crt, ModP, PRIMES, PRIME_BITS};
use cdb_num::{Int, Rat};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

// ───────────────────────── dispatcher instrumentation ─────────────────────

/// Master switch for the fast kernels (default on). Disabled, every call
/// runs the seed Bareiss PRS — used by benches to measure the PR 5 baseline
/// and by differential tests to compare paths.
static FAST_ENABLED: AtomicBool = AtomicBool::new(true);

/// Calls answered by the Bareiss PRS path (including fallbacks).
static STRAT_PRS: AtomicU64 = AtomicU64::new(0);
/// Calls answered by rational evaluation–interpolation.
static STRAT_EVAL: AtomicU64 = AtomicU64::new(0);
/// Calls answered by the modular CRT kernel.
static STRAT_CRT: AtomicU64 = AtomicU64::new(0);
/// Fast-path attempts that had to fall back to PRS (bad primes exhausted,
/// coefficient bound beyond the prime table, …).
static STRAT_FALLBACK: AtomicU64 = AtomicU64::new(0);

/// Are the modular / evaluation–interpolation kernels enabled?
#[must_use]
pub fn fast_enabled() -> bool {
    FAST_ENABLED.load(Ordering::SeqCst)
}

/// Enable or disable the fast kernels process-wide (outputs are
/// byte-identical either way; only speed changes).
pub fn set_fast_enabled(on: bool) {
    FAST_ENABLED.store(on, Ordering::SeqCst);
}

/// Process-global dispatcher counters `(prs, eval_interp, crt, fallbacks)`.
///
/// `prs` counts every call answered by Bareiss (dispatch choice *or*
/// fallback); `fallbacks` additionally counts how many of those began on a
/// fast path that could not finish. Snapshot-and-delta consumers mirror
/// [`cdb_num::fintv::filter_counters`].
#[must_use]
pub fn strategy_counters() -> (u64, u64, u64, u64) {
    (
        STRAT_PRS.load(Ordering::SeqCst),
        STRAT_EVAL.load(Ordering::SeqCst),
        STRAT_CRT.load(Ordering::SeqCst),
        STRAT_FALLBACK.load(Ordering::SeqCst),
    )
}

/// One of the three resultant kernels (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Bareiss fraction-free PRS over `MPoly` (seed algorithm, any arity).
    Prs,
    /// Rational evaluation–interpolation (bivariate-after-projection).
    EvalInterp,
    /// Modular CRT over word-size primes (bivariate, integer content).
    Crt,
}

// ───────────────────────────── public entry points ─────────────────────────

/// Resultant of `p` and `q` with respect to variable `var`.
///
/// Conventions: if either polynomial is zero, the resultant is zero. If both
/// have degree 0 in `var`, the resultant is 1 (empty Sylvester matrix).
#[must_use]
pub fn resultant(p: &MPoly, q: &MPoly, var: usize) -> MPoly {
    assert_eq!(p.nvars(), q.nvars());
    let nvars = p.nvars();
    if p.is_zero() || q.is_zero() {
        return MPoly::zero(nvars);
    }
    let pc = p.as_upoly_in(var);
    let qc = q.as_upoly_in(var);
    let m = pc.len() - 1; // deg p
    let n = qc.len() - 1; // deg q
    if m == 0 && n == 0 {
        return MPoly::constant(Rat::one(), nvars);
    }
    // res(c, q) = c^deg(q) — binary exponentiation via MPoly::pow.
    if let [c] = pc.as_slice() {
        return c.pow(n as u32);
    }
    if let [c] = qc.as_slice() {
        return c.pow(m as u32);
    }
    // Dispatch: the analysis is cheap (degree bookkeeping only).
    if fast_enabled() {
        if let Some(shape) = Bivar::analyze(p, q, var) {
            match shape.choose() {
                Strategy::Crt => {
                    if let Some(r) = crt_resultant(p, q, var, &shape) {
                        STRAT_CRT.fetch_add(1, Ordering::SeqCst);
                        return r;
                    }
                    // Prime table exhausted or non-integer degenerate:
                    // guaranteed fallback to the seed path.
                    STRAT_FALLBACK.fetch_add(1, Ordering::SeqCst);
                }
                Strategy::EvalInterp => {
                    if let Some(r) = eval_interp_resultant(p, q, var, &shape) {
                        STRAT_EVAL.fetch_add(1, Ordering::SeqCst);
                        return r;
                    }
                    STRAT_FALLBACK.fetch_add(1, Ordering::SeqCst);
                }
                Strategy::Prs => {}
            }
        }
    }
    STRAT_PRS.fetch_add(1, Ordering::SeqCst);
    prs_resultant(&pc, &qc, nvars)
}

/// Run one specific kernel, bypassing the dispatcher (differential tests
/// and the E20 bench compare strategies pairwise with this).
///
/// Returns `None` when the strategy does not apply to the input shape
/// (e.g. a fast kernel on a ≥3-variable resultant, or the CRT kernel when
/// the coefficient bound exceeds the prime table). [`Strategy::Prs`] always
/// succeeds. Degenerate base cases (zero/constant arguments) are answered
/// directly, as in [`resultant`], whatever the requested strategy.
#[must_use]
pub fn resultant_with_strategy(
    p: &MPoly,
    q: &MPoly,
    var: usize,
    strategy: Strategy,
) -> Option<MPoly> {
    assert_eq!(p.nvars(), q.nvars());
    let nvars = p.nvars();
    if p.is_zero() || q.is_zero() {
        return Some(MPoly::zero(nvars));
    }
    let pc = p.as_upoly_in(var);
    let qc = q.as_upoly_in(var);
    let m = pc.len() - 1;
    let n = qc.len() - 1;
    if m == 0 && n == 0 {
        return Some(MPoly::constant(Rat::one(), nvars));
    }
    if let [c] = pc.as_slice() {
        return Some(c.pow(n as u32));
    }
    if let [c] = qc.as_slice() {
        return Some(c.pow(m as u32));
    }
    match strategy {
        Strategy::Prs => Some(prs_resultant(&pc, &qc, nvars)),
        Strategy::EvalInterp => {
            let shape = Bivar::analyze(p, q, var)?;
            eval_interp_resultant(p, q, var, &shape)
        }
        Strategy::Crt => {
            let shape = Bivar::analyze(p, q, var)?;
            crt_resultant(p, q, var, &shape)
        }
    }
}

/// Discriminant of `p` with respect to `var`:
/// `disc = (−1)^{d(d−1)/2} · res(p, ∂p/∂var) / lc(p)`.
#[must_use]
pub fn discriminant(p: &MPoly, var: usize) -> MPoly {
    let d = p.degree_in(var);
    assert!(d >= 1, "discriminant needs degree >= 1 in the variable");
    let dp = p.derivative(var);
    let res = resultant(p, &dp, var);
    // cdb-lint: allow(panic) — `d >= 1` is asserted above, so the coefficient
    // list has at least two entries and `pop` cannot fail.
    let lc = p.as_upoly_in(var).pop().expect("nonzero degree");
    let q = res.div_exact(&lc);
    if (u64::from(d) * (u64::from(d) - 1) / 2) % 2 == 1 {
        -&q
    } else {
        q
    }
}

// ──────────────────────────── PRS (seed) kernel ────────────────────────────

/// Seed path: build the Sylvester matrix from the coefficient lists and run
/// Bareiss. `pc`/`qc` are ascending coefficient lists in the eliminated
/// variable, both of degree ≥ 1.
fn prs_resultant(pc: &[MPoly], qc: &[MPoly], nvars: usize) -> MPoly {
    let m = pc.len() - 1;
    let n = qc.len() - 1;
    // Sylvester matrix: n rows of p's coefficients, m rows of q's, each row
    // listing coefficients from the highest power.
    let size = m + n;
    let mut mat = vec![vec![MPoly::zero(nvars); size]; size];
    for (row, mrow) in mat.iter_mut().enumerate().take(n) {
        for (j, c) in pc.iter().rev().enumerate() {
            mrow[row + j] = c.clone();
        }
    }
    for row in 0..m {
        for (j, c) in qc.iter().rev().enumerate() {
            mat[n + row][row + j] = c.clone();
        }
    }
    bareiss_determinant(mat)
}

/// Determinant via Bareiss fraction-free elimination. Consumes the matrix.
/// Entries stay polynomial throughout; all divisions are exact.
#[must_use]
pub fn bareiss_determinant(mut m: Vec<Vec<MPoly>>) -> MPoly {
    let n = m.len();
    assert!(
        n > 0 && m.iter().all(|r| r.len() == n),
        "square matrix required"
    );
    let nvars = m[0][0].nvars(); // cdb-lint: allow(panic) — square + nonempty asserted above
    if n == 1 {
        return m[0][0].clone(); // cdb-lint: allow(panic) — square + nonempty asserted above
    }
    let mut sign_flip = false;
    let mut prev = MPoly::constant(Rat::one(), nvars);
    for k in 0..n - 1 {
        if m[k][k].is_zero() {
            // Pivot search.
            let Some(swap) = (k + 1..n).find(|&r| !m[r][k].is_zero()) else {
                return MPoly::zero(nvars);
            };
            m.swap(k, swap);
            sign_flip = !sign_flip;
        }
        for i in k + 1..n {
            for j in k + 1..n {
                let num = &(&m[k][k] * &m[i][j]) - &(&m[i][k] * &m[k][j]);
                m[i][j] = num.div_exact(&prev);
            }
            m[i][k] = MPoly::zero(nvars);
        }
        prev = m[k][k].clone();
    }
    let det = m[n - 1][n - 1].clone();
    if sign_flip {
        -&det
    } else {
        det
    }
}

// ─────────────────────────── shape analysis / dispatch ─────────────────────

/// Shape of a resultant call the fast kernels can take on: at most one
/// auxiliary variable besides the eliminated one.
struct Bivar {
    /// The surviving variable (`None`: both inputs univariate in `var`).
    yvar: Option<usize>,
    /// `deg_var(p)` — at least 1 when analysis succeeds.
    m: usize,
    /// `deg_var(q)` — at least 1 when analysis succeeds.
    n: usize,
    /// Brown's bound on `deg_y(res)`: `dy(p)·n + dy(q)·m`.
    bound_deg: usize,
    /// Max coefficient bit length across both inputs (numerator or
    /// denominator — the dispatch heuristic only needs an order of
    /// magnitude).
    coeff_bits: u64,
}

impl Bivar {
    /// `Some` iff the call is at most bivariate and both degrees in `var`
    /// are ≥ 1 (base cases were peeled off by the caller).
    fn analyze(p: &MPoly, q: &MPoly, var: usize) -> Option<Bivar> {
        let mut yvar = None;
        for i in 0..p.nvars() {
            if i == var || !(p.uses_var(i) || q.uses_var(i)) {
                continue;
            }
            if yvar.is_some() {
                return None; // two or more auxiliary variables → PRS
            }
            yvar = Some(i);
        }
        let m = p.degree_in(var) as usize;
        let n = q.degree_in(var) as usize;
        debug_assert!(m >= 1 && n >= 1);
        let (dyp, dyq) = match yvar {
            Some(y) => (p.degree_in(y) as usize, q.degree_in(y) as usize),
            None => (0, 0),
        };
        Some(Bivar {
            yvar,
            m,
            n,
            bound_deg: dyp * n + dyq * m,
            coeff_bits: p.max_coeff_bits().max(q.max_coeff_bits()),
        })
    }

    /// Dispatch heuristic (DESIGN.md §11), tuned against forced-strategy
    /// probes: tiny Sylvester matrices stay on PRS (a 2×2 determinant beats
    /// any kernel's setup cost); strictly univariate small-coefficient calls
    /// take tier 1 directly — with no surviving variable the rational path
    /// is a single Euclid, no interpolation, and skips the modular tier's
    /// reduction/reconstruction plumbing; every other bivariate shape goes
    /// modular, where CRT measured fastest across conic through degree-4
    /// and wide-coefficient workloads (rational evaluation–interpolation
    /// loses to it everywhere interpolation is actually needed, and loses
    /// to PRS outright once coefficients get huge). The CRT kernel itself
    /// reports inapplicability (bound beyond the prime table), upon which
    /// the caller falls back to PRS.
    fn choose(&self) -> Strategy {
        if self.m + self.n <= 2 {
            return Strategy::Prs; // 2×2 determinant: nothing to save
        }
        if self.yvar.is_none() && self.coeff_bits <= 20 {
            return Strategy::EvalInterp;
        }
        Strategy::Crt
    }
}

// ─────────────────── tier 1: evaluation–interpolation over Q ───────────────

/// Univariate resultant over `Q` via the Euclidean product formula:
/// `res(A, B) = (−1)^{deg A · deg B} · lc(B)^{deg A − deg R} · res(B, R)`
/// with `R = A rem B`, terminating at `res(A, c) = c^{deg A}`.
fn upoly_res_rat(a: &UPoly, b: &UPoly) -> Rat {
    if a.is_zero() || b.is_zero() {
        return Rat::zero();
    }
    let mut a = a.clone();
    let mut b = b.clone();
    let mut acc = Rat::one();
    let mut negate = false;
    loop {
        let da = a.deg();
        let db = b.deg();
        if db == 0 {
            let base = &acc * &b.coeff(0).pow(da as i32);
            return if negate { -&base } else { base };
        }
        if da < db {
            if da * db % 2 == 1 {
                negate = !negate;
            }
            std::mem::swap(&mut a, &mut b);
            continue;
        }
        let (_, r) = a.divrem(&b);
        if r.is_zero() {
            return Rat::zero(); // common factor of positive degree
        }
        if da * db % 2 == 1 {
            negate = !negate;
        }
        acc = &acc * &b.leading().pow((da - r.deg()) as i32);
        a = b;
        b = r;
    }
}

/// Newton interpolation over `Q`: the unique polynomial of degree
/// `< pts.len()` through `(pts[i], vals[i])`, as a dense [`UPoly`].
fn interpolate_rat(pts: &[Rat], vals: &[Rat]) -> UPoly {
    let n = pts.len();
    debug_assert!(n >= 1 && vals.len() == n);
    // Divided differences, in place.
    let mut dd = vals.to_vec();
    for j in 1..n {
        for i in (j..n).rev() {
            let denom = &pts[i] - &pts[i - j];
            dd[i] = &(&dd[i] - &dd[i - 1]) / &denom;
        }
    }
    // Horner expansion of the Newton form.
    let mut poly = UPoly::constant(dd[n - 1].clone());
    for i in (0..n - 1).rev() {
        // poly ← poly·(x − pts[i]) + dd[i]
        let shifted = &poly * &UPoly::from_coeffs(vec![-pts[i].clone(), Rat::one()]);
        poly = &shifted + &UPoly::constant(dd[i].clone());
    }
    poly
}

/// Tier 1: rational evaluation–interpolation. Specialize the auxiliary
/// variable at integer points where neither leading coefficient vanishes,
/// take univariate resultants over `Q`, and interpolate. Exact: the true
/// resultant has degree ≤ `bound_deg`, and specialization commutes with the
/// resultant whenever the leading coefficients survive, so agreeing at
/// `bound_deg + 1` points pins it down.
fn eval_interp_resultant(p: &MPoly, q: &MPoly, var: usize, shape: &Bivar) -> Option<MPoly> {
    let nvars = p.nvars();
    let Some(y) = shape.yvar else {
        // Both inputs univariate in `var`: one resultant, no interpolation.
        let pu = p.to_upoly_in(var)?;
        let qu = q.to_upoly_in(var)?;
        return Some(MPoly::constant(upoly_res_rat(&pu, &qu), nvars));
    };
    // Leading coefficients as univariate polynomials in y.
    let lcp = p.as_upoly_in(var).pop()?.to_upoly_in(y)?;
    let lcq = q.as_upoly_in(var).pop()?.to_upoly_in(y)?;
    let needed = shape.bound_deg + 1;
    let mut pts: Vec<Rat> = Vec::with_capacity(needed);
    let mut vals: Vec<Rat> = Vec::with_capacity(needed);
    // Points 0, 1, −1, 2, −2, …; at most dy(p)+dy(q) of them are roots of a
    // leading coefficient, so the stream always yields enough good points.
    let mut k: i64 = 0;
    while pts.len() < needed {
        let t = Rat::from(k);
        k = if k > 0 { -k } else { -k + 1 };
        if lcp.eval(&t).is_zero() || lcq.eval(&t).is_zero() {
            continue;
        }
        let pu = p.substitute(y, &t).to_upoly_in(var)?;
        let qu = q.substitute(y, &t).to_upoly_in(var)?;
        vals.push(upoly_res_rat(&pu, &qu));
        pts.push(t);
    }
    let interp = interpolate_rat(&pts, &vals);
    Some(MPoly::from_upoly(&interp, y, nvars))
}

// ───────────────────── tier 2: modular CRT over word primes ────────────────

/// Trim trailing zeros of a dense `Z_p` coefficient vector.
fn trim_modp(v: &mut Vec<u64>) {
    while v.last() == Some(&0) {
        v.pop();
    }
}

/// Pseudo-remainder of `a` by `b` in `Z_p[x]` (dense ascending
/// coefficients, `b` trimmed and nonconstant): `lc(b)^{deg a − deg b + 1} ·
/// a mod b`, computed without any inversion. Result is trimmed.
fn prem_modp(fp: ModP, a: &[u64], b: &[u64]) -> Vec<u64> {
    let db = b.len() - 1;
    let lb = b[db];
    let mut r = a.to_vec();
    for k in (db..r.len()).rev() {
        // r ← lb · r − r[k] · x^{k−db} · b: multiply unconditionally (even
        // for a zero pivot) so the pseudo-remainder is exactly
        // lb^{da−db+1} · (a mod b) with a deterministic exponent.
        let c = r[k];
        for rc in r.iter_mut().take(k) {
            *rc = fp.mul(*rc, lb);
        }
        for (j, &bc) in b.iter().enumerate().take(db) {
            r[k - db + j] = fp.sub(r[k - db + j], fp.mul(c, bc));
        }
        r[k] = 0; // lb·r[k] − r[k]·lc(b) cancels exactly
    }
    r.truncate(db);
    trim_modp(&mut r);
    r
}

/// Univariate resultant in `Z_p[x]` as an uninverted fraction
/// `(num, den)` with `den ≢ 0`: the Euclidean recurrence of
/// [`upoly_res_rat`] run on *pseudo*-remainders, so the whole chain costs
/// zero inversions — each step `R = lc(b)^e · (a mod b)` contributes
/// `lc(b)^{da − dr}` to the numerator and `lc(b)^{e·db}` to the denominator
/// (from `res(b, c·r) = c^{deg b} · res(b, r)`). Callers batch-invert the
/// denominators across evaluation points (Montgomery's trick), one Fermat
/// exponentiation per batch.
fn upoly_res_modp_frac(fp: ModP, mut a: Vec<u64>, mut b: Vec<u64>) -> (u64, u64) {
    trim_modp(&mut a);
    trim_modp(&mut b);
    if a.is_empty() || b.is_empty() {
        return (0, 1);
    }
    let mut num = 1u64;
    let mut den = 1u64;
    let mut negate = false;
    loop {
        let da = a.len() - 1;
        let db = b.len() - 1;
        if db == 0 {
            // cdb-lint: allow(panic) — db == 0 means b has exactly one entry
            num = fp.mul(num, fp.pow(b[0], da as u64));
            return (if negate { fp.neg(num) } else { num }, den);
        }
        if da < db {
            if da * db % 2 == 1 {
                negate = !negate;
            }
            std::mem::swap(&mut a, &mut b);
            continue;
        }
        let r = prem_modp(fp, &a, &b);
        if r.is_empty() {
            return (0, 1);
        }
        if da * db % 2 == 1 {
            negate = !negate;
        }
        let lb = b[db];
        num = fp.mul(num, fp.pow(lb, (da - (r.len() - 1)) as u64));
        den = fp.mul(den, fp.pow(lb, ((da - db + 1) * db) as u64));
        a = b;
        b = r;
    }
}

/// Univariate resultant in `Z_p[x]`: the fraction form resolved with a
/// single inversion.
fn upoly_res_modp(fp: ModP, a: Vec<u64>, b: Vec<u64>) -> u64 {
    let (num, den) = upoly_res_modp_frac(fp, a, b);
    // den is a product of leading coefficients, never ≡ 0.
    fp.mul(num, fp.pow(den, fp.modulus() - 2))
}

/// Newton interpolation in `Z_p`: dense coefficients of the unique
/// polynomial of degree `< pts.len()` through `(pts[i], vals[i])`. All
/// divided-difference denominators are inverted in one batch (a single
/// Fermat exponentiation for the whole table).
fn interpolate_modp(fp: ModP, pts: &[u64], vals: &[u64]) -> Vec<u64> {
    let n = pts.len();
    debug_assert!(n >= 1 && vals.len() == n);
    // Denominators pts[i] − pts[i−j], in the exact order the divided-
    // difference loop consumes them. Points are distinct field elements,
    // so every difference is nonzero and the batch inverse is total.
    let mut denoms = Vec::with_capacity(n * (n - 1) / 2);
    for j in 1..n {
        for i in (j..n).rev() {
            denoms.push(fp.sub(pts[i], pts[i - j]));
        }
    }
    let invs = fp
        .batch_inv(&denoms)
        .expect("interpolation points are distinct"); // cdb-lint: allow(panic) — differences of distinct reduced points are nonzero, so the batch inverse is total
    let mut next_inv = invs.iter();
    let mut dd = vals.to_vec();
    for j in 1..n {
        for i in (j..n).rev() {
            // cdb-lint: allow(panic) — invs has exactly one entry per denominator pushed by the identical loop above
            let inv = *next_inv.next().expect("one inverse per denominator");
            dd[i] = fp.mul(fp.sub(dd[i], dd[i - 1]), inv);
        }
    }
    let mut coeffs = vec![0u64; n];
    coeffs[0] = dd[n - 1]; // cdb-lint: allow(panic) — n >= 1 is debug-asserted above; both vectors have length n
    for (deg, i) in (0..n - 1).rev().enumerate() {
        // coeffs ← coeffs·(x − pts[i]) + dd[i]
        let neg_t = fp.neg(pts[i]);
        for k in (0..=deg).rev() {
            let c = coeffs[k];
            coeffs[k + 1] = fp.add(coeffs[k + 1], c);
            coeffs[k] = fp.mul(c, neg_t);
        }
        // The shift above moved every term up; rebuild the constant slot.
        coeffs[0] = fp.add(coeffs[0], dd[i]); // cdb-lint: allow(panic) — coeffs has length n >= 1 by construction
    }
    coeffs
}

/// A primitive-integer view of one input: `poly = factor · Σ grid[i][j] ·
/// var^i · y^j` with `grid` holding `Int` coefficients of content 1.
struct IntGrid {
    /// `grid[i][j]` = integer coefficient of `var^i y^j`; rows `0..=deg_var`.
    grid: Vec<Vec<Int>>,
    /// Rational content: original = `factor · grid`.
    factor: Rat,
    /// Max bit length over the grid.
    coeff_bits: u64,
}

impl IntGrid {
    /// Content-extract `poly` (nonzero) into a primitive integer grid.
    fn build(poly: &MPoly, var: usize, yvar: Option<usize>) -> Option<IntGrid> {
        // Dense rational grid.
        let rows = poly.as_upoly_in(var);
        let mut rat_grid: Vec<Vec<Rat>> = Vec::with_capacity(rows.len());
        for row in &rows {
            match yvar {
                Some(y) => {
                    let ycoeffs = row.as_upoly_in(y);
                    let mut dense = Vec::with_capacity(ycoeffs.len());
                    for c in &ycoeffs {
                        dense.push(c.to_constant()?);
                    }
                    rat_grid.push(dense);
                }
                None => rat_grid.push(vec![row.to_constant()?]),
            }
        }
        // lcm of denominators, then gcd of the scaled numerators.
        let mut lcm = Int::one();
        for c in rat_grid.iter().flatten() {
            let g = lcm.gcd(c.denom());
            lcm = &lcm.div_exact(&g) * c.denom();
        }
        let mut ints: Vec<Vec<Int>> = Vec::with_capacity(rat_grid.len());
        let mut gcd = Int::zero();
        for row in &rat_grid {
            let mut irow = Vec::with_capacity(row.len());
            for c in row {
                let v = &(c.numer() * &lcm).div_exact(c.denom());
                gcd = gcd.gcd(v);
                irow.push(v.clone());
            }
            ints.push(irow);
        }
        debug_assert!(!gcd.is_zero(), "nonzero polynomial has nonzero content");
        let mut coeff_bits = 0u64;
        for row in &mut ints {
            for c in row.iter_mut() {
                *c = c.div_exact(&gcd);
                coeff_bits = coeff_bits.max(c.bit_length());
            }
        }
        Some(IntGrid {
            grid: ints,
            factor: Rat::new(gcd, lcm),
            coeff_bits,
        })
    }

    /// Reduce the grid into `Z_p`. Returns `None` for a *bad prime*: one
    /// where the leading `var`-coefficient row vanishes identically mod `p`
    /// (the Sylvester determinant of the reduction would have lost rows).
    fn reduce(&self, fp: ModP) -> Option<Vec<Vec<u64>>> {
        let reduced: Vec<Vec<u64>> = self
            .grid
            .iter()
            .map(|row| row.iter().map(|c| fp.from_int(c)).collect())
            .collect();
        match reduced.last() {
            Some(top) if top.iter().any(|&c| c != 0) => Some(reduced),
            _ => None,
        }
    }
}

/// Ceiling of `log2` of the Hadamard-style coefficient bound for
/// `res_var(P, Q)` with primitive integer grids `P`, `Q`: the determinant
/// of the `(m+n)²` Sylvester matrix expands into at most `(m+n)!` products
/// of `m+n` entries, each entry a `y`-polynomial with ≤ `d+1` terms of at
/// most `hp`/`hq` bits, so every coefficient is bounded by
/// `(m+n)! · (d+1)^{m+n−1} · Hp^n · Hq^m`.
fn crt_bound_bits(m: usize, n: usize, ydeg: usize, hp: u64, hq: u64) -> u64 {
    let s = (m + n) as u64;
    // log2(s!) ≤ Σ bit_length(i): an overestimate is harmless (one extra
    // prime at worst).
    let fact_bits: u64 = (2..=s).map(|i| 64 - u64::from(i.leading_zeros())).sum();
    let d_bits = 64 - u64::from(((ydeg + 1) as u64).leading_zeros());
    fact_bits + (s - 1) * d_bits + (n as u64) * hp + (m as u64) * hq
}

/// Tier 2: modular CRT. Returns `None` (→ caller falls back) when the
/// coefficient bound exceeds the prime table's capacity or too many primes
/// are bad. Exact by construction: the CRT modulus is kept strictly above
/// twice the Hadamard bound, so the symmetric representatives *are* the
/// integer coefficients of `res(P, Q)`.
fn crt_resultant(p: &MPoly, q: &MPoly, var: usize, shape: &Bivar) -> Option<MPoly> {
    let nvars = p.nvars();
    let pg = IntGrid::build(p, var, shape.yvar)?;
    let qg = IntGrid::build(q, var, shape.yvar)?;
    let ydeg = pg
        .grid
        .iter()
        .chain(qg.grid.iter())
        .map(|row| row.len().saturating_sub(1))
        .max()
        .unwrap_or(0);
    // +2: one bit of sign headroom for the symmetric range, one of slack.
    let bound_bits = crt_bound_bits(shape.m, shape.n, ydeg, pg.coeff_bits, qg.coeff_bits) + 2;
    let primes_needed = (bound_bits / PRIME_BITS) as usize + 1;
    if primes_needed > PRIMES.len() {
        return None;
    }
    let ncoeffs = shape.bound_deg + 1;
    let mut crts = vec![Crt::new(); ncoeffs];
    let mut good = 0usize;
    for &prime in PRIMES.iter() {
        let fp = ModP::new(prime);
        // Bad-prime detection: either leading coefficient row ≡ 0 mod p
        // drops the `var`-degree of the reduction.
        let (Some(pm), Some(qm)) = (pg.reduce(fp), qg.reduce(fp)) else {
            continue;
        };
        let Some(mut res_mod) = bivar_res_modp(fp, &pm, &qm, ncoeffs) else {
            continue; // unlucky prime for point selection (practically unreachable)
        };
        // The accumulators advance in lockstep over the same prime
        // sequence, so the Garner inverse is shared across coefficients.
        res_mod.resize(ncoeffs, 0);
        Crt::push_batch(&mut crts, &res_mod, prime);
        good += 1;
        if good == primes_needed {
            break;
        }
    }
    if good < primes_needed {
        return None; // prime table exhausted by bad primes
    }
    // Symmetric reconstruction, then undo the content extraction:
    // res(p, q) = factor_p^n · factor_q^m · res(P, Q).
    let coeffs: Vec<Rat> = crts.iter().map(|c| Rat::from(c.symmetric())).collect();
    let scale = &pg.factor.pow(shape.n as i32) * &qg.factor.pow(shape.m as i32);
    let result = match shape.yvar {
        Some(y) => MPoly::from_upoly(&UPoly::from_coeffs(coeffs), y, nvars),
        None => MPoly::constant(coeffs.first().cloned().unwrap_or_else(Rat::zero), nvars),
    };
    Some(result.scale(&scale))
}

/// Bivariate resultant in `Z_p` by evaluation–interpolation: specialize `y`
/// at `ncoeffs` points where neither leading coefficient vanishes, run the
/// `u64` Euclidean resultant per point, and Newton-interpolate. The grids
/// have a nonzero leading row mod `p` (checked by the caller), which keeps
/// the count of unusable points below `deg_y(lc_p) + deg_y(lc_q) < p`.
fn bivar_res_modp(fp: ModP, pm: &[Vec<u64>], qm: &[Vec<u64>], ncoeffs: usize) -> Option<Vec<u64>> {
    let eval_row = |row: &[u64], a: u64| -> u64 {
        row.iter()
            .rev()
            .fold(0u64, |acc, &c| fp.add(fp.mul(acc, a), c))
    };
    if ncoeffs == 1 && pm.iter().chain(qm.iter()).all(|row| row.len() <= 1) {
        // Univariate inputs: a single resultant, no interpolation.
        let a: Vec<u64> = pm
            .iter()
            .map(|row| row.first().copied().unwrap_or(0))
            .collect();
        let b: Vec<u64> = qm
            .iter()
            .map(|row| row.first().copied().unwrap_or(0))
            .collect();
        return Some(vec![upoly_res_modp(fp, a, b)]);
    }
    let lcp = &pm[pm.len() - 1];
    let lcq = &qm[qm.len() - 1];
    let mut pts = Vec::with_capacity(ncoeffs);
    let mut nums = Vec::with_capacity(ncoeffs);
    let mut dens = Vec::with_capacity(ncoeffs);
    let max_bad = lcp.len() + lcq.len(); // > #roots of either leading coeff
    let mut a = 0u64;
    while pts.len() < ncoeffs {
        if a as usize > ncoeffs + max_bad + 4 || a >= fp.modulus() {
            return None; // cannot happen with 62-bit primes; defensive
        }
        let point = a;
        a += 1;
        if eval_row(lcp, point) == 0 || eval_row(lcq, point) == 0 {
            continue;
        }
        let pa: Vec<u64> = pm.iter().map(|row| eval_row(row, point)).collect();
        let qa: Vec<u64> = qm.iter().map(|row| eval_row(row, point)).collect();
        let (num, den) = upoly_res_modp_frac(fp, pa, qa);
        nums.push(num);
        dens.push(den);
        pts.push(point);
    }
    // One Fermat exponentiation resolves every point's denominator.
    let invs = fp.batch_inv(&dens)?; // dens are products of nonzero lcs
    let vals: Vec<u64> = nums
        .iter()
        .zip(&invs)
        .map(|(&num, &inv)| fp.mul(num, inv))
        .collect();
    Some(interpolate_modp(fp, &pts, &vals))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: i64, nvars: usize) -> MPoly {
        MPoly::constant(Rat::from(v), nvars)
    }

    #[test]
    fn univariate_resultant_of_coprime() {
        // res(p, q) = lc(p)^n · Π q(α_i): res(x−1, x−2) = q(1) = −1.
        let x = MPoly::var(0, 1);
        let p = &x - &c(1, 1);
        let q = &x - &c(2, 1);
        let r = resultant(&p, &q, 0);
        assert_eq!(r.to_constant().unwrap(), Rat::from(-1i64));
        // Symmetry up to (−1)^{mn}.
        assert_eq!(resultant(&q, &p, 0).to_constant().unwrap(), Rat::one());
    }

    #[test]
    fn resultant_zero_iff_common_root() {
        let x = MPoly::var(0, 1);
        let p = &(&x - &c(1, 1)) * &(&x - &c(3, 1));
        let q = &(&x - &c(1, 1)) * &(&x - &c(5, 1));
        assert!(resultant(&p, &q, 0).is_zero());
        let q2 = &(&x - &c(2, 1)) * &(&x - &c(5, 1));
        assert!(!resultant(&p, &q2, 0).is_zero());
    }

    #[test]
    fn discriminant_of_quadratic() {
        // disc(ax² + bx + c) = b² − 4ac: check on 4x² − 20x + 25 → 0 (the
        // paper's double root) and on x² − 2 → 8.
        let x = MPoly::var(0, 1);
        let p = &(&c(4, 1) * &x.pow(2)) + &(&c(-20, 1) * &x).add_c(25);
        assert!(discriminant(&p, 0).is_zero());
        let q = &x.pow(2) - &c(2, 1);
        assert_eq!(discriminant(&q, 0).to_constant().unwrap(), Rat::from(8i64));
    }

    // Small helper: p + constant.
    trait AddC {
        fn add_c(&self, v: i64) -> MPoly;
    }
    impl AddC for MPoly {
        fn add_c(&self, v: i64) -> MPoly {
            self + &c(v, self.nvars())
        }
    }

    #[test]
    fn bivariate_projection_resultant() {
        // p = 4x² − y − 20x + 25 viewed in y has degree 1, so
        // res_y(p, ∂p/∂y) degenerates; instead project the circle:
        // p = x² + y² − 1, disc_y = −4(x² − 1) up to the convention:
        // disc(y² + (x²−1)) = 0² − 4·1·(x²−1) = 4 − 4x².
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let circle = &(&x.pow(2) + &y.pow(2)) - &c(1, 2);
        let d = discriminant(&circle, 1);
        let expect = &c(4, 2) - &(&c(4, 2) * &x.pow(2));
        assert_eq!(d, expect);
    }

    #[test]
    fn resultant_eliminates_variable() {
        // Common solutions of x² + y² − 2 = 0 and x − y = 0 are x = ±1.
        // res_y gives a polynomial in x vanishing exactly there.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&x.pow(2) + &y.pow(2)) - &c(2, 2);
        let q = &x - &y;
        let r = resultant(&p, &q, 1);
        let u = r.to_upoly_in(0).unwrap();
        // 2x² − 2 (up to sign/scale): roots ±1.
        let roots = crate::roots::real_roots_approx(&u, &"1/1000000".parse().unwrap());
        assert_eq!(roots.len(), 2);
        assert!((roots[0].to_f64() + 1.0).abs() < 1e-5);
        assert!((roots[1].to_f64() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn bareiss_matches_known_determinant() {
        // |1 2; 3 4| = −2 over constants.
        let m = vec![vec![c(1, 1), c(2, 1)], vec![c(3, 1), c(4, 1)]];
        assert_eq!(
            bareiss_determinant(m).to_constant().unwrap(),
            Rat::from(-2i64)
        );
        // Singular matrix.
        let s = vec![vec![c(1, 1), c(2, 1)], vec![c(2, 1), c(4, 1)]];
        assert!(bareiss_determinant(s).is_zero());
    }

    #[test]
    fn bareiss_with_polynomial_entries() {
        // det |x 1; 1 x| = x² − 1.
        let x = MPoly::var(0, 1);
        let m = vec![vec![x.clone(), c(1, 1)], vec![c(1, 1), x.clone()]];
        let d = bareiss_determinant(m);
        assert_eq!(d, &x.pow(2) - &c(1, 1));
    }

    #[test]
    fn resultant_agrees_with_eval_specialization() {
        // res commutes with specialization when the leading coefficient does
        // not vanish: spot-check res_y(p, q)(a) == res(p(a,·), q(a,·)).
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&x.pow(2) + &(&y.pow(2) * &x)) + &c(3, 2); // x²+x·y²+3
        let q = &(&y * &x) - &c(1, 2); // x·y − 1
        let r = resultant(&p, &q, 1);
        for a in [1i64, 2, -3] {
            let ar = Rat::from(a);
            let pu = p.substitute(0, &ar).to_upoly_in(1).unwrap();
            let qu = q.substitute(0, &ar).to_upoly_in(1).unwrap();
            let pm = MPoly::from_upoly(&pu, 0, 1);
            let qm = MPoly::from_upoly(&qu, 0, 1);
            let direct = resultant(&pm, &qm, 0).to_constant().unwrap();
            assert_eq!(
                r.substitute(0, &ar).to_constant().unwrap(),
                direct,
                "at x={a}"
            );
        }
    }

    // ── fast-kernel specific tests ──────────────────────────────────────

    /// Deterministic bivariate polynomial with pseudo-random coefficients.
    fn dense_bivar(seed: &mut u64, dx: u32, dy: u32, bits: u32) -> MPoly {
        let mut terms = Vec::new();
        for i in 0..=dx {
            for j in 0..=dy {
                *seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let mask = (1i64 << bits) - 1;
                let v = ((*seed >> 17) as i64 & mask) - (mask / 2);
                if v != 0 {
                    terms.push((vec![i, j], Rat::from(v)));
                }
            }
        }
        // Guarantee full degree so the Sylvester shape is as requested.
        terms.push((vec![dx, dy], Rat::one()));
        MPoly::from_terms(2, terms)
    }

    #[test]
    fn all_strategies_agree_on_random_bivariate() {
        let mut seed = 7u64;
        for (dx, dy, bits) in [(2, 2, 4), (3, 2, 8), (4, 4, 10), (5, 3, 16)] {
            let p = dense_bivar(&mut seed, dx, dy, bits);
            let q = dense_bivar(&mut seed, dx.max(1), dy, bits);
            for var in [0usize, 1] {
                let prs = resultant_with_strategy(&p, &q, var, Strategy::Prs).unwrap();
                let ev = resultant_with_strategy(&p, &q, var, Strategy::EvalInterp).unwrap();
                let crt = resultant_with_strategy(&p, &q, var, Strategy::Crt).unwrap();
                assert_eq!(
                    prs, ev,
                    "eval-interp vs PRS at ({dx},{dy},{bits}), var {var}"
                );
                assert_eq!(prs, crt, "CRT vs PRS at ({dx},{dy},{bits}), var {var}");
                assert_eq!(prs.to_string(), ev.to_string());
                assert_eq!(prs.to_string(), crt.to_string());
            }
        }
    }

    #[test]
    fn strategies_agree_on_rational_coefficients() {
        // Denominators exercise the content-extraction path of the CRT
        // kernel and the rational arithmetic of eval-interp.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let half = MPoly::constant(Rat::from_ints(1, 2), 2);
        let third = MPoly::constant(Rat::from_ints(-2, 3), 2);
        let p = &(&half * &x.pow(3)) + &(&(&y.pow(2) * &x) + &third);
        let q = &(&third * &(&x.pow(2) * &y)) - &(&half + &x);
        let prs = resultant_with_strategy(&p, &q, 0, Strategy::Prs).unwrap();
        let ev = resultant_with_strategy(&p, &q, 0, Strategy::EvalInterp).unwrap();
        let crt = resultant_with_strategy(&p, &q, 0, Strategy::Crt).unwrap();
        assert_eq!(prs, ev);
        assert_eq!(prs, crt);
    }

    #[test]
    fn strategies_agree_on_shared_factor_zero_resultant() {
        // p and q share (x + y): all kernels must return exactly zero.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let shared = &x + &y;
        let p = &shared * &(&x.pow(2) - &y);
        let q = &shared * &(&(&x * &y) + &c(2, 2));
        for strat in [Strategy::Prs, Strategy::EvalInterp, Strategy::Crt] {
            let r = resultant_with_strategy(&p, &q, 0, strat).unwrap();
            assert!(r.is_zero(), "{strat:?} must detect the common factor");
        }
    }

    #[test]
    fn fast_kernels_decline_three_variable_inputs() {
        let x = MPoly::var(0, 3);
        let y = MPoly::var(1, 3);
        let z = MPoly::var(2, 3);
        let p = &(&x.pow(2) + &(&y * &z)) - &c(1, 3);
        let q = &(&x * &y) + &z;
        assert!(resultant_with_strategy(&p, &q, 0, Strategy::EvalInterp).is_none());
        assert!(resultant_with_strategy(&p, &q, 0, Strategy::Crt).is_none());
        // The dispatcher still answers (via PRS) and matches the direct path.
        let via_dispatch = resultant(&p, &q, 0);
        let via_prs = resultant_with_strategy(&p, &q, 0, Strategy::Prs).unwrap();
        assert_eq!(via_dispatch, via_prs);
    }

    #[test]
    fn crt_handles_large_coefficients() {
        // 120-bit coefficients force a multi-prime CRT reconstruction.
        let big: Rat = Rat::from(&(&Int::pow2(120) + &Int::from(7i64)) * &Int::one());
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let bigc = MPoly::constant(big, 2);
        let p = &(&x.pow(3) * &bigc) + &(&y.pow(2) - &c(5, 2));
        let q = &(&x.pow(2) - &(&bigc * &y)) + &c(1, 2);
        let prs = resultant_with_strategy(&p, &q, 0, Strategy::Prs).unwrap();
        let crt = resultant_with_strategy(&p, &q, 0, Strategy::Crt).unwrap();
        assert_eq!(prs, crt);
        assert_eq!(prs.to_string(), crt.to_string());
    }

    #[test]
    fn dispatcher_counters_advance() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&x.pow(2) + &y.pow(2)) - &c(1, 2);
        let q = &(&x * &y) - &c(1, 2);
        let before = strategy_counters();
        let _ = resultant(&p, &q, 0);
        let after = strategy_counters();
        let total_before = before.0 + before.1 + before.2;
        let total_after = after.0 + after.1 + after.2;
        assert!(total_after > total_before, "some strategy must be counted");
    }

    #[test]
    fn toggle_forces_prs_and_output_is_unchanged() {
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&x.pow(3) + &(&y.pow(2) * &x)) - &c(4, 2);
        let q = &(&x.pow(2) * &y) + &(&x - &c(2, 2));
        let fast = resultant(&p, &q, 0);
        set_fast_enabled(false);
        let slow = resultant(&p, &q, 0);
        set_fast_enabled(true);
        assert_eq!(fast, slow);
        assert_eq!(fast.to_string(), slow.to_string());
    }

    #[test]
    fn univariate_resultants_through_fast_kernels() {
        // Strictly univariate inputs (yvar = None) through both kernels.
        let x = MPoly::var(0, 1);
        let p = &(&x.pow(4) - &(&c(3, 1) * &x.pow(2))) + &c(2, 1);
        let q = &(&c(2, 1) * &x.pow(3)) - &(&x + &c(5, 1));
        let prs = resultant_with_strategy(&p, &q, 0, Strategy::Prs).unwrap();
        let ev = resultant_with_strategy(&p, &q, 0, Strategy::EvalInterp).unwrap();
        let crt = resultant_with_strategy(&p, &q, 0, Strategy::Crt).unwrap();
        assert_eq!(prs, ev);
        assert_eq!(prs, crt);
    }

    #[test]
    fn vanishing_leading_coefficient_points_are_skipped() {
        // lc_x(p) = y: evaluation at y = 0 would drop the degree; the
        // kernels must skip that point and still agree with PRS.
        let x = MPoly::var(0, 2);
        let y = MPoly::var(1, 2);
        let p = &(&(&y * &x.pow(2)) + &x) + &c(1, 2); // y·x² + x + 1
        let q = &(&x.pow(2) + &y.pow(2)) - &c(3, 2);
        let prs = resultant_with_strategy(&p, &q, 0, Strategy::Prs).unwrap();
        let ev = resultant_with_strategy(&p, &q, 0, Strategy::EvalInterp).unwrap();
        let crt = resultant_with_strategy(&p, &q, 0, Strategy::Crt).unwrap();
        assert_eq!(prs, ev);
        assert_eq!(prs, crt);
    }
}
