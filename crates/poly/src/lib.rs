#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! `cdb-poly`: polynomial algebra and real root machinery for the constraint
//! database.
//!
//! This crate supplies everything "Appendix I: Real Algebraic Geometry" of
//! the paper relies on:
//!
//! * dense univariate polynomials over `Q` ([`UPoly`]) with GCD, squarefree
//!   decomposition, Sturm sequences and Cauchy root bounds;
//! * real-root **isolation** and ε-**refinement** ([`roots`]) — the
//!   NUMERICAL EVALUATION step of the paper's query pipeline (Theorem 3.2);
//! * real algebraic numbers ([`RealAlg`]) as (squarefree minimal polynomial,
//!   isolating interval) pairs, with exact sign determination `sign(q(α))`
//!   used for CAD stack construction;
//! * sparse multivariate polynomials ([`MPoly`]) with exact division, and
//!   fraction-free (Bareiss) resultants/discriminants used by the CAD
//!   projection operator `PROJ` ([`resultant`]);
//! * a hash-consing **interner** ([`intern`]) behind which canonical
//!   polynomials are stored once, so handles clone by pointer bump and
//!   hash/compare in O(1) (DESIGN.md §10), with a packed monomial
//!   representation ([`mono::Mono`]) and a retained seed reference
//!   implementation ([`refimpl`]) for differential testing.

pub mod algebraic;
pub mod intern;
pub mod mgcd;
pub mod mono;
pub mod mpoly;
pub mod refimpl;
pub mod resultant;
pub mod roots;
pub mod sturm;
pub mod upoly;

pub use algebraic::RealAlg;
pub use mgcd::{mgcd, squarefree_part};
pub use mono::Mono;
pub use mpoly::{MPoly, PolyId};
pub use roots::{isolate_real_roots, refine_to_width, RootLocation};
pub use upoly::UPoly;
