//! Real algebraic numbers and arithmetic in `Q(α)`.
//!
//! CAD cells at "section" level have real algebraic sample coordinates
//! (Appendix I: "An algebraic number is defined by its minimal polynomial
//! `p_α` and an isolating interval for the particular root"). This module
//! provides:
//!
//! * [`RealAlg`] — a root of a squarefree polynomial with an isolating
//!   interval, refinable on demand, with **exact** sign determination
//!   `sign(q(α))` for rational-coefficient `q` (gcd test for zero, interval
//!   refinement otherwise — never a guess);
//! * [`NfElem`]/[`AlgUPoly`] — arithmetic in the number field `Q(α)` and
//!   Sturm-based exact real-root isolation for polynomials with coefficients
//!   in `Q(α)`, which is what lifting a CAD stack over a section cell needs.

use crate::roots::{isolate_real_roots, RootLocation};
use crate::sturm::SturmChain;
use crate::upoly::UPoly;
use cdb_num::{fintv, FIntv, Rat, RatInterval, Sign};
use std::cmp::Ordering;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Filtered sign of `q` over an exact rational interval: evaluate over the
/// outward-rounded float hull first and certify with the exact
/// `eval_interval` only on straddle. Since the float enclosure contains the
/// exact interval evaluation, a definite float sign implies the exact
/// interval sign is the same — so callers take byte-identical branches with
/// the filter on or off. `None` means even the exact evaluation is
/// indefinite (the caller must refine).
fn filtered_interval_sign(q: &UPoly, iv: &RatInterval) -> Option<Sign> {
    if fintv::filter_enabled() {
        if let Some(s) = q
            .eval_fintv(&FIntv::from_rat_endpoints(iv.lo(), iv.hi()))
            .sign()
        {
            fintv::note_filter_hit();
            return Some(s);
        }
        fintv::note_filter_fallback();
    }
    q.eval_interval(iv).sign()
}

/// A real algebraic number: the unique root of `poly` (squarefree) inside
/// `interval` (open, endpoints not roots), or an exact rational.
///
/// The isolating interval is held behind a shared cell: refinement done by
/// one observer (a sign test, a comparison) persists and benefits every
/// clone — crucial for CAD performance, where the same sample coordinate
/// is probed by many polynomials.
#[derive(Clone)]
pub struct RealAlg {
    /// Squarefree defining polynomial (monic). For `Exact` values this is
    /// `x − r`.
    poly: UPoly,
    loc: Arc<Mutex<RootLocation>>,
}

impl RealAlg {
    /// From a rational value.
    #[must_use]
    pub fn from_rat(r: Rat) -> RealAlg {
        let poly = UPoly::from_coeffs(vec![-r.clone(), Rat::one()]);
        RealAlg {
            poly,
            loc: Arc::new(Mutex::new(RootLocation::Exact(r))),
        }
    }

    /// From a squarefree polynomial and an isolating location. The caller
    /// guarantees `poly` is squarefree and `loc` isolates exactly one root.
    #[must_use]
    pub fn new(poly: UPoly, loc: RootLocation) -> RealAlg {
        debug_assert!(!poly.is_constant());
        RealAlg {
            poly: poly.monic(),
            loc: Arc::new(Mutex::new(loc)),
        }
    }

    /// All real roots of `p` as algebraic numbers, ascending.
    #[must_use]
    pub fn roots_of(p: &UPoly) -> Vec<RealAlg> {
        if p.is_constant() {
            return Vec::new();
        }
        let sf = p.squarefree();
        isolate_real_roots(&sf)
            .into_iter()
            .map(|loc| match loc {
                RootLocation::Exact(r) => RealAlg::from_rat(r),
                iso => RealAlg::new(sf.clone(), iso),
            })
            .collect()
    }

    /// Defining polynomial (squarefree, monic).
    #[must_use]
    pub fn poly(&self) -> &UPoly {
        &self.poly
    }

    /// Exact rational value, when the number is rational.
    #[must_use]
    pub fn to_rat(&self) -> Option<Rat> {
        match &*self
            .loc
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            RootLocation::Exact(r) => Some(r.clone()),
            RootLocation::Isolated(_) => None,
        }
    }

    /// Current enclosing interval (degenerate for rationals).
    #[must_use]
    pub fn interval(&self) -> RatInterval {
        self.loc
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            // cdb-lint: allow(lock-order) — resolves to RootLocation::interval,
            // which takes no lock; the RealAlg::interval candidate is the
            // method-name union's over-approximation, not a real recursion
            .interval()
    }

    /// A rational approximation within `eps`.
    #[must_use]
    pub fn approx(&self, eps: &Rat) -> Rat {
        let loc = self
            .loc
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        match loc {
            RootLocation::Exact(r) => r,
            RootLocation::Isolated(_) => {
                let iv = crate::roots::refine_to_width(&self.poly, &loc, eps);
                self.store_refinement(&iv);
                iv.midpoint()
            }
        }
    }

    /// Persist a refined enclosure into the shared cell.
    fn store_refinement(&self, iv: &RatInterval) {
        let mut loc = self
            .loc
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if matches!(&*loc, RootLocation::Isolated(_)) {
            *loc = if iv.width().is_zero() {
                RootLocation::Exact(iv.midpoint())
            } else {
                RootLocation::Isolated(iv.clone())
            };
        }
    }

    /// `f64` approximation.
    #[must_use]
    // cdb-lint: allow(float) — reporting-only conversion; exact comparisons go
    // through `cmp_alg`/`sign_of`, never through this value
    pub fn to_f64(&self) -> f64 {
        self.approx(&Rat::new(cdb_num::Int::one(), cdb_num::Int::pow2(60)))
            .to_f64()
    }

    /// A copy with the isolating interval refined to width `<= eps`
    /// (refinement is persisted in the shared cell).
    #[must_use]
    pub fn refined(&self, eps: &Rat) -> RealAlg {
        let loc = self
            .loc
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        match loc {
            RootLocation::Exact(_) => self.clone(),
            RootLocation::Isolated(_) => {
                let iv = crate::roots::refine_to_width(&self.poly, &loc, eps);
                self.store_refinement(&iv);
                self.clone()
            }
        }
    }

    /// Exact sign of `q(α)` for rational-coefficient `q`.
    ///
    /// Zero is decided by a gcd test (`q(α) = 0` iff `gcd(q, p_α)` has a
    /// root in the isolating interval, which then must be `α` itself); the
    /// nonzero case terminates by interval refinement.
    #[must_use]
    pub fn sign_of(&self, q: &UPoly) -> Sign {
        if q.is_zero() {
            return Sign::Zero;
        }
        if let Some(r) = self.to_rat() {
            return q.fsign_at(&r);
        }
        // Fast path: a few rounds of interval refinement decide every
        // nonzero sign cheaply; the (expensive) gcd zero-test only runs when
        // ambiguity persists — i.e. when the value is plausibly zero. All
        // refinement is persisted in the shared cell, so repeated probes of
        // the same number get cheaper and cheaper.
        let mut iv = self.interval();
        let s_hi = self.poly.fsign_at(iv.hi());
        let bisect = |iv: &RatInterval| -> Result<RatInterval, Sign> {
            let mid = iv.midpoint();
            match self.poly.fsign_at(&mid) {
                Sign::Zero => Err(q.fsign_at(&mid)),
                s if s == s_hi => Ok(RatInterval::new(iv.lo().clone(), mid)),
                _ => Ok(RatInterval::new(mid, iv.hi().clone())),
            }
        };
        for _ in 0..6 {
            if let Some(s) = filtered_interval_sign(q, &iv) {
                self.store_refinement(&iv);
                return s;
            }
            match bisect(&iv) {
                Ok(next) => iv = next,
                Err(s) => {
                    return s;
                }
            }
        }
        self.store_refinement(&iv);
        // Still ambiguous: decide zero-ness exactly.
        let g = self.poly.gcd(&q.squarefree());
        if !g.is_constant() {
            // q(α) = 0 iff g has a root in the isolating interval. Interval
            // endpoints are non-roots of p_α hence of g (g | p_α).
            let chain = SturmChain::new(&g);
            if chain.count_roots_half_open(iv.lo(), iv.hi()) > 0 {
                return Sign::Zero;
            }
        }
        // q(α) != 0: refine until the interval evaluation is definite.
        loop {
            if let Some(s) = filtered_interval_sign(q, &iv) {
                self.store_refinement(&iv);
                debug_assert_ne!(s, Sign::Zero);
                return s;
            }
            match bisect(&iv) {
                Ok(next) => iv = next,
                Err(s) => return s,
            }
        }
    }

    /// Compare with a rational, exactly.
    #[must_use]
    pub fn cmp_rat(&self, r: &Rat) -> Ordering {
        // sign(α − r) = sign of (x − r) at α, negated order.
        let q = UPoly::from_coeffs(vec![-r.clone(), Rat::one()]);
        match self.sign_of(&q) {
            Sign::Neg => Ordering::Less,
            Sign::Zero => Ordering::Equal,
            Sign::Pos => Ordering::Greater,
        }
    }

    /// Exact equality test.
    #[must_use]
    pub fn eq_alg(&self, other: &RealAlg) -> bool {
        self.cmp_alg(other) == Ordering::Equal
    }

    /// Exact comparison of two real algebraic numbers.
    #[must_use]
    pub fn cmp_alg(&self, other: &RealAlg) -> Ordering {
        match (self.to_rat(), other.to_rat()) {
            (Some(a), Some(b)) => return a.cmp(&b),
            (Some(a), None) => return other.cmp_rat(&a).reverse(),
            (None, Some(b)) => return self.cmp_rat(&b),
            (None, None) => {}
        }
        // Both irrational. Cheap rounds of interval refinement decide all
        // strictly-separated pairs; the (expensive) gcd machinery only runs
        // when the intervals persist in overlapping — i.e. the numbers are
        // plausibly equal.
        let a = self.clone();
        let b = other.clone();
        let quarter = Rat::from_ints(1, 4);
        let fallback = Rat::from_ints(1, 1024);
        // `None` = not yet computed; `Some(None)` = provably distinct;
        // `Some(Some(..))` = both are roots of the gcd.
        let mut gchain: Option<Option<(UPoly, SturmChain)>> = None;
        for round in 0.. {
            let (ia, ib) = (a.interval(), b.interval());
            if ia.hi() < ib.lo() {
                return Ordering::Less;
            }
            if ib.hi() < ia.lo() {
                return Ordering::Greater;
            }
            if round >= 4 {
                // If `other.poly(α) != 0` they are distinct and further
                // refinement separates them; otherwise both are roots of
                // g = gcd and shrinking hulls decide equality.
                if gchain.is_none() {
                    let g = self.poly.gcd(&other.poly);
                    let common_possible =
                        !g.is_constant() && self.sign_of(&other.poly) == Sign::Zero;
                    gchain = Some(if common_possible {
                        let chain = SturmChain::new(&g);
                        Some((g, chain))
                    } else {
                        None
                    });
                }
                if let Some(Some((g, chain))) = &gchain {
                    // Hull of the overlapping intervals; α and β are both
                    // roots of g. If the (closed) hull contains exactly one
                    // g-root, they coincide.
                    let lo = Rat::min(ia.lo().clone(), ib.lo().clone());
                    let hi = Rat::max(ia.hi().clone(), ib.hi().clone());
                    let mut count = chain.count_roots_half_open(&lo, &hi);
                    if g.fsign_at(&lo) == Sign::Zero {
                        count += 1;
                    }
                    if count == 1 {
                        return Ordering::Equal;
                    }
                }
            }
            let w = &Rat::min(ia.width(), ib.width()) * &quarter;
            let w = if w.is_zero() { fallback.clone() } else { w };
            let _ = a.refined(&w);
            let _ = b.refined(&w);
        }
        // cdb-lint: allow(panic) — the `for round in 0..` loop above only exits
        // via `return`: every pair of distinct reals separates under refinement
        // and the gcd test decides equality, so this line is never reached.
        unreachable!("refinement loop decides every comparison")
    }
}

impl fmt::Display for RealAlg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self
            .loc
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            RootLocation::Exact(r) => write!(f, "{r}"),
            RootLocation::Isolated(iv) => {
                write!(f, "root of {} in {}", self.poly, iv)
            }
        }
    }
}

impl fmt::Debug for RealAlg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RealAlg({self})")
    }
}

/// An element of `Q(α)` represented as a polynomial in `α` of degree less
/// than `deg(minpoly)`. Arithmetic reduces modulo the minimal polynomial.
#[derive(Clone, PartialEq, Eq)]
pub struct NfElem {
    /// Representative, `deg < deg(modulus)`.
    pub rep: UPoly,
}

/// The number field `Q(α)` for a fixed `α`.
#[derive(Clone)]
pub struct NumberField {
    alpha: RealAlg,
}

impl NumberField {
    /// Field generated by `α`. For a rational `α` the field is just `Q`
    /// (modulus `x − α`), which works uniformly.
    #[must_use]
    pub fn new(alpha: RealAlg) -> NumberField {
        NumberField { alpha }
    }

    /// The generator.
    #[must_use]
    pub fn alpha(&self) -> &RealAlg {
        &self.alpha
    }

    fn modulus(&self) -> &UPoly {
        self.alpha.poly()
    }

    /// Embed a rational.
    #[must_use]
    pub fn from_rat(&self, r: Rat) -> NfElem {
        NfElem {
            rep: UPoly::constant(r),
        }
    }

    /// Embed a `Q`-polynomial evaluated at `α` (i.e., reduce mod minpoly).
    #[must_use]
    pub fn from_upoly(&self, p: &UPoly) -> NfElem {
        NfElem {
            rep: p.divrem(self.modulus()).1,
        }
    }

    /// The generator as an element.
    #[must_use]
    pub fn gen(&self) -> NfElem {
        self.from_upoly(&UPoly::x())
    }

    /// Addition.
    #[must_use]
    pub fn add(&self, a: &NfElem, b: &NfElem) -> NfElem {
        NfElem {
            rep: &a.rep + &b.rep,
        }
    }

    /// Subtraction.
    #[must_use]
    pub fn sub(&self, a: &NfElem, b: &NfElem) -> NfElem {
        NfElem {
            rep: &a.rep - &b.rep,
        }
    }

    /// Multiplication (reduced).
    #[must_use]
    pub fn mul(&self, a: &NfElem, b: &NfElem) -> NfElem {
        NfElem {
            rep: (&a.rep * &b.rep).divrem(self.modulus()).1,
        }
    }

    /// Negation.
    #[must_use]
    pub fn neg(&self, a: &NfElem) -> NfElem {
        NfElem { rep: -&a.rep }
    }

    /// Exact zero test: the representative vanishes at `α`.
    ///
    /// Note the modulus is squarefree but not necessarily irreducible, so a
    /// nonzero representative may still denote zero; the sign test decides.
    #[must_use]
    pub fn is_zero(&self, a: &NfElem) -> bool {
        self.sign(a) == Sign::Zero
    }

    /// Exact sign of the element (as the real number `rep(α)`).
    #[must_use]
    pub fn sign(&self, a: &NfElem) -> Sign {
        self.alpha.sign_of(&a.rep)
    }

    /// Multiplicative inverse. The modulus may be reducible (we only require
    /// squarefree), so plain XGCD can fail to produce a unit; in that case
    /// the gcd factor splits the modulus and we recurse on the factor that
    /// still has `α` as a root. Panics on zero.
    #[must_use]
    pub fn inv(&self, a: &NfElem) -> NfElem {
        assert!(!self.is_zero(a), "inverse of zero in Q(alpha)");
        // Extended Euclid: u·rep + v·mod = g.
        let (g, u) = half_xgcd(&a.rep, self.modulus());
        // If g is constant, u/g is the inverse.
        if g.is_constant() {
            let c = g.coeff(0);
            return NfElem {
                rep: u.scale(&c.recip()).divrem(self.modulus()).1,
            };
        }
        // g is a nontrivial common factor; α is a root of the modulus but
        // not of rep (nonzero), so α is a root of mod/g. Work there.
        let reduced = NumberField {
            alpha: RealAlg {
                poly: self.modulus().div_exact(&g).monic(),
                loc: Arc::new(Mutex::new(
                    self.alpha
                        .loc
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .clone(),
                )),
            },
        };
        let inv = reduced.inv(&NfElem {
            rep: a.rep.divrem(reduced.modulus()).1,
        });
        NfElem { rep: inv.rep }
    }

    /// Division.
    #[must_use]
    pub fn div(&self, a: &NfElem, b: &NfElem) -> NfElem {
        self.mul(a, &self.inv(b))
    }
}

/// Extended Euclid returning `(g, u)` with `u·a ≡ g (mod b)`.
fn half_xgcd(a: &UPoly, b: &UPoly) -> (UPoly, UPoly) {
    let mut r0 = a.clone();
    let mut r1 = b.clone();
    let mut u0 = UPoly::one();
    let mut u1 = UPoly::zero();
    while !r1.is_zero() {
        let (q, r) = r0.divrem(&r1);
        let nu = &u0 - &(&q * &u1);
        r0 = r1;
        r1 = r;
        u0 = u1;
        u1 = nu;
    }
    (r0, u0)
}

/// A univariate polynomial with coefficients in `Q(α)`, used for exact root
/// isolation when lifting a CAD stack over a section cell.
#[derive(Clone)]
pub struct AlgUPoly {
    field: NumberField,
    /// Low-to-high coefficients, not necessarily normalized (leading entries
    /// may denote zero even when their representatives are nonzero).
    coeffs: Vec<NfElem>,
}

impl AlgUPoly {
    /// Build from coefficients given as `Q`-polynomials in `α`, low-to-high.
    /// Leading coefficients that denote zero are stripped *exactly*.
    #[must_use]
    pub fn new(field: NumberField, coeffs: Vec<UPoly>) -> AlgUPoly {
        let mut elems: Vec<NfElem> = coeffs.iter().map(|c| field.from_upoly(c)).collect();
        while let Some(last) = elems.last() {
            if field.is_zero(last) {
                elems.pop();
            } else {
                break;
            }
        }
        AlgUPoly {
            field,
            coeffs: elems,
        }
    }

    /// True iff the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree (`None` for zero).
    #[must_use]
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Value at a rational point, as an element of `Q(α)`.
    #[must_use]
    pub fn eval_rat(&self, y: &Rat) -> NfElem {
        let mut acc = self.field.from_rat(Rat::zero());
        let ye = self.field.from_rat(y.clone());
        for c in self.coeffs.iter().rev() {
            acc = self.field.add(&self.field.mul(&acc, &ye), c);
        }
        acc
    }

    /// Exact sign of the value at a rational point.
    #[must_use]
    pub fn sign_at(&self, y: &Rat) -> Sign {
        self.field.sign(&self.eval_rat(y))
    }

    /// Formal derivative.
    #[must_use]
    fn derivative(&self) -> AlgUPoly {
        if self.coeffs.len() <= 1 {
            return AlgUPoly {
                field: self.field.clone(),
                coeffs: Vec::new(),
            };
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, c)| NfElem {
                rep: c.rep.scale(&Rat::from(i as i64)),
            })
            .collect();
        AlgUPoly {
            field: self.field.clone(),
            coeffs,
        }
    }

    /// Division with remainder in `Q(α)[y]` (exact field arithmetic).
    fn divrem(&self, div: &AlgUPoly) -> (AlgUPoly, AlgUPoly) {
        assert!(!div.is_zero());
        let f = &self.field;
        let dd = div.coeffs.len() - 1;
        let lead_inv = f.inv(&div.coeffs[dd]);
        let mut rem = self.coeffs.clone();
        if rem.len() <= dd {
            return (
                AlgUPoly {
                    field: f.clone(),
                    coeffs: Vec::new(),
                },
                self.clone(),
            );
        }
        let mut quot = vec![f.from_rat(Rat::zero()); rem.len() - dd];
        for i in (dd..rem.len()).rev() {
            if f.is_zero(&rem[i]) {
                continue;
            }
            let fac = f.mul(&rem[i], &lead_inv);
            for (j, dc) in div.coeffs.iter().enumerate() {
                let t = f.mul(&fac, dc);
                rem[i - dd + j] = f.sub(&rem[i - dd + j], &t);
            }
            quot[i - dd] = fac;
        }
        let strip = |mut v: Vec<NfElem>| {
            while v.last().is_some_and(|c| f.is_zero(c)) {
                v.pop();
            }
            v
        };
        rem.truncate(dd);
        (
            AlgUPoly {
                field: f.clone(),
                coeffs: strip(quot),
            },
            AlgUPoly {
                field: f.clone(),
                coeffs: strip(rem),
            },
        )
    }

    /// Sturm chain in `Q(α)[y]`.
    fn sturm_chain(&self) -> Vec<AlgUPoly> {
        let mut seq = vec![self.clone(), self.derivative()];
        while seq.last().is_some_and(|tail| !tail.is_zero()) {
            let n = seq.len();
            let (_, r) = seq[n - 2].divrem(&seq[n - 1]);
            if r.is_zero() {
                break;
            }
            let negated = AlgUPoly {
                field: r.field.clone(),
                coeffs: r.coeffs.iter().map(|c| r.field.neg(c)).collect(),
            };
            seq.push(negated);
        }
        seq.retain(|p| !p.is_zero());
        seq
    }

    /// Make squarefree (divide by gcd with derivative).
    #[must_use]
    pub fn squarefree(&self) -> AlgUPoly {
        if self.coeffs.len() <= 1 {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = self.derivative();
        // Euclid in Q(α)[y].
        while !b.is_zero() {
            let (_, r) = a.divrem(&b);
            a = b;
            b = r;
        }
        if a.degree().unwrap_or(0) == 0 {
            self.clone()
        } else {
            self.divrem(&a).0
        }
    }

    /// Cauchy-style bound on root magnitude: `1 + max |c_i| / |c_d|`, with
    /// numerically safe rational over-approximation via interval refinement.
    fn root_bound(&self) -> Rat {
        let f = &self.field;
        let d = self.coeffs.len() - 1;
        // Approximate |c_i(α)| from above, |c_d(α)| from below.
        let eps = Rat::from_ints(1, 1 << 20);
        let alpha = f.alpha().refined(&eps);
        let iv = alpha.interval();
        let lead_iv = self.coeffs[d].rep.eval_interval(&iv);
        // |lead| lower bound: refine until bounded away from zero (it is
        // nonzero by construction).
        let mut a = alpha;
        let mut lead_lo;
        loop {
            let liv = self.coeffs[d].rep.eval_interval(&a.interval());
            lead_lo = Rat::min(liv.lo().abs(), liv.hi().abs());
            if liv.sign().is_some() && liv.sign() != Some(Sign::Zero) {
                break;
            }
            let w = &a.interval().width() * &Rat::from_ints(1, 16);
            let w = if w.is_zero() { break } else { w };
            a = a.refined(&w);
        }
        if lead_lo.is_zero() {
            lead_lo = Rat::from_ints(1, 1_000_000);
        }
        let _ = lead_iv;
        let mut m = Rat::zero();
        for c in &self.coeffs[..d] {
            let civ = c.rep.eval_interval(&a.interval());
            let hi = Rat::max(civ.lo().abs(), civ.hi().abs());
            let q = &hi / &lead_lo;
            if q > m {
                m = q;
            }
        }
        &m + &Rat::one()
    }

    /// Exact isolation of the real roots of this polynomial (over the reals,
    /// viewing the coefficients as real numbers `c_i(α)`). Returns disjoint
    /// open rational intervals, ascending, each containing exactly one root,
    /// or exact rational roots.
    #[must_use]
    pub fn isolate_roots(&self) -> Vec<RootLocation> {
        if self.coeffs.len() <= 1 {
            return Vec::new();
        }
        let sf = self.squarefree();
        if let [c0, c1] = sf.coeffs.as_slice() {
            // Linear with algebraic coefficients: root = −c0/c1 ∈ Q(α); only
            // report as exact when rational.
            let f = &sf.field;
            let root = f.neg(&f.div(c0, c1));
            if root.rep.is_constant() {
                return vec![RootLocation::Exact(root.rep.coeff(0))];
            }
            // Fall through to bisection below to localize it in Q-intervals.
        }
        let chain = sf.sturm_chain();
        let var_at = |y: &Rat| -> usize { count_variations(chain.iter().map(|p| p.sign_at(y))) };
        let bound = sf.root_bound();
        let lo = -bound.clone();
        let hi = bound;
        let total = var_at(&lo) - var_at(&hi);
        let mut out = Vec::new();
        // Bisection stack: (lo, hi, count) with count roots in (lo, hi].
        let mut stack = vec![(lo, hi, total)];
        while let Some((lo, hi, count)) = stack.pop() {
            if count == 0 {
                continue;
            }
            if count == 1 {
                if sf.sign_at(&hi) == Sign::Zero {
                    out.push(RootLocation::Exact(hi));
                    continue;
                }
                let mut lo = lo;
                let mut hi = hi;
                while sf.sign_at(&lo) == Sign::Zero {
                    let mid = Rat::midpoint(&lo, &hi);
                    if sf.sign_at(&mid) == Sign::Zero {
                        lo = hi.clone(); // force exit; record exact below
                        out.push(RootLocation::Exact(mid));
                        break;
                    }
                    if var_at(&mid) - var_at(&hi) == 1 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                if lo != hi {
                    out.push(RootLocation::Isolated(RatInterval::new(lo, hi)));
                }
                continue;
            }
            let mid = Rat::midpoint(&lo, &hi);
            let right = var_at(&mid) - var_at(&hi);
            let left = count - right;
            // Push right first so the ascending order pops left first; we
            // sort at the end anyway.
            stack.push((mid.clone(), hi, right));
            stack.push((lo, mid, left));
        }
        out.sort_by(|a, b| {
            let ka = match a {
                RootLocation::Exact(r) => r.clone(),
                RootLocation::Isolated(iv) => iv.lo().clone(),
            };
            let kb = match b {
                RootLocation::Exact(r) => r.clone(),
                RootLocation::Isolated(iv) => iv.lo().clone(),
            };
            ka.cmp(&kb)
        });
        out
    }

    /// Refine an isolated root location to width `<= eps` by bisection with
    /// exact signs.
    #[must_use]
    pub fn refine(&self, loc: &RootLocation, eps: &Rat) -> RatInterval {
        match loc {
            RootLocation::Exact(r) => RatInterval::point(r.clone()),
            RootLocation::Isolated(iv) => {
                let sf = self.squarefree();
                let mut lo = iv.lo().clone();
                let mut hi = iv.hi().clone();
                let s_hi = sf.sign_at(&hi);
                while &(&hi - &lo) > eps {
                    let mid = Rat::midpoint(&lo, &hi);
                    match sf.sign_at(&mid) {
                        Sign::Zero => return RatInterval::point(mid),
                        s if s == s_hi => hi = mid,
                        _ => lo = mid,
                    }
                }
                RatInterval::new(lo, hi)
            }
        }
    }
}

fn count_variations<I: IntoIterator<Item = Sign>>(signs: I) -> usize {
    let mut prev: Option<Sign> = None;
    let mut count = 0;
    for s in signs {
        if s == Sign::Zero {
            continue;
        }
        if let Some(p) = prev {
            if p != s {
                count += 1;
            }
        }
        prev = Some(s);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coeffs: &[i64]) -> UPoly {
        UPoly::from_ints(coeffs)
    }

    fn sqrt2() -> RealAlg {
        RealAlg::roots_of(&p(&[-2, 0, 1])).pop().unwrap()
    }

    #[test]
    fn sign_of_exact_zero() {
        let a = sqrt2();
        // (x²−2)·(x+7) vanishes at √2.
        let q = &p(&[-2, 0, 1]) * &p(&[7, 1]);
        assert_eq!(a.sign_of(&q), Sign::Zero);
        assert_eq!(a.sign_of(&p(&[-1, 1])), Sign::Pos); // √2 − 1 > 0
        assert_eq!(a.sign_of(&p(&[-2, 1])), Sign::Neg); // √2 − 2 < 0
    }

    #[test]
    fn cmp_rationals_and_algebraics() {
        let a = sqrt2();
        assert_eq!(a.cmp_rat(&Rat::one()), Ordering::Greater);
        assert_eq!(a.cmp_rat(&Rat::from(2i64)), Ordering::Less);
        let b = RealAlg::roots_of(&p(&[-3, 0, 1])).pop().unwrap(); // √3
        assert_eq!(a.cmp_alg(&b), Ordering::Less);
        assert_eq!(b.cmp_alg(&a), Ordering::Greater);
        // Same number via different polynomials: √2 as root of (x²−2)(x²−5).
        let c = RealAlg::roots_of(&(&p(&[-2, 0, 1]) * &p(&[-5, 0, 1])))
            .into_iter()
            .find(|r| {
                r.cmp_rat(&Rat::one()) == Ordering::Greater
                    && r.cmp_rat(&Rat::from(2i64)) == Ordering::Less
            })
            .unwrap();
        assert!(a.eq_alg(&c));
    }

    #[test]
    fn roots_of_returns_sorted() {
        let roots = RealAlg::roots_of(&p(&[-6, 11, -6, 1]));
        assert_eq!(roots.len(), 3);
        let vals: Vec<Rat> = roots.iter().map(|r| r.to_rat().unwrap()).collect();
        assert_eq!(vals, vec![Rat::one(), Rat::from(2i64), Rat::from(3i64)]);
    }

    #[test]
    fn field_arithmetic_in_q_sqrt2() {
        let f = NumberField::new(sqrt2());
        let a = f.gen(); // √2
        let two = f.mul(&a, &a);
        assert_eq!(
            f.sign(&f.sub(&two, &f.from_rat(Rat::from(2i64)))),
            Sign::Zero
        );
        // (1 + √2)(−1 + √2) = 1
        let u = f.add(&f.from_rat(Rat::one()), &a);
        let v = f.add(&f.from_rat(Rat::from(-1i64)), &a);
        let prod = f.mul(&u, &v);
        assert_eq!(f.sign(&f.sub(&prod, &f.from_rat(Rat::one()))), Sign::Zero);
        // Inverse: 1/√2 = √2/2.
        let inv = f.inv(&a);
        let check = f.sub(
            &inv,
            &NfElem {
                rep: UPoly::from_coeffs(vec![Rat::zero(), "1/2".parse().unwrap()]),
            },
        );
        assert!(f.is_zero(&check));
    }

    #[test]
    fn inverse_with_reducible_modulus() {
        // Modulus (x²−2)(x²−3), α = √2. Invert (x²−3)(α) = −1... that is
        // nonzero; also invert α itself where xgcd may hit the factor.
        let m = &p(&[-2, 0, 1]) * &p(&[-3, 0, 1]);
        let alpha = RealAlg::roots_of(&m)
            .into_iter()
            .find(|r| {
                r.sign_of(&p(&[-2, 0, 1])) == Sign::Zero
                    && r.cmp_rat(&Rat::zero()) == Ordering::Greater
            })
            .unwrap();
        let f = NumberField::new(alpha);
        let a = f.gen();
        let inv = f.inv(&a);
        let prod = f.mul(&a, &inv);
        assert!(f.is_zero(&f.sub(&prod, &f.from_rat(Rat::one()))));
    }

    #[test]
    fn alg_poly_roots_sqrt_alpha() {
        // q(y) = y² − α with α = √2: roots ±2^(1/4).
        let f = NumberField::new(sqrt2());
        let q = AlgUPoly::new(f, vec![-&UPoly::x(), UPoly::zero(), UPoly::one()]);
        let roots = q.isolate_roots();
        assert_eq!(roots.len(), 2);
        let eps: Rat = "1/1000000".parse().unwrap();
        let hi = q.refine(&roots[1], &eps).midpoint().to_f64();
        assert!((hi - 2f64.powf(0.25)).abs() < 1e-4, "got {hi}");
        let lo = q.refine(&roots[0], &eps).midpoint().to_f64();
        assert!((lo + 2f64.powf(0.25)).abs() < 1e-4, "got {lo}");
    }

    #[test]
    fn alg_poly_detects_vanishing_lead() {
        // (α² − 2)·y² + y − 1 has a zero leading coefficient at α = √2:
        // effectively linear, one root at 1.
        let f = NumberField::new(sqrt2());
        let q = AlgUPoly::new(f, vec![p(&[-1]), p(&[1]), p(&[-2, 0, 1])]);
        assert_eq!(q.degree(), Some(1));
        let roots = q.isolate_roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0], RootLocation::Exact(Rat::one()));
    }

    #[test]
    fn alg_poly_with_double_root() {
        // (y − α)² = y² − 2αy + α²  → squarefree isolation finds one root ≈ √2.
        let f = NumberField::new(sqrt2());
        let q = AlgUPoly::new(f, vec![p(&[0, 0, 1]), p(&[0, -2]), p(&[1])]);
        let roots = q.isolate_roots();
        assert_eq!(roots.len(), 1);
        let eps: Rat = "1/100000".parse().unwrap();
        let v = q.refine(&roots[0], &eps).midpoint().to_f64();
        assert!((v - std::f64::consts::SQRT_2).abs() < 1e-4);
    }

    #[test]
    fn rational_alpha_degenerate_field() {
        let f = NumberField::new(RealAlg::from_rat(Rat::from(3i64)));
        let a = f.gen();
        assert_eq!(f.sign(&f.sub(&a, &f.from_rat(Rat::from(3i64)))), Sign::Zero);
        let q = AlgUPoly::new(f, vec![-&UPoly::x(), UPoly::one()]); // y − α
        let roots = q.isolate_roots();
        assert_eq!(roots, vec![RootLocation::Exact(Rat::from(3i64))]);
    }
}
