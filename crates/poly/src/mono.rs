//! Packed monomial exponent vectors.
//!
//! The flat-term representation of [`crate::MPoly`] stores one [`Mono`] per
//! nonzero term. Almost every polynomial in the CAD/QE workload lives in
//! rings of at most a handful of variables with single-digit exponents, so
//! the common case packs the whole exponent vector into one `u64` — eight
//! bytes, one per variable, variable 0 in the **most significant** byte so
//! that the native `u64` ordering coincides with the lexicographic order on
//! exponent vectors. Vectors of more than [`PACK_VARS`] variables, or with
//! any exponent above [`PACK_MAX_EXP`], spill to a heap vector.
//!
//! The representation is **canonical**: a given exponent vector always has
//! exactly one representation (packed iff it fits), so the derived
//! `PartialEq`/`Hash` coincide with equality of exponent vectors.

use std::cmp::Ordering;
use std::fmt;

/// Maximum number of variables the inline representation holds.
pub const PACK_VARS: usize = 8;

/// Maximum per-variable exponent the inline representation holds.
pub const PACK_MAX_EXP: u32 = 0xFF;

/// Mask of the high bit of every byte lane; when clear in both operands,
/// bytewise addition of the two packs cannot carry between lanes.
const HIGH_BITS: u64 = 0x8080_8080_8080_8080;

#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// `nvars <= 8` and all exponents `<= 255`: one byte per variable,
    /// variable 0 in the most significant byte (lex order = `u64` order).
    Packed { nvars: u8, bits: u64 },
    /// Anything larger.
    Spilled(Vec<u32>),
}

/// An exponent vector; entry `i` is the exponent of variable `i`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Mono(Repr);

/// Byte shift for variable `i` (variable 0 occupies the top byte).
fn shift(i: usize) -> u32 {
    debug_assert!(i < PACK_VARS);
    (56 - 8 * i) as u32
}

impl Mono {
    /// The all-zero exponent vector in `nvars` variables.
    #[must_use]
    pub fn zero(nvars: usize) -> Mono {
        if nvars <= PACK_VARS {
            Mono(Repr::Packed {
                nvars: nvars as u8,
                bits: 0,
            })
        } else {
            Mono(Repr::Spilled(vec![0; nvars]))
        }
    }

    /// Build from a slice of exponents (canonical representation chosen
    /// automatically).
    #[must_use]
    pub fn from_exps(exps: &[u32]) -> Mono {
        if exps.len() <= PACK_VARS && exps.iter().all(|&e| e <= PACK_MAX_EXP) {
            let mut bits = 0u64;
            for (i, &e) in exps.iter().enumerate() {
                bits |= u64::from(e) << shift(i);
            }
            Mono(Repr::Packed {
                nvars: exps.len() as u8,
                bits,
            })
        } else {
            Mono(Repr::Spilled(exps.to_vec()))
        }
    }

    /// Build from an owned vector (avoids the copy on the spill path).
    #[must_use]
    pub fn from_vec(exps: Vec<u32>) -> Mono {
        if exps.len() <= PACK_VARS && exps.iter().all(|&e| e <= PACK_MAX_EXP) {
            Mono::from_exps(&exps)
        } else {
            Mono(Repr::Spilled(exps))
        }
    }

    /// Number of variables of the ambient ring.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Packed { nvars, .. } => *nvars as usize,
            Repr::Spilled(v) => v.len(),
        }
    }

    /// True iff the ambient ring has no variables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exponent of variable `i` (must be `< len()`).
    #[must_use]
    pub fn get(&self, i: usize) -> u32 {
        match &self.0 {
            Repr::Packed { nvars, bits } => {
                assert!(i < *nvars as usize, "variable index out of range");
                ((bits >> shift(i)) & 0xFF) as u32
            }
            Repr::Spilled(v) => v[i],
        }
    }

    /// Iterate the exponents in variable order (by value).
    pub fn exps(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The exponents as a plain vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u32> {
        match &self.0 {
            Repr::Packed { .. } => self.exps().collect(),
            Repr::Spilled(v) => v.clone(),
        }
    }

    /// Sum of all exponents (the term's total degree).
    #[must_use]
    pub fn total_degree(&self) -> u32 {
        match &self.0 {
            Repr::Packed { nvars, bits } => {
                let mut sum = 0u32;
                for i in 0..*nvars as usize {
                    sum += ((bits >> shift(i)) & 0xFF) as u32;
                }
                sum
            }
            Repr::Spilled(v) => v.iter().sum(),
        }
    }

    /// True iff every exponent is zero (the constant monomial).
    #[must_use]
    pub fn is_constant(&self) -> bool {
        match &self.0 {
            Repr::Packed { bits, .. } => *bits == 0,
            Repr::Spilled(v) => v.iter().all(|&e| e == 0),
        }
    }

    /// Product of monomials: exponent vectors add. Both operands must have
    /// the same arity.
    #[must_use]
    pub fn mul(&self, other: &Mono) -> Mono {
        debug_assert_eq!(self.len(), other.len(), "monomial arity mismatch");
        if let (Repr::Packed { nvars, bits: a }, Repr::Packed { bits: b, .. }) = (&self.0, &other.0)
        {
            // No byte lane of either operand has its high bit set, so the
            // bytewise sums all stay below 255 and cannot carry across lanes.
            if (a | b) & HIGH_BITS == 0 {
                return Mono(Repr::Packed {
                    nvars: *nvars,
                    bits: a + b,
                });
            }
        }
        Mono::from_vec(self.exps().zip(other.exps()).map(|(a, b)| a + b).collect())
    }

    /// Exact quotient of monomials: `self / other` when every exponent of
    /// `other` is bounded by the matching exponent of `self`, else `None`.
    #[must_use]
    pub fn try_div(&self, other: &Mono) -> Option<Mono> {
        debug_assert_eq!(self.len(), other.len(), "monomial arity mismatch");
        let mut out = Vec::with_capacity(self.len());
        for (a, b) in self.exps().zip(other.exps()) {
            if a < b {
                return None;
            }
            out.push(a - b);
        }
        Some(Mono::from_vec(out))
    }

    /// Copy with variable `i`'s exponent replaced by zero.
    #[must_use]
    pub fn zeroed(&self, i: usize) -> Mono {
        match &self.0 {
            Repr::Packed { nvars, bits } => {
                assert!(i < *nvars as usize, "variable index out of range");
                Mono(Repr::Packed {
                    nvars: *nvars,
                    bits: bits & !(0xFFu64 << shift(i)),
                })
            }
            Repr::Spilled(v) => {
                let mut v = v.clone();
                v[i] = 0;
                // Zeroing an exponent can make a spilled vector packable only
                // if the arity fits, which it does not for spilled arities.
                Mono::from_vec(v)
            }
        }
    }

    /// Copy with variable `i`'s exponent replaced by `e`.
    #[must_use]
    pub fn with_exp(&self, i: usize, e: u32) -> Mono {
        if let Repr::Packed { nvars, bits } = &self.0 {
            assert!(i < *nvars as usize, "variable index out of range");
            if e <= PACK_MAX_EXP {
                let cleared = bits & !(0xFFu64 << shift(i));
                return Mono(Repr::Packed {
                    nvars: *nvars,
                    bits: cleared | (u64::from(e) << shift(i)),
                });
            }
        }
        let mut v = self.to_vec();
        v[i] = e;
        Mono::from_vec(v)
    }
}

impl Ord for Mono {
    /// Lexicographic order on exponent vectors, identical to the `Ord` of
    /// the corresponding `Vec<u32>`s (elementwise, then by length).
    fn cmp(&self, other: &Mono) -> Ordering {
        if let (Repr::Packed { nvars: na, bits: a }, Repr::Packed { nvars: nb, bits: b }) =
            (&self.0, &other.0)
        {
            if na == nb {
                return a.cmp(b);
            }
        }
        self.exps().cmp(other.exps())
    }
}

impl PartialOrd for Mono {
    fn partial_cmp(&self, other: &Mono) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Mono {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mono{:?}", self.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_packing() {
        let small = Mono::from_exps(&[1, 2, 3]);
        assert!(matches!(small.0, Repr::Packed { .. }));
        assert_eq!(small.to_vec(), vec![1, 2, 3]);
        let wide = Mono::from_exps(&[0; 9]);
        assert!(matches!(wide.0, Repr::Spilled(_)));
        let tall = Mono::from_exps(&[256, 0]);
        assert!(matches!(tall.0, Repr::Spilled(_)));
        assert_eq!(tall.get(0), 256);
    }

    #[test]
    fn order_matches_vec_lex() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![1],
            vec![0, 0],
            vec![0, 2],
            vec![1, 0],
            vec![1, 1],
            vec![255, 255],
            vec![256, 0],
            vec![0, 0, 0, 0, 0, 0, 0, 0, 1],
        ];
        for a in &cases {
            for b in &cases {
                assert_eq!(
                    Mono::from_exps(a).cmp(&Mono::from_exps(b)),
                    a.cmp(b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn mul_and_div() {
        let a = Mono::from_exps(&[1, 2]);
        let b = Mono::from_exps(&[3, 4]);
        assert_eq!(a.mul(&b).to_vec(), vec![4, 6]);
        assert_eq!(b.try_div(&a).unwrap().to_vec(), vec![2, 2]);
        assert!(a.try_div(&b).is_none());
        // Carry across the packed boundary: 200 + 100 > 255 must spill.
        let c = Mono::from_exps(&[200, 0]);
        let d = Mono::from_exps(&[100, 0]);
        let cd = c.mul(&d);
        assert_eq!(cd.to_vec(), vec![300, 0]);
        assert!(matches!(cd.0, Repr::Spilled(_)));
        // And dividing back re-packs canonically.
        let back = cd.try_div(&d).unwrap();
        assert_eq!(back, c);
        assert!(matches!(back.0, Repr::Packed { .. }));
    }

    #[test]
    fn edits() {
        let a = Mono::from_exps(&[1, 2, 3]);
        assert_eq!(a.zeroed(1).to_vec(), vec![1, 0, 3]);
        assert_eq!(a.with_exp(2, 9).to_vec(), vec![1, 2, 9]);
        assert_eq!(a.with_exp(0, 300).to_vec(), vec![300, 2, 3]);
        assert_eq!(a.total_degree(), 6);
        assert!(!a.is_constant());
        assert!(Mono::zero(4).is_constant());
    }
}
